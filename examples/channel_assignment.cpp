/// \file channel_assignment.cpp
/// The paper's motivating application (§I): channel assignment in an
/// ad-hoc radio network. Radios scattered in the plane can talk when in
/// range; a directed link (u → v) needs a channel no *interfering* link
/// shares — precisely a strong (distance-2) edge coloring of the symmetric
/// connectivity digraph, because a transmission on (u → v) collides with
/// any transmission whose endpoints border u or v.
///
/// The example builds a unit-disk network, runs DiMa2Ed (strict mode),
/// maps colors to channels, independently re-derives the interference
/// constraints and checks them, and compares channel usage against the
/// sequential greedy comparator and the clique lower bound.
///
///   $ ./channel_assignment [n] [radio-range] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/baselines/strong_greedy.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace dima;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50;
  const double range = argc > 2 ? std::strtod(argv[2], nullptr) : 0.22;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // Deploy radios uniformly in the unit square; links within radio range.
  support::Rng rng(seed);
  const graph::GeometricGraph deployment =
      graph::randomGeometric(n, range, rng);
  const graph::Graph& g = deployment.graph;
  const graph::Digraph network(g);
  std::printf("ad-hoc network: %zu radios, %zu bidirectional links "
              "(%zu directed), max degree %zu\n",
              g.numVertices(), g.numEdges(), network.numArcs(),
              g.maxDegree());
  if (g.numEdges() == 0) {
    std::printf("no radio is in range of another; nothing to assign\n");
    return 0;
  }

  // Distributed channel assignment: each radio is a compute node, one-hop
  // messages only — exactly the deployment constraint that motivates a
  // distributed algorithm in the first place.
  coloring::Dima2EdOptions options;
  options.seed = seed;
  const coloring::ArcColoringResult assignment =
      coloring::colorArcsDima2Ed(network, options);
  if (!assignment.metrics.converged) {
    std::printf("assignment did not converge within the round cap\n");
    return 1;
  }

  // Re-derive the interference rule independently and verify.
  const coloring::Verdict verdict =
      coloring::verifyStrongArcColoring(network, assignment.colors);
  if (!verdict.valid) {
    std::printf("INTERFERENCE: %s\n", verdict.reason.c_str());
    return 1;
  }

  const std::size_t lower = graph::strongColoringLowerBound(g);
  const auto greedy = baselines::greedyStrongArcColoring(network);
  std::printf("channels used: %zu (clique lower bound %zu, sequential "
              "greedy %zu)\n",
              assignment.colorsUsed(), lower, greedy.colorsUsed);
  std::printf("negotiation cost: %llu synchronous rounds "
              "(max degree %zu -> %.1f rounds per unit of Delta)\n",
              static_cast<unsigned long long>(
                  assignment.metrics.computationRounds),
              g.maxDegree(),
              static_cast<double>(assignment.metrics.computationRounds) /
                  static_cast<double>(g.maxDegree()));

  // Print the schedule for the busiest radio.
  graph::VertexId busiest = 0;
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    if (g.degree(v) > g.degree(busiest)) busiest = v;
  }
  std::printf("schedule of radio %u (degree %zu) at (%.2f, %.2f):\n",
              busiest, g.degree(busiest),
              deployment.positions[busiest].first,
              deployment.positions[busiest].second);
  for (graph::ArcId out : network.outArcs(busiest)) {
    const graph::Arc arc = network.arc(out);
    std::printf("  tx %u->%u on channel %d | rx %u->%u on channel %d\n",
                arc.from, arc.to, assignment.colors[out], arc.to, arc.from,
                assignment.colors[graph::Digraph::reverse(out)]);
  }
  std::printf("ok\n");
  return 0;
}
