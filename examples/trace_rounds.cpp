/// \file trace_rounds.cpp
/// Instruments a MaDEC run with the event tracer and reconstructs the
/// paper's Figure-1 automaton in action: per computation round, how many
/// nodes chose I vs L, how many invitations were sent/kept/accepted, the
/// matching size, and how many nodes reached D. Also writes a Graphviz
/// DOT file of the final coloring for visual inspection.
///
///   $ ./trace_rounds [n] [avg-degree] [seed] [out.dot]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/net/trace.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace dima;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const double avgDegree = argc > 2 ? std::strtod(argv[2], nullptr) : 4.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  const std::string dotPath = argc > 4 ? argv[4] : "trace_rounds.dot";

  support::Rng rng(seed);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDegree, rng);

  net::TraceLog trace;
  trace.enable();
  coloring::MadecOptions options;
  options.seed = seed;
  options.trace = &trace;  // tracing requires the serial executor
  const coloring::EdgeColoringResult result =
      coloring::colorEdgesMadec(g, options);
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.colors);

  std::printf("MaDEC on n=%zu m=%zu Delta=%zu: %zu colors in %llu rounds "
              "(%s)\n\n",
              g.numVertices(), g.numEdges(), g.maxDegree(),
              result.colorsUsed(),
              static_cast<unsigned long long>(
                  result.metrics.computationRounds),
              verdict.valid ? "valid" : verdict.reason.c_str());

  support::TextTable table({"round", "invitors", "listeners", "invites",
                            "kept", "accepted", "edges colored", "done"});
  std::size_t doneSoFar = 0;
  for (std::uint64_t round = 0; round < result.metrics.computationRounds;
       ++round) {
    std::size_t invitors = 0, listeners = 0;
    for (const net::TraceEvent& e : trace.events()) {
      if (e.cycle == round && e.kind == net::TraceKind::StateChoice) {
        (e.a == 1 ? invitors : listeners) += 1;
      }
    }
    doneSoFar += trace.countInCycle(round, net::TraceKind::NodeDone);
    table.addRowOf(round, invitors, listeners,
                   trace.countInCycle(round, net::TraceKind::InviteSent),
                   trace.countInCycle(round, net::TraceKind::InviteKept),
                   trace.countInCycle(round, net::TraceKind::ResponseSent),
                   trace.countInCycle(round, net::TraceKind::EdgeColored) / 2,
                   doneSoFar);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(each accepted invitation is one matched pair; the per-round "
              "matching is what Fig. 1's automaton discovers)\n");

  std::vector<int> classes(result.colors.begin(), result.colors.end());
  std::ofstream dot(dotPath);
  if (dot) {
    dot << graph::toDot(g, classes);
    std::printf("final coloring written to %s (render with `dot -Tpng`)\n",
                dotPath.c_str());
  }
  return verdict.valid ? 0 : 1;
}
