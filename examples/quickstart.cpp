/// \file quickstart.cpp
/// Smallest complete tour of the public API: generate a random graph,
/// edge-color it with Algorithm 1 (MaDEC), validate the result with the
/// independent checker, and print what the run cost.
///
///   $ ./quickstart [n] [avg-degree] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace dima;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const double avgDegree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  // 1. Build a workload graph. All generators consume an explicit RNG so
  //    every run is reproducible from the seed.
  support::Rng rng(seed);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDegree, rng);
  std::printf("graph: n=%zu m=%zu max-degree=%zu avg-degree=%.2f\n",
              g.numVertices(), g.numEdges(), g.maxDegree(),
              g.averageDegree());

  // 2. Run the distributed coloring. Every graph vertex becomes a compute
  //    node in a simulated synchronous message-passing network.
  coloring::MadecOptions options;
  options.seed = seed;
  const coloring::EdgeColoringResult result =
      coloring::colorEdgesMadec(g, options);

  // 3. Validate with the independent checker (never trust the algorithm's
  //    own bookkeeping).
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.colors);
  if (!verdict.valid) {
    std::printf("INVALID coloring: %s\n", verdict.reason.c_str());
    return 1;
  }

  // 4. Report what the paper's evaluation reports: colors vs Δ, rounds vs Δ.
  std::printf("coloring: %zu colors (Delta=%zu, Vizing bound %zu..%zu, "
              "worst-case guarantee %zu)\n",
              result.colorsUsed(), g.maxDegree(), g.maxDegree(),
              g.maxDegree() + 1, 2 * g.maxDegree() - 1);
  std::printf("cost: %llu computation rounds (%.2f per unit of Delta), "
              "%llu communication rounds, %llu broadcasts\n",
              static_cast<unsigned long long>(
                  result.metrics.computationRounds),
              static_cast<double>(result.metrics.computationRounds) /
                  static_cast<double>(g.maxDegree()),
              static_cast<unsigned long long>(result.metrics.commRounds),
              static_cast<unsigned long long>(result.metrics.broadcasts));

  // 5. Show a few colored edges.
  std::printf("sample assignment:");
  for (graph::EdgeId e = 0; e < g.numEdges() && e < 8; ++e) {
    std::printf(" (%u,%u)=c%d", g.edge(e).u, g.edge(e).v, result.colors[e]);
  }
  std::printf("%s\n", g.numEdges() > 8 ? " ..." : "");
  std::printf("ok\n");
  return 0;
}
