/// \file sensor_tdma.cpp
/// Link scheduling in a sensor network, after Gandham et al. (the paper's
/// reference [4]): a proper *edge* coloring of the connectivity graph maps
/// directly to TDMA slots — edges of one color share no node, so all their
/// transmissions can fire in the same slot without a node having to talk
/// or listen twice.
///
/// The example colors a random sensor deployment with MaDEC, builds the
/// slot schedule, then *simulates one TDMA superframe* and checks the
/// scheduling invariant (each node active at most once per slot). It also
/// contrasts the frame length against the Δ lower bound and against the
/// deterministic tree-based coloring on the network's spanning forest.
///
///   $ ./sensor_tdma [n] [avg-degree] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/baselines/tree_coloring.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/builder.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace dima;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const double avgDegree = argc > 2 ? std::strtod(argv[2], nullptr) : 5.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  support::Rng rng(seed);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDegree, rng);
  std::printf("sensor network: %zu nodes, %zu links, max degree %zu\n",
              g.numVertices(), g.numEdges(), g.maxDegree());

  // Distributed slot assignment.
  coloring::MadecOptions options;
  options.seed = seed;
  const coloring::EdgeColoringResult schedule =
      coloring::colorEdgesMadec(g, options);
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, schedule.colors);
  if (!schedule.metrics.converged || !verdict.valid) {
    std::printf("scheduling failed: %s\n", verdict.reason.c_str());
    return 1;
  }
  const std::size_t frameLength = schedule.colorsUsed();
  std::printf("TDMA frame: %zu slots (lower bound Delta=%zu), negotiated "
              "in %llu rounds\n",
              frameLength, g.maxDegree(),
              static_cast<unsigned long long>(
                  schedule.metrics.computationRounds));

  // Simulate one superframe: in slot s every link colored s transmits.
  // Invariant: no node participates in two transmissions within a slot.
  std::size_t transmissions = 0;
  coloring::Color maxColor = 0;
  for (coloring::Color c : schedule.colors) maxColor = std::max(maxColor, c);
  for (coloring::Color slot = 0; slot <= maxColor; ++slot) {
    std::vector<bool> busy(g.numVertices(), false);
    std::size_t active = 0;
    for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
      if (schedule.colors[e] != slot) continue;
      const graph::Edge& link = g.edge(e);
      if (busy[link.u] || busy[link.v]) {
        std::printf("slot %d: node collision on link (%u,%u)!\n", slot,
                    link.u, link.v);
        return 1;
      }
      busy[link.u] = busy[link.v] = true;
      ++active;
      ++transmissions;
    }
    if (slot < 6) {
      std::printf("  slot %d: %zu simultaneous transmissions\n", slot,
                  active);
    } else if (slot == 6) {
      std::printf("  ...\n");
    }
  }
  std::printf("superframe complete: all %zu links served in %zu slots, "
              "no collisions\n",
              transmissions, frameLength);

  // Comparator from the paper's related work: the deterministic tree
  // algorithm only handles acyclic topologies, so run it on a spanning
  // forest (the data-gathering tree a sensor deployment actually routes
  // on) and compare.
  graph::GraphBuilder forestBuilder(g.numVertices());
  {
    std::vector<bool> seen(g.numVertices(), false);
    for (graph::VertexId root = 0; root < g.numVertices(); ++root) {
      if (seen[root]) continue;
      seen[root] = true;
      std::vector<graph::VertexId> stack{root};
      while (!stack.empty()) {
        const graph::VertexId v = stack.back();
        stack.pop_back();
        for (const graph::Incidence& inc : g.incidences(v)) {
          if (!seen[inc.neighbor]) {
            seen[inc.neighbor] = true;
            forestBuilder.addEdge(v, inc.neighbor);
            stack.push_back(inc.neighbor);
          }
        }
      }
    }
  }
  const graph::Graph forest = forestBuilder.build();
  const baselines::TreeColoringResult treeSchedule =
      baselines::treeEdgeColoring(forest);
  std::printf("data-gathering forest (%zu links): deterministic tree "
              "coloring uses %zu slots (Gandham-style bound Delta+1=%zu)\n",
              forest.numEdges(), treeSchedule.colorsUsed,
              forest.maxDegree() + 1);
  std::printf("ok\n");
  return 0;
}
