/// \file async_network.cpp
/// What does the paper's synchronous model really cost? This example runs
/// Algorithm 1 twice on the same graph and seed — once on the lockstep
/// simulator, once on an event-driven *asynchronous* network through the
/// α-synchronizer — verifies the two colorings are identical, and prints
/// the price: messages (payload + ack + safe vs radio broadcasts) and
/// simulated time under random link delays.
///
///   $ ./async_network [n] [avg-degree] [seed]

#include <cstdio>
#include <cstdlib>

#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace dima;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const double avgDegree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  support::Rng rng(seed);
  const graph::Graph g = graph::erdosRenyiAvgDegree(n, avgDegree, rng);
  std::printf("graph: n=%zu m=%zu Delta=%zu\n", g.numVertices(),
              g.numEdges(), g.maxDegree());

  coloring::MadecOptions options;
  options.seed = seed;

  const coloring::EdgeColoringResult sync = colorEdgesMadec(g, options);
  std::printf("\nsynchronous model (paper Sec. I-C):\n");
  std::printf("  %llu computation rounds, %llu radio broadcasts\n",
              static_cast<unsigned long long>(
                  sync.metrics.computationRounds),
              static_cast<unsigned long long>(sync.metrics.broadcasts));

  net::AsyncRunResult stats;
  net::DelayModel delays;  // uniform [0.5, 1.5] per link message
  delays.seed = seed;
  const coloring::EdgeColoringResult async =
      colorEdgesMadecAsync(g, options, delays, &stats);
  std::printf("\nasynchronous network + alpha-synchronizer:\n");
  std::printf("  payload %llu + ack %llu + safe %llu = %llu messages\n",
              static_cast<unsigned long long>(stats.payloadMessages),
              static_cast<unsigned long long>(stats.ackMessages),
              static_cast<unsigned long long>(stats.safeMessages),
              static_cast<unsigned long long>(stats.totalMessages()));
  std::printf("  simulated time %.1f delay units (%.2f per communication "
              "round)\n",
              stats.simTime,
              stats.simTime / static_cast<double>(stats.pulses));

  if (sync.colors != async.colors) {
    std::printf("\nERROR: colorings diverged!\n");
    return 1;
  }
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, async.colors);
  if (!verdict.valid) {
    std::printf("\nERROR: %s\n", verdict.reason.c_str());
    return 1;
  }
  std::printf("\ncolorings are identical and valid (%zu colors); the "
              "synchrony + radio assumptions are worth a factor of %.1fx "
              "in messages here.\n",
              sync.colorsUsed(),
              static_cast<double>(stats.totalMessages()) /
                  static_cast<double>(sync.metrics.broadcasts));
  return 0;
}
