#include "src/graph/partition.hpp"

#include <algorithm>
#include <numeric>

#include "src/support/assert.hpp"

namespace dima::graph {

bool parsePartitionKind(std::string_view text, PartitionKind* out) {
  if (text == "block") {
    *out = PartitionKind::Block;
    return true;
  }
  if (text == "degree") {
    *out = PartitionKind::DegreeBalanced;
    return true;
  }
  return false;
}

const char* partitionKindName(PartitionKind kind) {
  return kind == PartitionKind::Block ? "block" : "degree";
}

namespace {

Partition emptyPartition(std::size_t n, std::uint32_t shards) {
  DIMA_REQUIRE(shards >= 1, "partition needs at least one shard");
  Partition p;
  p.count = shards;
  p.shardOf.assign(n, 0);
  p.members.resize(shards);
  return p;
}

}  // namespace

Partition makeBlockPartition(std::size_t numVertices, std::uint32_t shards) {
  Partition p = emptyPartition(numVertices, shards);
  // First (n mod K) shards take one extra vertex, so sizes differ by ≤ 1
  // and the ranges are a pure function of (n, K).
  const std::size_t base = numVertices / shards;
  const std::size_t extra = numVertices % shards;
  std::size_t v = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    p.members[s].reserve(size);
    for (std::size_t i = 0; i < size; ++i, ++v) {
      p.shardOf[v] = s;
      p.members[s].push_back(static_cast<VertexId>(v));
    }
  }
  return p;
}

Partition makeDegreeBalancedPartition(std::span<const std::uint32_t> degrees,
                                      std::uint32_t shards) {
  const std::size_t n = degrees.size();
  Partition p = emptyPartition(n, shards);
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degrees[a] > degrees[b];  // descending degree, ties by id
  });
  std::vector<std::uint64_t> load(shards, 0);
  for (const VertexId v : order) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < shards; ++s) {
      if (load[s] < load[best]) best = s;  // ties stay at the lowest shard
    }
    p.shardOf[v] = best;
    // Weight 1 + degree: pure degree would pile every isolated vertex onto
    // shard 0 once loads tie; the +1 spreads vertex count as a tiebreaker.
    load[best] += 1 + degrees[v];
    p.members[best].push_back(v);
  }
  for (auto& m : p.members) std::sort(m.begin(), m.end());
  return p;
}

}  // namespace dima::graph
