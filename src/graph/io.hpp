#pragma once

/// \file io.hpp
/// Plain-text graph exchange: whitespace edge lists (one `u v` pair per line,
/// `#` comments, optional leading `n <count>` header for isolated vertices)
/// and Graphviz DOT export with optional per-edge color classes for visual
/// inspection of colorings.

#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/digraph.hpp"
#include "src/graph/graph.hpp"

namespace dima::graph {

/// Serializes to the edge-list format.
std::string toEdgeList(const Graph& g);
/// Parses the edge-list format; throws contract failure on malformed input
/// via DIMA_REQUIRE.
Graph fromEdgeList(const std::string& text);

/// Writes/reads edge lists on disk. Returns false on I/O failure.
bool saveEdgeList(const Graph& g, const std::string& path);
/// Loads a graph; `ok` (when non-null) reports I/O failure instead of
/// contract failure.
Graph loadEdgeList(const std::string& path, bool* ok = nullptr);

/// Graphviz export. `edgeColorClasses` (optional, size m) assigns each edge a
/// palette index rendered as a distinct color; -1 leaves the edge black.
std::string toDot(const Graph& g,
                  const std::vector<int>& edgeColorClasses = {});

/// Graphviz export of a symmetric digraph with per-arc color classes
/// (optional, size 2m).
std::string toDot(const Digraph& d,
                  const std::vector<int>& arcColorClasses = {});

}  // namespace dima::graph
