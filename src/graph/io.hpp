#pragma once

/// \file io.hpp
/// Graph exchange formats.
///
///  * Whitespace edge lists (one `u v` pair per line, `#` comments,
///    optional leading `n <count>` header for isolated vertices) — the
///    repo's native text format, strict ids, contract-failure on garbage.
///  * SNAP edge lists (https://snap.stanford.edu/data/): `#` comments,
///    arbitrary 64-bit node ids compacted to dense ids in first-appearance
///    order, self-loops and duplicate/reverse edges tolerated (counted,
///    skipped). Malformed lines are *errors*, reported with line numbers —
///    real downloads feed this path, so no DIMA_REQUIRE aborts.
///  * DIMACS coloring instances: `c` comments, one `p edge <n> <m>`
///    header, `e <u> <v>` lines with 1-based ids. Same error discipline.
///  * Graphviz DOT export with optional per-edge color classes.
///
/// The SNAP/DIMACS parsers are the ingestion front of the mmap'd CSR cache
/// (graph/csr.hpp): parse once, then color off the binary image.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/digraph.hpp"
#include "src/graph/graph.hpp"

namespace dima::graph {

/// Serializes to the edge-list format.
std::string toEdgeList(const Graph& g);
/// Parses the edge-list format; throws contract failure on malformed input
/// via DIMA_REQUIRE.
Graph fromEdgeList(const std::string& text);

/// Writes/reads edge lists on disk. Returns false on I/O failure.
bool saveEdgeList(const Graph& g, const std::string& path);
/// Loads a graph; `ok` (when non-null) reports I/O failure instead of
/// contract failure.
Graph loadEdgeList(const std::string& path, bool* ok = nullptr);

/// Outcome of parsing an external (untrusted) graph file.
struct ParseReport {
  bool ok = false;
  std::string error;  ///< first malformed line, with its line number
  std::uint64_t selfLoopsSkipped = 0;
  std::uint64_t duplicatesSkipped = 0;
};

/// Parses a SNAP edge list from `text`. On failure returns an empty graph
/// and `report->ok == false` with the offending line in `report->error`.
Graph fromSnap(std::string_view text, ParseReport* report);
/// Parses a DIMACS coloring instance (`p edge n m` + `e u v` lines).
Graph fromDimacs(std::string_view text, ParseReport* report);

/// File wrappers; I/O failures land in `report->error` too.
Graph loadSnap(const std::string& path, ParseReport* report);
Graph loadDimacs(const std::string& path, ParseReport* report);

/// Input-format selector for the CLI and the CSR ingestion pipeline.
enum class GraphFormat : std::uint8_t { Auto, EdgeList, Snap, Dimacs, Csr };

/// Parses "auto" / "edgelist" / "snap" / "dimacs" / "csr".
bool parseGraphFormat(std::string_view text, GraphFormat* out);
const char* graphFormatName(GraphFormat format);

/// Resolves `Auto` for `path`: the `.csr` extension wins, then known
/// DIMACS extensions (`.col`, `.dimacs`, `.gr`), then a peek at the first
/// non-blank line — `c`/`p` lines mean DIMACS, an `n <count>` header means
/// the native edge list, anything else (including `#` comments) is treated
/// as SNAP, the most forgiving of the three. Non-`Auto` values pass
/// through unchanged.
GraphFormat detectGraphFormat(const std::string& path, GraphFormat requested);

/// Graphviz export. `edgeColorClasses` (optional, size m) assigns each edge a
/// palette index rendered as a distinct color; -1 leaves the edge black.
std::string toDot(const Graph& g,
                  const std::vector<int>& edgeColorClasses = {});

/// Graphviz export of a symmetric digraph with per-arc color classes
/// (optional, size 2m).
std::string toDot(const Digraph& d,
                  const std::vector<int>& arcColorClasses = {});

}  // namespace dima::graph
