#include "src/graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace dima::graph {

DegreeStats degreeStats(const Graph& g) {
  DegreeStats s;
  const std::size_t n = g.numVertices();
  if (n == 0) return s;
  s.min = g.degree(0);
  double sum = 0.0, sumSq = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += static_cast<double>(d);
    sumSq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean = sum / static_cast<double>(n);
  const double var = sumSq / static_cast<double>(n) - s.mean * s.mean;
  s.stddev = var > 0 ? std::sqrt(var) : 0.0;
  return s;
}

std::vector<std::size_t> degreeHistogram(const Graph& g) {
  std::vector<std::size_t> hist(g.maxDegree() + 1, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) ++hist[g.degree(v)];
  return hist;
}

Components connectedComponents(const Graph& g) {
  const std::size_t n = g.numVertices();
  Components out;
  out.label.assign(n, kUnreachable);
  std::queue<VertexId> frontier;
  for (VertexId start = 0; start < n; ++start) {
    if (out.label[start] != kUnreachable) continue;
    const auto comp = static_cast<std::uint32_t>(out.count++);
    out.label[start] = comp;
    frontier.push(start);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      for (const Incidence& inc : g.incidences(v)) {
        if (out.label[inc.neighbor] == kUnreachable) {
          out.label[inc.neighbor] = comp;
          frontier.push(inc.neighbor);
        }
      }
    }
  }
  return out;
}

bool isConnected(const Graph& g) {
  if (g.numVertices() <= 1) return true;
  return connectedComponents(g).count == 1;
}

bool isForest(const Graph& g) {
  const Components comp = connectedComponents(g);
  // A forest has exactly n - (#components) edges.
  return g.numEdges() + comp.count == g.numVertices();
}

std::vector<std::uint32_t> bfsDistances(const Graph& g, VertexId source) {
  DIMA_REQUIRE(source < g.numVertices(), "bfs source out of range");
  std::vector<std::uint32_t> dist(g.numVertices(), kUnreachable);
  std::queue<VertexId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const Incidence& inc : g.incidences(v)) {
      if (dist[inc.neighbor] == kUnreachable) {
        dist[inc.neighbor] = dist[v] + 1;
        frontier.push(inc.neighbor);
      }
    }
  }
  return dist;
}

std::size_t diameter(const Graph& g) {
  if (g.numVertices() < 2) return 0;
  DIMA_REQUIRE(isConnected(g), "diameter of a disconnected graph");
  std::size_t best = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    for (std::uint32_t d : bfsDistances(g, v)) {
      best = std::max(best, static_cast<std::size_t>(d));
    }
  }
  return best;
}

double clusteringCoefficient(const Graph& g) {
  std::uint64_t closed = 0;  // ordered triangle corners (3 per triangle × 2)
  std::uint64_t triads = 0;  // ordered open/closed two-paths
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const auto inc = g.incidences(v);
    const std::size_t d = inc.size();
    if (d < 2) continue;
    triads += static_cast<std::uint64_t>(d) * (d - 1);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (g.hasEdge(inc[i].neighbor, inc[j].neighbor)) closed += 2;
      }
    }
  }
  if (triads == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(triads);
}

std::size_t strongColoringLowerBound(const Graph& g) {
  std::size_t best = 0;
  for (const Edge& e : g.edges()) {
    best = std::max(best, 2 * (g.degree(e.u) + g.degree(e.v) - 1));
  }
  return best;
}

}  // namespace dima::graph
