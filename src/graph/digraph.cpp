#include "src/graph/digraph.hpp"

namespace dima::graph {

Digraph::Digraph(Graph g) : graph_(std::move(g)) {
  const std::size_t n = graph_.numVertices();
  offsets_.assign(n + 1, 0);
  outArcs_.resize(graph_.numEdges() * 2);
  std::size_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v] = cursor;
    for (const Incidence& inc : graph_.incidences(v)) {
      const Edge& e = graph_.edge(inc.edge);
      // Arc 2e runs from the lower endpoint; v may be either endpoint.
      outArcs_[cursor++] = (v == e.u) ? arcOfEdgeForward(inc.edge)
                                      : arcOfEdgeBackward(inc.edge);
    }
  }
  offsets_[n] = cursor;
}

Arc Digraph::arc(ArcId a) const {
  DIMA_REQUIRE(a < numArcs(), "arc id " << a << " out of range");
  const EdgeId e = a / 2;
  const Edge& edge = graph_.edge(e);
  if ((a & 1U) == 0) return Arc{edge.u, edge.v, e};
  return Arc{edge.v, edge.u, e};
}

ArcId Digraph::findArc(VertexId a, VertexId b) const {
  const EdgeId e = graph_.findEdge(a, b);
  if (e == kNoEdge) return kNoArc;
  const Edge& edge = graph_.edge(e);
  return (a == edge.u) ? arcOfEdgeForward(e) : arcOfEdgeBackward(e);
}

std::span<const ArcId> Digraph::outArcs(VertexId v) const {
  DIMA_REQUIRE(v < numVertices(), "vertex id " << v << " out of range");
  return {outArcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

}  // namespace dima::graph
