#pragma once

/// \file generators.hpp
/// Random and structured graph generators.
///
/// The paper's evaluation (§IV) uses three random families produced with
/// igraph: Erdős–Rényi, scale-free (preferential attachment with adjustable
/// weighting — igraph's `power` parameter), and Watts–Strogatz small-world
/// graphs. We implement those plus the structured families used by the test
/// suite (worst cases, trees for the Gandham baseline, unit-disk graphs for
/// the channel-assignment example).
///
/// Every generator takes the caller's `Rng` so experiment workloads are
/// reproducible from a master seed.

#include <cstddef>
#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace dima::graph {

using support::Rng;

/// G(n, m): exactly `m` distinct edges chosen uniformly from all non-loop
/// pairs. Precondition: m <= n(n-1)/2.
Graph erdosRenyiGnm(std::size_t n, std::size_t m, Rng& rng);

/// G(n, m) parameterized the way the paper reports it: an average degree d,
/// i.e. m = round(n*d/2).
Graph erdosRenyiAvgDegree(std::size_t n, double avgDegree, Rng& rng);

/// G(n, p): each pair independently with probability p (geometric skipping,
/// O(n + m) expected).
Graph erdosRenyiGnp(std::size_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: nodes arrive one at a time and
/// connect `m` edges to existing nodes chosen with probability proportional
/// to degree^power + 1. `power = 1` is classic BA; larger powers concentrate
/// edges on hubs ("increasingly disparate graphs", §IV-B). Precondition:
/// 1 <= m < n.
Graph barabasiAlbert(std::size_t n, std::size_t m, double power, Rng& rng);

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its k/2 nearest neighbors on each side, then every lattice edge is
/// rewired with probability beta. Preconditions: k even, 0 < k < n,
/// beta in [0,1].
Graph wattsStrogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// K_n.
Graph complete(std::size_t n);
/// Cycle C_n (n >= 3).
Graph cycle(std::size_t n);
/// Path P_n.
Graph path(std::size_t n);
/// Star with one hub and n-1 leaves (n >= 1); Δ = n-1, the greedy worst case.
Graph star(std::size_t n);
/// rows × cols grid.
Graph grid(std::size_t rows, std::size_t cols);
/// Uniform random recursive tree: node i attaches to a uniform earlier node.
Graph randomTree(std::size_t n, Rng& rng);
/// Random d-regular graph via the pairing model (retries until simple).
/// Preconditions: n*d even, d < n.
Graph randomRegular(std::size_t n, std::size_t d, Rng& rng);
/// Random bipartite graph: sides of size a and b, each cross pair with
/// probability p.
Graph randomBipartite(std::size_t a, std::size_t b, double p, Rng& rng);

/// A unit-disk ("ad-hoc radio") graph: n nodes uniform in the unit square,
/// edges between pairs within `radius`. Returns positions for rendering and
/// interference checks in the channel-assignment example.
struct GeometricGraph {
  Graph graph{0};
  std::vector<std::pair<double, double>> positions;
};
GeometricGraph randomGeometric(std::size_t n, double radius, Rng& rng);

}  // namespace dima::graph
