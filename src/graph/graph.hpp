#pragma once

/// \file graph.hpp
/// Immutable undirected simple graph with stable vertex/edge identifiers and
/// CSR adjacency.
///
/// The algorithms address *edges* (colors are per-edge) and iterate a
/// vertex's incident edges constantly, so the adjacency stores
/// (neighbor, edge-id) pairs. Vertices are dense `0..n-1`; edge ids are dense
/// `0..m-1` in construction order with canonical endpoints `u() <= v()`.
///
/// Graphs are value types: cheap to move, deep-copied on copy, immutable
/// after construction (use `GraphBuilder` to assemble).

#include <cstdint>
#include <span>
#include <vector>

#include "src/support/assert.hpp"

namespace dima::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Sentinel for "no vertex/edge".
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// An undirected edge with canonical endpoint order (u <= v).
struct Edge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;

  friend bool operator==(const Edge&, const Edge&) = default;

  /// The endpoint that is not `x`. Precondition: `x` is an endpoint.
  VertexId other(VertexId x) const {
    DIMA_ASSERT(x == u || x == v, "vertex " << x << " not on edge");
    return x == u ? v : u;
  }
};

/// One adjacency entry: the neighbor reached and the id of the edge used.
struct Incidence {
  VertexId neighbor = kNoVertex;
  EdgeId edge = kNoEdge;

  friend bool operator==(const Incidence&, const Incidence&) = default;
};

class Graph {
 public:
  /// Empty graph with `n` isolated vertices.
  explicit Graph(std::size_t n = 0);

  /// Builds from an edge list. Endpoints must be < n; the list must contain
  /// no self-loops or duplicates (GraphBuilder enforces this and is the
  /// recommended front door).
  Graph(std::size_t n, std::vector<Edge> edges);

  std::size_t numVertices() const { return offsets_.size() - 1; }
  std::size_t numEdges() const { return edges_.size(); }

  /// Degree of `v`.
  std::size_t degree(VertexId v) const {
    checkVertex(v);
    return offsets_[v + 1] - offsets_[v];
  }

  /// Maximum degree Δ (0 for an empty graph).
  std::size_t maxDegree() const { return maxDegree_; }

  /// Average degree 2m/n (0 for an empty graph).
  double averageDegree() const;

  /// Incident (neighbor, edge) pairs of `v`, neighbor-sorted.
  std::span<const Incidence> incidences(VertexId v) const {
    checkVertex(v);
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Endpoints of edge `e`.
  const Edge& edge(EdgeId e) const {
    DIMA_REQUIRE(e < edges_.size(), "edge id " << e << " out of range");
    return edges_[e];
  }

  /// All edges, id order.
  std::span<const Edge> edges() const { return edges_; }

  /// True when `a` and `b` are adjacent (binary search, O(log deg)).
  bool hasEdge(VertexId a, VertexId b) const;

  /// Edge id joining `a` and `b`, or kNoEdge.
  EdgeId findEdge(VertexId a, VertexId b) const;

  friend bool operator==(const Graph& x, const Graph& y) {
    return x.edges_ == y.edges_ && x.numVertices() == y.numVertices();
  }

 private:
  void checkVertex(VertexId v) const {
    DIMA_REQUIRE(v + 1 < offsets_.size(), "vertex id " << v << " out of range");
  }

  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;    // n+1 entries
  std::vector<Incidence> adjacency_;    // 2m entries, neighbor-sorted per vertex
  std::size_t maxDegree_ = 0;
};

}  // namespace dima::graph
