#include "src/graph/builder.hpp"

namespace dima::graph {

bool GraphBuilder::addEdge(VertexId a, VertexId b) {
  if (a == b) return false;
  ensureVertex(a);
  ensureVertex(b);
  if (!seen_.insert(key(a, b)).second) return false;
  edges_.push_back(a < b ? Edge{a, b} : Edge{b, a});
  return true;
}

bool GraphBuilder::hasEdge(VertexId a, VertexId b) const {
  return seen_.contains(key(a, b));
}

Graph GraphBuilder::build() {
  Graph g(n_, std::move(edges_));
  edges_.clear();
  seen_.clear();
  n_ = 0;
  return g;
}

}  // namespace dima::graph
