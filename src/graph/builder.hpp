#pragma once

/// \file builder.hpp
/// Mutable assembly front-end for `Graph`. Deduplicates edges, rejects
/// self-loops, and can grow the vertex range on demand — the generators and
/// file readers all funnel through it.

#include <unordered_set>
#include <vector>

#include "src/graph/graph.hpp"

namespace dima::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n = 0) : n_(n) {}

  std::size_t numVertices() const { return n_; }
  std::size_t numEdges() const { return edges_.size(); }

  /// Ensures the vertex range covers `v`.
  void ensureVertex(VertexId v) {
    if (v >= n_) n_ = static_cast<std::size_t>(v) + 1;
  }

  /// Adds the undirected edge {a,b} if absent. Returns true when inserted.
  /// Self-loops are rejected with `false`.
  bool addEdge(VertexId a, VertexId b);

  /// True when {a,b} was already added.
  bool hasEdge(VertexId a, VertexId b) const;

  /// Finalizes into an immutable Graph; the builder is left empty.
  Graph build();

 private:
  static std::uint64_t key(VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::size_t n_;
  std::vector<Edge> edges_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace dima::graph
