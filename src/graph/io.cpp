#include "src/graph/io.hpp"

#include <fstream>
#include <sstream>

#include "src/graph/builder.hpp"

namespace dima::graph {

namespace {

/// A small qualitative palette for DOT rendering; indices wrap around.
const char* dotColor(int cls) {
  static const char* kPalette[] = {
      "red",     "blue",   "green3",  "orange",  "purple", "brown",
      "cyan3",   "magenta", "gold3",  "gray40",  "pink3",  "olive",
      "navy",    "teal",   "crimson", "indigo"};
  if (cls < 0) return "black";
  return kPalette[static_cast<std::size_t>(cls) % (sizeof(kPalette) /
                                                   sizeof(kPalette[0]))];
}

}  // namespace

std::string toEdgeList(const Graph& g) {
  std::ostringstream oss;
  oss << "# dimacol edge list\n";
  oss << "n " << g.numVertices() << '\n';
  for (const Edge& e : g.edges()) oss << e.u << ' ' << e.v << '\n';
  return oss.str();
}

Graph fromEdgeList(const std::string& text) {
  std::istringstream iss(text);
  GraphBuilder b;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(iss, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank/comment line
    if (first == "n") {
      std::size_t n = 0;
      DIMA_REQUIRE(static_cast<bool>(ls >> n),
                   "edge list line " << lineNo << ": malformed 'n' header");
      if (n > 0) b.ensureVertex(static_cast<VertexId>(n - 1));
      continue;
    }
    std::uint64_t u = 0, v = 0;
    std::istringstream cell(first);
    DIMA_REQUIRE(static_cast<bool>(cell >> u) && static_cast<bool>(ls >> v),
                 "edge list line " << lineNo << ": expected 'u v'");
    DIMA_REQUIRE(u != v, "edge list line " << lineNo << ": self-loop");
    b.addEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return b.build();
}

bool saveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << toEdgeList(g);
  return static_cast<bool>(out);
}

Graph loadEdgeList(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (ok) *ok = false;
    return Graph(0);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  if (ok) *ok = true;
  return fromEdgeList(oss.str());
}

std::string toDot(const Graph& g, const std::vector<int>& edgeColorClasses) {
  DIMA_REQUIRE(edgeColorClasses.empty() ||
                   edgeColorClasses.size() == g.numEdges(),
               "edge color vector size mismatch");
  std::ostringstream oss;
  oss << "graph dimacol {\n  node [shape=circle];\n";
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    oss << "  " << v << ";\n";
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& edge = g.edge(e);
    oss << "  " << edge.u << " -- " << edge.v;
    if (!edgeColorClasses.empty()) {
      oss << " [color=" << dotColor(edgeColorClasses[e]) << ", label=\""
          << edgeColorClasses[e] << "\"]";
    }
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string toDot(const Digraph& d, const std::vector<int>& arcColorClasses) {
  DIMA_REQUIRE(arcColorClasses.empty() ||
                   arcColorClasses.size() == d.numArcs(),
               "arc color vector size mismatch");
  std::ostringstream oss;
  oss << "digraph dimacol {\n  node [shape=circle];\n";
  for (VertexId v = 0; v < d.numVertices(); ++v) {
    oss << "  " << v << ";\n";
  }
  for (ArcId a = 0; a < d.numArcs(); ++a) {
    const Arc arc = d.arc(a);
    oss << "  " << arc.from << " -> " << arc.to;
    if (!arcColorClasses.empty()) {
      oss << " [color=" << dotColor(arcColorClasses[a]) << ", label=\""
          << arcColorClasses[a] << "\"]";
    }
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace dima::graph
