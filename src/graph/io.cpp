#include "src/graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/graph/builder.hpp"

namespace dima::graph {

namespace {

/// A small qualitative palette for DOT rendering; indices wrap around.
const char* dotColor(int cls) {
  static const char* kPalette[] = {
      "red",     "blue",   "green3",  "orange",  "purple", "brown",
      "cyan3",   "magenta", "gold3",  "gray40",  "pink3",  "olive",
      "navy",    "teal",   "crimson", "indigo"};
  if (cls < 0) return "black";
  return kPalette[static_cast<std::size_t>(cls) % (sizeof(kPalette) /
                                                   sizeof(kPalette[0]))];
}

/// Pulls the next line off `rest` (without the terminator, tolerating
/// CRLF); returns false at end of input.
bool nextLine(std::string_view* rest, std::string_view* line) {
  if (rest->empty()) return false;
  const std::size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    *line = *rest;
    rest->remove_prefix(rest->size());
  } else {
    *line = rest->substr(0, nl);
    rest->remove_prefix(nl + 1);
  }
  if (!line->empty() && line->back() == '\r') line->remove_suffix(1);
  return true;
}

bool isSpace(char c) { return c == ' ' || c == '\t' || c == '\v' || c == '\f'; }

std::string_view trimLeft(std::string_view s) {
  while (!s.empty() && isSpace(s.front())) s.remove_prefix(1);
  return s;
}

/// Pulls the next whitespace-delimited token; empty result = line done.
std::string_view nextToken(std::string_view* rest) {
  *rest = trimLeft(*rest);
  std::size_t end = 0;
  while (end < rest->size() && !isSpace((*rest)[end])) ++end;
  const std::string_view tok = rest->substr(0, end);
  rest->remove_prefix(end);
  return tok;
}

/// Strict decimal u64 parse: the whole token, no signs, no overflow.
bool parseU64(std::string_view tok, std::uint64_t* out) {
  if (tok.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

std::string lineError(const char* format, std::size_t lineNo,
                      const std::string& detail) {
  std::ostringstream oss;
  oss << format << " line " << lineNo << ": " << detail;
  return oss.str();
}

Graph failParse(ParseReport* report, ParseReport rep, std::string why) {
  rep.ok = false;
  rep.error = std::move(why);
  if (report != nullptr) *report = std::move(rep);
  return Graph(0);
}

Graph loadTextAs(const std::string& path, ParseReport* report,
                 Graph (*parse)(std::string_view, ParseReport*)) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return failParse(report, {}, "cannot read '" + path + "'");
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  const std::string text = oss.str();
  return parse(text, report);
}

}  // namespace

Graph fromSnap(std::string_view text, ParseReport* report) {
  ParseReport rep;
  GraphBuilder b;
  // SNAP ids are arbitrary u64s (often sparse); compact them to dense ids
  // in first-appearance order — deterministic, and exactly the order a
  // streaming ingester would assign.
  std::unordered_map<std::uint64_t, VertexId> dense;
  const auto denseId = [&](std::uint64_t raw) {
    return dense.emplace(raw, static_cast<VertexId>(dense.size()))
        .first->second;
  };
  std::string_view rest = text;
  std::string_view line;
  std::size_t lineNo = 0;
  while (nextLine(&rest, &line)) {
    ++lineNo;
    std::string_view cursor = trimLeft(line);
    if (cursor.empty() || cursor.front() == '#') continue;
    const std::string_view a = nextToken(&cursor);
    const std::string_view bTok = nextToken(&cursor);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!parseU64(a, &u) || !parseU64(bTok, &v)) {
      return failParse(report, std::move(rep),
                       lineError("snap", lineNo,
                                 "expected two node ids, got '" +
                                     std::string(line) + "'"));
    }
    if (!trimLeft(cursor).empty()) {
      return failParse(report, std::move(rep),
                       lineError("snap", lineNo,
                                 "trailing tokens after 'u v' in '" +
                                     std::string(line) + "'"));
    }
    if (dense.size() + 2 >= static_cast<std::uint64_t>(kNoVertex)) {
      return failParse(report, std::move(rep),
                       lineError("snap", lineNo, "too many distinct ids"));
    }
    const VertexId du = denseId(u);
    const VertexId dv = denseId(v);
    b.ensureVertex(du);
    b.ensureVertex(dv);
    if (du == dv) {
      ++rep.selfLoopsSkipped;
      continue;
    }
    if (!b.addEdge(du, dv)) ++rep.duplicatesSkipped;
  }
  rep.ok = true;
  if (report != nullptr) *report = std::move(rep);
  return b.build();
}

Graph fromDimacs(std::string_view text, ParseReport* report) {
  ParseReport rep;
  GraphBuilder b;
  bool haveProblem = false;
  std::uint64_t n = 0;
  std::string_view rest = text;
  std::string_view line;
  std::size_t lineNo = 0;
  while (nextLine(&rest, &line)) {
    ++lineNo;
    std::string_view cursor = trimLeft(line);
    if (cursor.empty()) continue;
    const std::string_view kind = nextToken(&cursor);
    if (kind == "c") continue;  // comment
    if (kind == "p") {
      if (haveProblem) {
        return failParse(report, std::move(rep),
                         lineError("dimacs", lineNo, "duplicate 'p' line"));
      }
      const std::string_view fmt = nextToken(&cursor);
      std::uint64_t m = 0;
      if ((fmt != "edge" && fmt != "col") ||
          !parseU64(nextToken(&cursor), &n) ||
          !parseU64(nextToken(&cursor), &m) || !trimLeft(cursor).empty()) {
        return failParse(
            report, std::move(rep),
            lineError("dimacs", lineNo,
                      "expected 'p edge <n> <m>', got '" + std::string(line) +
                          "'"));
      }
      if (n >= static_cast<std::uint64_t>(kNoVertex)) {
        return failParse(report, std::move(rep),
                         lineError("dimacs", lineNo, "vertex count too large"));
      }
      if (n > 0) b.ensureVertex(static_cast<VertexId>(n - 1));
      haveProblem = true;
      continue;
    }
    if (kind == "e") {
      if (!haveProblem) {
        return failParse(report, std::move(rep),
                         lineError("dimacs", lineNo,
                                   "'e' line before the 'p edge' header"));
      }
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!parseU64(nextToken(&cursor), &u) ||
          !parseU64(nextToken(&cursor), &v) || !trimLeft(cursor).empty()) {
        return failParse(report, std::move(rep),
                         lineError("dimacs", lineNo,
                                   "expected 'e <u> <v>', got '" +
                                       std::string(line) + "'"));
      }
      if (u < 1 || v < 1 || u > n || v > n) {
        return failParse(
            report, std::move(rep),
            lineError("dimacs", lineNo, "endpoint outside 1..n"));
      }
      if (u == v) {
        ++rep.selfLoopsSkipped;
        continue;
      }
      if (!b.addEdge(static_cast<VertexId>(u - 1),
                     static_cast<VertexId>(v - 1))) {
        ++rep.duplicatesSkipped;
      }
      continue;
    }
    return failParse(report, std::move(rep),
                     lineError("dimacs", lineNo,
                               "unknown line type '" + std::string(kind) +
                                   "'"));
  }
  if (!haveProblem) {
    return failParse(report, std::move(rep), "dimacs: missing 'p edge' line");
  }
  rep.ok = true;
  if (report != nullptr) *report = std::move(rep);
  return b.build();
}

Graph loadSnap(const std::string& path, ParseReport* report) {
  return loadTextAs(path, report, &fromSnap);
}

Graph loadDimacs(const std::string& path, ParseReport* report) {
  return loadTextAs(path, report, &fromDimacs);
}

bool parseGraphFormat(std::string_view text, GraphFormat* out) {
  if (text == "auto") *out = GraphFormat::Auto;
  else if (text == "edgelist") *out = GraphFormat::EdgeList;
  else if (text == "snap") *out = GraphFormat::Snap;
  else if (text == "dimacs") *out = GraphFormat::Dimacs;
  else if (text == "csr") *out = GraphFormat::Csr;
  else return false;
  return true;
}

const char* graphFormatName(GraphFormat format) {
  switch (format) {
    case GraphFormat::Auto: return "auto";
    case GraphFormat::EdgeList: return "edgelist";
    case GraphFormat::Snap: return "snap";
    case GraphFormat::Dimacs: return "dimacs";
    case GraphFormat::Csr: return "csr";
  }
  return "auto";
}

GraphFormat detectGraphFormat(const std::string& path, GraphFormat requested) {
  if (requested != GraphFormat::Auto) return requested;
  std::string ext;
  const std::size_t dot = path.rfind('.');
  if (dot != std::string::npos) {
    ext = path.substr(dot + 1);
    std::transform(ext.begin(), ext.end(), ext.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
  }
  if (ext == "csr") return GraphFormat::Csr;
  if (ext == "col" || ext == "dimacs" || ext == "gr") return GraphFormat::Dimacs;
  // Sniff the head: the CSR magic, then the first non-blank, non-'#' line.
  std::ifstream in(path, std::ios::binary);
  if (!in) return GraphFormat::Snap;  // the loader will report the error
  char head[4096];
  in.read(head, sizeof(head));
  const std::string_view text(head, static_cast<std::size_t>(in.gcount()));
  if (text.size() >= 8 && text.substr(0, 8) == std::string_view("DIMACSR1")) {
    return GraphFormat::Csr;
  }
  std::string_view rest = text;
  std::string_view line;
  while (nextLine(&rest, &line)) {
    std::string_view cursor = trimLeft(line);
    if (cursor.empty() || cursor.front() == '#') continue;
    const std::string_view tok = nextToken(&cursor);
    if (tok == "c" || tok == "p") return GraphFormat::Dimacs;
    if (tok == "n") return GraphFormat::EdgeList;
    break;
  }
  return GraphFormat::Snap;
}

std::string toEdgeList(const Graph& g) {
  std::ostringstream oss;
  oss << "# dimacol edge list\n";
  oss << "n " << g.numVertices() << '\n';
  for (const Edge& e : g.edges()) oss << e.u << ' ' << e.v << '\n';
  return oss.str();
}

Graph fromEdgeList(const std::string& text) {
  std::istringstream iss(text);
  GraphBuilder b;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(iss, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank/comment line
    if (first == "n") {
      std::size_t n = 0;
      DIMA_REQUIRE(static_cast<bool>(ls >> n),
                   "edge list line " << lineNo << ": malformed 'n' header");
      if (n > 0) b.ensureVertex(static_cast<VertexId>(n - 1));
      continue;
    }
    std::uint64_t u = 0, v = 0;
    std::istringstream cell(first);
    DIMA_REQUIRE(static_cast<bool>(cell >> u) && static_cast<bool>(ls >> v),
                 "edge list line " << lineNo << ": expected 'u v'");
    DIMA_REQUIRE(u != v, "edge list line " << lineNo << ": self-loop");
    b.addEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return b.build();
}

bool saveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << toEdgeList(g);
  return static_cast<bool>(out);
}

Graph loadEdgeList(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (ok) *ok = false;
    return Graph(0);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  if (ok) *ok = true;
  return fromEdgeList(oss.str());
}

std::string toDot(const Graph& g, const std::vector<int>& edgeColorClasses) {
  DIMA_REQUIRE(edgeColorClasses.empty() ||
                   edgeColorClasses.size() == g.numEdges(),
               "edge color vector size mismatch");
  std::ostringstream oss;
  oss << "graph dimacol {\n  node [shape=circle];\n";
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    oss << "  " << v << ";\n";
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& edge = g.edge(e);
    oss << "  " << edge.u << " -- " << edge.v;
    if (!edgeColorClasses.empty()) {
      oss << " [color=" << dotColor(edgeColorClasses[e]) << ", label=\""
          << edgeColorClasses[e] << "\"]";
    }
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

std::string toDot(const Digraph& d, const std::vector<int>& arcColorClasses) {
  DIMA_REQUIRE(arcColorClasses.empty() ||
                   arcColorClasses.size() == d.numArcs(),
               "arc color vector size mismatch");
  std::ostringstream oss;
  oss << "digraph dimacol {\n  node [shape=circle];\n";
  for (VertexId v = 0; v < d.numVertices(); ++v) {
    oss << "  " << v << ";\n";
  }
  for (ArcId a = 0; a < d.numArcs(); ++a) {
    const Arc arc = d.arc(a);
    oss << "  " << arc.from << " -> " << arc.to;
    if (!arcColorClasses.empty()) {
      oss << " [color=" << dotColor(arcColorClasses[a]) << ", label=\""
          << arcColorClasses[a] << "\"]";
    }
    oss << ";\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace dima::graph
