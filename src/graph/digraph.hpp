#pragma once

/// \file digraph.hpp
/// Symmetric digraph: the directed view the DiMa2Ed algorithm colors.
///
/// The paper's strong-coloring algorithm runs on "symmetric digraphs" — every
/// link of the (wireless) network is a pair of antiparallel arcs, each of
/// which receives its own color (a channel per transmission direction).
/// `Digraph` is therefore *derived from* an undirected `Graph`: undirected
/// edge `e = {a,b}` (with a < b) induces arcs `2e` (a→b) and `2e+1` (b→a),
/// so `reverse(arc) == arc ^ 1` and arc ids are dense `0..2m-1`.

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"

namespace dima::graph {

using ArcId = std::uint32_t;
inline constexpr ArcId kNoArc = static_cast<ArcId>(-1);

/// A directed arc with its underlying undirected edge.
struct Arc {
  VertexId from = kNoVertex;
  VertexId to = kNoVertex;
  EdgeId edge = kNoEdge;

  friend bool operator==(const Arc&, const Arc&) = default;
};

class Digraph {
 public:
  Digraph() = default;

  /// Symmetric closure of `g`. The graph is copied in (value semantics).
  explicit Digraph(Graph g);

  const Graph& underlying() const { return graph_; }

  std::size_t numVertices() const { return graph_.numVertices(); }
  std::size_t numArcs() const { return graph_.numEdges() * 2; }

  /// Arc endpoints by id.
  Arc arc(ArcId a) const;

  /// The antiparallel twin.
  static ArcId reverse(ArcId a) { return a ^ 1U; }

  /// Arc ids of the two directions of edge `e`: (lo→hi, hi→lo).
  static ArcId arcOfEdgeForward(EdgeId e) { return e * 2; }
  static ArcId arcOfEdgeBackward(EdgeId e) { return e * 2 + 1; }

  /// Arc id from `a` to `b`, or kNoArc when not adjacent.
  ArcId findArc(VertexId a, VertexId b) const;

  /// Out-degree == in-degree == undirected degree.
  std::size_t outDegree(VertexId v) const { return graph_.degree(v); }

  /// Arc ids leaving `v`, neighbor-sorted (parallel to
  /// `underlying().incidences(v)`).
  std::span<const ArcId> outArcs(VertexId v) const;

  /// In-arc of `v` paired with `outArcs(v)[i]` is `reverse(outArcs(v)[i])`.
  static ArcId inArcFor(ArcId outArc) { return reverse(outArc); }

 private:
  Graph graph_{0};
  std::vector<ArcId> outArcs_;          // 2m entries, CSR-shaped like adjacency
  std::vector<std::size_t> offsets_;    // n+1 entries
};

}  // namespace dima::graph
