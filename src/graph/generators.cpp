#include "src/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/graph/builder.hpp"

namespace dima::graph {

namespace {

std::size_t maxEdges(std::size_t n) { return n * (n - 1) / 2; }

}  // namespace

Graph erdosRenyiGnm(std::size_t n, std::size_t m, Rng& rng) {
  DIMA_REQUIRE(n >= 2 || m == 0, "G(n,m) needs n >= 2 for m > 0");
  DIMA_REQUIRE(m <= maxEdges(n),
               "G(n,m): m=" << m << " exceeds max " << maxEdges(n));
  GraphBuilder b(n);
  if (m > maxEdges(n) / 2) {
    // Dense regime: enumerate all pairs and take a random prefix.
    std::vector<Edge> pairs;
    pairs.reserve(maxEdges(n));
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) pairs.push_back(Edge{u, v});
    }
    rng.shuffle(pairs);
    for (std::size_t i = 0; i < m; ++i) b.addEdge(pairs[i].u, pairs[i].v);
  } else {
    // Sparse regime: rejection sampling against the dedup set.
    while (b.numEdges() < m) {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      b.addEdge(u, v);
    }
  }
  return b.build();
}

Graph erdosRenyiAvgDegree(std::size_t n, double avgDegree, Rng& rng) {
  DIMA_REQUIRE(avgDegree >= 0.0, "average degree must be non-negative");
  const auto m = static_cast<std::size_t>(
      std::llround(avgDegree * static_cast<double>(n) / 2.0));
  return erdosRenyiGnm(n, std::min(m, maxEdges(std::max<std::size_t>(n, 1))),
                       rng);
}

Graph erdosRenyiGnp(std::size_t n, double p, Rng& rng) {
  DIMA_REQUIRE(p >= 0.0 && p <= 1.0, "G(n,p) needs p in [0,1]");
  GraphBuilder b(n);
  if (p > 0.0) {
    if (p >= 1.0) {
      return complete(n);
    }
    // Geometric skipping over the lexicographic pair order (Batagelj–Brandes).
    const double logq = std::log1p(-p);
    std::int64_t v = 1;
    std::int64_t w = -1;
    const auto ni = static_cast<std::int64_t>(n);
    while (v < ni) {
      const double r = 1.0 - rng.uniform01();  // in (0,1]
      w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / logq));
      while (w >= v && v < ni) {
        w -= v;
        ++v;
      }
      if (v < ni) {
        b.addEdge(static_cast<VertexId>(w), static_cast<VertexId>(v));
      }
    }
  }
  return b.build();
}

Graph barabasiAlbert(std::size_t n, std::size_t m, double power, Rng& rng) {
  DIMA_REQUIRE(m >= 1 && m < n, "barabasiAlbert needs 1 <= m < n");
  DIMA_REQUIRE(power >= 0.0, "attachment power must be non-negative");
  GraphBuilder b(n);
  std::vector<double> weight(n, 0.0);
  std::vector<std::size_t> degree(n, 0);
  auto attach = [&](VertexId u, VertexId v) {
    if (b.addEdge(u, v)) {
      ++degree[u];
      ++degree[v];
    }
  };
  // Seed: a star over the first m+1 vertices so every seed vertex has
  // positive degree before preferential attachment begins.
  for (VertexId v = 1; v <= m; ++v) attach(0, v);

  for (VertexId newcomer = static_cast<VertexId>(m + 1); newcomer < n;
       ++newcomer) {
    // Weighted sampling without replacement among existing vertices.
    // Graphs in the evaluation have n <= 400, so the O(n) prefix scan per
    // draw is negligible; correctness and clarity win.
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < m && guard < 64 * m + 64) {
      ++guard;
      double total = 0.0;
      for (VertexId v = 0; v < newcomer; ++v) {
        weight[v] = b.hasEdge(newcomer, v)
                        ? 0.0
                        : std::pow(static_cast<double>(degree[v]), power) + 1.0;
        total += weight[v];
      }
      if (total <= 0.0) break;
      double pick = rng.uniform01() * total;
      VertexId chosen = newcomer - 1;
      for (VertexId v = 0; v < newcomer; ++v) {
        pick -= weight[v];
        if (pick <= 0.0) {
          chosen = v;
          break;
        }
      }
      if (b.addEdge(newcomer, chosen)) {
        ++degree[newcomer];
        ++degree[chosen];
        ++added;
      }
    }
  }
  return b.build();
}

Graph wattsStrogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  DIMA_REQUIRE(k % 2 == 0, "wattsStrogatz needs even k, got " << k);
  DIMA_REQUIRE(k > 0 && k < n, "wattsStrogatz needs 0 < k < n");
  DIMA_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be in [0,1]");
  GraphBuilder b(n);
  // Ring lattice.
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto v = static_cast<VertexId>((u + j) % n);
      b.addEdge(u, v);
    }
  }
  // Rewire pass. We regenerate the lattice edge list (u, u+j) in order, as in
  // the original model: each lattice edge keeps its source u and with
  // probability beta replaces its target with a uniform non-duplicate vertex.
  // A kept edge whose slot was stolen by an earlier rewiring is rewired too,
  // so the edge count is preserved exactly.
  GraphBuilder rewired(n);
  auto freshTarget = [&](VertexId u) -> VertexId {
    for (std::size_t guard = 0; guard < 16 * n; ++guard) {
      const auto w = static_cast<VertexId>(rng.index(n));
      if (w != u && !rewired.hasEdge(u, w)) return w;
    }
    // Dense fallback: deterministic scan for any remaining candidate.
    for (VertexId w = 0; w < n; ++w) {
      if (w != u && !rewired.hasEdge(u, w)) return w;
    }
    return kNoVertex;  // u is adjacent to everyone; drop the edge
  };
  for (std::size_t j = 1; j <= k / 2; ++j) {
    for (VertexId u = 0; u < n; ++u) {
      auto v = static_cast<VertexId>((u + j) % n);
      if (rng.bernoulli(beta) || rewired.hasEdge(u, v)) {
        v = freshTarget(u);
      }
      if (v != kNoVertex) rewired.addEdge(u, v);
    }
  }
  return rewired.build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.addEdge(u, v);
  }
  return b.build();
}

Graph cycle(std::size_t n) {
  DIMA_REQUIRE(n >= 3, "cycle needs n >= 3");
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u) {
    b.addEdge(u, static_cast<VertexId>((u + 1) % n));
  }
  return b.build();
}

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u + 1 < n; ++u) {
    b.addEdge(u, static_cast<VertexId>(u + 1));
  }
  return b.build();
}

Graph star(std::size_t n) {
  DIMA_REQUIRE(n >= 1, "star needs n >= 1");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.addEdge(0, v);
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.addEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.addEdge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph randomTree(std::size_t n, Rng& rng) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.addEdge(v, static_cast<VertexId>(rng.index(v)));
  }
  return b.build();
}

Graph randomRegular(std::size_t n, std::size_t d, Rng& rng) {
  DIMA_REQUIRE((n * d) % 2 == 0, "randomRegular needs n*d even");
  DIMA_REQUIRE(d < n, "randomRegular needs d < n");
  if (d == 0) return Graph(n);
  // Pairing (configuration) model with double-edge-swap repair: a full
  // restart on every collision needs e^{Θ(d²)} attempts, so instead bad
  // pairs (self-loops / duplicates) trade partners with random good pairs
  // until the multigraph is simple.
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<VertexId> stubs;
    stubs.reserve(n * d);
    for (VertexId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    // pairs[i] = (stubs[2i], stubs[2i+1]); repair in place.
    const std::size_t pairCount = stubs.size() / 2;
    auto key = [](VertexId a, VertexId b) {
      if (a > b) std::swap(a, b);
      return (static_cast<std::uint64_t>(a) << 32) | b;
    };
    std::unordered_map<std::uint64_t, std::size_t> multiplicity;
    auto isBad = [&](std::size_t i) {
      const VertexId a = stubs[2 * i], b = stubs[2 * i + 1];
      return a == b || multiplicity[key(a, b)] > 1;
    };
    for (std::size_t i = 0; i < pairCount; ++i) {
      if (stubs[2 * i] != stubs[2 * i + 1]) {
        ++multiplicity[key(stubs[2 * i], stubs[2 * i + 1])];
      }
    }
    bool repaired = true;
    std::size_t stalls = 0;
    const std::size_t stallLimit = 64 * n * d + 256;
    while (repaired) {
      std::size_t bad = pairCount;
      for (std::size_t i = 0; i < pairCount; ++i) {
        if (isBad(i)) {
          bad = i;
          break;
        }
      }
      if (bad == pairCount) break;  // simple graph achieved
      if (stalls++ > stallLimit) {
        repaired = false;
        break;
      }
      // Swap the bad pair's second stub with a random pair's second stub if
      // the result improves both slots.
      const std::size_t j = rng.index(pairCount);
      if (j == bad) continue;
      const VertexId a = stubs[2 * bad], b = stubs[2 * bad + 1];
      const VertexId c = stubs[2 * j], e = stubs[2 * j + 1];
      if (a == e || c == b) continue;
      const auto newAB = key(a, e);
      const auto newCD = key(c, b);
      if (multiplicity[newAB] > 0 || multiplicity[newCD] > 0 ||
          newAB == newCD) {
        continue;
      }
      if (a != b) --multiplicity[key(a, b)];
      if (c != e) --multiplicity[key(c, e)];
      std::swap(stubs[2 * bad + 1], stubs[2 * j + 1]);
      ++multiplicity[newAB];
      ++multiplicity[newCD];
    }
    if (!repaired) continue;  // restart with a fresh shuffle
    GraphBuilder b(n);
    bool ok = true;
    for (std::size_t i = 0; i < pairCount && ok; ++i) {
      ok = b.addEdge(stubs[2 * i], stubs[2 * i + 1]);
    }
    if (ok) return b.build();
  }
  DIMA_REQUIRE(false, "randomRegular(" << n << "," << d
                                       << ") failed to converge");
  return Graph(0);  // unreachable
}

Graph randomBipartite(std::size_t a, std::size_t b, double p, Rng& rng) {
  DIMA_REQUIRE(p >= 0.0 && p <= 1.0, "randomBipartite needs p in [0,1]");
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (std::size_t j = 0; j < b; ++j) {
      if (rng.bernoulli(p)) {
        builder.addEdge(u, static_cast<VertexId>(a + j));
      }
    }
  }
  return builder.build();
}

GeometricGraph randomGeometric(std::size_t n, double radius, Rng& rng) {
  DIMA_REQUIRE(radius >= 0.0, "radius must be non-negative");
  GeometricGraph out;
  out.positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.positions.emplace_back(rng.uniform01(), rng.uniform01());
  }
  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double dx = out.positions[u].first - out.positions[v].first;
      const double dy = out.positions[u].second - out.positions[v].second;
      if (dx * dx + dy * dy <= r2) b.addEdge(u, v);
    }
  }
  out.graph = b.build();
  return out;
}

}  // namespace dima::graph
