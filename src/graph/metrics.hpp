#pragma once

/// \file metrics.hpp
/// Structural graph measurements used by the workload generators, the
/// experiment harness (Δ is the x-axis of every figure) and the tests.

#include <cstddef>
#include <vector>

#include "src/graph/graph.hpp"

namespace dima::graph {

/// Degree summary of a graph.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;      ///< Δ
  double mean = 0.0;
  double stddev = 0.0;
};
DegreeStats degreeStats(const Graph& g);

/// Histogram of degrees: index d holds the number of vertices of degree d.
std::vector<std::size_t> degreeHistogram(const Graph& g);

/// Component label per vertex (0-based, dense) and the component count.
struct Components {
  std::vector<std::uint32_t> label;
  std::size_t count = 0;
};
Components connectedComponents(const Graph& g);

bool isConnected(const Graph& g);

/// True when the graph is acyclic (a forest).
bool isForest(const Graph& g);

/// BFS hop distances from `source`; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
std::vector<std::uint32_t> bfsDistances(const Graph& g, VertexId source);

/// Exact diameter via all-sources BFS (intended for the small evaluation
/// graphs; O(n·(n+m))). Returns 0 for graphs with < 2 vertices; requires a
/// connected graph otherwise.
std::size_t diameter(const Graph& g);

/// Global clustering coefficient (3 × triangles / open triads); 0 when no
/// vertex has two neighbors. Distinguishes the small-world family.
double clusteringCoefficient(const Graph& g);

/// Lower bound on the number of colors any *strong* (distance-2) coloring of
/// the symmetric digraph over `g` needs: all arcs incident to either
/// endpoint of an edge pairwise conflict, so
///   χ'_s ≥ max over edges {u,v} of 2·(deg(u) + deg(v) − 1).
std::size_t strongColoringLowerBound(const Graph& g);

/// Lower bound for proper edge coloring: Δ (Vizing: χ' ∈ {Δ, Δ+1}).
inline std::size_t edgeColoringLowerBound(const Graph& g) {
  return g.maxDegree();
}

}  // namespace dima::graph
