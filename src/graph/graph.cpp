#include "src/graph/graph.hpp"

#include <algorithm>

namespace dima::graph {

Graph::Graph(std::size_t n) : offsets_(n + 1, 0) {}

Graph::Graph(std::size_t n, std::vector<Edge> edges)
    : edges_(std::move(edges)), offsets_(n + 1, 0) {
  // Canonicalize and validate.
  for (auto& e : edges_) {
    DIMA_REQUIRE(e.u < n && e.v < n,
                 "edge (" << e.u << "," << e.v << ") outside vertex range "
                          << n);
    DIMA_REQUIRE(e.u != e.v, "self-loop at vertex " << e.u);
    if (e.u > e.v) std::swap(e.u, e.v);
  }

  // Counting pass for CSR offsets.
  for (const auto& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }

  adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adjacency_[cursor[e.u]++] = Incidence{e.v, id};
    adjacency_[cursor[e.v]++] = Incidence{e.u, id};
  }

  // Neighbor-sort each vertex's slice so hasEdge can binary-search, and
  // reject duplicate edges.
  for (VertexId v = 0; v + 1 < offsets_.size(); ++v) {
    auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto end =
        adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(begin, end, [](const Incidence& a, const Incidence& b) {
      return a.neighbor < b.neighbor;
    });
    for (auto it = begin; it != end; ++it) {
      if (it + 1 != end) {
        DIMA_REQUIRE((it + 1)->neighbor != it->neighbor,
                     "duplicate edge (" << v << "," << it->neighbor << ")");
      }
    }
    maxDegree_ =
        std::max(maxDegree_, static_cast<std::size_t>(end - begin));
  }
}

double Graph::averageDegree() const {
  const std::size_t n = numVertices();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(numEdges()) / static_cast<double>(n);
}

bool Graph::hasEdge(VertexId a, VertexId b) const {
  return findEdge(a, b) != kNoEdge;
}

EdgeId Graph::findEdge(VertexId a, VertexId b) const {
  checkVertex(a);
  checkVertex(b);
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto inc = incidences(a);
  const auto it = std::lower_bound(
      inc.begin(), inc.end(), b,
      [](const Incidence& i, VertexId target) { return i.neighbor < target; });
  if (it != inc.end() && it->neighbor == b) return it->edge;
  return kNoEdge;
}

}  // namespace dima::graph
