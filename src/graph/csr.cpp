#include "src/graph/csr.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DIMA_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DIMA_HAS_MMAP 0
#endif

namespace dima::graph {

namespace {

void setError(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
}

}  // namespace

bool writeCsr(const Graph& g, const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    setError(error, "cannot open '" + path + "' for writing");
    return false;
  }
  CsrHeader header{};
  std::memcpy(header.magic, kCsrMagic, sizeof(kCsrMagic));
  header.numVertices = g.numVertices();
  header.numEdges = g.numEdges();
  header.maxDegree = g.maxDegree();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  std::vector<std::uint64_t> offsets(g.numVertices() + 1, 0);
  for (std::size_t v = 0; v < g.numVertices(); ++v) {
    offsets[v + 1] = offsets[v] + g.degree(static_cast<VertexId>(v));
  }
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(offsets[0])));
  for (std::size_t v = 0; v < g.numVertices(); ++v) {
    const auto incs = g.incidences(static_cast<VertexId>(v));
    out.write(reinterpret_cast<const char*>(incs.data()),
              static_cast<std::streamsize>(incs.size() * sizeof(Incidence)));
  }
  const auto edges = g.edges();
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(edges.size() * sizeof(Edge)));
  out.flush();
  if (!out) {
    setError(error, "write failed for '" + path + "'");
    return false;
  }
  return true;
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this == &other) return *this;
  reset();
  mapBase_ = std::exchange(other.mapBase_, nullptr);
  mapLength_ = std::exchange(other.mapLength_, 0);
  buffer_ = std::move(other.buffer_);
  n_ = std::exchange(other.n_, 0);
  m_ = std::exchange(other.m_, 0);
  maxDegree_ = std::exchange(other.maxDegree_, 0);
  offsets_ = std::exchange(other.offsets_, nullptr);
  adjacency_ = std::exchange(other.adjacency_, nullptr);
  edges_ = std::exchange(other.edges_, nullptr);
  return *this;
}

MappedGraph::~MappedGraph() { reset(); }

void MappedGraph::reset() {
#if DIMA_HAS_MMAP
  if (mapBase_ != nullptr) ::munmap(mapBase_, mapLength_);
#endif
  mapBase_ = nullptr;
  mapLength_ = 0;
  buffer_.clear();
  buffer_.shrink_to_fit();
  n_ = m_ = maxDegree_ = 0;
  offsets_ = nullptr;
  adjacency_ = nullptr;
  edges_ = nullptr;
}

bool MappedGraph::adopt(const std::uint8_t* data, std::size_t size,
                        std::string* error) {
  if (size < sizeof(CsrHeader)) {
    setError(error, "truncated CSR image: smaller than the header");
    return false;
  }
  CsrHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kCsrMagic, sizeof(kCsrMagic)) != 0) {
    setError(error, "not a CSR graph image (bad magic)");
    return false;
  }
  const std::uint64_t n = header.numVertices;
  const std::uint64_t m = header.numEdges;
  // Dense u32 ids and a u32-indexed slot arena downstream: both counts must
  // leave the sentinels representable and 2m must fit 32 bits.
  if (n >= kNoVertex || m >= kNoEdge || 2 * m > 0xffffffffULL) {
    setError(error, "CSR header out of range (n=" + std::to_string(n) +
                        ", m=" + std::to_string(m) + ")");
    return false;
  }
  const std::uint64_t expected = sizeof(CsrHeader) + 8 * (n + 1) +
                                 sizeof(Incidence) * 2 * m + sizeof(Edge) * m;
  if (size != expected) {
    setError(error, "CSR image is " + std::to_string(size) +
                        " bytes; header implies " + std::to_string(expected) +
                        " (truncated or corrupt)");
    return false;
  }
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(data + sizeof(CsrHeader));
  const auto* adjacency =
      reinterpret_cast<const Incidence*>(data + sizeof(CsrHeader) + 8 * (n + 1));
  const auto* edges = reinterpret_cast<const Edge*>(
      data + sizeof(CsrHeader) + 8 * (n + 1) + sizeof(Incidence) * 2 * m);
  if (offsets[0] != 0 || offsets[n] != 2 * m) {
    setError(error, "CSR offsets do not span the adjacency section");
    return false;
  }
  std::uint64_t maxDeg = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) {
      setError(error,
               "CSR offsets not monotone at vertex " + std::to_string(v));
      return false;
    }
    const std::uint64_t deg = offsets[v + 1] - offsets[v];
    maxDeg = std::max(maxDeg, deg);
    VertexId prev = kNoVertex;
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Incidence& inc = adjacency[i];
      if (inc.neighbor >= n || inc.edge >= m ||
          inc.neighbor == static_cast<VertexId>(v) ||
          (i != offsets[v] && inc.neighbor <= prev)) {
        setError(error, "CSR adjacency invalid at vertex " +
                            std::to_string(v) + " (entry " +
                            std::to_string(i - offsets[v]) + ")");
        return false;
      }
      prev = inc.neighbor;
    }
  }
  if (maxDeg != header.maxDegree) {
    setError(error, "CSR header maxDegree " +
                        std::to_string(header.maxDegree) +
                        " disagrees with offsets (" + std::to_string(maxDeg) +
                        ")");
    return false;
  }
  for (std::uint64_t e = 0; e < m; ++e) {
    if (edges[e].u >= edges[e].v || edges[e].v >= n) {
      setError(error, "CSR edge " + std::to_string(e) +
                          " has invalid endpoints");
      return false;
    }
  }
  n_ = static_cast<std::size_t>(n);
  m_ = static_cast<std::size_t>(m);
  maxDegree_ = static_cast<std::size_t>(maxDeg);
  offsets_ = offsets;
  adjacency_ = adjacency;
  edges_ = edges;
  return true;
}

MappedGraph MappedGraph::open(const std::string& path, std::string* error,
                              CsrLoadMode mode) {
  MappedGraph g;
#if DIMA_HAS_MMAP
  if (mode == CsrLoadMode::PreferMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (base != MAP_FAILED) {
          g.mapBase_ = base;
          g.mapLength_ = static_cast<std::size_t>(st.st_size);
          if (g.adopt(static_cast<const std::uint8_t*>(base), g.mapLength_,
                      error)) {
            return g;
          }
          // Validation failure is final — the bytes are the same either
          // way, so don't retry via read().
          g.reset();
          return g;
        }
      } else {
        ::close(fd);
      }
      // mmap itself unavailable/refused: fall through to the read() path.
    }
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    setError(error, "cannot open '" + path + "'");
    return g;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (!g.adopt(bytes.data(), bytes.size(), error)) {
    g.reset();
    return g;
  }
  g.buffer_ = std::move(bytes);  // pointers already target this allocation
  return g;
}

EdgeId MappedGraph::findEdge(VertexId a, VertexId b) const {
  if (static_cast<std::size_t>(a) >= n_ || static_cast<std::size_t>(b) >= n_) {
    return kNoEdge;
  }
  const auto incs = incidences(a);
  const auto it = std::lower_bound(
      incs.begin(), incs.end(), b,
      [](const Incidence& inc, VertexId v) { return inc.neighbor < v; });
  if (it == incs.end() || it->neighbor != b) return kNoEdge;
  return it->edge;
}

bool ingestToCsr(const std::string& inputPath, GraphFormat format,
                 const std::string& csrPath, std::string* error) {
  const GraphFormat resolved = detectGraphFormat(inputPath, format);
  Graph g(0);
  switch (resolved) {
    case GraphFormat::Csr:
      setError(error, "'" + inputPath + "' is already a CSR image");
      return false;
    case GraphFormat::EdgeList: {
      bool ok = false;
      g = loadEdgeList(inputPath, &ok);
      if (!ok) {
        setError(error, "cannot open '" + inputPath + "'");
        return false;
      }
      break;
    }
    case GraphFormat::Auto:  // detectGraphFormat never returns Auto
    case GraphFormat::Snap: {
      ParseReport report;
      g = loadSnap(inputPath, &report);
      if (!report.ok) {
        setError(error, report.error);
        return false;
      }
      break;
    }
    case GraphFormat::Dimacs: {
      ParseReport report;
      g = loadDimacs(inputPath, &report);
      if (!report.ok) {
        setError(error, report.error);
        return false;
      }
      break;
    }
  }
  return writeCsr(g, csrPath, error);
}

}  // namespace dima::graph
