#pragma once

/// \file partition.hpp
/// Vertex partitioning for the sharded engine (DESIGN.md §13).
///
/// A `Partition` assigns every vertex to one of K shards. The sharded
/// network (`net/shard.hpp`) gives each shard its own slot arena; edges
/// whose endpoints land in different shards become *boundary arcs* and
/// exchange per-round deltas through cross-shard buffers. Two strategies:
///
///  * `Block` — contiguous id ranges of (nearly) equal vertex count. The
///    deterministic default: cheap, stable across runs, and contiguous
///    ranges keep each shard's arena a single cache-friendly span. Random
///    (ER) and generated ids have no locality either way; SNAP exports are
///    usually BFS- or community-ordered, where contiguity genuinely cuts
///    the boundary fraction.
///  * `DegreeBalanced` — greedy bin packing by degree: vertices in
///    descending degree order (ties by ascending id) go to the shard with
///    the least total degree so far (ties to the lowest shard id). Balances
///    *work* (slots, sends) instead of vertex count on skewed-degree
///    graphs, at the price of scattered ids.
///
/// Both strategies are pure functions of (topology, K) — no RNG — so a
/// partition is reproducible from the command line alone. Determinism of
/// the *coloring* does not depend on the partition at all (the sharded
/// network reproduces inboxes bit-identically for any assignment); the
/// strategy only moves the boundary fraction and the load balance.

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/graph/graph.hpp"

namespace dima::graph {

enum class PartitionKind : std::uint8_t { Block, DegreeBalanced };

/// Parses "block" / "degree"; returns false on anything else.
bool parsePartitionKind(std::string_view text, PartitionKind* out);
const char* partitionKindName(PartitionKind kind);

/// A complete shard assignment: `shardOf[v]` for every vertex, plus the
/// member lists (ascending vertex id within each shard — the order the
/// sharded engine iterates, which keeps per-shard hook order equal to the
/// serial engine's ascending-id order restricted to the shard).
struct Partition {
  std::uint32_t count = 1;
  std::vector<std::uint32_t> shardOf;
  std::vector<std::vector<VertexId>> members;

  std::span<const VertexId> shardMembers(std::uint32_t s) const {
    return members[s];
  }
};

/// Contiguous id ranges; shard sizes differ by at most one vertex.
Partition makeBlockPartition(std::size_t numVertices, std::uint32_t shards);

/// Greedy degree balancing over an explicit degree array (the non-template
/// core; use `makePartition` below for any Graph-surfaced topology).
Partition makeDegreeBalancedPartition(std::span<const std::uint32_t> degrees,
                                      std::uint32_t shards);

/// Builds a partition of `topo` (anything with the `graph::Graph` topology
/// surface: `numVertices`, `degree`).
template <class Topo>
Partition makePartition(const Topo& topo, PartitionKind kind,
                        std::uint32_t shards) {
  const std::size_t n = topo.numVertices();
  if (kind == PartitionKind::Block) return makeBlockPartition(n, shards);
  std::vector<std::uint32_t> degrees(n);
  for (std::size_t v = 0; v < n; ++v) {
    degrees[v] =
        static_cast<std::uint32_t>(topo.degree(static_cast<VertexId>(v)));
  }
  return makeDegreeBalancedPartition(degrees, shards);
}

/// Fraction of directed arcs whose endpoints live in different shards —
/// the traffic that crosses a boundary buffer each round. 0 when K == 1 or
/// the graph has no edges.
template <class Topo>
double boundaryArcFraction(const Topo& topo, const Partition& part) {
  std::uint64_t boundary = 0;
  std::uint64_t total = 0;
  const std::size_t n = topo.numVertices();
  for (std::size_t v = 0; v < n; ++v) {
    for (const Incidence& inc : topo.incidences(static_cast<VertexId>(v))) {
      ++total;
      if (part.shardOf[v] != part.shardOf[inc.neighbor]) ++boundary;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(boundary) / static_cast<double>(total);
}

}  // namespace dima::graph
