#pragma once

/// \file csr.hpp
/// The binary CSR graph image and its memory-mapped view (DESIGN.md §13).
///
/// Social-network-scale inputs (SNAP exports, DIMACS instances) are parsed
/// once into a flat on-disk CSR image; every later run `mmap`s the file and
/// colors straight off the page cache — no mutable `Graph`, no per-run
/// parse, and the kernel pages in only what the run touches. The layout is
/// the in-memory `Graph` flattened, all sections naturally 8-aligned:
///
///     CsrHeader                  48 bytes: magic "DIMACSR1", n, m, Δ
///     offsets    (n+1) × u64     receiver-block boundaries into adjacency
///     adjacency   2m  × Incidence  (neighbor u32, edge u32), neighbor-sorted
///     edges        m  × Edge       canonical endpoints (u ≤ v), id order
///
/// `MappedGraph` exposes the `graph::Graph` topology surface (`numVertices`,
/// `degree`, `incidences`, `edge`, `findEdge`, …), so the networks, the
/// protocols, and the validators template over either without caring which
/// is underneath.
///
/// Robustness contract: `MappedGraph::open` fully validates the image —
/// magic, exact file size against the header, monotone offsets, neighbor
/// sorting, id ranges — and returns a cleared error message instead of
/// touching out-of-range memory, so a truncated or corrupted file can never
/// turn into UB. When `mmap` is unavailable (or refused), loading falls
/// back to a plain `read()` into an owned buffer with identical semantics.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/graph/io.hpp"

namespace dima::graph {

/// On-disk header of the CSR image. Field order and the 48-byte size are
/// the format; bump the magic when either changes.
struct CsrHeader {
  char magic[8];
  std::uint64_t numVertices = 0;
  std::uint64_t numEdges = 0;
  std::uint64_t maxDegree = 0;
  std::uint64_t reserved[2] = {0, 0};
};
static_assert(sizeof(CsrHeader) == 48, "CSR header layout is the format");
static_assert(sizeof(Incidence) == 8 && sizeof(Edge) == 8,
              "CSR sections store these structs verbatim");

inline constexpr char kCsrMagic[8] = {'D', 'I', 'M', 'A', 'C', 'S', 'R', '1'};

/// Serializes `g` as a CSR image at `path`. Returns false with `*error`
/// set on I/O failure.
bool writeCsr(const Graph& g, const std::string& path, std::string* error);

/// How `MappedGraph::open` acquires the bytes.
enum class CsrLoadMode : std::uint8_t {
  PreferMmap,  ///< mmap the file; silently fall back to read() on failure
  ForceRead,   ///< read() into an owned buffer (the no-mmap platform path)
};

/// A validated, read-only view of a CSR image: zero-copy when mapped, an
/// owned buffer otherwise. Movable, not copyable; the file contents must
/// not change while the view is alive.
class MappedGraph {
 public:
  MappedGraph() = default;
  MappedGraph(MappedGraph&& other) noexcept { *this = std::move(other); }
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph();

  /// Opens and validates `path`. On any failure — unreadable file, bad
  /// magic, size/section mismatch, non-monotone offsets, out-of-range or
  /// unsorted neighbors — returns a view with `ok() == false` and a
  /// human-readable `*error`.
  static MappedGraph open(const std::string& path, std::string* error,
                          CsrLoadMode mode = CsrLoadMode::PreferMmap);

  bool ok() const { return offsets_ != nullptr; }
  /// True when the bytes are a live mmap (false: owned read() buffer).
  bool isMapped() const { return mapBase_ != nullptr; }

  // --- the graph::Graph topology surface ---
  std::size_t numVertices() const { return n_; }
  std::size_t numEdges() const { return m_; }
  std::size_t degree(VertexId v) const {
    checkVertex(v);
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::size_t maxDegree() const { return maxDegree_; }
  double averageDegree() const {
    return n_ == 0 ? 0.0
                   : 2.0 * static_cast<double>(m_) / static_cast<double>(n_);
  }
  std::span<const Incidence> incidences(VertexId v) const {
    checkVertex(v);
    return {adjacency_ + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }
  const Edge& edge(EdgeId e) const {
    DIMA_REQUIRE(e < m_, "edge id " << e << " out of range");
    return edges_[e];
  }
  std::span<const Edge> edges() const { return {edges_, m_}; }
  bool hasEdge(VertexId a, VertexId b) const {
    return findEdge(a, b) != kNoEdge;
  }
  EdgeId findEdge(VertexId a, VertexId b) const;

 private:
  void reset();
  /// Points the section pointers into `data` after full validation;
  /// returns false with `*error` set when the image is not a well-formed
  /// CSR graph.
  bool adopt(const std::uint8_t* data, std::size_t size, std::string* error);

  void checkVertex(VertexId v) const {
    DIMA_REQUIRE(static_cast<std::size_t>(v) < n_,
                 "vertex id " << v << " out of range");
  }

  // Byte ownership: exactly one of (mapBase_, buffer_) holds the image.
  void* mapBase_ = nullptr;
  std::size_t mapLength_ = 0;
  std::vector<std::uint8_t> buffer_;

  // Validated section views.
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t maxDegree_ = 0;
  const std::uint64_t* offsets_ = nullptr;
  const Incidence* adjacency_ = nullptr;
  const Edge* edges_ = nullptr;
};

/// Parses `inputPath` (per `format`; `Auto` sniffs) and writes the CSR
/// image to `csrPath` — the one-time ingestion step that makes every later
/// run zero-copy. Returns false with `*error` set on parse or I/O failure.
bool ingestToCsr(const std::string& inputPath, GraphFormat format,
                 const std::string& csrPath, std::string* error);

}  // namespace dima::graph
