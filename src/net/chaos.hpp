#pragma once

/// \file chaos.hpp
/// `ChaosModel`: the adversarial superset of `FaultModel` driving the
/// deterministic simulation tests (src/sim). Where `FaultModel` probes two
/// uniform probabilistic knobs, the chaos model adds the fault classes an
/// adversary would pick deliberately:
///
///  * **Per-link asymmetric drop rates** (`linkDrops`) — the channel
///    `from → to` can be lossier than its reverse, breaking the implicit
///    symmetry of a uniform drop probability.
///  * **Crash-stop nodes** (`crashes`) — from a scheduled communication
///    round on, a node neither transmits nor hears anything; its links act
///    as if cut. Liveness is expected to be lost (runs cap at maxCycles);
///    safety of what the *live* nodes commit must survive.
///  * **Adversarial inbox permutation** (`permuteInboxes`) — receiver slot
///    order is shuffled per node at construction, so inboxes no longer
///    arrive in incidence order. Protocols must not depend on ascending
///    sender id for correctness (determinism pins do, which is why the
///    reliable fast path keeps the incidence layout bit-identical).
///  * **Bounded payload corruption** (`corruptProbability` and scripted
///    `Corrupt` faults) — one wire field of a delivered payload is
///    rewritten to a different in-domain value (a kind, a node id, a color
///    or item id a few bit-flips away). Corruption stays in-domain so it
///    probes protocol logic, not `std::vector` bounds; it can still trip
///    `DIMA_ASSERT`-checked protocol preconditions by design, which is why
///    the fuzz driver exercises it at the network layer rather than under
///    the protocols (PROTOCOLS.md §11).
///  * **Scripted per-message faults** (`script`) — exact (kind, round,
///    from, to) triples, the currency of the exhaustive fault enumerator,
///    the delta-debugging shrinker, and replayable repro files.
///
/// Determinism: every probabilistic outcome is keyed on
/// (seed, commRound, from, to) exactly like the base model, so a chaos run
/// is a pure function of (topology, protocol seed, ChaosModel). Setting
/// `recordTo` captures the faults that actually fired as a script; running
/// the same model again with only that script reproduces the run.

#include <concepts>
#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/net/message.hpp"
#include "src/support/rng.hpp"

namespace dima::net {

/// Drop-rate override for one directed link; wins over `dropProbability`.
struct LinkDrop {
  NodeId from = graph::kNoVertex;
  NodeId to = graph::kNoVertex;
  double dropProbability = 0.0;

  friend bool operator==(const LinkDrop&, const LinkDrop&) = default;
};

/// Crash-stop schedule entry: from communication round `round` on (counted
/// like `Counters::commRounds`, starting at 0), `node` is silent and deaf.
struct CrashEvent {
  NodeId node = graph::kNoVertex;
  std::uint64_t round = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// One scripted (or recorded) per-message fault: what happens to the
/// delivery attempted on link `from → to` in communication round `round`.
struct MessageFault {
  enum class Kind : std::uint8_t { Drop, Duplicate, Corrupt };

  Kind kind = Kind::Drop;
  std::uint64_t round = 0;
  NodeId from = graph::kNoVertex;
  NodeId to = graph::kNoVertex;

  friend bool operator==(const MessageFault&, const MessageFault&) = default;
};

/// `FaultModel` plus the adversarial knobs above. Implicitly convertible
/// from the base model so every `options.faults = net::FaultModel{...}`
/// call site keeps compiling unchanged.
struct ChaosModel : FaultModel {
  ChaosModel() = default;
  ChaosModel(const FaultModel& base) : FaultModel(base) {}  // NOLINT(google-explicit-constructor)

  std::vector<LinkDrop> linkDrops;
  std::vector<CrashEvent> crashes;
  std::vector<MessageFault> script;
  double corruptProbability = 0.0;
  bool permuteInboxes = false;

  /// When set, every fired per-message fault is appended here (crash
  /// silencing is not recorded — it is already explicit in `crashes`).
  /// Serial executor only: recording from the thread pool would race.
  std::vector<MessageFault>* recordTo = nullptr;

  /// True when messages can be lost, duplicated, or altered — the classes
  /// under which half-committed items and stale one-hop views are expected
  /// (the invariant monitor relaxes exactly the checks those break;
  /// PROTOCOLS.md §11 documents the mapping).
  bool lossy() const {
    return FaultModel::perturbs() || !linkDrops.empty() || !crashes.empty() ||
           !script.empty() || corruptProbability > 0.0;
  }

  /// Shadows the base: any knob (including the delivery-order permutation,
  /// which loses no messages but perturbs the run) routes `writeSlot` off
  /// the reliable fast path.
  bool perturbs() const { return lossy() || permuteInboxes; }

  /// Effective drop probability of the directed link `from → to`.
  double dropRate(NodeId from, NodeId to) const {
    for (const LinkDrop& l : linkDrops) {
      if (l.from == from && l.to == to) return l.dropProbability;
    }
    return dropProbability;
  }
};

/// Rewrites one wire field of `m` to a different in-domain value (see the
/// file comment). Message types without any known field are left intact.
/// Deterministic in the caller-supplied stream.
template <class M>
void chaosCorruptPayload(M& m, support::Rng& rng, std::size_t numNodes) {
  // Only the unified wire fields are touched (matched by name *and* type,
  // so foreign message structs with an unrelated `kind` are left alone).
  constexpr bool kHasKind = requires { { m.kind } -> std::same_as<WireKind&>; };
  constexpr bool kHasTarget =
      requires { { m.target } -> std::same_as<NodeId&>; };
  constexpr bool kHasColor =
      requires { { m.color } -> std::same_as<std::int32_t&>; };
  constexpr bool kHasItem =
      requires { { m.item } -> std::same_as<std::uint32_t&>; };
  int fields = 0;
  if constexpr (kHasKind) ++fields;
  if constexpr (kHasTarget) ++fields;
  if constexpr (kHasColor) ++fields;
  if constexpr (kHasItem) ++fields;
  if (fields == 0) return;
  std::size_t pick = rng.index(static_cast<std::size_t>(fields));
  if constexpr (kHasKind) {
    if (pick == 0) {
      // A different one of the six wire kinds.
      m.kind = static_cast<WireKind>(
          (static_cast<std::uint8_t>(m.kind) + 1 + rng.index(5)) % 6);
      return;
    }
    --pick;
  }
  if constexpr (kHasTarget) {
    if (pick == 0) {
      const std::size_t t = rng.index(numNodes + 1);
      m.target = t == numNodes ? graph::kNoVertex : static_cast<NodeId>(t);
      return;
    }
    --pick;
  }
  if constexpr (kHasColor) {
    if (pick == 0) {
      if (m.color < 0) {
        m.color = static_cast<std::int32_t>(rng.index(8));
      } else {
        m.color ^= std::int32_t{1} << rng.index(5);
      }
      return;
    }
    --pick;
  }
  if constexpr (kHasItem) {
    if (m.item == kNoWireItem) {
      m.item = static_cast<std::uint32_t>(rng.index(8));
    } else {
      m.item ^= std::uint32_t{1} << rng.index(4);
      if (m.item == kNoWireItem) m.item = 0;
    }
  }
}

}  // namespace dima::net
