#pragma once

/// \file async_beta.hpp
/// Awerbuch's β-synchronizer: the tree-based counterpart of the
/// α-synchronizer in async.hpp, completing the classic message/latency
/// trade-off pair:
///
///   * α — after each pulse every node tells all *neighbors* it is safe:
///     O(m) control messages per pulse, O(1) added latency;
///   * β — safety is aggregated up a rooted spanning tree and a go-ahead
///     wave flows back down: O(n) control messages per pulse, O(diameter)
///     added latency.
///
/// Mechanics per pulse p: nodes send payloads (acked, as in α). A node
/// reports SafeUp(p) to its tree parent once it is safe *and* all its
/// children reported; when the root completes, it starts the Go(p) wave,
/// and every node receiving Go(p) delivers its pulse-p inbox, advances,
/// and forwards Go(p) to its children. Because the root only fires after
/// *every* node is safe, all pulse-p payloads have globally arrived —
/// stronger than α's neighborhood condition, hence the latency cost.
///
/// The spanning tree is built beforehand by distributed flooding
/// (net::spanning_tree; its rounds are reported separately by callers).
/// Protocol results are bit-identical to the synchronous engine, like α.
/// Requires a connected graph (the tree must span it).

#include <algorithm>
#include <queue>
#include <vector>

#include "src/graph/metrics.hpp"
#include "src/net/async.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/support/mutex.hpp"

namespace dima::net {

namespace detail {

template <class Protocol>
class BetaSynchronizer {
 public:
  using M = typename Protocol::Message;

  BetaSynchronizer(Protocol& proto, const graph::Graph& g,
                   const SpanningTree& tree, const DelayModel& delays,
                   std::uint64_t maxCycles)
      : proto_(&proto),
        g_(&g),
        tree_(&tree),
        collector_(g),
        delays_(delays),
        maxPulses_(maxCycles *
                   static_cast<std::uint64_t>(proto.subRounds())),
        nodes_(g.numVertices()) {
    DIMA_REQUIRE(graph::isConnected(g),
                 "beta synchronizer needs a connected graph");
    children_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      const graph::VertexId p = tree.parent[u];
      if (p != graph::kNoVertex) children_[p].push_back(u);
    }
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      if (proto.done(u)) ++doneCount_;
    }
  }

  AsyncRunResult run() {
    // One event loop, one thread — same discipline as the α-synchronizer.
    eventLoop_.assertExclusive();
    const std::size_t n = g_->numVertices();
    AsyncRunResult result;
    if (n == 0 || doneCount_ == n) {
      result.converged = true;
      return result;
    }
    for (NodeId u = 0; u < n; ++u) enterPulse(u, 0);
    for (NodeId u = 0; u < n; ++u) maybeReportUp(u);
    while (doneCount_ < n && !events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      handle(ev);
      if (pulse_ >= maxPulses_) break;
    }
    result.converged = doneCount_ == g_->numVertices();
    result.pulses = pulse_;
    result.cycles =
        (pulse_ + static_cast<std::uint64_t>(proto_->subRounds()) - 1) /
        static_cast<std::uint64_t>(proto_->subRounds());
    result.simTime = now_;
    result.payloadMessages = payloadCount_;
    result.ackMessages = ackCount_;
    result.safeMessages = safeCount_;  // SafeUp + Go control traffic
    result.counters = collector_.counters();
    return result;
  }

 private:
  enum class Kind : std::uint8_t { Payload, Ack, SafeUp, Go };

  struct Event {
    double time = 0;
    std::uint64_t seq = 0;
    Kind kind = Kind::Payload;
    NodeId from = graph::kNoVertex;
    NodeId to = graph::kNoVertex;
    std::uint64_t pulse = 0;
    M payload{};

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct NodeSyncState {
    std::uint64_t pulse = 0;
    std::size_t pendingAcks = 0;
    bool selfSafe = false;
    bool reportedUp = false;
    std::size_t childrenSafe = 0;
    std::vector<std::uint64_t> earlyUp;  ///< SafeUp racing ahead a pulse
    std::vector<std::pair<std::uint64_t, Envelope<M>>> buffered;
  };

  double drawDelay() DIMA_REQUIRES(eventLoop_) {
    const std::uint64_t key = support::mix64(delays_.seed, seq_);
    support::Rng rng(key);
    return delays_.minDelay +
           (delays_.maxDelay - delays_.minDelay) * rng.uniform01();
  }

  void post(Kind kind, NodeId from, NodeId to, std::uint64_t pulse,
            const M& payload = {}) DIMA_REQUIRES(eventLoop_) {
    Event ev;
    ev.seq = seq_++;
    ev.time = now_ + drawDelay();
    ev.kind = kind;
    ev.from = from;
    ev.to = to;
    ev.pulse = pulse;
    ev.payload = payload;
    events_.push(ev);
    switch (kind) {
      case Kind::Payload:
        ++payloadCount_;
        break;
      case Kind::Ack:
        ++ackCount_;
        break;
      case Kind::SafeUp:
      case Kind::Go:
        ++safeCount_;
        break;
    }
  }

  void enterPulse(NodeId u, std::uint64_t pulse) DIMA_REQUIRES(eventLoop_) {
    NodeSyncState& s = nodes_[u];
    s.pulse = pulse;
    s.selfSafe = false;
    s.reportedUp = false;
    // Children's SafeUp(pulse) that raced ahead.
    std::size_t early = 0;
    for (std::uint64_t p : s.earlyUp) {
      if (p == pulse) ++early;
    }
    std::erase(s.earlyUp, pulse);
    s.childrenSafe = early;
    const int subs = proto_->subRounds();
    const int sub =
        static_cast<int>(pulse % static_cast<std::uint64_t>(subs));
    if (sub == 0) proto_->beginCycle(u);
    proto_->send(u, sub, collector_);
    std::size_t sent = 0;
    collector_.drainStaged(u, [&](NodeId to, const M& payload) {
      post(Kind::Payload, u, to, pulse, payload);
      ++sent;
    });
    s.pendingAcks = sent;
    if (s.pendingAcks == 0) s.selfSafe = true;
  }

  bool upConditionHolds(NodeId u) const {
    const NodeSyncState& s = nodes_[u];
    return !s.reportedUp && s.selfSafe &&
           s.childrenSafe >= children_[u].size();
  }

  /// Sends SafeUp once the subtree condition holds; at the root, launches
  /// the Go wave instead.
  void maybeReportUp(NodeId u) DIMA_REQUIRES(eventLoop_) {
    if (!upConditionHolds(u)) return;
    NodeSyncState& s = nodes_[u];
    const graph::VertexId parent = tree_->parent[u];
    if (parent != graph::kNoVertex) {
      s.reportedUp = true;
      post(Kind::SafeUp, u, parent, s.pulse);
      return;
    }
    // Root: everyone is safe for this pulse; release it. Loop rather than
    // recurse: a root with no children (n = 1) advances without events.
    while (upConditionHolds(u)) {
      s.reportedUp = true;
      if (!advance(u)) return;
    }
  }

  /// Delivers pulse p at `u`, forwards the Go wave, and enters p+1.
  /// Returns false when the run should stop (all done / round cap).
  bool advance(NodeId u) DIMA_REQUIRES(eventLoop_) {
    NodeSyncState& s = nodes_[u];
    const std::uint64_t p = s.pulse;
    for (NodeId child : children_[u]) post(Kind::Go, u, child, p);

    std::vector<MessageSlot<M>> inbox;
    for (auto it = s.buffered.begin(); it != s.buffered.end();) {
      if (it->first == p) {
        inbox.push_back(MessageSlot<M>{1, 1, it->second});
        it = s.buffered.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(inbox.begin(), inbox.end(),
              [](const MessageSlot<M>& a, const MessageSlot<M>& b) {
                return a.env.from < b.env.from;
              });
    const int subs = proto_->subRounds();
    const int sub = static_cast<int>(p % static_cast<std::uint64_t>(subs));
    const bool wasDone = proto_->done(u);
    proto_->receive(u, sub, Inbox<M>(inbox.data(), inbox.size(), 1));
    if (sub == subs - 1) proto_->endCycle(u);
    if (!wasDone && proto_->done(u)) ++doneCount_;

    pulse_ = std::max(pulse_, p + 1);
    if (doneCount_ == g_->numVertices()) return false;
    if (p + 1 >= maxPulses_) return false;
    enterPulse(u, p + 1);
    return true;
  }

  void handle(const Event& ev) DIMA_REQUIRES(eventLoop_) {
    NodeSyncState& s = nodes_[ev.to];
    switch (ev.kind) {
      case Kind::Payload: {
        s.buffered.push_back({ev.pulse, Envelope<M>{ev.from, ev.payload}});
        post(Kind::Ack, ev.to, ev.from, ev.pulse);
        break;
      }
      case Kind::Ack: {
        DIMA_ASSERT(s.pendingAcks > 0, "spurious ack");
        if (--s.pendingAcks == 0) {
          s.selfSafe = true;
          maybeReportUp(ev.to);
        }
        break;
      }
      case Kind::SafeUp: {
        if (ev.pulse == s.pulse) {
          ++s.childrenSafe;
          maybeReportUp(ev.to);
        } else {
          DIMA_ASSERT(ev.pulse == s.pulse + 1, "SafeUp pulse skew");
          s.earlyUp.push_back(ev.pulse);
        }
        break;
      }
      case Kind::Go: {
        // A Go can only arrive for the node's current pulse: the parent
        // fired it for pulse p, and this node reported SafeUp(p) from
        // pulse p and has not advanced past it.
        DIMA_ASSERT(ev.pulse == s.pulse, "Go pulse skew");
        if (advance(ev.to)) maybeReportUp(ev.to);
        break;
      }
    }
  }

  Protocol* proto_;
  const graph::Graph* g_;
  const SpanningTree* tree_;
  SyncNetwork<M> collector_;
  DelayModel delays_;
  std::uint64_t maxPulses_;
  std::vector<NodeSyncState> nodes_;
  std::vector<std::vector<NodeId>> children_;
  /// Single-threaded event-loop discipline (see async.hpp).
  support::PhaseCapability eventLoop_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_ DIMA_GUARDED_BY(eventLoop_);
  double now_ DIMA_GUARDED_BY(eventLoop_) = 0;
  std::uint64_t seq_ DIMA_GUARDED_BY(eventLoop_) = 0;
  std::size_t doneCount_ = 0;
  std::uint64_t payloadCount_ = 0;
  std::uint64_t ackCount_ = 0;
  std::uint64_t safeCount_ = 0;
  std::uint64_t pulse_ = 0;
};

}  // namespace detail

/// Runs a synchronous-model protocol on an asynchronous network with the
/// β-synchronizer over `tree` (typically from buildSpanningTreeFlood).
/// Results are identical to the synchronous serial run; the metrics show
/// β's O(n)-messages / O(diameter)-latency trade against α.
template <class Protocol>
AsyncRunResult runBetaSynchronized(Protocol& proto, const graph::Graph& g,
                                   const SpanningTree& tree,
                                   const DelayModel& delays = {},
                                   std::uint64_t maxCycles = 1u << 20) {
  detail::BetaSynchronizer<Protocol> synchronizer(proto, g, tree, delays,
                                                  maxCycles);
  return synchronizer.run();
}

}  // namespace dima::net
