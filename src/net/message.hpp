#pragma once

/// \file message.hpp
/// Common message-layer types for the synchronous network simulator:
/// delivery envelopes, traffic accounting, and the channel fault model.

#include <cstdint>
#include <string>

#include "src/graph/graph.hpp"

namespace dima::net {

/// Compute nodes are graph vertices (the paper maps each vertex to a node).
using NodeId = graph::VertexId;

/// A delivered message with its sender. The payload type `M` is supplied by
/// the protocol (plain struct; kept by value).
template <class M>
struct Envelope {
  NodeId from = graph::kNoVertex;
  M msg{};
};

/// Traffic and synchronization accounting, updated by `SyncNetwork`.
///
/// Two transmission notions are tracked because the paper's radio model
/// makes them differ: one *broadcast* is a single transmission heard by all
/// neighbors, while the same information sent point-to-point costs degree
/// many sends. `messagesDelivered` counts per-receiver deliveries either way.
struct Counters {
  std::uint64_t commRounds = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t unicasts = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t messagesDropped = 0;
  std::uint64_t messagesDuplicated = 0;
  /// CONGEST accounting, populated when the message type models
  /// `wireBits()` (all protocol messages in this library do): total payload
  /// bits delivered and the largest single message. The paper's "one hop
  /// information" premise implies O(log n)-bit messages; tests check it.
  std::uint64_t bitsDelivered = 0;
  std::uint64_t maxMessageBits = 0;

  std::string toString() const;
};

/// Bit width of a value for wire-size estimates (0 → 1 bit).
constexpr std::uint64_t bitWidth(std::uint64_t v) {
  std::uint64_t bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

/// Channel perturbations. The paper's model assumes perfectly reliable
/// synchronous links; the fault model exists to *test* which guarantees
/// survive outside the model (safety must, liveness need not — see
/// tests/test_net_faults.cpp and the ablation bench).
struct FaultModel {
  /// Probability that any single (sender → receiver) delivery is lost.
  double dropProbability = 0.0;
  /// Probability that a delivered message arrives twice.
  double duplicateProbability = 0.0;
  /// Seed for the fault stream; faults are deterministic in
  /// (seed, commRound, from, to).
  std::uint64_t seed = 0x5eedFa017ULL;

  bool perturbs() const {
    return dropProbability > 0.0 || duplicateProbability > 0.0;
  }
};

}  // namespace dima::net
