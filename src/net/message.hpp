#pragma once

/// \file message.hpp
/// Common message-layer types for the synchronous network simulator:
/// delivery envelopes, traffic accounting, and the channel fault model.

// dimalint: hot-path — no std::function, no per-message allocation.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>

#include "src/graph/graph.hpp"

namespace dima::net {

/// Compute nodes are graph vertices (the paper maps each vertex to a node).
using NodeId = graph::VertexId;

/// A delivered message with its sender. The payload type `M` is supplied by
/// the protocol (plain struct; kept by value).
template <class M>
struct Envelope {
  NodeId from = graph::kNoVertex;
  M msg{};
};

/// One receiver-side delivery slot of the zero-copy message arena
/// (`SyncNetwork`). Every receiver owns one slot per incident edge; the
/// unique sender across that edge writes its payload straight into the
/// slot. Instead of clearing 2m slots every round, each slot carries the
/// epoch (communication round) it was written in: a slot is *live* exactly
/// when its tag equals the round being read. `copies` is the number of
/// times the payload arrived (0 = dropped by the fault model, 2 =
/// duplicated), so fault outcomes ride in the slot too.
template <class M>
struct MessageSlot {
  std::uint32_t epoch = 0;   ///< round tag; 0 = never written
  std::uint32_t copies = 0;  ///< deliveries this payload counts for
  Envelope<M> env{};         ///< `from` is fixed per slot at construction
};

/// A receiver's view of its live slots for one communication round: a
/// forward range of `const Envelope<M>&` in *incidence order* (neighbor-
/// sorted, i.e. ascending sender id — exactly the order the old staging
/// substrate delivered in, which is what keeps runs bit-identical across
/// executors). Slots from other rounds are skipped; a slot with
/// `copies == 2` is yielded twice. Views are invalidated by the next send
/// phase, not by `deliverRound()` itself.
template <class M>
class InboxView {
 public:
  class iterator {
   public:
    using value_type = Envelope<M>;
    using reference = const Envelope<M>&;
    using pointer = const Envelope<M>*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const MessageSlot<M>* cur, const MessageSlot<M>* last,
             std::uint32_t epoch)
        : cur_(cur), last_(last), epoch_(epoch) {
      skipStale();
    }

    reference operator*() const { return cur_->env; }
    pointer operator->() const { return &cur_->env; }

    iterator& operator++() {
      if (++emitted_ >= cur_->copies) {
        ++cur_;
        emitted_ = 0;
        skipStale();
      }
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      return a.cur_ == b.cur_ && a.emitted_ == b.emitted_;
    }

   private:
    void skipStale() {
      while (cur_ != last_ && (cur_->epoch != epoch_ || cur_->copies == 0)) {
        ++cur_;
      }
    }

    const MessageSlot<M>* cur_ = nullptr;
    const MessageSlot<M>* last_ = nullptr;
    std::uint32_t epoch_ = 0;
    std::uint32_t emitted_ = 0;
  };

  InboxView() = default;
  /// Views `count` slots, live iff tagged `epoch`. Epoch 0 (no round
  /// delivered yet) is an always-empty view.
  InboxView(const MessageSlot<M>* slots, std::size_t count,
            std::uint32_t epoch)
      : first_(slots), last_(slots + count), epoch_(epoch) {
    if (epoch_ == 0) first_ = last_;
  }

  iterator begin() const { return iterator(first_, last_, epoch_); }
  iterator end() const { return iterator(last_, last_, epoch_); }

  bool empty() const { return begin() == end(); }

  /// Deliveries in the view, fault duplicates counted twice. O(slots).
  std::size_t size() const {
    std::size_t n = 0;
    for (const MessageSlot<M>* s = first_; s != last_; ++s) {
      if (s->epoch == epoch_) n += s->copies;
    }
    return n;
  }

  /// First delivery; precondition: `!empty()`.
  const Envelope<M>& front() const { return *begin(); }

 private:
  const MessageSlot<M>* first_ = nullptr;
  const MessageSlot<M>* last_ = nullptr;
  std::uint32_t epoch_ = 0;
};

/// The inbox type protocol `receive` hooks take. Cheap to pass by value.
template <class M>
using Inbox = InboxView<M>;

/// Traffic and synchronization accounting, updated by `SyncNetwork`.
///
/// Two transmission notions are tracked because the paper's radio model
/// makes them differ: one *broadcast* is a single transmission heard by all
/// neighbors, while the same information sent point-to-point costs degree
/// many sends. `messagesDelivered` counts per-receiver deliveries either way.
struct Counters {
  std::uint64_t commRounds = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t unicasts = 0;
  std::uint64_t messagesDelivered = 0;
  std::uint64_t messagesDropped = 0;
  std::uint64_t messagesDuplicated = 0;
  /// Deliveries whose payload the chaos model rewrote (net/chaos.hpp).
  std::uint64_t messagesCorrupted = 0;
  /// CONGEST accounting, populated when the message type models
  /// `wireBits()` (all protocol messages in this library do): total payload
  /// bits delivered and the largest single message. The paper's "one hop
  /// information" premise implies O(log n)-bit messages; tests check it.
  std::uint64_t bitsDelivered = 0;
  std::uint64_t maxMessageBits = 0;

  /// Member-wise equality; the determinism sweep asserts counters match
  /// across worker counts.
  friend bool operator==(const Counters&, const Counters&) = default;

  std::string toString() const;
};

/// Bit width of a value for wire-size estimates (0 → 1 bit).
constexpr std::uint64_t bitWidth(std::uint64_t v) {
  std::uint64_t bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

/// Unified message kinds of the matching-automaton protocols (the Fig. 1
/// core in src/automata/core.hpp). Each wire format below uses a subset of
/// these kinds, and its `wireBits()` charges only the bits needed to index
/// that subset — 2 bits for the three-kind formats, 3 bits for the
/// five-kind one — so unifying the enum does not change any CONGEST
/// accounting.
enum class WireKind : std::uint8_t {
  Invite,           ///< I: proposal naming the invited listener
  Response,         ///< R: acceptance naming the invitor
  Tentative,        ///< strict handshake: item + color pending commit
  Abort,            ///< strict handshake: tentative item rolled back
  ColorAnnounce,    ///< E: color committed this round
  MatchedAnnounce,  ///< E: sender matched; neighbors retire it
};

/// Number of `WireKind` enumerators. Adding a kind means growing this,
/// which in turn forces the registries the static gates check: the
/// `wireKindName` switch (message.cpp, `-Wswitch` makes the missing case a
/// warning and the Werror build an error), at least one wire format's
/// `kKinds` table (the `wireKindsRegistered` static_assert below), and the
/// `InvariantMonitor`'s handling (`tools/dimalint` checks textually).
inline constexpr std::size_t kWireKindCount = 6;
static_assert(static_cast<std::size_t>(WireKind::MatchedAnnounce) + 1 ==
                  kWireKindCount,
              "kWireKindCount must track the WireKind enumerator list");

/// Diagnostic name of a wire kind ("invite", "abort", ...).
const char* wireKindName(WireKind kind);

/// "No arc/edge" sentinel of `TentativeColorWire::item` (the same bit
/// pattern as `graph::kNoEdge` and `graph::kNoArc`).
inline constexpr std::uint32_t kNoWireItem = static_cast<std::uint32_t>(-1);

/// Bare pairing wire format (matching discovery): the kind plus the named
/// peer. Uses Invite/Response/MatchedAnnounce — 3 kinds, 2-bit kind field.
struct PairWire {
  /// Kind subset this format encodes; the kind field is sized to index it.
  static constexpr WireKind kKinds[] = {
      WireKind::Invite, WireKind::Response, WireKind::MatchedAnnounce};
  static constexpr std::uint64_t kKindBits = bitWidth(std::size(kKinds) - 1);

  WireKind kind = WireKind::Invite;
  /// Invite: the invited listener. Response: the accepted invitor.
  /// MatchedAnnounce: the sender itself.
  NodeId target = graph::kNoVertex;

  /// CONGEST wire size: 2-bit kind + target id.
  std::uint64_t wireBits() const {
    return kKindBits + (target == graph::kNoVertex ? 1 : bitWidth(target));
  }
};

/// Pairing-with-color wire format (MaDEC and the dynamic repair protocol):
/// invitations and responses carry the target node and the proposed color;
/// exchange announcements carry the freshly used color. Uses
/// Invite/Response/ColorAnnounce — 3 kinds, 2-bit kind field. `color` is a
/// `coloring::Color` by value (the net layer sits below coloring, so the
/// underlying integer type is spelled out here).
struct ColorWire {
  static constexpr WireKind kKinds[] = {
      WireKind::Invite, WireKind::Response, WireKind::ColorAnnounce};
  static constexpr std::uint64_t kKindBits = bitWidth(std::size(kKinds) - 1);

  WireKind kind = WireKind::Invite;
  NodeId target = graph::kNoVertex;
  std::int32_t color = -1;

  /// CONGEST wire size: 2-bit kind + id + color (self-delimiting widths).
  std::uint64_t wireBits() const {
    return kKindBits + (target == graph::kNoVertex ? 1 : bitWidth(target)) +
           (color < 0 ? 1 : bitWidth(static_cast<std::uint64_t>(color)));
  }
};

/// `ColorWire` plus the committed item id (arc or edge) that the strict
/// tentative/abort handshake orders conflicts by (DiMa2Ed, strong MaDEC).
/// Uses all kinds but MatchedAnnounce — 5 kinds, 3-bit kind field.
struct TentativeColorWire {
  static constexpr WireKind kKinds[] = {
      WireKind::Invite, WireKind::Response, WireKind::Tentative,
      WireKind::Abort, WireKind::ColorAnnounce};
  static constexpr std::uint64_t kKindBits = bitWidth(std::size(kKinds) - 1);

  WireKind kind = WireKind::Invite;
  NodeId target = graph::kNoVertex;
  std::int32_t color = -1;
  std::uint32_t item = kNoWireItem;  ///< arc/edge id; kNoWireItem = unused

  /// CONGEST wire size: 3-bit kind + id + color + item id.
  std::uint64_t wireBits() const {
    return kKindBits + (target == graph::kNoVertex ? 1 : bitWidth(target)) +
           (color < 0 ? 1 : bitWidth(static_cast<std::uint64_t>(color))) +
           (item == kNoWireItem ? 1 : bitWidth(item));
  }
};

namespace detail {
/// Does `Format`'s kind table carry `k` (and hence size a kind field that
/// can encode it)?
template <class Format>
constexpr bool formatCarries(WireKind k) {
  for (const WireKind f : Format::kKinds) {
    if (f == k) return true;
  }
  return false;
}
}  // namespace detail

/// True when every `WireKind` value below `count` is carried by at least
/// one of the formats, i.e. has a registered kind-field width through that
/// format's `kKinds`/`kKindBits`. The static_assert below is the
/// compile-time half of the registry gate (tests/negative_compile pins
/// that an uncarried kind fails to compile); `tools/dimalint` re-checks
/// the same property textually so it also catches a weakened assert.
template <class... Formats>
constexpr bool wireKindsRegistered(std::size_t count) {
  for (std::size_t v = 0; v < count; ++v) {
    const WireKind k = static_cast<WireKind>(v);
    if (!(detail::formatCarries<Formats>(k) || ...)) return false;
  }
  return true;
}

static_assert(
    wireKindsRegistered<PairWire, ColorWire, TentativeColorWire>(
        kWireKindCount),
    "every WireKind needs a wire format registering its kind-field width");

/// Channel perturbations. The paper's model assumes perfectly reliable
/// synchronous links; the fault model exists to *test* which guarantees
/// survive outside the model (safety must, liveness need not — see
/// tests/test_net_faults.cpp and the ablation bench).
struct FaultModel {
  /// Probability that any single (sender → receiver) delivery is lost.
  double dropProbability = 0.0;
  /// Probability that a delivered message arrives twice.
  double duplicateProbability = 0.0;
  /// Seed for the fault stream; faults are deterministic in
  /// (seed, commRound, from, to).
  std::uint64_t seed = 0x5eedFa017ULL;

  bool perturbs() const {
    return dropProbability > 0.0 || duplicateProbability > 0.0;
  }
};

}  // namespace dima::net
