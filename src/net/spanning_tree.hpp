#pragma once

/// \file spanning_tree.hpp
/// Distributed BFS spanning tree + synchronous termination detection.
///
/// The protocol engine detects global termination with the simulator's
/// omniscient view; a real deployment of the paper's algorithms cannot.
/// The standard remedy in the synchronous model is a convergecast over a
/// BFS tree: each node reports "my whole subtree is done" to its parent
/// the round it becomes true, and the root learns of global termination
/// `height` rounds after the last node finishes.
///
/// This module provides both halves:
///  * `buildSpanningTreeFlood` — the tree itself, built *distributively*
///    by synchronous flooding on the same one-hop network the coloring
///    algorithms use (root claims depth 0; every newly claimed node
///    broadcasts once; unclaimed nodes adopt the lowest-id claimant heard
///    first). Takes eccentricity(root) rounds, yielding a BFS (minimum
///    depth) tree.
///  * `detectionRound` — the exact round at which the root detects
///    termination given each node's completion round, i.e. the cost the
///    engine's omniscient check hides. In the synchronous model this is a
///    closed form over the tree (a node can first report in the round
///    after both it and all of its children's subtrees could report), so
///    no extra simulation is needed.

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"

namespace dima::net {

struct SpanningTree {
  graph::VertexId root = graph::kNoVertex;
  /// Parent per vertex; kNoVertex for the root.
  std::vector<graph::VertexId> parent;
  /// Hop distance from the root (BFS depth).
  std::vector<std::uint32_t> depth;
  /// Communication rounds the flood needed (= eccentricity of the root).
  std::uint64_t buildRounds = 0;

  std::size_t height() const;
};

/// Builds a BFS spanning tree of the *connected* graph `g` by distributed
/// flooding from `root`.
SpanningTree buildSpanningTreeFlood(const graph::Graph& g,
                                    graph::VertexId root,
                                    EngineOptions options = {});

/// The round at which `tree.root` learns that every node has finished,
/// given `completionRound[v]` = the computation round in which node v
/// entered its Done state. One report hop per round; a node reports the
/// round after max(own completion, all children's report rounds).
std::uint64_t detectionRound(const SpanningTree& tree,
                             const std::vector<std::uint64_t>& completionRound);

}  // namespace dima::net
