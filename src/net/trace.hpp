#pragma once

/// \file trace.hpp
/// Optional event tracing for protocol runs. Disabled traces cost one branch
/// per event; enabled traces record (cycle, node, kind, detail) rows that the
/// `trace_rounds` example renders into a per-round account of the automaton.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/net/message.hpp"

namespace dima::net {

enum class TraceKind : std::uint8_t {
  StateChoice,   ///< node chose invitor/listener in C
  InviteSent,    ///< I: invitation broadcast
  InviteKept,    ///< L: invitation stored
  ResponseSent,  ///< R: invitation accepted
  EdgeColored,   ///< U: an edge/arc received its final color
  Aborted,       ///< strict DiMa2Ed: tentative color rolled back
  NodeDone,      ///< node entered D
  /// Extended event (emitted only when `TraceLog::extended()`): a node went
  /// tentative on (item, color) in the strict handshake. Appended after the
  /// original kinds so the pinned trace fingerprints keep their values.
  TentativeSet,
};

const char* traceKindName(TraceKind kind);

struct TraceEvent {
  std::uint64_t cycle = 0;
  NodeId node = graph::kNoVertex;
  TraceKind kind = TraceKind::StateChoice;
  /// Event-specific fields (peer id, color, ...) — -1 when unused.
  std::int64_t a = -1;
  std::int64_t b = -1;
};

class TraceLog {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  /// Tracing starts disabled; `record` stores nothing until enabled. A
  /// sink (below) observes events regardless.
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Streams every recorded event to `sink` without storing it — the
  /// invariant monitor's memory-light subscription (src/sim/monitor.hpp).
  void setSink(Sink sink) { sink_ = std::move(sink); }

  /// Opt-in for the extended kinds (TentativeSet): protocols emit them only
  /// when this is set, so the pinned default-trace fingerprints are
  /// untouched.
  void enableExtended(bool on = true) { extended_ = on; }
  bool extended() const { return extended_; }

  void record(std::uint64_t cycle, NodeId node, TraceKind kind,
              std::int64_t a = -1, std::int64_t b = -1) {
    if (sink_) sink_(TraceEvent{cycle, node, kind, a, b});
    if (!enabled_) return;
    events_.push_back(TraceEvent{cycle, node, kind, a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind within one cycle.
  std::size_t countInCycle(std::uint64_t cycle, TraceKind kind) const;

  /// Human-readable multi-line rendering ("cycle 3: node 7 invite-sent ...").
  std::string render() const;

 private:
  bool enabled_ = false;
  bool extended_ = false;
  Sink sink_;
  std::vector<TraceEvent> events_;
};

}  // namespace dima::net
