#pragma once

/// \file trace.hpp
/// Optional event tracing for protocol runs. Disabled traces cost one branch
/// per event; enabled traces record (cycle, node, kind, detail) rows that the
/// `trace_rounds` example renders into a per-round account of the automaton.
///
/// Concurrency: a `TraceLog` is **serial-executor-only**. `record` appends
/// to an unsynchronized vector and calls the sink inline, so a traced run
/// must not use a `ThreadPool` (it would race, and the event order — hence
/// the pinned fingerprints — would depend on the interleaving). The
/// `serialPhase_` capability writes that contract into the type: every
/// accessor passes an assertion choke point, and clang's analysis flags any
/// new access path that skips it.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/net/message.hpp"
#include "src/support/mutex.hpp"

namespace dima::net {

enum class TraceKind : std::uint8_t {
  StateChoice,   ///< node chose invitor/listener in C
  InviteSent,    ///< I: invitation broadcast
  InviteKept,    ///< L: invitation stored
  ResponseSent,  ///< R: invitation accepted
  EdgeColored,   ///< U: an edge/arc received its final color
  Aborted,       ///< strict DiMa2Ed: tentative color rolled back
  NodeDone,      ///< node entered D
  /// Extended event (emitted only when `TraceLog::extended()`): a node went
  /// tentative on (item, color) in the strict handshake. Appended after the
  /// original kinds so the pinned trace fingerprints keep their values.
  TentativeSet,
};

/// Number of `TraceKind` enumerators. A new kind must grow this, name
/// itself in `traceKindName`, and be consumed by the `InvariantMonitor`
/// (src/sim/monitor.cpp) — `tools/dimalint` enforces the last leg.
inline constexpr std::size_t kTraceKindCount = 8;
static_assert(static_cast<std::size_t>(TraceKind::TentativeSet) + 1 ==
                  kTraceKindCount,
              "kTraceKindCount must track the TraceKind enumerator list");

const char* traceKindName(TraceKind kind);

struct TraceEvent {
  std::uint64_t cycle = 0;
  NodeId node = graph::kNoVertex;
  TraceKind kind = TraceKind::StateChoice;
  /// Event-specific fields (peer id, color, ...) — -1 when unused.
  std::int64_t a = -1;
  std::int64_t b = -1;
};

class TraceLog {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  /// Tracing starts disabled; `record` stores nothing until enabled. A
  /// sink (below) observes events regardless.
  void enable(bool on = true) {
    serialPhase_.assertExclusive();
    enabled_ = on;
  }
  bool enabled() const {
    serialPhase_.assertShared();
    return enabled_;
  }

  /// Streams every recorded event to `sink` without storing it — the
  /// invariant monitor's memory-light subscription (src/sim/monitor.hpp).
  /// Registration is setup-phase: install sinks before the run starts.
  void setSink(Sink sink) {
    serialPhase_.assertExclusive();
    sink_ = std::move(sink);
  }

  /// Opt-in for the extended kinds (TentativeSet): protocols emit them only
  /// when this is set, so the pinned default-trace fingerprints are
  /// untouched.
  void enableExtended(bool on = true) {
    serialPhase_.assertExclusive();
    extended_ = on;
  }
  bool extended() const {
    serialPhase_.assertShared();
    return extended_;
  }

  void record(std::uint64_t cycle, NodeId node, TraceKind kind,
              std::int64_t a = -1, std::int64_t b = -1) {
    serialPhase_.assertExclusive();  // traced runs use the serial executor
    const TraceEvent event{cycle, node, kind, a, b};
    if (sink_) sink_(event);
    if (!enabled_) return;
    events_.push_back(event);
  }

  const std::vector<TraceEvent>& events() const {
    serialPhase_.assertShared();
    return events_;
  }
  void clear() {
    serialPhase_.assertExclusive();
    events_.clear();
  }

  /// Events of one kind within one cycle.
  std::size_t countInCycle(std::uint64_t cycle, TraceKind kind) const;

  /// Human-readable multi-line rendering ("cycle 3: node 7 invite-sent ...").
  std::string render() const;

 private:
  /// Single-threaded discipline (see the file comment): exclusive for
  /// mutation and `record`, shared for the read-only accessors.
  support::PhaseCapability serialPhase_;
  bool enabled_ DIMA_GUARDED_BY(serialPhase_) = false;
  bool extended_ DIMA_GUARDED_BY(serialPhase_) = false;
  Sink sink_ DIMA_GUARDED_BY(serialPhase_);
  std::vector<TraceEvent> events_ DIMA_GUARDED_BY(serialPhase_);
};

}  // namespace dima::net
