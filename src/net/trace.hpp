#pragma once

/// \file trace.hpp
/// Optional event tracing for protocol runs. Disabled traces cost one branch
/// per event; enabled traces record (cycle, node, kind, detail) rows that the
/// `trace_rounds` example renders into a per-round account of the automaton.

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/message.hpp"

namespace dima::net {

enum class TraceKind : std::uint8_t {
  StateChoice,   ///< node chose invitor/listener in C
  InviteSent,    ///< I: invitation broadcast
  InviteKept,    ///< L: invitation stored
  ResponseSent,  ///< R: invitation accepted
  EdgeColored,   ///< U: an edge/arc received its final color
  Aborted,       ///< strict DiMa2Ed: tentative color rolled back
  NodeDone,      ///< node entered D
};

const char* traceKindName(TraceKind kind);

struct TraceEvent {
  std::uint64_t cycle = 0;
  NodeId node = graph::kNoVertex;
  TraceKind kind = TraceKind::StateChoice;
  /// Event-specific fields (peer id, color, ...) — -1 when unused.
  std::int64_t a = -1;
  std::int64_t b = -1;
};

class TraceLog {
 public:
  /// Tracing starts disabled; `record` is a no-op until enabled.
  void enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(std::uint64_t cycle, NodeId node, TraceKind kind,
              std::int64_t a = -1, std::int64_t b = -1) {
    if (!enabled_) return;
    events_.push_back(TraceEvent{cycle, node, kind, a, b});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind within one cycle.
  std::size_t countInCycle(std::uint64_t cycle, TraceKind kind) const;

  /// Human-readable multi-line rendering ("cycle 3: node 7 invite-sent ...").
  std::string render() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace dima::net
