#pragma once

/// \file shard.hpp
/// `ShardedNetwork<M>`: the multi-shard message substrate (DESIGN.md §13).
///
/// Partition the vertices into K shards (graph/partition.hpp) and give each
/// shard its own slot arena — the same CSR slot layout as `SyncNetwork`,
/// restricted to the shard's own receivers. Sends split by destination:
///
///  * *intra-shard* (both endpoints in one shard): written directly into
///    the receiver-side slot via the precomputed route table — byte for
///    byte the `SyncNetwork` hot path;
///  * *boundary* (endpoints in different shards): written into a
///    preassigned record of the destination shard's inbound buffer. One
///    record per boundary arc, fixed at construction, so the send phase
///    stays lock-free (single writer per record) and a round's cross-shard
///    traffic is exactly the records tagged with the open epoch — a
///    batched, epoch-tagged delta, the unit a future multi-process
///    deployment would put on the wire.
///
/// `deliverRound()` (or the sharded engine's per-shard `mergeInbound`)
/// copies each live record into its destination slot and bumps the epoch.
/// Every record targets the slot the mirror-arc table of an unsharded run
/// would have written, and slots sit in the receiver's incidence-ordered
/// block, so `InboxView` iteration is bit-identical to `SyncNetwork` for
/// *any* partition — colors, `Counters`, and traces cannot observe K.
///
/// Fault injection is out of scope by contract (like the bit-plane
/// engine): chaos models make the message plane stateful in ways a
/// boundary buffer would have to replicate exactly; drivers route
/// perturbed runs to the reference substrate instead.

#include <algorithm>
#include <array>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

// dimalint: hot-path — no std::function, no per-message allocation.

#include "src/graph/graph.hpp"
#include "src/graph/partition.hpp"
#include "src/net/message.hpp"
#include "src/support/assert.hpp"
#include "src/support/mutex.hpp"

namespace dima::net {

/// `Topo` as in `SyncNetwork`: anything with the `graph::Graph` topology
/// surface (`numVertices`, neighbor-sorted `incidences`), immutable while
/// the network is in use. The partition must cover exactly the topology's
/// vertices.
template <class M, class Topo = graph::Graph>
class ShardedNetwork {
 public:
  /// Lays out K arenas, the route table, and the boundary buffers in
  /// O(n + m). `part` is copied in; the topology must outlive the network.
  ShardedNetwork(const Topo& topology, graph::Partition part)
      : topo_(&topology), part_(std::move(part)) {
    const std::size_t n = numNodes();
    DIMA_REQUIRE(part_.shardOf.size() == n,
                 "partition covers " << part_.shardOf.size()
                                     << " vertices, topology has " << n);
    offsets_.resize(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      offsets_[v + 1] =
          offsets_[v] + static_cast<std::uint32_t>(
                            topo_->incidences(static_cast<NodeId>(v)).size());
    }
    // Each shard's arena holds its members' slot blocks in ascending
    // member order; `slotBase_[v]` is v's block offset within its arena.
    slotBase_.resize(n, 0);
    arenas_.resize(part_.count);
    for (std::uint32_t s = 0; s < part_.count; ++s) {
      std::uint32_t cursor = 0;
      for (const graph::VertexId v : part_.members[s]) {
        slotBase_[v] = cursor;
        cursor += offsets_[v + 1] - offsets_[v];
      }
      // Intra-shard routes carry a bare slot index with bit 31 reserved for
      // kBoundaryFlag; a larger arena would alias the flag and misroute
      // sends into the boundary buffer.
      DIMA_REQUIRE(cursor <= kBoundaryFlag,
                   "shard " << s << " arena needs " << cursor
                            << " slots, beyond the route encoding's 2^31 cap;"
                            << " use more shards");
      arenas_[s].resize(cursor);
      for (const graph::VertexId v : part_.members[s]) {
        const auto incs = topo_->incidences(v);
        for (std::size_t j = 0; j < incs.size(); ++j) {
          arenas_[s][slotBase_[v] + j].env.from = incs[j].neighbor;
        }
      }
    }
    // Route table, by the same cursor sweep that builds `SyncNetwork`'s
    // mirror table: scanning senders u in ascending order, the arcs landing
    // on any receiver w arrive in ascending-u order — exactly w's
    // neighbor-sorted slot order — so each arc consumes w's next free slot.
    // An intra-shard arc routes straight to that slot; a boundary arc
    // claims the next record of the destination shard's inbound buffer,
    // remembering the slot the record will be merged into.
    route_.resize(offsets_[n]);
    inbound_.resize(part_.count);
    sendState_.assign(n, SendState{});
    std::vector<std::uint32_t> cursor(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      const auto incs = topo_->incidences(static_cast<NodeId>(u));
      for (std::size_t j = 0; j < incs.size(); ++j) {
        const NodeId w = incs[j].neighbor;
        const std::uint32_t slot = slotBase_[w] + cursor[w]++;
        if (part_.shardOf[u] == part_.shardOf[w]) {
          route_[offsets_[u] + j] = slot;
        } else {
          auto& records = inbound_[part_.shardOf[w]];
          DIMA_REQUIRE(records.size() < kBoundaryFlag,
                       "boundary buffer overflow");
          route_[offsets_[u] + j] =
              static_cast<std::uint32_t>(records.size()) | kBoundaryFlag;
          records.push_back(BoundaryRecord{0, slot, M{}});
          ++boundaryArcs_;
        }
      }
    }
  }

  const Topo& topology() const { return *topo_; }
  const graph::Partition& partition() const { return part_; }
  std::size_t numNodes() const {
    return static_cast<std::size_t>(topo_->numVertices());
  }
  std::uint32_t shardCount() const { return part_.count; }
  std::span<const graph::VertexId> shardMembers(std::uint32_t s) const {
    return part_.members[s];
  }
  /// Directed arcs crossing shards — the per-round cross-shard traffic
  /// ceiling (records written ≤ this each communication round).
  std::uint64_t boundaryArcs() const { return boundaryArcs_; }
  double boundaryArcFraction() const {
    return offsets_.back() == 0 ? 0.0
                                : static_cast<double>(boundaryArcs_) /
                                      static_cast<double>(offsets_.back());
  }

  /// Same contract as `SyncNetwork::broadcast`: one transmission into every
  /// neighbor's slot (or boundary record), the sender's whole round
  /// allowance. Callable concurrently for distinct senders.
  // dimacheck: hot-path
  void broadcast(NodeId from, const M& m) {
    roundPhase_.assertShared();
    checkNode(from);
    SendState& st = sendState_[from];
    DIMA_REQUIRE(st.epoch != sendEpoch_,
                 "node " << from << " exceeded its round send allowance");
    st.epoch = sendEpoch_;
    st.broadcast = true;
    const auto incs = topo_->incidences(from);
    const std::uint32_t base = offsets_[from];
    for (std::size_t j = 0; j < incs.size(); ++j) {
      writeArc(base + static_cast<std::uint32_t>(j), incs[j].neighbor, m);
    }
    CounterShard& sh = shards_[shardFor(from)];
    sh.broadcasts.fetch_add(1, std::memory_order_relaxed);
    accountSend(sh, m, incs.size());
  }

  /// Same contract as `SyncNetwork::unicast`: one slot, adjacency checked,
  /// duplicate targets and broadcast/unicast mixing rejected.
  // dimacheck: hot-path
  void unicast(NodeId from, NodeId to, const M& m) {
    roundPhase_.assertShared();
    checkNode(from);
    checkNode(to);
    const auto incs = topo_->incidences(from);
    const auto it = std::lower_bound(
        incs.begin(), incs.end(), to,
        [](const graph::Incidence& inc, NodeId v) { return inc.neighbor < v; });
    DIMA_REQUIRE(it != incs.end() && it->neighbor == to,
                 "unicast " << from << "→" << to << " without a link");
    SendState& st = sendState_[from];
    DIMA_REQUIRE(!(st.epoch == sendEpoch_ && st.broadcast),
                 "node " << from << " mixed broadcast and unicast in a round");
    const std::uint32_t arc =
        offsets_[from] + static_cast<std::uint32_t>(it - incs.begin());
    DIMA_REQUIRE(arcEpoch(arc, to) != sendEpoch_,
                 "node " << from << " sent to " << to << " twice in a round");
    st.epoch = sendEpoch_;
    st.broadcast = false;
    writeArc(arc, to, m);
    CounterShard& sh = shards_[shardFor(from)];
    sh.unicasts.fetch_add(1, std::memory_order_relaxed);
    accountSend(sh, m, 1);
  }

  /// Merges shard `s`'s live inbound records into its arena slots. The
  /// sharded engine calls this once per shard per communication round,
  /// from the shard's own thread, between the all-sends-done barrier and
  /// the epoch bump; each record has a fixed destination slot, so merge
  /// order cannot affect inbox contents.
  // dimacheck: hot-path
  void mergeInbound(std::uint32_t s) {
    roundPhase_.assertShared();
    mergeRecords(s);
  }

  /// Publishes the just-written epoch and opens the next one. Serial, at
  /// the executor's barrier — `mergeInbound` must already have run for
  /// every shard (the barrier schedule guarantees it).
  // dimacheck: hot-path
  void advanceEpochs() {
    roundPhase_.assertExclusive();
    readEpoch_ = sendEpoch_;
    ++sendEpoch_;
    ++commRounds_;
  }

  /// Serial-executor delivery: merge every shard, then bump. This is what
  /// `runSyncProtocol` calls, so a traced (serial) run drives the sharded
  /// substrate with no engine changes at all.
  // dimacheck: hot-path
  void deliverRound() {
    roundPhase_.assertExclusive();
    for (std::uint32_t s = 0; s < part_.count; ++s) mergeRecords(s);
    readEpoch_ = sendEpoch_;
    ++sendEpoch_;
    ++commRounds_;
  }

  /// Incidence-ordered view of `v`'s slots, exactly as `SyncNetwork`.
  Inbox<M> inbox(NodeId v) const {
    roundPhase_.assertShared();
    checkNode(v);
    return Inbox<M>(arenas_[part_.shardOf[v]].data() + slotBase_[v],
                    offsets_[v + 1] - offsets_[v], readEpoch_);
  }

  /// Order-independent fold of the sharded counters (sums and a max).
  Counters counters() const {
    roundPhase_.assertShared();
    Counters c;
    c.commRounds = commRounds_;
    for (const CounterShard& s : shards_) {
      c.broadcasts += s.broadcasts.load(std::memory_order_relaxed);
      c.unicasts += s.unicasts.load(std::memory_order_relaxed);
      c.messagesDelivered += s.delivered.load(std::memory_order_relaxed);
      c.bitsDelivered += s.bits.load(std::memory_order_relaxed);
      c.maxMessageBits =
          std::max(c.maxMessageBits, s.maxBits.load(std::memory_order_relaxed));
    }
    return c;
  }

 private:
  /// A boundary arc's per-round delta: the payload plus the destination
  /// slot it merges into. `epoch` tags the round the record was written
  /// (0 = never); stale records are simply skipped at merge time, so
  /// nothing is cleared between rounds.
  struct BoundaryRecord {
    std::uint32_t epoch = 0;
    std::uint32_t slot = 0;  ///< index into the destination shard's arena
    M msg{};
  };

  struct SendState {
    std::uint32_t epoch = 0;
    bool broadcast = false;
  };

  struct alignas(64) CounterShard {
    std::atomic<std::uint64_t> broadcasts{0};
    std::atomic<std::uint64_t> unicasts{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> bits{0};
    std::atomic<std::uint64_t> maxBits{0};
  };
  static constexpr std::size_t kCounterShards = 64;
  static constexpr std::uint32_t kBoundaryFlag = 0x80000000u;

  static std::size_t shardFor(NodeId from) {
    return (static_cast<std::size_t>(from) >> 6) & (kCounterShards - 1);
  }

  void checkNode(NodeId v) const {
    DIMA_REQUIRE(v < numNodes(), "node id " << v << " out of range");
  }

  static void atomicMax(std::atomic<std::uint64_t>& target,
                        std::uint64_t value) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (cur < value && !target.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Routes one arc's payload: straight to the receiver slot when the
  /// endpoints share a shard, into the destination shard's preassigned
  /// boundary record otherwise. Single writer per slot/record per round.
  void writeArc(std::uint32_t arc, NodeId to, const M& m)
      DIMA_REQUIRES_SHARED(roundPhase_) {
    const std::uint32_t r = route_[arc];
    if (r & kBoundaryFlag) {
      BoundaryRecord& rec = inbound_[part_.shardOf[to]][r & ~kBoundaryFlag];
      rec.epoch = sendEpoch_;
      rec.msg = m;
    } else {
      MessageSlot<M>& s = arenas_[part_.shardOf[to]][r];
      s.epoch = sendEpoch_;
      s.copies = 1;
      s.env.msg = m;
    }
  }

  /// The round tag last written on `arc`'s destination (slot or record) —
  /// the duplicate-target check for unicasts.
  std::uint32_t arcEpoch(std::uint32_t arc, NodeId to) const
      DIMA_REQUIRES_SHARED(roundPhase_) {
    const std::uint32_t r = route_[arc];
    if (r & kBoundaryFlag) {
      return inbound_[part_.shardOf[to]][r & ~kBoundaryFlag].epoch;
    }
    return arenas_[part_.shardOf[to]][r].epoch;
  }

  void mergeRecords(std::uint32_t s) DIMA_REQUIRES_SHARED(roundPhase_) {
    auto& arena = arenas_[s];
    for (const BoundaryRecord& rec : inbound_[s]) {
      if (rec.epoch != sendEpoch_) continue;
      MessageSlot<M>& slot = arena[rec.slot];
      slot.epoch = rec.epoch;
      slot.copies = 1;
      slot.env.msg = rec.msg;
    }
  }

  /// CONGEST accounting identical to `SyncNetwork::accountSend` on the
  /// fault-free model: bits per attempt, every attempt delivered.
  void accountSend(CounterShard& sh, const M& m, std::size_t attempts) {
    if constexpr (requires(const M& mm) {
                    { mm.wireBits() } -> std::convertible_to<std::uint64_t>;
                  }) {
      if (attempts != 0) {
        const std::uint64_t bits = m.wireBits();
        sh.bits.fetch_add(bits * attempts, std::memory_order_relaxed);
        atomicMax(sh.maxBits, bits);
      }
    }
    if (attempts != 0) {
      sh.delivered.fetch_add(attempts, std::memory_order_relaxed);
    }
  }

  const Topo* topo_;
  graph::Partition part_;
  /// Global CSR degrees: v's slots span `[slotBase_[v], slotBase_[v] +
  /// offsets_[v+1] - offsets_[v])` of its shard's arena.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> slotBase_;
  std::vector<std::vector<MessageSlot<M>>> arenas_;
  /// Per directed arc `offsets_[u] + j`: destination slot index, or
  /// (with `kBoundaryFlag`) destination-shard boundary-record index.
  std::vector<std::uint32_t> route_;
  /// Per destination shard: one record per inbound boundary arc, in
  /// ascending (sender, incidence) order, fixed at construction.
  std::vector<std::vector<BoundaryRecord>> inbound_;
  std::vector<SendState> sendState_;
  std::array<CounterShard, kCounterShards> shards_{};
  std::uint64_t boundaryArcs_ = 0;
  /// Same phase discipline as `SyncNetwork`: epochs mutate only at the
  /// serial barrier (exclusive); sends/merges/reads run shared with
  /// single-writer disciplines the analysis cannot express (TSan covers
  /// those).
  support::PhaseCapability roundPhase_;
  std::uint32_t sendEpoch_ DIMA_GUARDED_BY(roundPhase_) = 1;
  std::uint32_t readEpoch_ DIMA_GUARDED_BY(roundPhase_) = 0;
  std::uint64_t commRounds_ DIMA_GUARDED_BY(roundPhase_) = 0;
};

}  // namespace dima::net
