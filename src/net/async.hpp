#pragma once

/// \file async.hpp
/// Asynchronous execution of the synchronous protocols via Awerbuch's
/// α-synchronizer.
///
/// The paper's model assumes lockstep rounds ("we can assume that compute
/// nodes are synchronized", §I-C). Real ad-hoc networks are asynchronous;
/// the classical bridge is a synchronizer, which buys the synchronous
/// abstraction with extra messages. This module implements the
/// α-synchronizer over an event-driven network with per-message delays:
///
///  * every sub-round of the protocol becomes a *pulse*;
///  * a node entering pulse p runs the protocol's send hook; each payload
///    message is acknowledged by its receiver on arrival;
///  * when all of a node's pulse-p payloads are acked it is *safe* and
///    tells its neighbors;
///  * a node moves to pulse p+1 once it and all neighbors are safe for p —
///    at which point every pulse-p message addressed to it has arrived, so
///    the protocol's receive hook sees exactly the synchronous inbox.
///
/// Arrivals are handed to the protocol sorted by sender id (the order the
/// synchronous engine produces), so a protocol run under the synchronizer
/// is **bit-identical** to its synchronous run — asserted by tests — while
/// the runner additionally reports the α-synchronizer's true costs: 3×
/// the messages (payload + ack + safe) and the simulated completion time
/// under random link delays.
///
/// Neighboring nodes stay within one pulse of each other, but connected
/// components drift apart freely; a component whose nodes have all reached
/// their protocol Done state is *parked* (its pulsing stops) so early
/// finishers don't spin while the rest of the network works.
///
/// Broadcast caveat: the asynchronous network is point-to-point, so one
/// radio broadcast costs deg(u) payload messages here — the honest price
/// of losing the shared medium.

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/graph/metrics.hpp"
#include "src/net/engine.hpp"
#include "src/net/network.hpp"
#include "src/support/mutex.hpp"
#include "src/support/rng.hpp"

namespace dima::net {

/// Per-message link delays: uniform in [minDelay, maxDelay] time units,
/// deterministic in (seed, message sequence number).
struct DelayModel {
  double minDelay = 0.5;
  double maxDelay = 1.5;
  std::uint64_t seed = 0xde1a7ULL;
};

struct AsyncRunResult {
  std::uint64_t cycles = 0;          ///< protocol computation rounds
  std::uint64_t pulses = 0;          ///< synchronizer pulses (= comm rounds)
  bool converged = false;
  double simTime = 0.0;              ///< simulated time at termination
  std::uint64_t payloadMessages = 0;
  std::uint64_t ackMessages = 0;
  std::uint64_t safeMessages = 0;
  /// Protocol-level traffic accounting from the collector network. Since the
  /// arena substrate accounts at send time, the synchronizer path reports
  /// the same `bitsDelivered`/`maxMessageBits` as the sync engine for
  /// identical traffic (it used to under-report: drainStaged bypassed bit
  /// accounting). `commRounds` stays 0 here — pulses play that role.
  Counters counters;
  std::uint64_t totalMessages() const {
    return payloadMessages + ackMessages + safeMessages;
  }
};

namespace detail {

/// Event-driven α-synchronizer core; see runAlphaSynchronized below.
template <class Protocol>
class AlphaSynchronizer {
 public:
  using M = typename Protocol::Message;

  AlphaSynchronizer(Protocol& proto, const graph::Graph& g,
                    const DelayModel& delays, std::uint64_t maxCycles)
      : proto_(&proto),
        g_(&g),
        collector_(g),
        delays_(delays),
        maxPulses_(maxCycles *
                   static_cast<std::uint64_t>(proto.subRounds())),
        nodes_(g.numVertices()) {
    const graph::Components comps = graph::connectedComponents(g);
    component_ = comps.label;
    componentSize_.assign(comps.count, 0);
    componentDone_.assign(comps.count, 0);
    componentParked_.assign(comps.count, false);
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      ++componentSize_[component_[u]];
    }
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      nodes_[u].wasDone = proto.done(u);
      if (nodes_[u].wasDone) noteDone(u);
    }
  }

  AsyncRunResult run() {
    // The synchronizer is one event loop on one thread; the capability
    // makes that explicit so no helper grows a concurrent caller.
    eventLoop_.assertExclusive();
    const std::size_t n = g_->numVertices();
    AsyncRunResult result;
    if (n == 0 || doneCount_ == n) {
      result.converged = true;
      return result;
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!componentParked_[component_[u]]) enterPulse(u, 0);
    }
    for (NodeId u = 0; u < n; ++u) {
      maybeAdvance(u);
      if (doneCount_ == n) break;
    }
    while (doneCount_ < n && !events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      handle(ev);
      if (highestPulse_ >= maxPulses_) break;
    }
    result.converged = doneCount_ == n;
    result.pulses = highestPulse_;
    result.cycles = (highestPulse_ +
                     static_cast<std::uint64_t>(proto_->subRounds()) - 1) /
                    static_cast<std::uint64_t>(proto_->subRounds());
    result.simTime = now_;
    result.payloadMessages = payloadCount_;
    result.ackMessages = ackCount_;
    result.safeMessages = safeCount_;
    result.counters = collector_.counters();
    return result;
  }

 private:
  enum class Kind : std::uint8_t { Payload, Ack, Safe };

  struct Event {
    double time = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak for equal times
    Kind kind = Kind::Payload;
    NodeId from = graph::kNoVertex;
    NodeId to = graph::kNoVertex;
    std::uint64_t pulse = 0;
    M payload{};

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct NodeSyncState {
    std::uint64_t pulse = 0;
    std::size_t pendingAcks = 0;
    bool selfSafe = false;
    bool wasDone = false;
    /// Neighbors safe for the node's *current* pulse.
    std::size_t neighborsSafe = 0;
    /// safe(p) notifications that raced ahead of this node's pulse change.
    std::vector<std::uint64_t> earlySafe;
    /// Buffered payloads by pulse (only current and next can occur).
    std::vector<std::pair<std::uint64_t, Envelope<M>>> buffered;
  };

  void noteDone(NodeId u) {
    const auto c = component_[u];
    ++doneCount_;
    if (++componentDone_[c] == componentSize_[c]) {
      componentParked_[c] = true;
    }
  }

  void refreshDone(NodeId u) {
    if (!nodes_[u].wasDone && proto_->done(u)) {
      nodes_[u].wasDone = true;
      noteDone(u);
    }
  }

  double drawDelay() DIMA_REQUIRES(eventLoop_) {
    const std::uint64_t key = support::mix64(delays_.seed, seq_);
    support::Rng rng(key);
    return delays_.minDelay +
           (delays_.maxDelay - delays_.minDelay) * rng.uniform01();
  }

  void post(Kind kind, NodeId from, NodeId to, std::uint64_t pulse,
            const M& payload = {}) DIMA_REQUIRES(eventLoop_) {
    Event ev;
    ev.seq = seq_++;
    ev.time = now_ + drawDelay();
    ev.kind = kind;
    ev.from = from;
    ev.to = to;
    ev.pulse = pulse;
    ev.payload = payload;
    events_.push(ev);
    switch (kind) {
      case Kind::Payload:
        ++payloadCount_;
        break;
      case Kind::Ack:
        ++ackCount_;
        break;
      case Kind::Safe:
        ++safeCount_;
        break;
    }
  }

  void enterPulse(NodeId u, std::uint64_t pulse) DIMA_REQUIRES(eventLoop_) {
    NodeSyncState& s = nodes_[u];
    s.pulse = pulse;
    s.selfSafe = false;
    s.neighborsSafe = 0;
    const int subs = proto_->subRounds();
    const int sub = static_cast<int>(pulse % static_cast<std::uint64_t>(subs));
    if (sub == 0) proto_->beginCycle(u);
    proto_->send(u, sub, collector_);
    std::size_t sent = 0;
    collector_.drainStaged(u, [&](NodeId to, const M& payload) {
      post(Kind::Payload, u, to, pulse, payload);
      ++sent;
    });
    s.pendingAcks = sent;
    // Count safe(p) notifications that raced ahead of this pulse change.
    std::size_t early = 0;
    for (std::uint64_t p : s.earlySafe) {
      if (p == pulse) ++early;
    }
    std::erase(s.earlySafe, pulse);
    s.neighborsSafe = early;
    if (s.pendingAcks == 0) becomeSafe(u);
  }

  void becomeSafe(NodeId u) DIMA_REQUIRES(eventLoop_) {
    NodeSyncState& s = nodes_[u];
    if (s.selfSafe) return;
    s.selfSafe = true;
    for (const graph::Incidence& inc : g_->incidences(u)) {
      post(Kind::Safe, u, inc.neighbor, s.pulse);
    }
  }

  /// Advances `u` through as many pulses as its safety state allows; a
  /// loop (not recursion) because a node with no neighbors can cross a
  /// pulse without consuming any event.
  void maybeAdvance(NodeId u) DIMA_REQUIRES(eventLoop_) {
    while (true) {
      if (componentParked_[component_[u]]) return;
      NodeSyncState& s = nodes_[u];
      if (!s.selfSafe || s.neighborsSafe < g_->degree(u)) return;
      // Deliver the pulse's inbox in sender order (the synchronous
      // engine's incidence order) so protocol behaviour matches the serial
      // executor exactly. Buffered envelopes are materialized as live slots
      // (epoch 1, one copy each) viewed through the same Inbox type the
      // sync substrate hands out.
      std::vector<MessageSlot<M>> inbox;
      for (auto it = s.buffered.begin(); it != s.buffered.end();) {
        if (it->first == s.pulse) {
          inbox.push_back(MessageSlot<M>{1, 1, it->second});
          it = s.buffered.erase(it);
        } else {
          ++it;
        }
      }
      std::sort(inbox.begin(), inbox.end(),
                [](const MessageSlot<M>& a, const MessageSlot<M>& b) {
                  return a.env.from < b.env.from;
                });
      const int subs = proto_->subRounds();
      const int sub =
          static_cast<int>(s.pulse % static_cast<std::uint64_t>(subs));
      proto_->receive(u, sub, Inbox<M>(inbox.data(), inbox.size(), 1));
      if (sub == subs - 1) proto_->endCycle(u);
      refreshDone(u);

      highestPulse_ = std::max(highestPulse_, s.pulse + 1);
      if (doneCount_ == g_->numVertices()) return;
      if (s.pulse + 1 >= maxPulses_) return;  // round cap
      enterPulse(u, s.pulse + 1);
    }
  }

  void handle(const Event& ev) DIMA_REQUIRES(eventLoop_) {
    if (componentParked_[component_[ev.to]]) return;  // stale traffic
    NodeSyncState& s = nodes_[ev.to];
    switch (ev.kind) {
      case Kind::Payload: {
        // ev.pulse is the sender's pulse; the α invariant keeps neighbors
        // within one pulse of each other.
        DIMA_ASSERT(ev.pulse == s.pulse || ev.pulse == s.pulse + 1,
                    "synchronizer pulse skew");
        s.buffered.push_back({ev.pulse, Envelope<M>{ev.from, ev.payload}});
        post(Kind::Ack, ev.to, ev.from, ev.pulse);
        break;
      }
      case Kind::Ack: {
        DIMA_ASSERT(s.pendingAcks > 0, "spurious ack");
        if (--s.pendingAcks == 0) becomeSafe(ev.to);
        maybeAdvance(ev.to);
        break;
      }
      case Kind::Safe: {
        if (ev.pulse == s.pulse) {
          ++s.neighborsSafe;
          maybeAdvance(ev.to);
        } else {
          DIMA_ASSERT(ev.pulse == s.pulse + 1, "safe pulse skew");
          s.earlySafe.push_back(ev.pulse);
        }
        break;
      }
    }
  }

  Protocol* proto_;
  const graph::Graph* g_;
  SyncNetwork<M> collector_;  ///< reused as a staging collector only
  DelayModel delays_;
  std::uint64_t maxPulses_;
  std::vector<NodeSyncState> nodes_;
  std::vector<std::uint32_t> component_;
  std::vector<std::size_t> componentSize_;
  std::vector<std::size_t> componentDone_;
  std::vector<bool> componentParked_;
  /// Single-threaded event-loop discipline: the staging queue, clock and
  /// sequence counter belong to `run()`'s loop alone.
  support::PhaseCapability eventLoop_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_ DIMA_GUARDED_BY(eventLoop_);
  double now_ DIMA_GUARDED_BY(eventLoop_) = 0;
  std::uint64_t seq_ DIMA_GUARDED_BY(eventLoop_) = 0;
  std::size_t doneCount_ = 0;
  std::uint64_t payloadCount_ = 0;
  std::uint64_t ackCount_ = 0;
  std::uint64_t safeCount_ = 0;
  std::uint64_t highestPulse_ = 0;
};

}  // namespace detail

/// Runs a synchronous-model protocol on an asynchronous network with the
/// α-synchronizer. Results are identical to `runSyncProtocol` with the
/// serial executor; the returned metrics expose the synchronization cost.
template <class Protocol>
AsyncRunResult runAlphaSynchronized(Protocol& proto, const graph::Graph& g,
                                    const DelayModel& delays = {},
                                    std::uint64_t maxCycles = 1u << 20) {
  detail::AlphaSynchronizer<Protocol> synchronizer(proto, g, delays,
                                                   maxCycles);
  return synchronizer.run();
}

}  // namespace dima::net
