#include "src/net/spanning_tree.hpp"

#include <algorithm>

#include "src/graph/metrics.hpp"
#include "src/net/network.hpp"

namespace dima::net {

namespace {

struct ClaimMessage {
  std::uint32_t depth = 0;
};

/// Flooding protocol: one communication sub-round per cycle. A node is
/// done once it has been claimed *and* has broadcast its claim onward.
class FloodProtocol {
 public:
  using Message = ClaimMessage;

  FloodProtocol(const graph::Graph& g, graph::VertexId root) : g_(&g) {
    parent_.assign(g.numVertices(), graph::kNoVertex);
    depth_.assign(g.numVertices(), graph::kUnreachable);
    announced_.assign(g.numVertices(), false);
    depth_[root] = 0;
  }

  int subRounds() const { return 1; }
  void beginCycle(NodeId) {}

  void send(NodeId u, int, SyncNetwork<Message>& net) {
    if (depth_[u] != graph::kUnreachable && !announced_[u]) {
      net.broadcast(u, ClaimMessage{depth_[u]});
      announced_[u] = true;
    }
  }

  void receive(NodeId u, int, Inbox<Message> inbox) {
    if (depth_[u] != graph::kUnreachable) return;  // already claimed
    // Adopt the lowest-id claimant heard this round; all claims arriving
    // in one round carry the same depth (BFS wavefront).
    NodeId best = graph::kNoVertex;
    std::uint32_t bestDepth = 0;
    for (const auto& env : inbox) {
      if (best == graph::kNoVertex || env.from < best) {
        best = env.from;
        bestDepth = env.msg.depth;
      }
    }
    if (best != graph::kNoVertex) {
      parent_[u] = best;
      depth_[u] = bestDepth + 1;
    }
  }

  void endCycle(NodeId) {}
  bool done(NodeId u) const {
    return depth_[u] != graph::kUnreachable && announced_[u];
  }

  std::vector<graph::VertexId> takeParent() { return std::move(parent_); }
  std::vector<std::uint32_t> takeDepth() { return std::move(depth_); }

 private:
  const graph::Graph* g_;
  std::vector<graph::VertexId> parent_;
  std::vector<std::uint32_t> depth_;
  std::vector<bool> announced_;
};

}  // namespace

std::size_t SpanningTree::height() const {
  std::size_t h = 0;
  for (std::uint32_t d : depth) {
    if (d != graph::kUnreachable) h = std::max<std::size_t>(h, d);
  }
  return h;
}

SpanningTree buildSpanningTreeFlood(const graph::Graph& g,
                                    graph::VertexId root,
                                    EngineOptions options) {
  DIMA_REQUIRE(root < g.numVertices(), "root out of range");
  DIMA_REQUIRE(graph::isConnected(g),
               "spanning-tree flood requires a connected graph");
  FloodProtocol proto(g, root);
  SyncNetwork<ClaimMessage> net(g);
  const EngineResult run = runSyncProtocol(proto, net, options);
  DIMA_REQUIRE(run.converged, "flood failed to converge");
  SpanningTree tree;
  tree.root = root;
  tree.parent = proto.takeParent();
  tree.depth = proto.takeDepth();
  tree.buildRounds = run.cycles;
  return tree;
}

std::uint64_t detectionRound(
    const SpanningTree& tree,
    const std::vector<std::uint64_t>& completionRound) {
  DIMA_REQUIRE(completionRound.size() == tree.parent.size(),
               "completion vector size mismatch");
  const std::size_t n = tree.parent.size();
  // Process nodes in decreasing depth: ready(v) = max(completion(v),
  // 1 + max over children ready(child)).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tree.depth[a] > tree.depth[b];
  });
  std::vector<std::uint64_t> ready = completionRound;
  for (std::size_t v : order) {
    const graph::VertexId p = tree.parent[v];
    if (p == graph::kNoVertex) continue;  // root
    ready[p] = std::max(ready[p], ready[v] + 1);
  }
  return ready[tree.root];
}

}  // namespace dima::net
