#include "src/net/trace.hpp"

#include <sstream>

namespace dima::net {

const char* traceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::StateChoice:
      return "state-choice";
    case TraceKind::InviteSent:
      return "invite-sent";
    case TraceKind::InviteKept:
      return "invite-kept";
    case TraceKind::ResponseSent:
      return "response-sent";
    case TraceKind::EdgeColored:
      return "edge-colored";
    case TraceKind::Aborted:
      return "aborted";
    case TraceKind::NodeDone:
      return "node-done";
    case TraceKind::TentativeSet:
      return "tentative-set";
  }
  return "?";
}

std::size_t TraceLog::countInCycle(std::uint64_t cycle, TraceKind kind) const {
  serialPhase_.assertShared();
  std::size_t c = 0;
  for (const TraceEvent& e : events_) {
    if (e.cycle == cycle && e.kind == kind) ++c;
  }
  return c;
}

std::string TraceLog::render() const {
  serialPhase_.assertShared();
  std::ostringstream oss;
  for (const TraceEvent& e : events_) {
    oss << "cycle " << e.cycle << ": node " << e.node << ' '
        << traceKindName(e.kind);
    if (e.a >= 0) oss << " a=" << e.a;
    if (e.b >= 0) oss << " b=" << e.b;
    oss << '\n';
  }
  return oss.str();
}

}  // namespace dima::net
