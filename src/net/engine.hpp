#pragma once

/// \file engine.hpp
/// The bulk-synchronous protocol runner.
///
/// A *computation round* (the paper's "round", one trip around the Fig. 1
/// automaton) is a fixed schedule of *communication rounds*. The engine
/// drives a protocol object through that schedule:
///
///     while some node not done:
///       beginCycle(u)   for every active node  (the C "choose" step; local)
///       for sub in [0, subRounds):
///         send(u, sub)  for every active node  (write into receiver slots)
///         deliverRound()                       (synchronous delivery barrier)
///         receive(u, sub, inbox)  for every active node
///       endCycle(u)     for every active node  (the E "exchange" bookkeeping)
///       compact the active set
///
/// Execution is *frontier-driven*: the engine keeps the set of nodes not yet
/// done (in ascending id order) and runs hooks only over it, so late rounds
/// with a handful of stragglers cost O(active) instead of O(n). The frontier
/// is fixed at the start of each cycle — a node that flips done mid-cycle
/// (e.g. committing a color in a receive sub-round) still runs its remaining
/// hooks that cycle, including any announce-style send, and leaves the
/// frontier only at the compaction step. Done counting falls out of the
/// compaction (per-worker survivor counts folded in a prefix sum); there is
/// no per-cycle O(n) scan.
///
/// The engine is executor-agnostic: pass a `ThreadPool` to run the per-node
/// hooks in parallel (bulk-synchronous, a barrier between phases — the same
/// shape as an MPI compute/barrier loop), or leave it null for serial
/// execution. Protocol hooks must touch only node-`u` state plus the send
/// API of the network, which is what makes the two executors equivalent;
/// tests assert identical results.
///
/// Protocol concept (duck-typed):
///   using Message = ...;
///   int subRounds() const;
///   void beginCycle(NodeId u);
///   void send(NodeId u, int sub, SyncNetwork<Message>& net);
///   void receive(NodeId u, int sub, Inbox<Message> inbox);
///   void endCycle(NodeId u);
///   bool done(NodeId u) const;
/// Contract: `done(u)` must be monotone (once true it stays true for the
/// run), and hooks are invoked only for nodes that were not done when the
/// cycle began — a done node neither sends nor receives, so any terminal
/// announcement must go out in the same cycle the node becomes done.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/network.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::net {

/// Progress snapshot handed to the observer after each computation round.
struct CycleInfo {
  std::uint64_t cycle = 0;      ///< 0-based index of the round just finished
  std::size_t nodesDone = 0;    ///< nodes in the D state afterwards
  std::size_t nodesTotal = 0;
};

/// Which execution substrate carries a protocol run. The choice is
/// observably invisible on the fault-free model — same colors, same
/// counters, same traces, bit for bit (pinned by the engine-parity
/// harness) — so it is a pure performance knob.
enum class EngineKind : std::uint8_t {
  /// `runSyncProtocol` over `SyncNetwork`: per-node protocol objects and a
  /// slot-arena message substrate. The semantic reference; required for
  /// fault injection (drops/duplicates/chaos make the message plane
  /// stateful).
  Reference,
  /// The structure-of-arrays engine (automata/bitplane.hpp): automaton
  /// states as bit-planes, palettes as word rows, messages computed rather
  /// than delivered. Fault-free runs only; drivers enforce the restriction.
  BitPlane,
};

struct EngineOptions {
  /// Safety valve: abort as non-converged after this many computation
  /// rounds. The algorithms finish in O(Δ) rounds with overwhelming
  /// probability, so runs hitting this limit indicate a bug or an
  /// adversarial fault model.
  std::uint64_t maxCycles = 1u << 20;
  /// Optional parallel executor (nullptr = serial on the calling thread).
  support::ThreadPool* pool = nullptr;
  /// Optional per-round progress callback.
  std::function<void(const CycleInfo&)> observer;
  /// Substrate selector. `runSyncProtocol` itself *is* the reference
  /// engine and ignores the field; drivers that know how to replay their
  /// protocol on the bit-plane engine (maximalMatching, colorEdgesMadec,
  /// colorArcsDima2Ed) dispatch on it.
  EngineKind engine = EngineKind::Reference;
};

struct EngineResult {
  std::uint64_t cycles = 0;   ///< computation rounds executed
  bool converged = false;     ///< every node reached done() within maxCycles
  Counters counters;          ///< network traffic totals
};

/// `Net` is any synchronous substrate with the `SyncNetwork` surface
/// (`numNodes`, `deliverRound`, `inbox`, `counters`) — in particular
/// `SyncNetwork` instantiated over any topology type, which is how the
/// dynamic-graph subsystem runs protocols directly on its mutable overlay.
template <class Protocol, class Net>
EngineResult runSyncProtocol(Protocol& proto, Net& net,
                             const EngineOptions& options = {}) {
  const std::size_t n = net.numNodes();

  // The frontier: ids of not-yet-done nodes in ascending order. Built with
  // the engine's only full O(n) scan; afterwards everything is O(active).
  std::vector<NodeId> active;
  active.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (!proto.done(static_cast<NodeId>(u))) {
      active.push_back(static_cast<NodeId>(u));
    }
  }
  std::vector<NodeId> scratch;  // parallel-compaction target, reused

  auto forEachActive = [&](auto&& fn) {
    if (options.pool != nullptr) {
      options.pool->forEach(active.size(),
                            [&](std::size_t i) { fn(active[i]); });
    } else {
      for (NodeId u : active) fn(u);
    }
  };

  // Order-preserving removal of freshly-done nodes. The parallel variant is
  // the classic two-pass count/scatter: per-worker survivor counts over
  // identical chunk boundaries, an exclusive prefix sum over the ≤ workers
  // counts, then a parallel scatter — no atomics, and the surviving order
  // (hence every downstream result) is identical to the serial path.
  auto compactFrontier = [&] {
    constexpr std::size_t kParallelCompactMin = 4096;
    if (options.pool == nullptr || active.size() < kParallelCompactMin) {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](NodeId u) { return proto.done(u); }),
                   active.end());
      return;
    }
    const std::size_t workers = options.pool->workerCount();
    std::vector<std::size_t> base(workers + 1, 0);
    options.pool->forEachChunk(
        active.size(), [&](std::size_t w, std::size_t lo, std::size_t hi) {
          std::size_t kept = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            if (!proto.done(active[i])) ++kept;
          }
          base[w + 1] = kept;
        });
    for (std::size_t w = 0; w < workers; ++w) base[w + 1] += base[w];
    scratch.resize(base[workers]);
    options.pool->forEachChunk(
        active.size(), [&](std::size_t w, std::size_t lo, std::size_t hi) {
          std::size_t out = base[w];
          for (std::size_t i = lo; i < hi; ++i) {
            if (!proto.done(active[i])) scratch[out++] = active[i];
          }
        });
    active.swap(scratch);
  };

  EngineResult result;
  while (true) {
    if (active.empty()) {
      result.converged = true;
      break;
    }
    if (result.cycles >= options.maxCycles) break;

    forEachActive([&](NodeId u) { proto.beginCycle(u); });
    const int subs = proto.subRounds();
    for (int sub = 0; sub < subs; ++sub) {
      forEachActive([&](NodeId u) { proto.send(u, sub, net); });
      net.deliverRound();
      forEachActive([&](NodeId u) { proto.receive(u, sub, net.inbox(u)); });
    }
    forEachActive([&](NodeId u) { proto.endCycle(u); });
    ++result.cycles;

    compactFrontier();
    if (options.observer) {
      options.observer(
          CycleInfo{result.cycles - 1, n - active.size(), n});
    }
  }
  result.counters = net.counters();
  return result;
}

}  // namespace dima::net
