#pragma once

/// \file engine.hpp
/// The bulk-synchronous protocol runner.
///
/// A *computation round* (the paper's "round", one trip around the Fig. 1
/// automaton) is a fixed schedule of *communication rounds*. The engine
/// drives a protocol object through that schedule:
///
///     while some node not done:
///       beginCycle(u)   for every active node  (the C "choose" step; local)
///       for sub in [0, subRounds):
///         send(u, sub)  for every active node  (write into receiver slots)
///         deliverRound()                       (synchronous delivery barrier)
///         receive(u, sub, inbox)  for every active node
///       endCycle(u)     for every active node  (the E "exchange" bookkeeping)
///       compact the active set
///
/// Execution is *frontier-driven*: the engine keeps the set of nodes not yet
/// done (in ascending id order) and runs hooks only over it, so late rounds
/// with a handful of stragglers cost O(active) instead of O(n). The frontier
/// is fixed at the start of each cycle — a node that flips done mid-cycle
/// (e.g. committing a color in a receive sub-round) still runs its remaining
/// hooks that cycle, including any announce-style send, and leaves the
/// frontier only at the compaction step. Done counting falls out of the
/// compaction (per-worker survivor counts folded in a prefix sum); there is
/// no per-cycle O(n) scan.
///
/// The engine is executor-agnostic: pass a `ThreadPool` to run the per-node
/// hooks in parallel (bulk-synchronous, a barrier between phases — the same
/// shape as an MPI compute/barrier loop), or leave it null for serial
/// execution. Protocol hooks must touch only node-`u` state plus the send
/// API of the network, which is what makes the two executors equivalent;
/// tests assert identical results.
///
/// Protocol concept (duck-typed):
///   using Message = ...;
///   int subRounds() const;
///   void beginCycle(NodeId u);
///   void send(NodeId u, int sub, SyncNetwork<Message>& net);
///   void receive(NodeId u, int sub, Inbox<Message> inbox);
///   void endCycle(NodeId u);
///   bool done(NodeId u) const;
/// Contract: `done(u)` must be monotone (once true it stays true for the
/// run), and hooks are invoked only for nodes that were not done when the
/// cycle began — a done node neither sends nor receives, so any terminal
/// announcement must go out in the same cycle the node becomes done.

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "src/graph/partition.hpp"
#include "src/net/network.hpp"
#include "src/net/shard.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::net {

/// Progress snapshot handed to the observer after each computation round.
struct CycleInfo {
  std::uint64_t cycle = 0;      ///< 0-based index of the round just finished
  std::size_t nodesDone = 0;    ///< nodes in the D state afterwards
  std::size_t nodesTotal = 0;
};

/// Which execution substrate carries a protocol run. The choice is
/// observably invisible on the fault-free model — same colors, same
/// counters, same traces, bit for bit (pinned by the engine-parity
/// harness) — so it is a pure performance knob.
enum class EngineKind : std::uint8_t {
  /// `runSyncProtocol` over `SyncNetwork`: per-node protocol objects and a
  /// slot-arena message substrate. The semantic reference; required for
  /// fault injection (drops/duplicates/chaos make the message plane
  /// stateful).
  Reference,
  /// The structure-of-arrays engine (automata/bitplane.hpp): automaton
  /// states as bit-planes, palettes as word rows, messages computed rather
  /// than delivered. Fault-free runs only; drivers enforce the restriction.
  BitPlane,
};

/// Sharded-execution knobs (DESIGN.md §13). Like `EngineKind`, sharding is
/// observably invisible on the fault-free model — the boundary-buffer merge
/// reproduces every inbox bit for bit — so these are pure deployment/
/// performance knobs. `count == 1` means the unsharded substrate.
struct ShardOptions {
  /// Number of shards K. Drivers route K > 1 through `ShardedNetwork` +
  /// `runShardedProtocol`; fault injection and the bit-plane engine are
  /// mutually exclusive with sharding (drivers enforce both).
  std::uint32_t count = 1;
  /// Vertex-assignment strategy (deterministic either way).
  graph::PartitionKind partition = graph::PartitionKind::Block;
  /// Worker threads of each shard's private pool (1 = each shard runs its
  /// nodes serially on its own shard thread).
  std::size_t workersPerShard = 1;
};

struct EngineOptions {
  /// Safety valve: abort as non-converged after this many computation
  /// rounds. The algorithms finish in O(Δ) rounds with overwhelming
  /// probability, so runs hitting this limit indicate a bug or an
  /// adversarial fault model.
  std::uint64_t maxCycles = 1u << 20;
  /// Optional parallel executor (nullptr = serial on the calling thread).
  support::ThreadPool* pool = nullptr;
  /// Optional per-round progress callback.
  std::function<void(const CycleInfo&)> observer;
  /// Substrate selector. `runSyncProtocol` itself *is* the reference
  /// engine and ignores the field; drivers that know how to replay their
  /// protocol on the bit-plane engine (maximalMatching, colorEdgesMadec,
  /// colorArcsDima2Ed) dispatch on it.
  EngineKind engine = EngineKind::Reference;
  /// Shard selector; as with `engine`, `runSyncProtocol` ignores it and
  /// drivers dispatch (maximalMatching, colorEdgesMadec, colorArcsDima2Ed,
  /// colorEdgesStrongMadec).
  ShardOptions shards;
};

struct EngineResult {
  std::uint64_t cycles = 0;   ///< computation rounds executed
  bool converged = false;     ///< every node reached done() within maxCycles
  Counters counters;          ///< network traffic totals
};

/// `Net` is any synchronous substrate with the `SyncNetwork` surface
/// (`numNodes`, `deliverRound`, `inbox`, `counters`) — in particular
/// `SyncNetwork` instantiated over any topology type, which is how the
/// dynamic-graph subsystem runs protocols directly on its mutable overlay.
template <class Protocol, class Net>
EngineResult runSyncProtocol(Protocol& proto, Net& net,
                             const EngineOptions& options = {}) {
  const std::size_t n = net.numNodes();

  // The frontier: ids of not-yet-done nodes in ascending order. Built with
  // the engine's only full O(n) scan; afterwards everything is O(active).
  std::vector<NodeId> active;
  active.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (!proto.done(static_cast<NodeId>(u))) {
      active.push_back(static_cast<NodeId>(u));
    }
  }
  std::vector<NodeId> scratch;  // parallel-compaction target, reused

  auto forEachActive = [&](auto&& fn) {
    if (options.pool != nullptr) {
      options.pool->forEach(active.size(),
                            [&](std::size_t i) { fn(active[i]); });
    } else {
      for (NodeId u : active) fn(u);
    }
  };

  // Order-preserving removal of freshly-done nodes. The parallel variant is
  // the classic two-pass count/scatter: per-worker survivor counts over
  // identical chunk boundaries, an exclusive prefix sum over the ≤ workers
  // counts, then a parallel scatter — no atomics, and the surviving order
  // (hence every downstream result) is identical to the serial path.
  auto compactFrontier = [&] {
    constexpr std::size_t kParallelCompactMin = 4096;
    if (options.pool == nullptr || active.size() < kParallelCompactMin) {
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&](NodeId u) { return proto.done(u); }),
                   active.end());
      return;
    }
    const std::size_t workers = options.pool->workerCount();
    std::vector<std::size_t> base(workers + 1, 0);
    options.pool->forEachChunk(
        active.size(), [&](std::size_t w, std::size_t lo, std::size_t hi) {
          std::size_t kept = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            if (!proto.done(active[i])) ++kept;
          }
          base[w + 1] = kept;
        });
    for (std::size_t w = 0; w < workers; ++w) base[w + 1] += base[w];
    scratch.resize(base[workers]);
    options.pool->forEachChunk(
        active.size(), [&](std::size_t w, std::size_t lo, std::size_t hi) {
          std::size_t out = base[w];
          for (std::size_t i = lo; i < hi; ++i) {
            if (!proto.done(active[i])) scratch[out++] = active[i];
          }
        });
    active.swap(scratch);
  };

  EngineResult result;
  while (true) {
    if (active.empty()) {
      result.converged = true;
      break;
    }
    if (result.cycles >= options.maxCycles) break;

    forEachActive([&](NodeId u) { proto.beginCycle(u); });
    const int subs = proto.subRounds();
    for (int sub = 0; sub < subs; ++sub) {
      forEachActive([&](NodeId u) { proto.send(u, sub, net); });
      net.deliverRound();
      forEachActive([&](NodeId u) { proto.receive(u, sub, net.inbox(u)); });
    }
    forEachActive([&](NodeId u) { proto.endCycle(u); });
    ++result.cycles;

    compactFrontier();
    if (options.observer) {
      options.observer(
          CycleInfo{result.cycles - 1, n - active.size(), n});
    }
  }
  result.counters = net.counters();
  return result;
}

/// The sharded bulk-synchronous runner: one driver thread per shard, each
/// iterating its shard's frontier (ascending node id, so the within-shard
/// hook order equals the serial engine's order restricted to the shard),
/// with `std::barrier`s reproducing the engine's phase structure across
/// shards:
///
///     beginCycle over the shard frontier          (node-local, no barrier)
///     for sub in [0, subRounds):
///       [barrier — previous sub's receives done]
///       send over the shard frontier              (slots + boundary records)
///       [barrier — all sends done]
///       mergeInbound(own shard)                   (records → own slots)
///       [barrier; completion: advanceEpochs]      (serial epoch bump)
///       receive over the shard frontier
///     endCycle; compact the shard frontier        (order-preserving)
///     [barrier; completion: fold counts, observer, stop decision]
///
/// Every protocol hook touches only node-`u` state plus the lock-free send
/// API, every slot/record has a single writer per round, and the barriers
/// order writers before readers — the same argument that makes the pooled
/// executor race-free, now across shard threads (the TSan job runs the
/// sweep). Determinism needs no new argument: inbox contents are
/// bit-identical to `SyncNetwork` (see shard.hpp), hooks are node-local,
/// and per-shard serial compaction preserves ascending order.
///
/// `options.shards.workersPerShard > 1` gives each shard thread a private
/// `ThreadPool` for its hook loops; `options.pool` is ignored (the shard
/// threads *are* the executor). The observer (and so the protocol's trace
/// clock) fires once per cycle from the barrier's completion step.
template <class Protocol, class M, class Topo>
EngineResult runShardedProtocol(Protocol& proto, ShardedNetwork<M, Topo>& net,
                                const EngineOptions& options = {}) {
  const std::uint32_t shardCount = net.shardCount();
  const std::size_t n = net.numNodes();

  std::vector<std::vector<NodeId>> active(shardCount);
  std::size_t initiallyActive = 0;
  for (std::uint32_t s = 0; s < shardCount; ++s) {
    for (const NodeId u : net.shardMembers(s)) {
      if (!proto.done(u)) active[s].push_back(u);
    }
    initiallyActive += active[s].size();
  }

  EngineResult result;
  if (initiallyActive == 0) {
    result.converged = true;
    result.counters = net.counters();
    return result;
  }

  std::vector<std::size_t> activeCount(shardCount, 0);
  bool stop = false;

  // Three barrier points, each with its fixed serial completion step; the
  // completion runs after every thread arrives and before any is released,
  // which is exactly the engine's "serial section at the barrier" slot.
  std::barrier<> sendsDone(shardCount);
  auto bumpEpoch = [&net]() noexcept { net.advanceEpochs(); };
  std::barrier<decltype(bumpEpoch)> mergesDone(shardCount, bumpEpoch);
  auto closeCycle = [&]() noexcept {
    std::size_t remaining = 0;
    for (const std::size_t c : activeCount) remaining += c;
    ++result.cycles;
    if (options.observer) {
      options.observer(CycleInfo{result.cycles - 1, n - remaining, n});
    }
    if (remaining == 0) {
      result.converged = true;
      stop = true;
    } else if (result.cycles >= options.maxCycles) {
      stop = true;
    }
  };
  std::barrier<decltype(closeCycle)> cycleDone(shardCount, closeCycle);

  auto runShard = [&](std::uint32_t s) {
    std::optional<support::ThreadPool> ownPool;
    support::ThreadPool* pool = nullptr;
    if (options.shards.workersPerShard > 1) {
      pool = &ownPool.emplace(options.shards.workersPerShard);
    }
    std::vector<NodeId>& mine = active[s];
    auto forEachMine = [&](auto&& fn) {
      if (pool != nullptr) {
        pool->forEach(mine.size(), [&](std::size_t i) { fn(mine[i]); });
      } else {
        for (const NodeId u : mine) fn(u);
      }
    };
    while (true) {
      forEachMine([&](NodeId u) { proto.beginCycle(u); });
      const int subs = proto.subRounds();
      for (int sub = 0; sub < subs; ++sub) {
        if (sub > 0) sendsDone.arrive_and_wait();  // prior receives done
        forEachMine([&](NodeId u) { proto.send(u, sub, net); });
        sendsDone.arrive_and_wait();
        net.mergeInbound(s);
        mergesDone.arrive_and_wait();  // completion: advanceEpochs
        forEachMine([&](NodeId u) { proto.receive(u, sub, net.inbox(u)); });
      }
      forEachMine([&](NodeId u) { proto.endCycle(u); });
      mine.erase(std::remove_if(mine.begin(), mine.end(),
                                [&](NodeId u) { return proto.done(u); }),
                 mine.end());
      activeCount[s] = mine.size();
      cycleDone.arrive_and_wait();  // completion: fold, observer, stop
      if (stop) break;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(shardCount - 1);
  for (std::uint32_t s = 1; s < shardCount; ++s) {
    threads.emplace_back(runShard, s);
  }
  runShard(0);
  for (std::thread& t : threads) t.join();

  result.counters = net.counters();
  return result;
}

}  // namespace dima::net
