#pragma once

/// \file engine.hpp
/// The bulk-synchronous protocol runner.
///
/// A *computation round* (the paper's "round", one trip around the Fig. 1
/// automaton) is a fixed schedule of *communication rounds*. The engine
/// drives a protocol object through that schedule:
///
///     while not all nodes done:
///       beginCycle(u)   for every node        (the C "choose" step; local)
///       for sub in [0, subRounds):
///         send(u, sub)  for every node        (stage transmissions)
///         deliverRound()                      (synchronous delivery barrier)
///         receive(u, sub, inbox)  for every node
///       endCycle(u)     for every node        (the E "exchange" bookkeeping)
///
/// The engine is executor-agnostic: pass a `ThreadPool` to run the per-node
/// hooks in parallel (bulk-synchronous, a barrier between phases — the same
/// shape as an MPI compute/barrier loop), or leave it null for serial
/// execution. Protocol hooks must touch only node-`u` state plus the staging
/// API of the network, which is what makes the two executors equivalent;
/// tests assert identical results.
///
/// Protocol concept (duck-typed):
///   using Message = ...;
///   int subRounds() const;
///   void beginCycle(NodeId u);
///   void send(NodeId u, int sub, SyncNetwork<Message>& net);
///   void receive(NodeId u, int sub, std::span<const Envelope<Message>>);
///   void endCycle(NodeId u);
///   bool done(NodeId u) const;
/// Hooks are invoked for every node each cycle, including nodes already done
/// (which are expected to no-op).

#include <cstdint>
#include <functional>
#include <span>

#include "src/net/network.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::net {

/// Progress snapshot handed to the observer after each computation round.
struct CycleInfo {
  std::uint64_t cycle = 0;      ///< 0-based index of the round just finished
  std::size_t nodesDone = 0;    ///< nodes in the D state afterwards
  std::size_t nodesTotal = 0;
};

struct EngineOptions {
  /// Safety valve: abort as non-converged after this many computation
  /// rounds. The algorithms finish in O(Δ) rounds with overwhelming
  /// probability, so runs hitting this limit indicate a bug or an
  /// adversarial fault model.
  std::uint64_t maxCycles = 1u << 20;
  /// Optional parallel executor (nullptr = serial on the calling thread).
  support::ThreadPool* pool = nullptr;
  /// Optional per-round progress callback.
  std::function<void(const CycleInfo&)> observer;
};

struct EngineResult {
  std::uint64_t cycles = 0;   ///< computation rounds executed
  bool converged = false;     ///< every node reached done() within maxCycles
  Counters counters;          ///< network traffic totals
};

/// `Net` is any synchronous substrate with the `SyncNetwork` surface
/// (`numNodes`, `deliverRound`, `inbox`, `counters`) — in particular
/// `SyncNetwork` instantiated over any topology type, which is how the
/// dynamic-graph subsystem runs protocols directly on its mutable overlay.
template <class Protocol, class Net>
EngineResult runSyncProtocol(Protocol& proto, Net& net,
                             const EngineOptions& options = {}) {
  const std::size_t n = net.numNodes();
  auto forEachNode = [&](auto&& fn) {
    if (options.pool != nullptr) {
      options.pool->forEach(n, fn);
    } else {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
  };

  auto countDone = [&] {
    std::size_t done = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (proto.done(u)) ++done;
    }
    return done;
  };

  EngineResult result;
  // `done()` changes only inside the protocol hooks, so one scan after each
  // round (plus one up front) serves both the loop exit check and the
  // observer's CycleInfo — the scan is O(n) and used to run twice per round
  // when an observer was set.
  std::size_t nodesDone = countDone();
  while (true) {
    if (nodesDone == n) {
      result.converged = true;
      break;
    }
    if (result.cycles >= options.maxCycles) break;

    forEachNode([&](std::size_t i) {
      proto.beginCycle(static_cast<NodeId>(i));
    });
    const int subs = proto.subRounds();
    for (int sub = 0; sub < subs; ++sub) {
      forEachNode([&](std::size_t i) {
        proto.send(static_cast<NodeId>(i), sub, net);
      });
      net.deliverRound();
      forEachNode([&](std::size_t i) {
        const auto u = static_cast<NodeId>(i);
        proto.receive(u, sub, net.inbox(u));
      });
    }
    forEachNode([&](std::size_t i) {
      proto.endCycle(static_cast<NodeId>(i));
    });
    ++result.cycles;

    nodesDone = countDone();
    if (options.observer) {
      options.observer(CycleInfo{result.cycles - 1, nodesDone, n});
    }
  }
  result.counters = net.counters();
  return result;
}

}  // namespace dima::net
