#include "src/net/message.hpp"

#include <sstream>

namespace dima::net {

std::string Counters::toString() const {
  std::ostringstream oss;
  oss << "commRounds=" << commRounds << " broadcasts=" << broadcasts
      << " unicasts=" << unicasts << " delivered=" << messagesDelivered
      << " dropped=" << messagesDropped
      << " duplicated=" << messagesDuplicated
      << " corrupted=" << messagesCorrupted
      << " bits=" << bitsDelivered << " maxMsgBits=" << maxMessageBits;
  return oss.str();
}

}  // namespace dima::net
