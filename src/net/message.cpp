#include "src/net/message.hpp"

#include <sstream>

namespace dima::net {

const char* wireKindName(WireKind kind) {
  // Exhaustive on purpose: -Wswitch flags a new kind with no name, and the
  // Werror static-analysis build turns that into a compile error.
  switch (kind) {
    case WireKind::Invite:
      return "invite";
    case WireKind::Response:
      return "response";
    case WireKind::Tentative:
      return "tentative";
    case WireKind::Abort:
      return "abort";
    case WireKind::ColorAnnounce:
      return "color-announce";
    case WireKind::MatchedAnnounce:
      return "matched-announce";
  }
  return "?";
}

std::string Counters::toString() const {
  std::ostringstream oss;
  oss << "commRounds=" << commRounds << " broadcasts=" << broadcasts
      << " unicasts=" << unicasts << " delivered=" << messagesDelivered
      << " dropped=" << messagesDropped
      << " duplicated=" << messagesDuplicated
      << " corrupted=" << messagesCorrupted
      << " bits=" << bitsDelivered << " maxMsgBits=" << maxMessageBits;
  return oss.str();
}

}  // namespace dima::net
