#pragma once

/// \file network.hpp
/// `SyncNetwork<M>`: the synchronous message-passing substrate (paper §I-C).
///
/// Model guarantees implemented exactly as the paper assumes:
///  * communication proceeds in global lockstep rounds;
///  * in one round a node may communicate once with each neighbor — either a
///    single broadcast heard by every neighbor (the radio primitive both
///    algorithms use) or unicasts to distinct neighbors — and receives
///    everything its neighbors transmitted that round;
///  * links exist only along graph edges (one-hop information).
///
/// Mechanics — the slot-addressed message arena. Links are exactly the edges
/// of the (fixed) topology, so every receiver `v` owns one `MessageSlot` per
/// incident edge, laid out CSR-style in incidence order. A send writes the
/// payload *directly* into the receiver-side slot for that edge via a
/// precomputed mirror-arc table: no staging buffer, no allocation, no serial
/// delivery pass. Each slot has exactly one writer per round (the sender
/// across its edge), so the send phase is lock-free; the fault model is
/// evaluated at send time and its outcome stored in the slot (`copies`).
/// `deliverRound()` degenerates to an epoch bump — slots carry the round tag
/// they were written in instead of being cleared — and `inbox(v)` is a view
/// over `v`'s slots filtered to the current read epoch, yielding envelopes in
/// incidence order (ascending sender id), which keeps runs bit-identical for
/// any worker count. Traffic counters are sharded relaxed atomics folded on
/// demand; every fold is order-independent (sums and a max), so `counters()`
/// is deterministic too.

#include <algorithm>
#include <array>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <vector>

// dimalint: hot-path — no std::function, no per-message allocation.

#include "src/graph/graph.hpp"
#include "src/net/chaos.hpp"
#include "src/net/message.hpp"
#include "src/support/assert.hpp"
#include "src/support/mutex.hpp"
#include "src/support/rng.hpp"

namespace dima::net {

/// `Topo` is any adjacency structure exposing the `graph::Graph` topology
/// surface (`numVertices`, `incidences` in neighbor-sorted order) — the
/// immutable `Graph` by default, or `dynamic::DynamicGraph` so churn
/// protocols message over the current overlay without materializing a
/// snapshot per batch. The topology must not mutate while a network built on
/// it is in use (the dynamic recolorer constructs a fresh network per repair
/// batch).
template <class M, class Topo = graph::Graph>
class SyncNetwork {
 public:
  /// The network's links are the edges of `topology`; the graph must outlive
  /// the network. Construction is O(n + m): it lays out the slot arena and
  /// the mirror-arc table (for each directed arc `u→w`, the index of `w`'s
  /// receiver slot for sender `u`).
  explicit SyncNetwork(const Topo& topology, ChaosModel chaos = {})
      : topo_(&topology), chaos_(std::move(chaos)) {
    const std::size_t n = numNodes();
    offsets_.resize(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      offsets_[v + 1] =
          offsets_[v] + static_cast<std::uint32_t>(
                            topo_->incidences(static_cast<NodeId>(v)).size());
    }
    slots_.resize(offsets_[n]);
    mirror_.resize(offsets_[n]);
    sendState_.assign(n, SendState{});
    // Fix each slot's sender once: receiver v's j-th slot belongs to its j-th
    // incidence. Then build the mirror table with a cursor sweep — scanning
    // senders u in ascending order, the arcs landing on any receiver w arrive
    // in ascending-u order, which is exactly w's neighbor-sorted slot order,
    // so each arc consumes the next free slot of its receiver.
    std::vector<std::uint32_t> cursor(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const auto incs = topo_->incidences(static_cast<NodeId>(v));
      for (std::size_t j = 0; j < incs.size(); ++j) {
        slots_[offsets_[v] + j].env.from = incs[j].neighbor;
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      const auto incs = topo_->incidences(static_cast<NodeId>(u));
      for (std::size_t j = 0; j < incs.size(); ++j) {
        const NodeId w = incs[j].neighbor;
        mirror_[offsets_[u] + j] = offsets_[w] + cursor[w]++;
      }
    }
    if (chaos_.permuteInboxes) permuteSlots();
    if (!chaos_.crashes.empty()) {
      crashRound_.assign(n, kNeverCrash);
      for (const CrashEvent& ev : chaos_.crashes) {
        if (ev.node < n) {
          crashRound_[ev.node] = std::min(crashRound_[ev.node], ev.round);
        }
      }
    }
    script_ = chaos_.script;
    std::sort(script_.begin(), script_.end(),
              [](const MessageFault& a, const MessageFault& b) {
                if (a.round != b.round) return a.round < b.round;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
  }

  const Topo& topology() const { return *topo_; }
  std::size_t numNodes() const {
    return static_cast<std::size_t>(topo_->numVertices());
  }

  /// Writes `m` into the receiver-side slot of every neighbor of `from`;
  /// counts as one transmission. A broadcast is the node's entire allowance
  /// for the round: it cannot be combined with unicasts or another
  /// broadcast. Callable concurrently for distinct senders.
  // dimacheck: hot-path
  void broadcast(NodeId from, const M& m) {
    roundPhase_.assertShared();  // send phase: epochs are read-only
    checkNode(from);
    SendState& st = sendState_[from];
    DIMA_REQUIRE(st.epoch != sendEpoch_,
                 "node " << from << " exceeded its round send allowance");
    st.epoch = sendEpoch_;
    st.broadcast = true;
    const auto incs = topo_->incidences(from);
    const std::uint32_t base = offsets_[from];
    Tally tally;
    for (std::size_t j = 0; j < incs.size(); ++j) {
      writeSlot(mirror_[base + j], from, incs[j].neighbor, m, tally);
    }
    Shard& sh = shards_[shardFor(from)];
    sh.broadcasts.fetch_add(1, std::memory_order_relaxed);
    accountSend(sh, m, incs.size(), tally);
  }

  /// Writes `m` into the single receiver-side slot of neighbor `to`, which
  /// must be adjacent and not already targeted this round (the slot's epoch
  /// tag doubles as the duplicate-target mark, so the check is O(log deg)
  /// for the adjacency lookup and O(1) beyond it). Callable concurrently for
  /// distinct senders.
  // dimacheck: hot-path
  void unicast(NodeId from, NodeId to, const M& m) {
    roundPhase_.assertShared();  // send phase: epochs are read-only
    checkNode(from);
    checkNode(to);
    const auto incs = topo_->incidences(from);
    const auto it = std::lower_bound(
        incs.begin(), incs.end(), to,
        [](const graph::Incidence& inc, NodeId v) { return inc.neighbor < v; });
    DIMA_REQUIRE(it != incs.end() && it->neighbor == to,
                 "unicast " << from << "→" << to << " without a link");
    SendState& st = sendState_[from];
    DIMA_REQUIRE(!(st.epoch == sendEpoch_ && st.broadcast),
                 "node " << from << " mixed broadcast and unicast in a round");
    const std::uint32_t arc =
        offsets_[from] + static_cast<std::uint32_t>(it - incs.begin());
    DIMA_REQUIRE(slots_[mirror_[arc]].epoch != sendEpoch_,
                 "node " << from << " sent to " << to << " twice in a round");
    st.epoch = sendEpoch_;
    st.broadcast = false;
    Tally tally;
    writeSlot(mirror_[arc], from, to, m, tally);
    Shard& sh = shards_[shardFor(from)];
    sh.unicasts.fetch_add(1, std::memory_order_relaxed);
    accountSend(sh, m, 1, tally);
  }

  /// Closes the communication round. With send-time slot delivery this is
  /// O(1): publish the just-written epoch for readers and open the next one.
  /// Nothing is cleared — stale slots are filtered by tag. Must be called
  /// from one thread, between the send and receive phases (the executor's
  /// barrier provides the ordering).
  // dimacheck: hot-path
  void deliverRound() {
    // The executor's barrier serializes this against every sender/reader;
    // it is the only mutation point of the epoch counters.
    roundPhase_.assertExclusive();
    readEpoch_ = sendEpoch_;
    ++sendEpoch_;
    ++commRounds_;
  }

  /// Messages delivered to `v` in the last `deliverRound()`, as a forward
  /// range of envelopes in incidence order (ascending sender id — the same
  /// order the old staging substrate produced). The view is valid until the
  /// next send phase begins.
  Inbox<M> inbox(NodeId v) const {
    roundPhase_.assertShared();  // receive phase: epochs are read-only
    checkNode(v);
    return Inbox<M>(slots_.data() + offsets_[v], offsets_[v + 1] - offsets_[v],
                    readEpoch_);
  }

  /// For alternative executors (e.g. the α-synchronizer in async.hpp):
  /// drains node `from`'s transmissions staged since the last drain as
  /// `fn(to, payload)` calls — a broadcast expands to one call per neighbor —
  /// without running a delivery round, and re-opens `from`'s send allowance.
  /// Unlike the pre-arena substrate, traffic counters (including CONGEST
  /// bits) are already accounted at send time, so the synchronizer path
  /// reports the same `bitsDelivered`/`maxMessageBits` as the sync path for
  /// identical traffic.
  template <class Fn>
  void drainStaged(NodeId from, Fn&& fn) {
    roundPhase_.assertShared();  // synchronizers drain serially
    checkNode(from);
    const auto incs = topo_->incidences(from);
    const std::uint32_t base = offsets_[from];
    for (std::size_t j = 0; j < incs.size(); ++j) {
      MessageSlot<M>& s = slots_[mirror_[base + j]];
      if (s.epoch != sendEpoch_) continue;
      for (std::uint32_t c = 0; c < s.copies; ++c) fn(incs[j].neighbor, s.env.msg);
      s.epoch = 0;
    }
    sendState_[from].epoch = 0;
  }

  /// Folds the sharded traffic counters into one `Counters` snapshot. Every
  /// component is a sum or a max of per-shard values, so the result is
  /// independent of which worker bumped which shard.
  Counters counters() const {
    roundPhase_.assertShared();
    Counters c;
    c.commRounds = commRounds_;
    for (const Shard& s : shards_) {
      c.broadcasts += s.broadcasts.load(std::memory_order_relaxed);
      c.unicasts += s.unicasts.load(std::memory_order_relaxed);
      c.messagesDelivered += s.delivered.load(std::memory_order_relaxed);
      c.messagesDropped += s.dropped.load(std::memory_order_relaxed);
      c.messagesDuplicated += s.duplicated.load(std::memory_order_relaxed);
      c.messagesCorrupted += s.corrupted.load(std::memory_order_relaxed);
      c.bitsDelivered += s.bits.load(std::memory_order_relaxed);
      c.maxMessageBits =
          std::max(c.maxMessageBits, s.maxBits.load(std::memory_order_relaxed));
    }
    return c;
  }
  const FaultModel& faults() const { return chaos_; }
  const ChaosModel& chaos() const { return chaos_; }

 private:
  /// Per-sender round state: `epoch == sendEpoch_` means this node already
  /// transmitted this round (`broadcast` says in which mode). Each sender
  /// writes only its own entry, so the send phase stays lock-free.
  struct SendState {
    std::uint32_t epoch = 0;
    bool broadcast = false;
  };

  /// Counter shard: one cache line of relaxed atomics. Senders are mapped to
  /// shards in blocks of 64 ids, matching the executor's contiguous
  /// per-worker partitions, so concurrent workers rarely touch the same line.
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> broadcasts{0};
    std::atomic<std::uint64_t> unicasts{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> corrupted{0};
    std::atomic<std::uint64_t> bits{0};
    std::atomic<std::uint64_t> maxBits{0};
  };
  static constexpr std::size_t kShards = 64;

  static std::size_t shardFor(NodeId from) {
    return (static_cast<std::size_t>(from) >> 6) & (kShards - 1);
  }

  void checkNode(NodeId v) const {
    DIMA_REQUIRE(v < numNodes(), "node id " << v << " out of range");
  }

  static void atomicMax(std::atomic<std::uint64_t>& target,
                        std::uint64_t value) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (cur < value && !target.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  /// Per-call fault/delivery tally, accumulated locally so a broadcast of
  /// degree d issues O(1) atomic updates, not O(d).
  struct Tally {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
  };

  /// Stamps one receiver-side slot with this round's payload. The fault
  /// stream is keyed on (seed, completed rounds, from, to) exactly as in the
  /// pre-arena substrate, so fault outcomes are reproducible and
  /// executor-independent; the plain drop/duplicate draws are bit-identical
  /// to the pre-chaos model (golden pins depend on it). The chaos extensions
  /// layer on top: a crashed endpoint silences the link outright, scripted
  /// faults force outcomes, and corruption rewrites the stored payload.
  void writeSlot(std::uint32_t slotIdx, NodeId from, NodeId to, const M& m,
                 Tally& tally) DIMA_REQUIRES_SHARED(roundPhase_) {
    MessageSlot<M>& s = slots_[slotIdx];
    std::uint32_t copies = 1;
    bool corrupt = false;
    std::uint64_t key = 0;
    if (chaos_.perturbs()) {
      if (!crashRound_.empty() && (crashRound_[from] <= commRounds_ ||
                                   crashRound_[to] <= commRounds_)) {
        // Crash-stop: the dead endpoint neither transmits nor hears. Not
        // recorded — the crash schedule is already explicit in the model.
        copies = 0;
        ++tally.dropped;
      } else {
        bool scriptedDrop = false;
        bool scriptedDup = false;
        scriptedFaults(from, to, &scriptedDrop, &scriptedDup, &corrupt);
        key = support::mix64(
            support::mix64(chaos_.seed, commRounds_),
            (static_cast<std::uint64_t>(from) << 32) | to);
        support::Rng faultRng(key);
        if (scriptedDrop || faultRng.bernoulli(chaos_.dropRate(from, to))) {
          copies = 0;
          ++tally.dropped;
        } else if (scriptedDup ||
                   faultRng.bernoulli(chaos_.duplicateProbability)) {
          copies = 2;
          ++tally.duplicated;
        }
        corrupt = copies != 0 &&
                  (corrupt || (chaos_.corruptProbability > 0.0 &&
                               faultRng.bernoulli(chaos_.corruptProbability)));
        if (corrupt) ++tally.corrupted;
        if (chaos_.recordTo != nullptr) {
          if (copies == 0) {
            chaos_.recordTo->push_back(
                {MessageFault::Kind::Drop, commRounds_, from, to});
          } else if (copies == 2) {
            chaos_.recordTo->push_back(
                {MessageFault::Kind::Duplicate, commRounds_, from, to});
          }
          if (corrupt) {
            chaos_.recordTo->push_back(
                {MessageFault::Kind::Corrupt, commRounds_, from, to});
          }
        }
      }
    }
    tally.delivered += copies;
    s.epoch = sendEpoch_;
    s.copies = copies;
    s.env.msg = m;
    if (corrupt) {
      support::Rng corruptRng(support::mix64(key, 0x0ddba11c0dedULL));
      chaosCorruptPayload(s.env.msg, corruptRng, numNodes());
    }
  }

  /// Scripted fault lookup for this round's delivery on `from → to`
  /// (binary search over the (round, from, to)-sorted script).
  void scriptedFaults(NodeId from, NodeId to, bool* drop, bool* dup,
                      bool* corrupt) const DIMA_REQUIRES_SHARED(roundPhase_) {
    if (script_.empty()) return;
    const auto before = [](const MessageFault& f, std::uint64_t round,
                           NodeId a, NodeId b) {
      if (f.round != round) return f.round < round;
      if (f.from != a) return f.from < a;
      return f.to < b;
    };
    auto it = std::lower_bound(
        script_.begin(), script_.end(), 0,
        [&](const MessageFault& f, int) { return before(f, commRounds_, from, to); });
    for (; it != script_.end() && it->round == commRounds_ &&
           it->from == from && it->to == to;
         ++it) {
      switch (it->kind) {
        case MessageFault::Kind::Drop: *drop = true; break;
        case MessageFault::Kind::Duplicate: *dup = true; break;
        case MessageFault::Kind::Corrupt: *corrupt = true; break;
      }
    }
  }

  /// Adversarial delivery order: deterministically shuffles every
  /// receiver's slot block (seeded per (chaos seed, receiver)) and rewires
  /// the mirror table to match, so `inbox()` yields envelopes in an
  /// arbitrary-but-reproducible order instead of ascending sender id.
  void permuteSlots() {
    const std::size_t n = numNodes();
    std::vector<std::uint32_t> remap(slots_.size());
    std::vector<std::uint32_t> perm;
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t base = offsets_[v];
      const std::uint32_t deg = offsets_[v + 1] - base;
      perm.resize(deg);
      for (std::uint32_t j = 0; j < deg; ++j) perm[j] = j;
      support::Rng rng(support::mix64(chaos_.seed, 0x5108ffe1eULL ^ v));
      for (std::uint32_t j = deg; j > 1; --j) {
        std::swap(perm[j - 1], perm[rng.index(j)]);
      }
      // New position j holds what incidence order put at perm[j].
      for (std::uint32_t j = 0; j < deg; ++j) remap[base + perm[j]] = base + j;
    }
    std::vector<NodeId> sender(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      sender[remap[i]] = slots_[i].env.from;
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].env.from = sender[i];
    }
    for (std::uint32_t& slot : mirror_) slot = remap[slot];
  }

  /// Folds one send call's tally into the sender's shard. CONGEST bits are
  /// accounted per attempt, before fault evaluation (a dropped message still
  /// crossed the wire — matching the previous substrate); all `attempts`
  /// carry the same payload, so the per-attempt accounting batches into one
  /// multiply.
  void accountSend(Shard& sh, const M& m, std::size_t attempts, const Tally& tally) {
    if constexpr (requires(const M& mm) {
                    { mm.wireBits() } -> std::convertible_to<std::uint64_t>;
                  }) {
      if (attempts != 0) {
        const std::uint64_t bits = m.wireBits();
        sh.bits.fetch_add(bits * attempts, std::memory_order_relaxed);
        atomicMax(sh.maxBits, bits);
      }
    }
    if (tally.delivered != 0) {
      sh.delivered.fetch_add(tally.delivered, std::memory_order_relaxed);
    }
    if (tally.dropped != 0) {
      sh.dropped.fetch_add(tally.dropped, std::memory_order_relaxed);
    }
    if (tally.duplicated != 0) {
      sh.duplicated.fetch_add(tally.duplicated, std::memory_order_relaxed);
    }
    if (tally.corrupted != 0) {
      sh.corrupted.fetch_add(tally.corrupted, std::memory_order_relaxed);
    }
  }

  static constexpr std::uint64_t kNeverCrash = ~std::uint64_t{0};

  const Topo* topo_;
  ChaosModel chaos_;
  /// Per-node first crashed round (kNeverCrash when alive forever); empty
  /// when the model schedules no crashes.
  std::vector<std::uint64_t> crashRound_;
  /// `chaos_.script` sorted by (round, from, to) for the per-send lookup.
  std::vector<MessageFault> script_;
  /// CSR slot layout: receiver v's slots are `[offsets_[v], offsets_[v+1])`.
  std::vector<std::uint32_t> offsets_;
  std::vector<MessageSlot<M>> slots_;
  /// `mirror_[offsets_[u] + j]` = index of the receiver-side slot for the
  /// arc from `u` to its j-th neighbor.
  std::vector<std::uint32_t> mirror_;
  std::vector<SendState> sendState_;
  std::array<Shard, kShards> shards_{};
  /// Phase discipline of the epoch counters: mutated only by the serial
  /// `deliverRound()` barrier (exclusive), read concurrently by the
  /// lock-free send/receive phases (shared). Slots and per-sender state
  /// have finer single-writer disciplines the analysis cannot express;
  /// the TSan job covers those.
  support::PhaseCapability roundPhase_;
  /// Rounds are tagged by `sendEpoch_` (starts at 1 so the untouched-slot
  /// tag 0 never matches). `readEpoch_` is the tag `inbox()` filters on; it
  /// lags until the first `deliverRound()`, so inboxes start empty.
  std::uint32_t sendEpoch_ DIMA_GUARDED_BY(roundPhase_) = 1;
  std::uint32_t readEpoch_ DIMA_GUARDED_BY(roundPhase_) = 0;
  std::uint64_t commRounds_ DIMA_GUARDED_BY(roundPhase_) = 0;
};

}  // namespace dima::net
