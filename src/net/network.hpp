#pragma once

/// \file network.hpp
/// `SyncNetwork<M>`: the synchronous message-passing substrate (paper §I-C).
///
/// Model guarantees implemented exactly as the paper assumes:
///  * communication proceeds in global lockstep rounds;
///  * in one round a node may communicate once with each neighbor — either a
///    single broadcast heard by every neighbor (the radio primitive both
///    algorithms use) or unicasts to distinct neighbors — and receives
///    everything its neighbors transmitted that round;
///  * links exist only along graph edges (one-hop information).
///
/// Mechanics: sends during a round go into per-sender staging buffers (so a
/// thread-pool executor can run senders concurrently without locks);
/// `deliverRound()` then moves them into per-receiver inboxes, applying the
/// optional fault model. Receivers read their inbox in the following
/// receive step. Inboxes are stable until the next `deliverRound()`.

#include <algorithm>
#include <concepts>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/net/message.hpp"
#include "src/support/assert.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::net {

/// `Topo` is any adjacency structure exposing the `graph::Graph` topology
/// surface (`numVertices`, `incidences`, `hasEdge`) — the immutable `Graph`
/// by default, or `dynamic::DynamicGraph` so churn protocols message over
/// the current overlay without materializing a snapshot per batch.
template <class M, class Topo = graph::Graph>
class SyncNetwork {
 public:
  /// The network's links are the edges of `topology`; the graph must outlive
  /// the network.
  explicit SyncNetwork(const Topo& topology, FaultModel faults = {})
      : topo_(&topology),
        faults_(faults),
        staged_(topology.numVertices()),
        inbox_(topology.numVertices()) {}

  const Topo& topology() const { return *topo_; }
  std::size_t numNodes() const {
    return static_cast<std::size_t>(topo_->numVertices());
  }

  /// Queues `m` for every neighbor of `from`; counts as one transmission.
  /// A broadcast is the node's entire allowance for the round: it cannot be
  /// combined with unicasts or another broadcast. Callable concurrently for
  /// distinct senders.
  void broadcast(NodeId from, const M& m) {
    checkNode(from);
    Staged& out = staged_[from];
    DIMA_REQUIRE(!out.broadcastSet && out.unicasts.empty(),
                 "node " << from << " exceeded its round send allowance");
    out.broadcastSet = true;
    out.broadcastPayload = m;
  }

  /// Queues `m` for the single neighbor `to`, which must be adjacent and not
  /// already targeted this round. Callable concurrently for distinct senders.
  void unicast(NodeId from, NodeId to, const M& m) {
    checkNode(from);
    checkNode(to);
    DIMA_REQUIRE(topo_->hasEdge(from, to),
                 "unicast " << from << "→" << to << " without a link");
    Staged& out = staged_[from];
    DIMA_REQUIRE(!out.broadcastSet,
                 "node " << from << " mixed broadcast and unicast in a round");
    for (const auto& u : out.unicasts) {
      DIMA_REQUIRE(u.to != to, "node " << from << " sent to " << to
                                       << " twice in a round");
    }
    out.unicasts.push_back(Unicast{to, m});
  }

  /// Closes the communication round: every staged transmission is delivered
  /// into receiver inboxes (subject to the fault model), staging is cleared,
  /// and the round counter advances. Must be called from one thread.
  void deliverRound() {
    const std::size_t n = numNodes();
    for (NodeId v = 0; v < n; ++v) inbox_[v].clear();
    for (NodeId from = 0; from < n; ++from) {
      Staged& out = staged_[from];
      if (out.broadcastSet) {
        ++counters_.broadcasts;
        for (const graph::Incidence& inc : topo_->incidences(from)) {
          deliverOne(from, inc.neighbor, out.broadcastPayload);
        }
        out.broadcastSet = false;
      } else if (!out.unicasts.empty()) {
        counters_.unicasts += out.unicasts.size();
        for (const Unicast& u : out.unicasts) {
          deliverOne(from, u.to, u.payload);
        }
        out.unicasts.clear();
      }
    }
    ++counters_.commRounds;
  }

  /// Messages delivered to `v` in the last `deliverRound()`.
  std::span<const Envelope<M>> inbox(NodeId v) const {
    checkNode(v);
    return {inbox_[v].data(), inbox_[v].size()};
  }

  /// For alternative executors (e.g. the α-synchronizer in async.hpp):
  /// drains node `from`'s staged transmissions as `fn(to, payload)` calls —
  /// a broadcast expands to one call per neighbor — without running a
  /// delivery round. Counters are not advanced; the caller accounts for its
  /// own transport.
  template <class Fn>
  void drainStaged(NodeId from, Fn&& fn) {
    checkNode(from);
    Staged& out = staged_[from];
    if (out.broadcastSet) {
      for (const graph::Incidence& inc : topo_->incidences(from)) {
        fn(inc.neighbor, out.broadcastPayload);
      }
      out.broadcastSet = false;
    } else {
      for (const Unicast& u : out.unicasts) fn(u.to, u.payload);
      out.unicasts.clear();
    }
  }

  const Counters& counters() const { return counters_; }
  const FaultModel& faults() const { return faults_; }

 private:
  struct Unicast {
    NodeId to = graph::kNoVertex;
    M payload{};
  };
  struct Staged {
    bool broadcastSet = false;
    M broadcastPayload{};
    support::SmallVector<Unicast, 4> unicasts;
  };

  void checkNode(NodeId v) const {
    DIMA_REQUIRE(v < numNodes(), "node id " << v << " out of range");
  }

  void accountBits(const M& payload) {
    if constexpr (requires(const M& m) {
                    { m.wireBits() } -> std::convertible_to<std::uint64_t>;
                  }) {
      const std::uint64_t bits = payload.wireBits();
      counters_.bitsDelivered += bits;
      counters_.maxMessageBits = std::max(counters_.maxMessageBits, bits);
    }
  }

  void deliverOne(NodeId from, NodeId to, const M& payload) {
    accountBits(payload);
    if (faults_.perturbs()) {
      const std::uint64_t key = support::mix64(
          support::mix64(faults_.seed, counters_.commRounds),
          (static_cast<std::uint64_t>(from) << 32) | to);
      support::Rng faultRng(key);
      if (faultRng.bernoulli(faults_.dropProbability)) {
        ++counters_.messagesDropped;
        return;
      }
      if (faultRng.bernoulli(faults_.duplicateProbability)) {
        inbox_[to].push_back(Envelope<M>{from, payload});
        ++counters_.messagesDuplicated;
        ++counters_.messagesDelivered;
      }
    }
    inbox_[to].push_back(Envelope<M>{from, payload});
    ++counters_.messagesDelivered;
  }

  const Topo* topo_;
  FaultModel faults_;
  std::vector<Staged> staged_;
  std::vector<support::SmallVector<Envelope<M>, 8>> inbox_;
  Counters counters_;
};

}  // namespace dima::net
