#pragma once

/// \file wire.hpp
/// The `dimacol serve` v1 wire format: length-prefixed binary frames over a
/// byte stream (stdin pipe or socket), one frame per command or reply.
///
/// Framing (all integers little-endian):
///
///     u32 payloadLength | payload
///     payload = u8 kind | u32 seq | kind-specific fields
///
/// `seq` is a client-chosen request id echoed verbatim in the reply, so a
/// pipelining client can match replies to requests. The format is
/// versioned through the `Hello` handshake: the first frame of a session
/// carries `kServiceWireVersion`, and a server that cannot speak that
/// version answers `Error{BadVersion}` instead of guessing.
///
/// **Kind registry.** Like `net::WireKind`, every `ServiceKind` enumerator
/// must be registered in a frame format's `kKinds` table — commands in
/// `CommandFrame::kKinds`, replies in `ReplyFrame::kKinds` — and named in
/// `serviceKindName`. The `serviceKindsRegistered` static_assert below is
/// the compile-time half of the gate; `makeFrame<K>` additionally pins the
/// *direction*: constructing a `CommandFrame` with a reply-only kind (or
/// any unregistered kind) does not compile
/// (tests/negative_compile/service_frame_unregistered.cpp).
///
/// **Robustness.** The decoder is the only part of the process that reads
/// attacker-controlled bytes, so it is written to reject, never to trust:
/// lengths are bounded by `kMaxPayloadBytes`, every field read is bounds-
/// checked, payload sizes must match their kind exactly, and a malformed
/// frame yields a structured `DecodeStatus::Bad` — the session layer turns
/// it into an `Error` reply and a clean disconnect. The frame-fuzz tests
/// (tests/test_service_wire.cpp) and the hostile-client mode
/// (src/service/hostile.hpp) drive random, truncated, duplicated and
/// reordered bytes through this path under ASan/UBSan.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/coloring/color.hpp"

namespace dima::service {

/// Protocol version spoken by this build; carried in `Hello`.
inline constexpr std::uint32_t kServiceWireVersion = 1;

/// Hard ceiling on one frame's payload. Commands are tiny (the largest is
/// `Snapshot` with a path); anything bigger is a length-bomb, rejected
/// before any allocation happens.
inline constexpr std::size_t kMaxPayloadBytes = 64 * 1024;

/// Unified frame kinds of the service protocol. The first block is
/// client → server (commands), the second server → client (replies); each
/// direction's frame format registers exactly its block in `kKinds`. The
/// replication kinds (PR 9) are appended after the v1 blocks so every
/// pre-existing kind keeps its wire value: `ReplSync` is a command, the
/// two `Repl*` reply kinds carry the warm-standby feed.
enum class ServiceKind : std::uint8_t {
  // --- commands -----------------------------------------------------------
  Hello,       ///< open a session: wire version + vertex count
  InsertEdge,  ///< link up: {u,v} joins the graph, queued for repair
  EraseEdge,   ///< link down: {u,v} leaves, its color is freed
  QueryColor,  ///< read the color of {u,v} (bounded staleness)
  Flush,       ///< force a repair epoch now
  Snapshot,    ///< checkpoint the colored graph to a path
  Stats,       ///< admission/backlog/latency counters
  Shutdown,    ///< finish: ack and close the session
  // --- replies ------------------------------------------------------------
  HelloOk,     ///< session open: negotiated version + vertex count
  Ack,         ///< mutation outcome + the stable edge id
  ColorInfo,   ///< color + epoch + staleness of the queried edge
  EpochDone,   ///< a forced epoch ran: index, repaired edges, latency
  SnapshotOk,  ///< checkpoint written: byte count + digest
  StatsInfo,   ///< counter block (order documented in PROTOCOLS.md §12)
  Error,       ///< code + message; framing errors also end the session
  // --- replication (PROTOCOLS.md §12.7) ------------------------------------
  ReplSync,    ///< command: subscribe this session as a warm standby
  ReplState,   ///< reply: one bootstrap chunk (checkpoint + scheduler state)
  ReplCmd,     ///< reply: one admitted command, forwarded in admission order
};

/// Number of `ServiceKind` enumerators. Adding a kind means growing this,
/// which forces the registries the static gates check: the
/// `serviceKindName` switch (wire.cpp, -Wswitch + Werror), one direction's
/// `kKinds` table (the `serviceKindsRegistered` static_assert below), and
/// the decoder's per-kind payload layout (`dimalint`'s
/// service-kind-registry rule re-checks the tables textually).
inline constexpr std::size_t kServiceKindCount = 18;
static_assert(static_cast<std::size_t>(ServiceKind::ReplCmd) + 1 ==
                  kServiceKindCount,
              "kServiceKindCount must track the ServiceKind enumerator list");

/// Diagnostic name of a service kind ("insert-edge", "color-info", ...).
const char* serviceKindName(ServiceKind kind);

/// Mutation outcomes carried by `Ack::status`.
enum class AckStatus : std::uint8_t {
  Applied,    ///< insert/erase took effect; `edge` is the stable id
  Duplicate,  ///< insert of an edge that already exists (no-op)
  Missing,    ///< erase of an absent edge (no-op)
  Rejected,   ///< self-loop or out-of-range endpoint
};

/// Query outcomes carried by `ColorInfo::status`.
enum class ColorStatus : std::uint8_t {
  Colored,     ///< `color` is the edge's current color
  Pending,     ///< edge exists but awaits its repair epoch
  NoSuchEdge,  ///< {u,v} is not in the graph
};

/// Error codes carried by `Error::status`.
enum class ErrorCode : std::uint8_t {
  BadFrame,    ///< malformed bytes; the session ends after this reply
  BadVersion,  ///< Hello carried an unsupported wire version
  BadState,    ///< command before Hello, or Hello re-negotiating n
  BadArgument, ///< semantically invalid field (e.g. empty snapshot path)
  IoError,     ///< snapshot/restore file system failure
  NotConverged,///< a forced epoch hit the cycle cap; coloring incomplete
};

/// "No edge" sentinel for `Ack::edge`.
inline constexpr std::uint32_t kNoServiceEdge = static_cast<std::uint32_t>(-1);

/// Replication bootstrap chunk size: `ReplState` frames slice the encoded
/// bootstrap into pieces this big, comfortably under `kMaxPayloadBytes`
/// and the u16 text-length field of the reply codec.
inline constexpr std::size_t kReplChunkBytes = 32 * 1024;

/// Client → server frame. `a`/`b` are the kind-specific integer fields
/// (endpoints for the edge commands, version/n for Hello), `path` rides
/// only on Snapshot.
struct CommandFrame {
  /// Kind subset this direction carries; the registry gate checks that the
  /// command/reply tables together cover every `ServiceKind`.
  static constexpr ServiceKind kKinds[] = {
      ServiceKind::Hello,      ServiceKind::InsertEdge,
      ServiceKind::EraseEdge,  ServiceKind::QueryColor,
      ServiceKind::Flush,      ServiceKind::Snapshot,
      ServiceKind::Stats,      ServiceKind::Shutdown,
      ServiceKind::ReplSync};

  ServiceKind kind = ServiceKind::Hello;
  std::uint32_t seq = 0;
  std::uint32_t a = 0;  ///< Hello/ReplSync: wire version. Edge cmds: u.
  std::uint32_t b = 0;  ///< Hello: vertex count.  Edge commands: endpoint v.
  std::string path;     ///< Snapshot: checkpoint destination.

  friend bool operator==(const CommandFrame&, const CommandFrame&) = default;
};

/// Fixed order of the `StatsInfo` counter block (PROTOCOLS.md §12).
inline constexpr std::size_t kStatsFieldCount = 10;

/// Server → client frame. Field usage per kind is documented in
/// PROTOCOLS.md §12; unused fields encode as absent and decode to their
/// defaults, so encode→decode is an identity on well-formed frames.
struct ReplyFrame {
  static constexpr ServiceKind kKinds[] = {
      ServiceKind::HelloOk,   ServiceKind::Ack,
      ServiceKind::ColorInfo, ServiceKind::EpochDone,
      ServiceKind::SnapshotOk, ServiceKind::StatsInfo,
      ServiceKind::Error,     ServiceKind::ReplState,
      ServiceKind::ReplCmd};

  ServiceKind kind = ServiceKind::Error;
  std::uint32_t seq = 0;
  std::uint8_t status = 0;   ///< AckStatus / ColorStatus / ErrorCode
  std::uint32_t a = 0;       ///< HelloOk: version. Ack: edge id.
                             ///< ColorInfo: epoch. EpochDone: epoch index.
                             ///< ReplState: chunk index.
  std::uint32_t b = 0;       ///< HelloOk: n. ColorInfo: staleness.
                             ///< EpochDone: repaired edges.
                             ///< ReplState: chunk count.
  std::int32_t color = coloring::kNoColor;  ///< ColorInfo only
  std::uint64_t value = 0;   ///< EpochDone: latency µs. SnapshotOk: digest.
  std::string text;          ///< Error: message. ReplState: bootstrap chunk.
                             ///< ReplCmd: one encoded command frame.
  /// StatsInfo: exactly `kStatsFieldCount` counters, fixed order.
  std::vector<std::uint64_t> stats;

  friend bool operator==(const ReplyFrame&, const ReplyFrame&) = default;
};

namespace detail {
/// Does `Format`'s kind table carry `k`?
template <class Format>
constexpr bool formatCarries(ServiceKind k) {
  for (const ServiceKind f : Format::kKinds) {
    if (f == k) return true;
  }
  return false;
}
}  // namespace detail

/// True when every `ServiceKind` value below `count` is carried by one of
/// the formats. Compile-time half of the kind registry
/// (tests/negative_compile/service_frame_unregistered.cpp pins that a
/// partial format set fails; `tools/dimalint` re-checks textually).
template <class... Formats>
constexpr bool serviceKindsRegistered(std::size_t count) {
  for (std::size_t v = 0; v < count; ++v) {
    const ServiceKind k = static_cast<ServiceKind>(v);
    if (!(detail::formatCarries<Formats>(k) || ...)) return false;
  }
  return true;
}

static_assert(
    serviceKindsRegistered<CommandFrame, ReplyFrame>(kServiceKindCount),
    "every ServiceKind needs a frame format registering it");

/// Kind-checked frame construction: `makeFrame<K, Format>()` compiles only
/// when `Format` registers `K` in its `kKinds` table — a command built with
/// a reply-only (or unregistered) kind is a build error, not a runtime
/// surprise. Returns `frame` with its kind pinned to `K`.
template <ServiceKind K, class Format>
Format makeFrame(Format frame = {}) {
  static_assert(detail::formatCarries<Format>(K),
                "ServiceKind is not registered in this frame format's "
                "kKinds table — wrong direction or unregistered kind");
  frame.kind = K;
  return frame;
}

// --- encoding --------------------------------------------------------------

/// Appends the length-prefixed encoding of `frame` to `out`.
void encodeCommand(const CommandFrame& frame, std::vector<std::uint8_t>* out);
void encodeReply(const ReplyFrame& frame, std::vector<std::uint8_t>* out);

// --- decoding --------------------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  Frame,     ///< one frame decoded
  NeedMore,  ///< buffer holds no complete frame yet
  Bad,       ///< malformed bytes; the stream is unrecoverable
};

/// Incremental frame splitter + per-direction payload decoder. Feed bytes
/// as they arrive; `next()` yields frames until NeedMore (or Bad, which is
/// sticky — a binary stream cannot resynchronize after a framing error).
template <class Frame>
class FrameReader {
 public:
  /// Appends raw bytes to the internal buffer.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Decodes the next frame into `*frame`; on Bad, `*error` says why.
  DecodeStatus next(Frame* frame, std::string* error);

  /// True when fed bytes ended mid-frame (truncated stream at EOF).
  bool midFrame() const { return pos_ != buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix of buffer_
  bool bad_ = false;
};

using CommandReader = FrameReader<CommandFrame>;
using ReplyReader = FrameReader<ReplyFrame>;

/// Decodes one payload (the bytes after the length prefix). Exposed for
/// the frame-fuzz tests; `FrameReader` is the streaming interface.
bool decodeCommandPayload(const std::uint8_t* data, std::size_t size,
                          CommandFrame* frame, std::string* error);
bool decodeReplyPayload(const std::uint8_t* data, std::size_t size,
                        ReplyFrame* frame, std::string* error);

}  // namespace dima::service
