#pragma once

/// \file transport.hpp
/// The socket transport of `dimacol serve --listen`: a poll-based TCP
/// listener (localhost-first) multiplexing N concurrent sessions onto the
/// single `ColoringService`.
///
/// **Threading model.** One acceptor thread polls the listen socket; each
/// accepted session gets a *reader* thread that pumps its bytes through a
/// `CommandReader` and pushes decoded items into one bounded MPSC queue; a
/// single *consumer* thread pops items in arrival order and is the only
/// thread that touches the service, the command log, or any socket's write
/// side. Epoch runs therefore stay strictly serialized, and the reply and
/// metric stream is a pure function of the *admission order* — which is
/// exactly what the durable command log records.
///
/// **Byte parity with the pipe path.** A session over TCP must be
/// indistinguishable from `runSession` over a pipe: framing errors earn the
/// shared `framingErrorReply` and a disconnect, semantic errors come from
/// the service itself. The only transport-level frame handling is what
/// multi-session *requires* (PROTOCOLS.md §12.6): second-and-later Hellos
/// attach to the live graph instead of re-creating it, `Shutdown` closes
/// one session instead of the shared service, and `ReplSync` diverts the
/// session into the replication path (§12.7).
///
/// **Durability order.** For every admitted command the consumer appends to
/// the command log and forwards to all subscribed replicas *before* writing
/// the client's reply. A client that has seen reply k can therefore rely on
/// command k surviving a primary SIGKILL: the kernel delivers a dead peer's
/// buffered socket bytes before EOF, so the standby receives every
/// acknowledged command (§12.8). The contrapositive is enforced too: a
/// command whose append fails (disk full, dead volume) is *refused* —
/// `Error{IoError}`, session closed, never applied — and the failure is
/// sticky in the log, so an acknowledged-but-unlogged command cannot exist.
///
/// **Slow peers.** The consumer is shared, so its writes must be bounded: a
/// peer (client or replica) that stops reading gets `writeTimeoutMs` of
/// grace per write and is then dropped. `stop()` shuts every session fd
/// down *before* joining the consumer, so shutdown cannot deadlock behind
/// a write even with the timeout disabled.
///
/// This header is deliberately socket-blind (ints, not sockaddrs): the
/// `transport-layering` dimalint rule confines the socket system headers to
/// transport.cpp, so the protocol TUs and the replica stay portable.

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <memory>

#include "src/service/replica.hpp"
#include "src/service/service.hpp"
#include "src/service/session.hpp"
#include "src/support/mutex.hpp"

namespace dima::service {

// --- socket-blind fd helpers (implemented in transport.cpp) ----------------

/// Owning file descriptor (close-on-destroy); -1 means empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Blocking TCP connect to `host:port` (dotted IPv4 or "localhost").
/// Invalid Fd with `*error` set on failure.
Fd connectTcp(const std::string& host, std::uint16_t port,
              std::string* error);

/// write(2) until every byte is out; false on error (SIGPIPE suppressed).
bool writeAll(int fd, const std::uint8_t* data, std::size_t size);

/// One read(2), EINTR retried: >0 bytes, 0 on EOF, -1 on error.
std::ptrdiff_t readSome(int fd, std::uint8_t* buf, std::size_t size);

/// shutdown(2) both directions — wakes a reader blocked in read(2).
void shutdownFd(int fd);

/// shutdown(2) the write side only: "no more commands", replies still
/// drain — how a client ends a stream that has no Shutdown frame.
void shutdownWrite(int fd);

// --- the transport server ---------------------------------------------------

struct TransportOptions {
  std::string host = "127.0.0.1";  ///< localhost-first by default
  std::uint16_t port = 0;          ///< 0 = kernel-assigned (see `port()`)
  std::size_t maxSessions = 16;    ///< accept cap; excess connects are closed
  std::size_t queueCapacity = 1024;  ///< bounded MPSC depth (readers block)
  std::string logPath;             ///< durable command log; empty = off
  std::uint64_t snapshotEvery = 0;  ///< background snapshot period (epochs)
  std::string snapshotPath;        ///< checkpoint file the background snapshots write
  bool exitOnShutdown = false;     ///< a client Shutdown stops the server too
  /// Per-session send timeout (SO_SNDTIMEO). All writes happen on the one
  /// consumer thread, so a peer that stops reading would otherwise stall
  /// every session; a write that cannot complete within this budget drops
  /// that session instead. 0 = block forever (stop() still unblocks it).
  std::uint32_t writeTimeoutMs = 5000;
  /// Kernel send-buffer size (SO_SNDBUF) for accepted sockets; 0 keeps the
  /// kernel default. A test/chaos knob: shrinking it makes a stalled peer
  /// back-pressure the consumer after a deterministic number of bytes.
  int sndbufBytes = 0;
};

/// Consumer-side counters (readable from any thread while running).
struct TransportStats {
  std::atomic<std::uint64_t> sessionsAccepted{0};
  std::atomic<std::uint64_t> commandsAdmitted{0};
  std::atomic<std::uint64_t> repliesWritten{0};
  std::atomic<std::uint64_t> framingErrors{0};
  std::atomic<std::uint64_t> replicasServed{0};
  std::atomic<std::uint64_t> replicasDeferred{0};  ///< ReplSync waiting for a converged boundary
  std::atomic<std::uint64_t> snapshotsTaken{0};
  std::atomic<std::uint64_t> logAppendFailures{0};  ///< commands refused, log unwritable
};

class TransportServer {
 public:
  /// The server serves (and mutates) `service`; the caller keeps ownership
  /// and must not touch it between `start()` and `stop()`.
  TransportServer(ColoringService& service, const TransportOptions& options);
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Binds, listens, and spawns the acceptor + consumer threads. False
  /// with `*error` on bind/listen failure.
  bool start(std::string* error);

  /// The bound port (after `start()`; resolves port 0 to the real one).
  std::uint16_t port() const { return boundPort_; }

  /// Hard stop: closes every socket, drains nothing, joins every thread.
  /// This is the in-process stand-in for SIGKILL — replicas observe EOF
  /// after the kernel delivers whatever was already written. Idempotent.
  void stop();

  /// Blocks until a client Shutdown stopped the consumer (requires
  /// `exitOnShutdown`) or `stop()` was called.
  void waitShutdown();

  const TransportStats& stats() const { return stats_; }

  /// Fault injection for tests: reach the durable log (e.g. `poison()` it
  /// to simulate a full disk). Only safe to call while the server runs —
  /// the log itself is touched by the consumer thread alone.
  CommandLog& commandLogForTest() { return log_; }

 private:
  struct Session;

  /// One decoded unit of session input, queued in arrival order.
  struct QueueItem {
    enum class Kind : std::uint8_t { Frame, BadFrame, Eof };
    Session* session = nullptr;
    Kind kind = Kind::Frame;
    CommandFrame cmd;
    std::string error;    ///< BadFrame: decoder detail
    bool midFrame = false;  ///< Eof: bytes were cut inside a frame
  };

  void acceptorLoop();
  void readerLoop(Session* session);
  void consumerLoop();
  bool queuePush(QueueItem item);
  bool queuePop(QueueItem* item);
  void consumeFrame(Session* session, const CommandFrame& cmd);
  void admitCommand(Session* session, const CommandFrame& cmd);
  void failLogAppend(Session* session, std::uint32_t seq);
  bool atConvergedBoundary() const;
  void interceptHello(Session* session, const CommandFrame& cmd);
  void startReplica(Session* session, const CommandFrame& cmd);
  void sendBootstrap(Session* session);
  void flushPendingReplicas();
  void replicate(const CommandFrame& cmd);
  void maybeBackgroundSnapshot();
  void writeReply(Session* session, const ReplyFrame& reply);
  void closeSession(Session* session);

  ColoringService& service_;
  TransportOptions options_;
  TransportStats stats_;

  Fd listenFd_;
  Fd wakeRead_, wakeWrite_;  ///< self-pipe that unblocks the acceptor poll
  std::uint16_t boundPort_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::thread consumer_;

  support::Mutex sessionsMutex_;
  /// Stable-address session registry; entries live until `stop()` joins
  /// their reader threads (sessions are never reaped mid-run — bounded by
  /// `maxSessions`, documented simplification).
  std::vector<std::unique_ptr<Session>> sessions_
      DIMA_GUARDED_BY(sessionsMutex_);

  support::Mutex queueMutex_;
  std::condition_variable queueNotEmpty_;
  std::condition_variable queueNotFull_;
  std::deque<QueueItem> queue_ DIMA_GUARDED_BY(queueMutex_);

  // Consumer-thread state (single consumer; no locking needed).
  bool serviceHello_ = false;         ///< a Hello reached the service
  bool shutdownSeen_ = false;         ///< a session sent Shutdown (exitOnShutdown)
  std::vector<Session*> replicas_;    ///< bootstrapped subscribers
  std::vector<Session*> pendingReplicas_;  ///< waiting for a converged boundary
  CommandLog log_;
  std::uint64_t lastSnapshotEpoch_ = 0;

  support::Mutex doneMutex_;
  std::condition_variable doneCv_;
  bool consumerDone_ DIMA_GUARDED_BY(doneMutex_) = false;
};

}  // namespace dima::service
