#include "src/service/epoch.hpp"

#include "src/support/stats.hpp"

namespace dima::service {

std::uint64_t EpochScheduler::p50Micros() const {
  return static_cast<std::uint64_t>(support::quantile(latencySamples_, 0.5));
}

std::uint64_t EpochScheduler::p99Micros() const {
  return static_cast<std::uint64_t>(support::quantile(latencySamples_, 0.99));
}

}  // namespace dima::service
