#include "src/service/hostile.hpp"

#include <sstream>
#include <thread>
#include <vector>

#include "src/dynamic/incremental.hpp"
#include "src/service/driver.hpp"
#include "src/service/session.hpp"
#include "src/service/transport.hpp"
#include "src/support/rng.hpp"

#include <cstdio>

namespace dima::service {

namespace {

enum class Mode : std::uint8_t {
  Clean,
  Truncate,
  Duplicate,
  Reorder,
  Garbage,
  BitFlip,
};
constexpr std::size_t kModeCount = 6;

const char* modeName(Mode m) {
  switch (m) {
    case Mode::Clean: return "clean";
    case Mode::Truncate: return "truncate";
    case Mode::Duplicate: return "duplicate";
    case Mode::Reorder: return "reorder";
    case Mode::Garbage: return "garbage";
    case Mode::BitFlip: return "bit-flip";
  }
  return "?";
}

/// One round's well-formed stream, frame by frame (so corruption can work
/// at frame granularity).
std::vector<std::vector<std::uint8_t>> buildFrames(
    const HostileOptions& options, std::uint64_t roundSeed) {
  StreamSpec spec;
  spec.seed = roundSeed;
  spec.n = options.n;
  spec.commands = options.commands;
  const std::vector<CommandFrame> body = buildCommandList(spec);

  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(body.size() + 3);
  std::uint32_t seq = 0;
  const auto push = [&frames, &seq](CommandFrame f) {
    f.seq = seq++;
    std::vector<std::uint8_t> bytes;
    encodeCommand(f, &bytes);
    frames.push_back(std::move(bytes));
  };

  CommandFrame hello = makeFrame<ServiceKind::Hello, CommandFrame>();
  hello.a = kServiceWireVersion;
  hello.b = options.n;
  push(hello);
  for (const CommandFrame& f : body) push(f);
  push(makeFrame<ServiceKind::Flush, CommandFrame>());
  push(makeFrame<ServiceKind::Shutdown, CommandFrame>());
  return frames;
}

/// Assembles the frames into one byte stream, applying `mode`'s mangling.
std::vector<std::uint8_t> assemble(
    const std::vector<std::vector<std::uint8_t>>& frames, Mode mode,
    support::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> work = frames;
  switch (mode) {
    case Mode::Clean:
    case Mode::Truncate:
    case Mode::BitFlip:
      break;  // byte-level modes mangle after concatenation
    case Mode::Duplicate: {
      const std::size_t i = rng.index(work.size());
      work.insert(work.begin() + static_cast<std::ptrdiff_t>(i), work[i]);
      break;
    }
    case Mode::Reorder: {
      if (work.size() >= 2) {
        const std::size_t i = rng.index(work.size() - 1);
        std::swap(work[i], work[i + 1]);
      }
      break;
    }
    case Mode::Garbage: {
      // Splice 1–16 random bytes at a frame boundary; the decoder reads
      // them as a frame header and must reject without ever crashing.
      std::vector<std::uint8_t> junk(1 + rng.index(16));
      for (std::uint8_t& b : junk) {
        b = static_cast<std::uint8_t>(rng.below(256));
      }
      const std::size_t i = rng.index(work.size() + 1);
      work.insert(work.begin() + static_cast<std::ptrdiff_t>(i),
                  std::move(junk));
      break;
    }
  }

  std::vector<std::uint8_t> bytes;
  for (const auto& frame : work) {
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  if (mode == Mode::Truncate && bytes.size() > 1) {
    bytes.resize(1 + rng.index(bytes.size() - 1));
  }
  if (mode == Mode::BitFlip && !bytes.empty()) {
    const std::size_t at = rng.index(bytes.size());
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng.index(8));
  }
  return bytes;
}

/// Counts the structured Error replies in the session's output bytes —
/// which also pushes every reply the service produced back through the
/// reply decoder (round-trip exercise under sanitizers).
std::uint64_t countErrorReplies(const std::string& replyBytes) {
  ReplyReader reader;
  reader.feed(reinterpret_cast<const std::uint8_t*>(replyBytes.data()),
              replyBytes.size());
  ReplyFrame reply;
  std::string error;
  std::uint64_t errors = 0;
  while (reader.next(&reply, &error) == DecodeStatus::Frame) {
    if (reply.kind == ServiceKind::Error) ++errors;
  }
  return errors;
}

/// Drives one corrupted stream through a real TCP session against the
/// same service a pipe round would attack. The reply *bytes* must match
/// the pipe path exactly (tests/test_service_transport.cpp pins this);
/// here we reconstruct the pipe path's SessionResult from them.
SessionResult runSocketRound(ColoringService& service,
                             const std::vector<std::uint8_t>& bytes,
                             std::string* replyBytes) {
  TransportOptions to;  // ephemeral localhost port
  TransportServer server(service, to);
  std::string error;
  DIMA_REQUIRE(server.start(&error), "hostile socket server failed to start");
  Fd fd = connectTcp("127.0.0.1", server.port(), &error);
  DIMA_REQUIRE(fd.valid(), "hostile socket client failed to connect");

  std::thread writer([&] {
    (void)!writeAll(fd.get(), bytes.data(), bytes.size());
    shutdownWrite(fd.get());
  });
  std::string replies;
  std::uint8_t buf[4096];
  std::ptrdiff_t got;
  while ((got = readSome(fd.get(), buf, sizeof(buf))) > 0) {
    replies.append(reinterpret_cast<const char*>(buf),
                   static_cast<std::size_t>(got));
  }
  writer.join();
  server.stop();
  if (replyBytes != nullptr) *replyBytes = replies;

  // Rebuild the pipe loop's counters from the reply stream: one reply per
  // handled command, plus one trailing BadFrame reply when framing broke.
  SessionResult result;
  ReplyReader reader;
  reader.feed(reinterpret_cast<const std::uint8_t*>(replies.data()),
              replies.size());
  ReplyFrame reply;
  std::string decodeError;
  ReplyFrame last;
  while (reader.next(&reply, &decodeError) == DecodeStatus::Frame) {
    ++result.replies;
    last = reply;
  }
  result.commands = result.replies;
  if (result.replies > 0) {
    if (last.kind == ServiceKind::Error && last.seq == 0 &&
        last.status == static_cast<std::uint8_t>(ErrorCode::BadFrame)) {
      --result.commands;  // the trailing framing reply answers no command
      if (last.text == "stream truncated mid-frame") {
        result.truncated = true;
      } else {
        result.framingError = true;
        result.error = last.text;
      }
    } else if (last.kind == ServiceKind::Ack &&
               last.status ==
                   static_cast<std::uint8_t>(AckStatus::Applied) &&
               last.a == kNoServiceEdge) {
      result.shutdown = true;  // the transport's per-session Shutdown ack
    }
  }
  return result;
}

}  // namespace

std::vector<std::uint8_t> buildHostileBytes(const HostileOptions& options,
                                            std::size_t round) {
  const Mode mode = static_cast<Mode>(round % kModeCount);
  const std::uint64_t roundSeed = support::mix64(options.seed, round);
  support::Rng rng(support::mix64(roundSeed, 0x6057173ULL));
  return assemble(buildFrames(options, roundSeed), mode, rng);
}

HostileReport runHostileCampaign(const HostileOptions& options) {
  HostileReport report;
  support::Rng rng(options.seed);
  for (std::size_t round = 0; round < options.rounds; ++round) {
    const Mode mode = static_cast<Mode>(round % kModeCount);
    const std::uint64_t roundSeed = support::mix64(options.seed, round);
    const auto frames = buildFrames(options, roundSeed);
    const std::vector<std::uint8_t> bytes = assemble(frames, mode, rng);

    ServiceOptions so;
    so.seed = roundSeed;
    so.policy.maxBatch = options.maxBatch;
    so.monitor = true;
    ColoringService service(so);

    SessionResult session;
    std::string replyBytes;
    if (options.socket) {
      session = runSocketRound(service, bytes, &replyBytes);
    } else {
      std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
      in.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
      std::ostringstream out(std::ios::binary);
      session = runSession(service, in, out);
      replyBytes = out.str();
    }

    ++report.rounds;
    report.commandsServed += session.commands;
    report.errorReplies += countErrorReplies(replyBytes);
    if (session.shutdown) ++report.cleanSessions;
    if (session.framingError) ++report.framingRejections;
    if (session.truncated) ++report.truncatedSessions;
    report.monitorViolations += service.violations().size();
    if (!service.violations().empty() && report.firstFailure.empty()) {
      report.firstFailure = service.violations().front().toString();
    }

    // Whatever prefix landed must still be a proper partial coloring:
    // flush the backlog (service object outlives the session unless the
    // client said Shutdown with nothing pending) and verify.
    if (service.ready() && !service.shutdownRequested()) {
      CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
      (void)service.handle(flush);
    }
    if (service.ready()) {
      const coloring::Verdict verdict = dynamic::verifyDynamicColoring(
          service.graph(), service.colors());
      if (!verdict.valid) {
        ++report.verifyFailures;
        if (report.firstFailure.empty()) report.firstFailure = verdict.reason;
      }
    }
    if (options.verbose) {
      std::printf("round %zu [%s]: %llu cmds, %s, violations so far %zu\n",
                  round, modeName(mode),
                  static_cast<unsigned long long>(session.commands),
                  session.shutdown ? "shutdown"
                  : session.framingError ? "framing-reject"
                  : session.truncated ? "truncated"
                                      : "eof",
                  report.monitorViolations);
    }
  }
  return report;
}

}  // namespace dima::service
