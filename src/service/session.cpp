#include "src/service/session.hpp"

#include <istream>
#include <ostream>

namespace dima::service {

namespace {

void writeReply(const ReplyFrame& reply, std::ostream& out,
                SessionResult* result) {
  std::vector<std::uint8_t> bytes;
  encodeReply(reply, &bytes);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ++result->replies;
}

}  // namespace

ReplyFrame framingErrorReply(std::string detail) {
  ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
  r.seq = 0;  // the offending frame never yielded a seq
  r.status = static_cast<std::uint8_t>(ErrorCode::BadFrame);
  r.text = std::move(detail);
  return r;
}

SessionResult runSession(ColoringService& service, std::istream& in,
                         std::ostream& out) {
  SessionResult result;
  CommandReader reader;
  char chunk[4096];
  bool done = false;
  while (!done) {
    in.read(chunk, sizeof(chunk));
    const std::streamsize got = in.gcount();
    if (got > 0) {
      reader.feed(reinterpret_cast<const std::uint8_t*>(chunk),
                  static_cast<std::size_t>(got));
    }
    CommandFrame cmd;
    std::string error;
    DecodeStatus status;
    while ((status = reader.next(&cmd, &error)) == DecodeStatus::Frame) {
      ++result.commands;
      writeReply(service.handle(cmd), out, &result);
      if (cmd.kind == ServiceKind::Shutdown && service.shutdownRequested()) {
        result.shutdown = true;
        done = true;
        break;
      }
    }
    if (status == DecodeStatus::Bad) {
      result.framingError = true;
      result.error = error;
      writeReply(framingErrorReply(error), out, &result);
      done = true;
    }
    if (!done && got <= 0) {
      // EOF. Mid-frame bytes mean the client died mid-send.
      if (reader.midFrame()) {
        result.truncated = true;
        writeReply(framingErrorReply("stream truncated mid-frame"), out,
                   &result);
      }
      done = true;
    }
  }
  out.flush();
  return result;
}

}  // namespace dima::service
