#pragma once

/// \file service.hpp
/// `ColoringService`: the long-running edge-coloring server core.
///
/// One instance owns a `DynamicGraph` plus a live `≤ 2Δ−1` coloring kept by
/// `dynamic::IncrementalRecolorer`, and maps every decoded `CommandFrame`
/// to exactly one `ReplyFrame` (`handle()`). The session/transport layer
/// (src/service/session.hpp) is a separate concern: this class never
/// touches bytes, so tests drive it frame-by-frame.
///
/// **Epoch discipline.** Mutations mutate the overlay immediately — so
/// duplicate/missing detection and topology queries always see the true
/// graph — but recoloring is deferred to repair epochs per the
/// `EpochPolicy` (src/service/epoch.hpp): a full batch, an over-stale
/// query, `Flush`, or `Snapshot` triggers one. Between epochs a queried
/// edge may report `Pending`; the staleness bound caps how long.
///
/// **Checkpoint/restore.** `Snapshot` forces a converged epoch, then
/// persists {seed, repair count, epoch index, graph slots, free-id stack,
/// colors} via service/checkpoint.hpp. Constructing a service from a
/// `Checkpoint` resumes the run: because repair randomness is keyed by
/// (seed, repairIndex) and edge ids by the free-id stack, the restored
/// process colors every future edge exactly as the uninterrupted one —
/// bit-identical, tested in tests/test_service_checkpoint.cpp and the CI
/// smoke step.
///
/// **Monitor mode.** With `ServiceOptions::monitor` every epoch runs under
/// the full `sim::InvariantMonitor` safety catalog (the fuzz harness's
/// per-repair idiom): the topology is snapshotted, surviving colors are
/// seeded as prior commits, and the automaton trace is cross-checked live.
/// The hostile-client mode (src/service/hostile.hpp) runs with this on.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/net/trace.hpp"
#include "src/service/checkpoint.hpp"
#include "src/service/epoch.hpp"
#include "src/service/wire.hpp"
#include "src/sim/monitor.hpp"

namespace dima::service {

struct ServiceOptions {
  /// Master seed of the run (checkpoints carry it; restore overrides it).
  std::uint64_t seed = 0x5e57eULL;
  EpochPolicy policy;
  /// Engine round cap per repair epoch.
  std::uint64_t maxCycles = 1u << 20;
  /// Run every epoch under the InvariantMonitor catalog (hostile mode).
  bool monitor = false;
  /// Deterministic-latency mode: record each epoch's automaton cycle count
  /// as its latency metric instead of wall-clock µs, so StatsInfo — p50/p99
  /// included — is byte-identical across processes. The failover drill and
  /// its CI smoke depend on this (PROTOCOLS.md §12.8).
  bool detTime = false;
};

// kMaxServiceVertices (the Hello/checkpoint vertex cap) lives in
// checkpoint.hpp, next to the decoder that enforces it on the wire path.

class ColoringService {
 public:
  /// A fresh service; the graph is created by the `Hello` handshake.
  explicit ColoringService(const ServiceOptions& options = {});

  /// A restored service resuming `cp` (seed and epoch/repair counters come
  /// from the checkpoint). `Hello` then re-attaches: its vertex count must
  /// be 0 ("whatever you have") or match.
  ColoringService(const Checkpoint& cp, const ServiceOptions& options = {});

  /// Maps one command to its reply; runs repair epochs as the policy
  /// demands. After a `BadFrame`-class error the *session* ends, but the
  /// service object itself only stops accepting work after `Shutdown`.
  ReplyFrame handle(const CommandFrame& cmd);

  bool ready() const { return core_ != nullptr; }
  bool shutdownRequested() const { return shutdown_; }

  /// True once a Hello succeeded (or `markSessionOpen()` ran). The
  /// transport consults this to decide whether a session's Hello attaches
  /// to existing state or creates it.
  bool helloDone() const { return hello_; }

  /// Marks the handshake complete without a Hello frame: log recovery and
  /// replica bootstrap restore a service whose original Hello was consumed
  /// by the previous process. Requires restored state to attach to.
  void markSessionOpen();

  const ServiceOptions& options() const { return options_; }

  // --- introspection (tests, bench, CLI) -----------------------------------
  const EpochScheduler& scheduler() const { return sched_; }
  const EpochRecord& lastEpoch() const { return lastEpoch_; }
  const dynamic::DynamicGraph& graph() const;
  const std::vector<coloring::Color>& colors() const;
  std::size_t numVertices() const { return n_; }

  /// Monitor-mode violations accumulated across all epochs (empty when the
  /// catalog held, or when monitor mode is off).
  const std::vector<sim::Violation>& violations() const { return violations_; }

  /// FNV-1a over (u, v, color) of every live edge in id order — the
  /// fingerprint the restore tests and the CI smoke step compare.
  std::uint64_t colorDigest() const;

  /// Writes "u v color" per live edge in id order (the CI smoke diff).
  std::string colorTable() const;

  /// Writes "name value" per StatsInfo field, in wire order (the failover
  /// drill diffs this file between golden and promoted standby).
  std::string statsTable() const;

  /// Transferable scheduler counters for replication bootstrap.
  SchedulerMetrics schedulerMetrics() const { return sched_.metrics(); }
  void restoreSchedulerMetrics(const SchedulerMetrics& m) {
    sched_.restoreMetrics(m);
  }

  /// Current resumable state; requires a converged coloring (callers go
  /// through the Snapshot command, which flushes first).
  Checkpoint checkpoint() const;

 private:
  /// The graph + recolorer pair (recolorer holds a reference to the graph,
  /// so both live behind one stable allocation, created on Hello/restore).
  struct Core {
    dynamic::DynamicGraph dg;
    dynamic::IncrementalRecolorer rec;
    Core(dynamic::DynamicGraph&& g, const dynamic::RecolorOptions& ro)
        : dg(std::move(g)), rec(dg, ro) {}
  };

  ReplyFrame handleHello(const CommandFrame& cmd);
  ReplyFrame handleMutation(const CommandFrame& cmd);
  ReplyFrame handleQuery(const CommandFrame& cmd);
  ReplyFrame handleSnapshot(const CommandFrame& cmd);
  ReplyFrame statsReply(std::uint32_t seq) const;
  ReplyFrame errorReply(std::uint32_t seq, ErrorCode code,
                        std::string message) const;

  dynamic::RecolorOptions recolorOptions();
  void createCore(std::size_t n);
  /// Runs one repair epoch (drain + latency accounting + monitor hooks).
  EpochRecord runEpoch();
  dynamic::RepairStats monitoredRepair();

  ServiceOptions options_;
  std::size_t n_ = 0;
  bool hello_ = false;
  bool shutdown_ = false;
  net::TraceLog traceLog_;  ///< monitor mode only; must outlive core_
  std::unique_ptr<Core> core_;
  EpochScheduler sched_;
  EpochRecord lastEpoch_;
  std::vector<sim::Violation> violations_;
};

}  // namespace dima::service
