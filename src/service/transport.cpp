#include "src/service/transport.hpp"

// The only TU allowed to speak to the socket layer: the dimalint
// `transport-layering` rule pins these headers to this file.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unistd.h>
#include <utility>

#include "src/support/assert.hpp"

namespace dima::service {

// --- fd helpers --------------------------------------------------------------

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

/// Dotted IPv4 or "localhost"; false when the host does not parse (no DNS
/// by design — the listener is localhost-first, remote use takes raw IPs).
bool parseHost(const std::string& host, in_addr* out) {
  const std::string dotted = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, dotted.c_str(), out) == 1;
}

}  // namespace

Fd connectTcp(const std::string& host, std::uint16_t port,
              std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!parseHost(host, &addr.sin_addr)) {
    if (error != nullptr) *error = "cannot parse host " + host;
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = "socket() failed";
    return Fd();
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to " + host + ":" + std::to_string(port) +
               " (" + std::strerror(errno) + ")";
    }
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool writeAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t got = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (got < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK is how SO_SNDTIMEO reports an expired send
      // budget: the peer stopped reading. Treat it as a write failure so
      // the server drops that session instead of blocking the shared
      // consumer (sockets without the timeout never return it).
      return false;
    }
    sent += static_cast<std::size_t>(got);
  }
  return true;
}

std::ptrdiff_t readSome(int fd, std::uint8_t* buf, std::size_t size) {
  for (;;) {
    const ssize_t got = ::read(fd, buf, size);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<std::ptrdiff_t>(got);
  }
}

void shutdownFd(int fd) { ::shutdown(fd, SHUT_RDWR); }

void shutdownWrite(int fd) { ::shutdown(fd, SHUT_WR); }

// --- TransportServer ---------------------------------------------------------

struct TransportServer::Session {
  std::uint64_t id = 0;
  Fd fd;
  std::thread reader;
  /// Consumer-set; the acceptor reads it to count live sessions and the
  /// consumer reads it to drop queue items from sessions it already closed.
  std::atomic<bool> closed{false};
  // Consumer-thread state (single consumer; no locking needed).
  bool helloed = false;
  bool replica = false;
};

TransportServer::TransportServer(ColoringService& service,
                                 const TransportOptions& options)
    : service_(service), options_(options) {}

TransportServer::~TransportServer() { stop(); }

bool TransportServer::start(std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (!parseHost(options_.host, &addr.sin_addr)) {
    if (error != nullptr) *error = "cannot parse host " + options_.host;
    return false;
  }
  listenFd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listenFd_.valid()) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listenFd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listenFd_.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_.get(), 64) != 0) {
    if (error != nullptr) {
      *error = "cannot listen on " + options_.host + ":" +
               std::to_string(options_.port) + " (" + std::strerror(errno) +
               ")";
    }
    listenFd_.reset();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listenFd_.get(), reinterpret_cast<sockaddr*>(&bound), &len);
  boundPort_ = ntohs(bound.sin_port);

  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    if (error != nullptr) *error = "pipe() failed";
    listenFd_.reset();
    return false;
  }
  wakeRead_ = Fd(pipeFds[0]);
  wakeWrite_ = Fd(pipeFds[1]);

  if (!options_.logPath.empty() && !log_.open(options_.logPath, error)) {
    listenFd_.reset();
    return false;
  }

  serviceHello_ = service_.helloDone();
  lastSnapshotEpoch_ = service_.scheduler().epochsRun();
  acceptor_ = std::thread([this] { acceptorLoop(); });
  consumer_ = std::thread([this] { consumerLoop(); });
  return true;
}

void TransportServer::stop() {
  if (stopping_.exchange(true)) return;
  if (wakeWrite_.valid()) {
    // write(2), not writeAll: the self-pipe is a pipe, and send(2) — which
    // writeAll uses for MSG_NOSIGNAL — fails with ENOTSOCK on it.
    const std::uint8_t byte = 1;
    ssize_t wrote;
    do {
      wrote = ::write(wakeWrite_.get(), &byte, 1);
    } while (wrote < 0 && errno == EINTR);
  }
  // Shut every session fd down BEFORE joining the consumer: a consumer
  // blocked in send(2) on a peer that stopped reading returns with an
  // error the moment its socket is shut down. Joining first would deadlock
  // permanently in that state (the old stop() did exactly that). The fds
  // themselves are only *closed* after their reader threads are joined.
  {
    support::MutexLock lock(sessionsMutex_);
    for (auto& session : sessions_) {
      if (session->fd.valid()) shutdownFd(session->fd.get());
    }
  }
  {
    support::MutexLock lock(queueMutex_);
  }
  queueNotEmpty_.notify_all();
  queueNotFull_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (consumer_.joinable()) consumer_.join();
  listenFd_.reset();
  // Wake every reader blocked in read(2), then join. Sessions are only
  // reaped here — `maxSessions` bounds the fd/thread footprint meanwhile.
  // The shutdown pass repeats because the acceptor may have admitted one
  // last session between the pass above and its own join.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    support::MutexLock lock(sessionsMutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session->fd.valid()) shutdownFd(session->fd.get());
  }
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
    session->fd.reset();
  }
  log_.close();
  {
    support::MutexLock lock(doneMutex_);
    consumerDone_ = true;
  }
  doneCv_.notify_all();
}

void TransportServer::waitShutdown() {
  support::UniqueLock lock(doneMutex_);
  doneCv_.wait(lock.native(), [this]() DIMA_NO_THREAD_SAFETY_ANALYSIS {
    return consumerDone_;
  });
}

void TransportServer::acceptorLoop() {
  for (;;) {
    pollfd fds[2] = {{listenFd_.get(), POLLIN, 0},
                     {wakeRead_.get(), POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (stopping_.load()) return;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    Fd client(::accept(listenFd_.get(), nullptr, nullptr));
    if (!client.valid()) continue;
    const int one = 1;
    ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.writeTimeoutMs > 0) {
      // Bounds every consumer write to this session; an expired budget
      // surfaces as EAGAIN in writeAll and drops the session.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.writeTimeoutMs / 1000);
      tv.tv_usec =
          static_cast<suseconds_t>((options_.writeTimeoutMs % 1000) * 1000);
      ::setsockopt(client.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (options_.sndbufBytes > 0) {
      ::setsockopt(client.get(), SOL_SOCKET, SO_SNDBUF,
                   &options_.sndbufBytes, sizeof(options_.sndbufBytes));
    }
    support::MutexLock lock(sessionsMutex_);
    std::size_t live = 0;
    for (const auto& s : sessions_) {
      if (!s->closed.load()) ++live;
    }
    if (live >= options_.maxSessions) continue;  // client is simply closed
    auto session = std::make_unique<Session>();
    session->id = stats_.sessionsAccepted.fetch_add(1) + 1;
    session->fd = std::move(client);
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    raw->reader = std::thread([this, raw] { readerLoop(raw); });
  }
}

void TransportServer::readerLoop(Session* session) {
  CommandReader reader;
  std::uint8_t buf[4096];
  for (;;) {
    const std::ptrdiff_t got =
        readSome(session->fd.get(), buf, sizeof(buf));
    if (got > 0) {
      reader.feed(buf, static_cast<std::size_t>(got));
    }
    CommandFrame cmd;
    std::string error;
    DecodeStatus status;
    while ((status = reader.next(&cmd, &error)) == DecodeStatus::Frame) {
      QueueItem item;
      item.session = session;
      item.kind = QueueItem::Kind::Frame;
      item.cmd = std::move(cmd);
      if (!queuePush(std::move(item))) return;
    }
    if (status == DecodeStatus::Bad) {
      QueueItem item;
      item.session = session;
      item.kind = QueueItem::Kind::BadFrame;
      item.error = std::move(error);
      (void)queuePush(std::move(item));
      return;
    }
    if (got <= 0) {
      QueueItem item;
      item.session = session;
      item.kind = QueueItem::Kind::Eof;
      item.midFrame = reader.midFrame();
      (void)queuePush(std::move(item));
      return;
    }
  }
}

bool TransportServer::queuePush(QueueItem item) {
  support::UniqueLock lock(queueMutex_);
  queueNotFull_.wait(lock.native(),
                     [this]() DIMA_NO_THREAD_SAFETY_ANALYSIS {
                       return queue_.size() < options_.queueCapacity ||
                              stopping_.load();
                     });
  if (stopping_.load()) return false;
  queue_.push_back(std::move(item));
  queueNotEmpty_.notify_one();
  return true;
}

bool TransportServer::queuePop(QueueItem* item) {
  support::UniqueLock lock(queueMutex_);
  queueNotEmpty_.wait(lock.native(),
                      [this]() DIMA_NO_THREAD_SAFETY_ANALYSIS {
                        return !queue_.empty() || stopping_.load();
                      });
  if (queue_.empty()) return false;
  *item = std::move(queue_.front());
  queue_.pop_front();
  queueNotFull_.notify_one();
  return true;
}

void TransportServer::consumerLoop() {
  QueueItem item;
  while (queuePop(&item)) {
    Session* session = item.session;
    if (session->closed.load()) continue;
    switch (item.kind) {
      case QueueItem::Kind::Frame:
        consumeFrame(session, item.cmd);
        break;
      case QueueItem::Kind::BadFrame:
        // Byte parity with the pipe path: the shared BadFrame reply, then
        // the disconnect a length-prefixed stream cannot avoid.
        stats_.framingErrors.fetch_add(1);
        writeReply(session, framingErrorReply(item.error));
        closeSession(session);
        break;
      case QueueItem::Kind::Eof:
        if (item.midFrame) {
          stats_.framingErrors.fetch_add(1);
          writeReply(session,
                     framingErrorReply("stream truncated mid-frame"));
        }
        closeSession(session);
        break;
    }
    if (options_.exitOnShutdown && shutdownSeen_) break;
  }
  {
    support::MutexLock lock(doneMutex_);
    consumerDone_ = true;
  }
  doneCv_.notify_all();
}

void TransportServer::consumeFrame(Session* session, const CommandFrame& cmd) {
  if (session->replica) return;  // subscribers only listen
  if (cmd.kind == ServiceKind::ReplSync) {
    startReplica(session, cmd);
    return;
  }
  if (cmd.kind == ServiceKind::Hello) {
    interceptHello(session, cmd);
    return;
  }
  if (!session->helloed) {
    // Synthesized, never forwarded: another session's handshake must not
    // be disturbed. Text matches the pipe path's service reply, and like
    // the pipe path the session stays open.
    ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
    r.seq = cmd.seq;
    r.status = static_cast<std::uint8_t>(ErrorCode::BadState);
    r.text = "first frame must be Hello";
    writeReply(session, r);
    return;
  }
  if (cmd.kind == ServiceKind::Shutdown) {
    // Shutdown closes *this session*; the shared service lives on (the
    // pipe path's ack, byte for byte). `exitOnShutdown` lets the CLI and
    // the drill treat it as "stop the server" instead.
    ReplyFrame r = makeFrame<ServiceKind::Ack, ReplyFrame>();
    r.seq = cmd.seq;
    r.status = static_cast<std::uint8_t>(AckStatus::Applied);
    r.a = kNoServiceEdge;
    writeReply(session, r);
    closeSession(session);
    shutdownSeen_ = true;
    return;
  }
  admitCommand(session, cmd);
}

void TransportServer::admitCommand(Session* session, const CommandFrame& cmd) {
  // Durability order (§12.8): log and replicate BEFORE the client reply is
  // written, so an acknowledged command always survives a primary kill.
  // The append must therefore gate admission: a command the log could not
  // durably record (ENOSPC, dead disk) is refused loudly, never applied
  // and acked as if the guarantee still held.
  if (!log_.appendCommand(cmd)) {
    failLogAppend(session, cmd.seq);
    return;
  }
  const ReplyFrame reply = service_.handle(cmd);
  replicate(cmd);
  stats_.commandsAdmitted.fetch_add(1);
  writeReply(session, reply);
  flushPendingReplicas();
  maybeBackgroundSnapshot();
}

void TransportServer::failLogAppend(Session* session, std::uint32_t seq) {
  // The log is sticky-failed once an append breaks (CommandLog::poison's
  // doc explains why a half-written record poisons the tail), so every
  // session's next state-changing command lands here too: the server keeps
  // answering but refuses to mutate state it can no longer make durable.
  stats_.logAppendFailures.fetch_add(1);
  ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
  r.seq = seq;
  r.status = static_cast<std::uint8_t>(ErrorCode::IoError);
  r.text = "command log append failed; command not applied";
  writeReply(session, r);
  closeSession(session);
}

bool TransportServer::atConvergedBoundary() const {
  // backlog()==0 alone is NOT a converged boundary: an epoch that hit the
  // maxCycles cap drains the backlog with converged=false. Snapshot itself
  // refuses such a state (NotConverged); background snapshots and replica
  // bootstraps apply the same gate. A service that has run no epoch in
  // this process reports converged=true by construction (fresh graph, or
  // a checkpoint — which can only be taken at a converged boundary).
  return service_.scheduler().backlog() == 0 && service_.lastEpoch().converged;
}

void TransportServer::interceptHello(Session* session,
                                     const CommandFrame& cmd) {
  if (session->helloed) {
    ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
    r.seq = cmd.seq;
    r.status = static_cast<std::uint8_t>(ErrorCode::BadState);
    r.text = "session already open";
    writeReply(session, r);
    return;
  }
  if (!serviceHello_) {
    // First handshake of the run: forwarded, logged, replicated — a
    // standby that bootstrapped pre-Hello replays it to create the graph.
    // Same durability gate as admitCommand: no append, no graph.
    if (!log_.appendCommand(cmd)) {
      failLogAppend(session, cmd.seq);
      return;
    }
    const ReplyFrame reply = service_.handle(cmd);
    if (reply.kind == ServiceKind::HelloOk) {
      serviceHello_ = true;
      session->helloed = true;
      replicate(cmd);
      stats_.commandsAdmitted.fetch_add(1);
    }
    writeReply(session, reply);
    flushPendingReplicas();
    return;
  }
  // Attach: the graph already exists; this session just joins it. Not
  // forwarded (the service would reject a second Hello) and not logged
  // (no state changes hands).
  ReplyFrame r;
  if (cmd.a != kServiceWireVersion) {
    r = makeFrame<ServiceKind::Error, ReplyFrame>();
    r.status = static_cast<std::uint8_t>(ErrorCode::BadVersion);
    r.text = "wire version " + std::to_string(cmd.a) +
             " unsupported (this server speaks " +
             std::to_string(kServiceWireVersion) + ")";
  } else if (cmd.b != 0 &&
             static_cast<std::size_t>(cmd.b) != service_.numVertices()) {
    r = makeFrame<ServiceKind::Error, ReplyFrame>();
    r.status = static_cast<std::uint8_t>(ErrorCode::BadState);
    r.text = "live graph has " + std::to_string(service_.numVertices()) +
             " vertices, Hello asked for " + std::to_string(cmd.b);
  } else {
    r = makeFrame<ServiceKind::HelloOk, ReplyFrame>();
    r.a = kServiceWireVersion;
    r.b = static_cast<std::uint32_t>(service_.numVertices());
    session->helloed = true;
  }
  r.seq = cmd.seq;
  writeReply(session, r);
}

void TransportServer::startReplica(Session* session, const CommandFrame& cmd) {
  if (cmd.a != kServiceWireVersion) {
    ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
    r.seq = cmd.seq;
    r.status = static_cast<std::uint8_t>(ErrorCode::BadVersion);
    r.text = "wire version " + std::to_string(cmd.a) +
             " unsupported (this server speaks " +
             std::to_string(kServiceWireVersion) + ")";
    writeReply(session, r);
    closeSession(session);
    return;
  }
  session->replica = true;
  if (service_.ready() && !atConvergedBoundary()) {
    // Bootstrap only at a converged epoch boundary — never force an epoch
    // for it (that would perturb the primary's schedule). The next
    // admitted command that reaches a converged boundary flushes this
    // list (an unconverged cap-hit epoch does not count, see
    // atConvergedBoundary).
    stats_.replicasDeferred.fetch_add(1);
    pendingReplicas_.push_back(session);
    return;
  }
  sendBootstrap(session);
}

void TransportServer::sendBootstrap(Session* session) {
  const std::vector<std::uint8_t> blob =
      encodeBootstrap(captureBootstrap(service_));
  const std::size_t chunks =
      blob.empty() ? 1 : (blob.size() + kReplChunkBytes - 1) / kReplChunkBytes;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t begin = i * kReplChunkBytes;
    const std::size_t count =
        std::min(kReplChunkBytes, blob.size() - begin);
    ReplyFrame r = makeFrame<ServiceKind::ReplState, ReplyFrame>();
    r.a = static_cast<std::uint32_t>(i);
    r.b = static_cast<std::uint32_t>(chunks);
    r.text.assign(reinterpret_cast<const char*>(blob.data() + begin), count);
    writeReply(session, r);
    if (session->closed.load()) return;  // write failed mid-bootstrap
  }
  replicas_.push_back(session);
  stats_.replicasServed.fetch_add(1);
}

void TransportServer::flushPendingReplicas() {
  if (pendingReplicas_.empty() || !atConvergedBoundary()) return;
  std::vector<Session*> pending;
  pending.swap(pendingReplicas_);
  for (Session* session : pending) {
    if (!session->closed.load()) sendBootstrap(session);
  }
}

void TransportServer::replicate(const CommandFrame& cmd) {
  if (replicas_.empty()) return;
  std::vector<std::uint8_t> frame;
  encodeCommand(replicatedForm(cmd), &frame);
  ReplyFrame r = makeFrame<ServiceKind::ReplCmd, ReplyFrame>();
  r.text.assign(reinterpret_cast<const char*>(frame.data()), frame.size());
  std::vector<std::uint8_t> bytes;
  encodeReply(r, &bytes);
  std::size_t keep = 0;
  for (Session* session : replicas_) {
    if (session->closed.load()) continue;
    if (!writeAll(session->fd.get(), bytes.data(), bytes.size())) {
      closeSession(session);
      continue;
    }
    replicas_[keep++] = session;
  }
  replicas_.resize(keep);
}

void TransportServer::maybeBackgroundSnapshot() {
  if (options_.snapshotEvery == 0 || options_.snapshotPath.empty()) return;
  if (!service_.ready() || !atConvergedBoundary()) return;
  const std::uint64_t epochs = service_.scheduler().epochsRun();
  if (epochs < lastSnapshotEpoch_ + options_.snapshotEvery) return;
  // A converged boundary the policy reached on its own — background
  // snapshots never force an epoch, unlike the client-driven Snapshot
  // command they replace, and like it they refuse an unconverged coloring
  // (the gate above).
  const Checkpoint cp = service_.checkpoint();
  std::string error;
  std::uint64_t digest = 0;
  if (!saveCheckpoint(cp, options_.snapshotPath, &error, nullptr, &digest)) {
    return;  // disk trouble must not take the serving path down
  }
  (void)log_.appendMarker(options_.snapshotPath, digest);
  lastSnapshotEpoch_ = epochs;
  stats_.snapshotsTaken.fetch_add(1);
}

void TransportServer::writeReply(Session* session, const ReplyFrame& reply) {
  if (session->closed.load()) return;
  std::vector<std::uint8_t> bytes;
  encodeReply(reply, &bytes);
  if (!writeAll(session->fd.get(), bytes.data(), bytes.size())) {
    closeSession(session);
    return;
  }
  stats_.repliesWritten.fetch_add(1);
}

void TransportServer::closeSession(Session* session) {
  if (session->closed.exchange(true)) return;
  // Wakes the session's reader out of read(2); the fd itself is closed at
  // stop(), after the reader thread has been joined.
  shutdownFd(session->fd.get());
}

}  // namespace dima::service
