#pragma once

/// \file hostile.hpp
/// Adversarial client replays: `dimacol serve --hostile`'s engine.
///
/// Each round builds a well-formed command stream from the seed, mangles
/// it with one of the corruption modes below, and replays it against a
/// fresh service running in monitor mode — every repair epoch is checked
/// against the full `sim::InvariantMonitor` safety catalog. The contract
/// under attack bytes is *graceful rejection*, never corruption:
///
///  * the decoder reports `Bad` (or the service replies a structured
///    `Error`) — no crash, no hang, no out-of-bounds read (the CI
///    ASan/UBSan job runs this mode);
///  * whatever prefix of commands did land is served correctly: the
///    monitor catalog stays clean and the surviving coloring verifies.
///
/// Corruption modes, cycled per round:
///
///  * `Clean`     — control group; the whole stream must apply;
///  * `Truncate`  — cut the byte stream mid-frame;
///  * `Duplicate` — replay one frame twice (dup insert → Duplicate ack);
///  * `Reorder`   — swap two adjacent frames (may front-run Hello);
///  * `Garbage`   — splice random bytes between two frames;
///  * `BitFlip`   — flip one bit somewhere in the stream.

#include <cstdint>
#include <string>
#include <vector>

namespace dima::service {

struct HostileOptions {
  std::uint64_t seed = 0xad5e7ULL;
  std::size_t rounds = 60;        ///< corrupted replays (modes cycle)
  std::uint32_t n = 48;           ///< vertices per round's service
  std::size_t commands = 120;     ///< well-formed commands per round
  std::size_t maxBatch = 16;      ///< epoch policy of the attacked service
  bool socket = false;            ///< replay through a real TCP session
                                  ///< (TransportServer) instead of the pipe
  bool verbose = false;           ///< per-round line on stdout
};

struct HostileReport {
  std::size_t rounds = 0;
  std::size_t cleanSessions = 0;     ///< sessions that ended via Shutdown
  std::size_t framingRejections = 0; ///< sessions ended by DecodeStatus::Bad
  std::size_t truncatedSessions = 0; ///< sessions ended by EOF mid-frame
  std::uint64_t commandsServed = 0;
  std::uint64_t errorReplies = 0;    ///< structured Error replies sent
  std::size_t monitorViolations = 0; ///< safety-catalog violations (want 0)
  std::size_t verifyFailures = 0;    ///< surviving colorings that failed
  std::string firstFailure;          ///< detail of the first violation

  bool ok() const { return monitorViolations == 0 && verifyFailures == 0; }
};

/// Runs the full adversarial campaign; deterministic in `options.seed`.
HostileReport runHostileCampaign(const HostileOptions& options);

/// One self-contained corrupted byte stream — what round `round` of a
/// campaign replays, but derived from its own RNG so callers (the soak
/// campaign's hostile clients, the pipe-vs-socket parity test) can build
/// any round independently. Mode cycles with `round` as in the campaign.
std::vector<std::uint8_t> buildHostileBytes(const HostileOptions& options,
                                            std::size_t round);

}  // namespace dima::service
