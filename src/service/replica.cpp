#include "src/service/replica.hpp"

#include <cstring>
#include <fstream>
#include <utility>

#include "src/service/transport.hpp"
#include "src/service/wire_length.hpp"
#include "src/support/assert.hpp"

namespace dima::service {

namespace {

constexpr char kLogMagic[8] = {'D', 'I', 'M', 'A', 'L', 'O', 'G', '1'};
constexpr char kRepMagic[8] = {'D', 'I', 'M', 'A', 'R', 'E', 'P', '1'};

/// Cap on one log record's byte length: the largest legal command frame is
/// 4 + kMaxPayloadBytes, markers are paths; anything bigger is corruption.
constexpr std::size_t kMaxLogRecordBytes = 4 + kMaxPayloadBytes;

void putU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void putU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Decodes one full encoded command frame (length prefix included); false
/// unless the bytes are exactly one well-formed frame.
bool decodeOneCommandFrame(const std::uint8_t* data, std::size_t size,
                           CommandFrame* cmd, std::string* error) {
  CommandReader reader;
  reader.feed(data, size);
  const DecodeStatus status = reader.next(cmd, error);
  if (status != DecodeStatus::Frame) {
    if (status == DecodeStatus::NeedMore && error != nullptr) {
      *error = "embedded command frame truncated";
    }
    return false;
  }
  if (reader.midFrame()) {
    if (error != nullptr) *error = "trailing bytes after embedded frame";
    return false;
  }
  return true;
}

}  // namespace

CommandFrame replicatedForm(const CommandFrame& cmd) {
  // Snapshot is logged/replicated as Flush: state-identical (one forced
  // converged epoch + one latency sample) and path-free.
  if (cmd.kind != ServiceKind::Snapshot) return cmd;
  CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
  flush.seq = cmd.seq;
  return flush;
}

// --- CommandLog -------------------------------------------------------------

bool CommandLog::open(const std::string& path, std::string* error) {
  close();
  bad_.store(false);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open command log " + path;
    return false;
  }
  if (std::fwrite(kLogMagic, 1, sizeof(kLogMagic), file_) !=
          sizeof(kLogMagic) ||
      std::fflush(file_) != 0) {
    if (error != nullptr) *error = "cannot write command log header";
    close();
    return false;
  }
  return true;
}

void CommandLog::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool CommandLog::appendRecord(std::uint8_t type,
                              const std::vector<std::uint8_t>& body) {
  if (file_ == nullptr) return true;  // logging disabled
  if (bad_.load()) return false;      // sticky: see the member comment
  std::vector<std::uint8_t> digested;
  digested.reserve(1 + body.size());
  digested.push_back(type);
  digested.insert(digested.end(), body.begin(), body.end());
  const std::uint64_t digest = fnv1a64(digested.data(), digested.size());

  std::vector<std::uint8_t> record;
  record.reserve(4 + digested.size() + 8);
  putU32(&record, static_cast<std::uint32_t>(body.size()));
  record.insert(record.end(), digested.begin(), digested.end());
  putU64(&record, digest);
  const bool ok = std::fwrite(record.data(), 1, record.size(), file_) ==
                      record.size() &&
                  std::fflush(file_) == 0;
  if (!ok) bad_.store(true);
  return ok;
}

bool CommandLog::appendCommand(const CommandFrame& cmd) {
  std::vector<std::uint8_t> bytes;
  encodeCommand(replicatedForm(cmd), &bytes);
  return appendRecord(0, bytes);
}

bool CommandLog::appendMarker(const std::string& checkpointPath,
                              std::uint64_t digest) {
  std::vector<std::uint8_t> body;
  body.reserve(8 + checkpointPath.size());
  putU64(&body, digest);
  body.insert(body.end(), checkpointPath.begin(), checkpointPath.end());
  return appendRecord(1, body);
}

bool readCommandLog(const std::string& path, LogReadResult* out,
                    std::string* error) {
  out->records.clear();
  out->torn = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read command log " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kLogMagic) ||
      std::memcmp(bytes.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    if (error != nullptr) *error = "bad command log magic";
    return false;
  }
  std::size_t pos = sizeof(kLogMagic);
  while (pos < bytes.size()) {
    // Every exit below the length word is a *torn tail*: the good prefix
    // stands, replay stops here.
    if (bytes.size() - pos < 4) {
      out->torn = true;
      break;
    }
    const std::size_t len = getU32(bytes.data() + pos);
    if (len > kMaxLogRecordBytes ||
        bytes.size() - pos < 4 + 1 + len + 8) {
      out->torn = true;
      break;
    }
    const std::uint8_t* digested = bytes.data() + pos + 4;
    const std::uint64_t want = getU64(digested + 1 + len);
    if (fnv1a64(digested, 1 + len) != want) {
      out->torn = true;
      break;
    }
    const std::uint8_t type = digested[0];
    LogRecord record;
    if (type == 0) {
      record.type = LogRecord::Type::Command;
      std::string decodeError;
      if (!decodeOneCommandFrame(digested + 1, len, &record.cmd,
                                 &decodeError)) {
        out->torn = true;
        break;
      }
    } else if (type == 1) {
      if (len < 8) {
        out->torn = true;
        break;
      }
      record.type = LogRecord::Type::Marker;
      record.markerDigest = getU64(digested + 1);
      record.marker.assign(reinterpret_cast<const char*>(digested + 9),
                           len - 8);
    } else {
      out->torn = true;
      break;
    }
    out->records.push_back(std::move(record));
    pos += 4 + 1 + len + 8;
  }
  return true;
}

bool recoverFromLog(const std::string& path, const ServiceOptions& options,
                    LogRecoverResult* out, std::string* error) {
  LogReadResult log;
  if (!readCommandLog(path, &log, error)) return false;
  out->torn = log.torn;
  out->applied = 0;
  out->checkpointPath.clear();

  // Newest *matching* snapshot marker wins. Background snapshots overwrite
  // one path, so a marker only counts when the file's digest still equals
  // the one recorded at append time — a deleted, damaged, or since-
  // overwritten checkpoint falls back to the marker before it.
  std::size_t replayFrom = 0;
  for (std::size_t i = log.records.size(); i > 0; --i) {
    const LogRecord& record = log.records[i - 1];
    if (record.type != LogRecord::Type::Marker) continue;
    Checkpoint cp;
    std::string loadError;
    if (!loadCheckpoint(record.marker, &cp, &loadError)) continue;
    const std::vector<std::uint8_t> encoded = encodeCheckpoint(cp);
    const std::uint64_t digest =
        getU64(encoded.data() + encoded.size() - 8);
    if (digest != record.markerDigest) continue;
    out->service = std::make_unique<ColoringService>(cp, options);
    out->service->markSessionOpen();
    out->checkpointPath = record.marker;
    replayFrom = i;
    break;
  }
  if (out->service == nullptr) {
    out->service = std::make_unique<ColoringService>(options);
  }
  for (std::size_t i = replayFrom; i < log.records.size(); ++i) {
    const LogRecord& record = log.records[i];
    if (record.type != LogRecord::Type::Command) continue;
    applyReplicatedCommand(*out->service, record.cmd);
    ++out->applied;
  }
  return true;
}

// --- bootstrap ---------------------------------------------------------------

ReplicaBootstrap captureBootstrap(const ColoringService& service) {
  ReplicaBootstrap b;
  b.hasCore = service.ready();
  b.helloDone = service.helloDone();
  b.seed = service.options().seed;
  b.maxBatch = service.options().policy.maxBatch;
  b.maxStaleness = service.options().policy.maxStaleness;
  b.maxCycles = service.options().maxCycles;
  b.detTime = service.options().detTime;
  b.metrics = service.schedulerMetrics();
  if (b.hasCore) b.cp = service.checkpoint();
  return b;
}

std::vector<std::uint8_t> encodeBootstrap(const ReplicaBootstrap& b) {
  std::vector<std::uint8_t> out(kRepMagic, kRepMagic + sizeof(kRepMagic));
  const std::uint8_t flags =
      static_cast<std::uint8_t>((b.hasCore ? 1u : 0u) |
                                (b.helloDone ? 2u : 0u) |
                                (b.detTime ? 4u : 0u));
  out.push_back(flags);
  putU64(&out, b.seed);
  putU64(&out, b.maxBatch);
  putU64(&out, b.maxStaleness);
  putU64(&out, b.maxCycles);
  putU64(&out, b.metrics.mutations);
  putU64(&out, b.metrics.queries);
  putU64(&out, static_cast<std::uint64_t>(b.metrics.backlogPeak));
  putU64(&out, static_cast<std::uint64_t>(b.metrics.latency.size()));
  for (const std::uint64_t s : b.metrics.latency) putU64(&out, s);
  if (b.hasCore) {
    const std::vector<std::uint8_t> cp = encodeCheckpoint(b.cp);
    putU64(&out, static_cast<std::uint64_t>(cp.size()));
    out.insert(out.end(), cp.begin(), cp.end());
  }
  putU64(&out, fnv1a64(out.data(), out.size()));
  return out;
}

bool decodeBootstrap(const std::uint8_t* data, std::size_t size,
                     ReplicaBootstrap* b, std::string* error) {
  const auto fail = [error](const char* what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (size < sizeof(kRepMagic) + 8 ||
      std::memcmp(data, kRepMagic, sizeof(kRepMagic)) != 0) {
    return fail("bad bootstrap magic");
  }
  if (fnv1a64(data, size - 8) != getU64(data + size - 8)) {
    return fail("bootstrap digest mismatch");
  }
  const std::uint8_t* p = data + sizeof(kRepMagic);
  const std::uint8_t* end = data + size - 8;
  const auto need = [&p, end, &fail](std::size_t bytes) {
    return static_cast<std::size_t>(end - p) >= bytes ||
           !fail("bootstrap truncated");
  };
  if (!need(1 + 8 * 8)) return false;
  const std::uint8_t flags = *p++;
  *b = ReplicaBootstrap{};
  b->hasCore = (flags & 1u) != 0;
  b->helloDone = (flags & 2u) != 0;
  b->detTime = (flags & 4u) != 0;
  b->seed = getU64(p); p += 8;
  b->maxBatch = getU64(p); p += 8;
  b->maxStaleness = getU64(p); p += 8;
  b->maxCycles = getU64(p); p += 8;
  b->metrics.mutations = getU64(p); p += 8;
  b->metrics.queries = getU64(p); p += 8;
  b->metrics.backlogPeak = static_cast<std::size_t>(getU64(p)); p += 8;
  // `samples` is wire-controlled (the FNV digest is an integrity check,
  // not a MAC). WireLength has no arithmetic, so the bound must divide the
  // budget rather than multiply the count: samples*8 can wrap the counting
  // type and slip past a `need()`-style check.
  const auto samples = WireLength(getU64(p)).below(
      static_cast<std::uint64_t>(end - p - 8) / 8);
  p += 8;
  if (!samples) return fail("bootstrap truncated");
  b->metrics.latency.reserve(static_cast<std::size_t>(*samples));
  for (std::uint64_t i = 0; i < *samples; ++i) {
    b->metrics.latency.push_back(getU64(p));
    p += 8;
  }
  if (b->hasCore) {
    if (!need(8)) return false;
    // Compared as u64 for the same reason: a size_t cast could truncate.
    const auto cpLen = WireLength(getU64(p)).below(
        static_cast<std::uint64_t>(end - p - 8));
    p += 8;
    if (!cpLen) return fail("bootstrap truncated");
    if (!decodeCheckpoint(p, static_cast<std::size_t>(*cpLen), &b->cp,
                          error)) {
      return false;
    }
    p += *cpLen;
  }
  if (p != end) return fail("bootstrap has trailing bytes");
  return true;
}

std::unique_ptr<ColoringService> serviceFromBootstrap(
    const ReplicaBootstrap& b, bool monitor) {
  ServiceOptions so;
  so.seed = b.seed;
  so.policy.maxBatch = static_cast<std::size_t>(b.maxBatch);
  so.policy.maxStaleness = static_cast<std::size_t>(b.maxStaleness);
  so.maxCycles = b.maxCycles;
  so.detTime = b.detTime;
  so.monitor = monitor;
  std::unique_ptr<ColoringService> service =
      b.hasCore ? std::make_unique<ColoringService>(b.cp, so)
                : std::make_unique<ColoringService>(so);
  if (b.helloDone) service->markSessionOpen();
  service->restoreSchedulerMetrics(b.metrics);
  return service;
}

// --- ReplicaClient -----------------------------------------------------------

void applyReplicatedCommand(ColoringService& service,
                            const CommandFrame& cmd) {
  (void)service.handle(replicatedForm(cmd));
}

namespace {

/// Pumps `fd` until the reply reader yields a frame. 1 = frame, 0 = EOF
/// (or peer reset — the expected primary-death signal), -1 = framing error.
int nextReply(int fd, ReplyReader& reader, ReplyFrame* reply,
              std::string* error) {
  for (;;) {
    DecodeStatus status = reader.next(reply, error);
    if (status == DecodeStatus::Frame) return 1;
    if (status == DecodeStatus::Bad) return -1;
    std::uint8_t buf[4096];
    const std::ptrdiff_t got = readSome(fd, buf, sizeof(buf));
    if (got <= 0) return 0;
    reader.feed(buf, static_cast<std::size_t>(got));
  }
}

}  // namespace

bool ReplicaClient::sync(int fd, std::string* error, bool monitor) {
  CommandFrame req = makeFrame<ServiceKind::ReplSync, CommandFrame>();
  req.a = kServiceWireVersion;
  std::vector<std::uint8_t> bytes;
  encodeCommand(req, &bytes);
  if (!writeAll(fd, bytes.data(), bytes.size())) {
    if (error != nullptr) *error = "cannot send ReplSync";
    return false;
  }

  // Reassemble the chunked bootstrap. The reader persists into
  // `followUntilEof`: ReplCmd frames may already ride the same packets.
  std::vector<std::uint8_t> blob;
  std::uint32_t expect = 0;
  for (;;) {
    ReplyFrame reply;
    const int got = nextReply(fd, reader_, &reply, error);
    if (got < 0) return false;
    if (got == 0) {
      if (error != nullptr) *error = "primary closed during bootstrap";
      return false;
    }
    if (reply.kind == ServiceKind::Error) {
      if (error != nullptr) *error = "primary refused sync: " + reply.text;
      return false;
    }
    if (reply.kind != ServiceKind::ReplState || reply.a != expect) {
      if (error != nullptr) *error = "unexpected frame during bootstrap";
      return false;
    }
    blob.insert(blob.end(), reply.text.begin(), reply.text.end());
    ++expect;
    if (expect == reply.b) break;
  }

  ReplicaBootstrap bootstrap;
  if (!decodeBootstrap(blob.data(), blob.size(), &bootstrap, error)) {
    return false;
  }
  service_ = serviceFromBootstrap(bootstrap, monitor);
  applied_ = 0;
  return true;
}

bool ReplicaClient::followUntilEof(int fd, std::string* error) {
  DIMA_REQUIRE(service_ != nullptr, "sync before following");
  for (;;) {
    ReplyFrame reply;
    const int got = nextReply(fd, reader_, &reply, error);
    if (got < 0) return false;
    if (got == 0) return true;  // primary gone: we are the state now
    if (reply.kind != ServiceKind::ReplCmd) {
      if (error != nullptr) {
        *error = std::string("unexpected ") + serviceKindName(reply.kind) +
                 " on the replication stream";
      }
      return false;
    }
    CommandFrame cmd;
    if (!decodeOneCommandFrame(
            reinterpret_cast<const std::uint8_t*>(reply.text.data()),
            reply.text.size(), &cmd, error)) {
      return false;
    }
    applyReplicatedCommand(*service_, cmd);
    ++applied_;
  }
}

}  // namespace dima::service
