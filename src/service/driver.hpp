#pragma once

/// \file driver.hpp
/// Deterministic client workloads for the service: the stream generator
/// behind `dimacol serve-stream` (and the CI smoke step) and the
/// sustained-churn measurement behind `dimacol bench-serve`.
///
/// **Stream bundles.** `buildStreams` derives one command list from a seed
/// and assembles it into three wire-format byte streams:
///
///  * `full`  — Hello, commands[0..C), with a `Flush` at the split point,
///              a final `Flush`, `Shutdown`;
///  * `head`  — Hello, commands[0..split), `Snapshot{path}`, `Shutdown`;
///  * `tail`  — Hello(attach), commands[split..C), final `Flush`,
///              `Shutdown`.
///
/// Running `full` against a fresh service, or `head` → kill → restore →
/// `tail`, must end in bit-identical colorings: the explicit `Flush` in
/// `full` mirrors the epoch `Snapshot` forces in `head`, so both schedules
/// run the same repairs in the same order with the same RNG streams. The
/// CI smoke step and tests/test_service_checkpoint.cpp diff the two.
///
/// **Bench.** `runServeBench` pushes a generated stream through the real
/// byte path (`runSession` over in-memory streams) and reports
/// commands/s plus the scheduler's epoch and repair-latency metrics —
/// the numbers `dimacol bench-serve` commits to BENCH_service.json.

#include <cstdint>
#include <string>
#include <vector>

#include "src/service/service.hpp"
#include "src/service/wire.hpp"

namespace dima::service {

struct StreamSpec {
  std::uint64_t seed = 0x57a7eULL;
  std::uint32_t n = 96;           ///< vertex count carried by Hello
  std::size_t commands = 1000;    ///< body commands (excl. handshake/ctrl)
  double queryFraction = 0.25;    ///< P(command is QueryColor)
  double insertFraction = 0.6;    ///< P(mutation is InsertEdge)
  std::size_t split = 0;          ///< checkpoint position; 0 → commands/2
};

/// The seed-derived body commands (inserts/erases/queries only); exposed
/// separately so tests can drive `ColoringService::handle` frame by frame.
std::vector<CommandFrame> buildCommandList(const StreamSpec& spec);

struct StreamBundle {
  std::vector<std::uint8_t> full;
  std::vector<std::uint8_t> head;
  std::vector<std::uint8_t> tail;
};

/// Assembles the three streams; `snapshotPath` is embedded in `head`'s
/// Snapshot command.
StreamBundle buildStreams(const StreamSpec& spec,
                          const std::string& snapshotPath);

struct ServeBenchReport {
  std::uint64_t commands = 0;      ///< commands decoded and handled
  std::uint64_t mutations = 0;     ///< admitted (applied) mutations
  std::uint64_t queries = 0;
  std::uint64_t epochs = 0;
  double seconds = 0.0;
  double commandsPerSec = 0.0;
  double meanEpochBatch = 0.0;     ///< admitted mutations / epochs
  std::uint64_t p50RepairMicros = 0;
  std::uint64_t p99RepairMicros = 0;
  std::size_t backlogPeak = 0;
  std::size_t finalEdges = 0;
  std::uint64_t colorDigest = 0;   ///< determinism pin across runs
};

/// One sustained-churn run through the wire path: fresh service, the
/// spec's full stream (no snapshot), wall-clocked end to end.
ServeBenchReport runServeBench(const StreamSpec& spec,
                               const EpochPolicy& policy);

/// **Soak.** A multi-session sustained-load campaign against one real
/// `TransportServer`: N clean clients stream seed-derived workloads over
/// concurrent TCP sessions while M hostile clients replay corrupted
/// streams (`buildHostileBytes`) into the same service, invariant monitor
/// on. The pass condition is the hostile-mode contract at scale: zero
/// safety-catalog violations and a surviving coloring that verifies, under
/// arbitrary admission interleavings. `ctest -L soak` runs this at ~10⁶
/// commands; the fast tier runs a small budget.
struct SoakSpec {
  std::uint64_t seed = 0x50a7eULL;
  std::uint32_t n = 64;
  std::size_t cleanSessions = 3;    ///< long-lived well-formed streams
  std::size_t hostileSessions = 1;  ///< clients cycling corrupted streams
  std::size_t commands = 20000;     ///< total clean-body budget, split evenly
  std::size_t hostileRounds = 12;   ///< corrupted streams per hostile client
  std::size_t maxBatch = 32;
  double queryFraction = 0.25;
  bool monitor = true;
};

struct SoakReport {
  std::size_t sessions = 0;           ///< sessions the server accepted
  std::uint64_t commandsAdmitted = 0;
  std::uint64_t repliesWritten = 0;
  std::uint64_t framingErrors = 0;    ///< hostile streams rejected at the frame layer
  double seconds = 0.0;
  double commandsPerSec = 0.0;
  std::uint64_t p50RepairMicros = 0;
  std::uint64_t p99RepairMicros = 0;
  std::size_t monitorViolations = 0;
  bool verifyOk = false;
  std::string firstFailure;

  bool ok() const { return monitorViolations == 0 && verifyOk; }
};

SoakReport runSoakCampaign(const SoakSpec& spec);

}  // namespace dima::service
