#include "src/service/driver.hpp"

#include <sstream>
#include <thread>

#include "src/dynamic/incremental.hpp"
#include "src/service/hostile.hpp"
#include "src/service/session.hpp"
#include "src/service/transport.hpp"
#include "src/support/rng.hpp"
#include "src/support/stopwatch.hpp"

namespace dima::service {

namespace {

CommandFrame helloFrame(std::uint32_t n) {
  CommandFrame f = makeFrame<ServiceKind::Hello, CommandFrame>();
  f.a = kServiceWireVersion;
  f.b = n;
  return f;
}

CommandFrame controlFrame(ServiceKind kind) {
  CommandFrame f;
  f.kind = kind;
  return f;
}

/// Appends `frames` to `out` with sequence numbers continuing at `*seq`.
void appendFrames(const std::vector<CommandFrame>& frames,
                  std::vector<std::uint8_t>* out, std::uint32_t* seq) {
  for (CommandFrame f : frames) {
    f.seq = (*seq)++;
    encodeCommand(f, out);
  }
}

}  // namespace

std::vector<CommandFrame> buildCommandList(const StreamSpec& spec) {
  DIMA_REQUIRE(spec.n >= 2, "stream spec needs at least 2 vertices");
  support::Rng rng(spec.seed);
  std::vector<CommandFrame> cmds;
  cmds.reserve(spec.commands);
  for (std::size_t i = 0; i < spec.commands; ++i) {
    CommandFrame f;
    if (rng.bernoulli(spec.queryFraction)) {
      f = makeFrame<ServiceKind::QueryColor, CommandFrame>();
    } else if (rng.bernoulli(spec.insertFraction)) {
      f = makeFrame<ServiceKind::InsertEdge, CommandFrame>();
    } else {
      f = makeFrame<ServiceKind::EraseEdge, CommandFrame>();
    }
    f.a = static_cast<std::uint32_t>(rng.below(spec.n));
    f.b = static_cast<std::uint32_t>(rng.below(spec.n));
    if (f.a == f.b) f.b = (f.b + 1) % spec.n;
    cmds.push_back(f);
  }
  return cmds;
}

StreamBundle buildStreams(const StreamSpec& spec,
                          const std::string& snapshotPath) {
  const std::vector<CommandFrame> cmds = buildCommandList(spec);
  std::size_t split = spec.split == 0 ? cmds.size() / 2 : spec.split;
  if (split > cmds.size()) split = cmds.size();
  const std::vector<CommandFrame> headCmds(cmds.begin(),
                                           cmds.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   split));
  const std::vector<CommandFrame> tailCmds(cmds.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   split),
                                           cmds.end());

  StreamBundle bundle;
  std::uint32_t seq = 0;

  // full: the uninterrupted run. The Flush at the split position mirrors
  // the epoch that head's Snapshot forces, keeping repair indices aligned
  // between the two schedules.
  seq = 0;
  appendFrames({helloFrame(spec.n)}, &bundle.full, &seq);
  appendFrames(headCmds, &bundle.full, &seq);
  appendFrames({controlFrame(ServiceKind::Flush)}, &bundle.full, &seq);
  appendFrames(tailCmds, &bundle.full, &seq);
  appendFrames({controlFrame(ServiceKind::Flush),
                controlFrame(ServiceKind::Shutdown)},
               &bundle.full, &seq);

  // head: run to the split, checkpoint, stop.
  seq = 0;
  appendFrames({helloFrame(spec.n)}, &bundle.head, &seq);
  appendFrames(headCmds, &bundle.head, &seq);
  CommandFrame snap = makeFrame<ServiceKind::Snapshot, CommandFrame>();
  snap.path = snapshotPath;
  appendFrames({snap, controlFrame(ServiceKind::Shutdown)}, &bundle.head,
               &seq);

  // tail: attach to the restored graph (Hello with n = 0) and finish.
  seq = 0;
  appendFrames({helloFrame(0)}, &bundle.tail, &seq);
  appendFrames(tailCmds, &bundle.tail, &seq);
  appendFrames({controlFrame(ServiceKind::Flush),
                controlFrame(ServiceKind::Shutdown)},
               &bundle.tail, &seq);
  return bundle;
}

ServeBenchReport runServeBench(const StreamSpec& spec,
                               const EpochPolicy& policy) {
  StreamSpec benchSpec = spec;
  benchSpec.split = spec.commands;  // no mid-stream flush
  const StreamBundle bundle = buildStreams(benchSpec, "/dev/null");

  ServiceOptions options;
  options.seed = spec.seed;
  options.policy = policy;
  ColoringService service(options);

  std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
  in.write(reinterpret_cast<const char*>(bundle.full.data()),
           static_cast<std::streamsize>(bundle.full.size()));
  std::ostringstream out(std::ios::binary);

  support::Stopwatch sw;
  const SessionResult session = runSession(service, in, out);
  const double seconds = sw.seconds();
  DIMA_REQUIRE(session.shutdown && session.clean(),
               "bench stream did not run to Shutdown");

  ServeBenchReport report;
  report.commands = session.commands;
  report.mutations = service.scheduler().mutationsAdmitted();
  report.queries = service.scheduler().queriesAdmitted();
  report.epochs = service.scheduler().epochsRun();
  report.seconds = seconds;
  report.commandsPerSec =
      seconds > 0.0 ? static_cast<double>(session.commands) / seconds : 0.0;
  report.meanEpochBatch =
      report.epochs > 0 ? static_cast<double>(report.mutations) /
                              static_cast<double>(report.epochs)
                        : 0.0;
  report.p50RepairMicros = service.scheduler().p50Micros();
  report.p99RepairMicros = service.scheduler().p99Micros();
  report.backlogPeak = service.scheduler().backlogPeak();
  report.finalEdges = service.graph().numEdges();
  report.colorDigest = service.colorDigest();
  return report;
}

namespace {

/// Writes `bytes` to a fresh connection and drains replies until the
/// server closes the session (clean streams end in Shutdown; anything else
/// ends when the write half closes and the server reacts).
void runSoakClient(const std::string& host, std::uint16_t port,
                   const std::vector<std::uint8_t>& bytes) {
  std::string error;
  Fd fd = connectTcp(host, port, &error);
  if (!fd.valid()) return;  // server saturated or stopping; campaign still counts
  std::thread writer([&] {
    (void)!writeAll(fd.get(), bytes.data(), bytes.size());
    shutdownWrite(fd.get());
  });
  std::uint8_t buf[8192];
  while (readSome(fd.get(), buf, sizeof(buf)) > 0) {
  }
  writer.join();
}

}  // namespace

SoakReport runSoakCampaign(const SoakSpec& spec) {
  SoakReport report;
  ServiceOptions so;
  so.seed = spec.seed;
  so.policy.maxBatch = spec.maxBatch;
  so.monitor = spec.monitor;
  ColoringService service(so);

  TransportOptions to;  // ephemeral localhost port
  to.maxSessions = spec.cleanSessions + spec.hostileSessions + 2;
  TransportServer server(service, to);
  std::string error;
  DIMA_REQUIRE(server.start(&error), "soak server failed to start");

  const std::size_t cleanCount = spec.cleanSessions > 0 ? spec.cleanSessions : 1;
  const std::size_t perSession = spec.commands / cleanCount;

  support::Stopwatch sw;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < spec.cleanSessions; ++c) {
    clients.emplace_back([&, c] {
      StreamSpec stream;
      stream.seed = support::mix64(spec.seed, c);
      stream.n = spec.n;
      stream.commands = perSession;
      stream.queryFraction = spec.queryFraction;
      std::vector<std::uint8_t> bytes;
      std::uint32_t seq = 0;
      appendFrames({helloFrame(spec.n)}, &bytes, &seq);
      appendFrames(buildCommandList(stream), &bytes, &seq);
      appendFrames({controlFrame(ServiceKind::Flush),
                    controlFrame(ServiceKind::Shutdown)},
                   &bytes, &seq);
      runSoakClient(to.host, server.port(), bytes);
    });
  }
  for (std::size_t h = 0; h < spec.hostileSessions; ++h) {
    clients.emplace_back([&, h] {
      HostileOptions ho;
      ho.seed = support::mix64(spec.seed, 0xbadULL + h);
      ho.n = spec.n;  // same graph: valid prefixes attach to the live session
      ho.commands = 64;
      for (std::size_t round = 0; round < spec.hostileRounds; ++round) {
        runSoakClient(to.host, server.port(), buildHostileBytes(ho, round));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  report.seconds = sw.seconds();

  report.sessions =
      static_cast<std::size_t>(server.stats().sessionsAccepted.load());
  report.commandsAdmitted = server.stats().commandsAdmitted.load();
  report.repliesWritten = server.stats().repliesWritten.load();
  report.framingErrors = server.stats().framingErrors.load();
  report.commandsPerSec =
      report.seconds > 0.0
          ? static_cast<double>(report.commandsAdmitted) / report.seconds
          : 0.0;
  report.p50RepairMicros = service.scheduler().p50Micros();
  report.p99RepairMicros = service.scheduler().p99Micros();

  // Whatever landed must be a proper partial coloring: converge and check.
  if (service.ready()) {
    CommandFrame flush = makeFrame<ServiceKind::Flush, CommandFrame>();
    (void)service.handle(flush);
    const coloring::Verdict verdict =
        dynamic::verifyDynamicColoring(service.graph(), service.colors());
    report.verifyOk = verdict.valid;
    if (!verdict.valid) report.firstFailure = verdict.reason;
  } else {
    report.verifyOk = true;  // nothing ever attached; vacuously proper
  }
  report.monitorViolations = service.violations().size();
  if (report.monitorViolations > 0 && report.firstFailure.empty()) {
    report.firstFailure = service.violations().front().toString();
  }
  return report;
}

}  // namespace dima::service
