#pragma once

/// \file replica.hpp
/// Durable command log + warm-standby replication for the served coloring.
///
/// **The command log** records the primary's *admission order* — every
/// command the consumer forwarded to `ColoringService::handle`, in the
/// order it ran — plus snapshot markers naming the background checkpoints.
/// Replaying the log from the newest loadable checkpoint reproduces the
/// primary bit-for-bit, because the determinism contract (PROTOCOLS.md
/// §12.4) makes the service a pure function of its admitted command
/// sequence. On-disk layout (little-endian, PROTOCOLS.md §12.7):
///
///     "DIMALOG1"
///     record := u32 byteLen | u8 type | byteLen × u8 | u64 digest
///
/// where `type` 0 carries one encoded v1 command frame (length prefix
/// included) and `type` 1 is a snapshot marker: the checkpoint file's own
/// u64 digest followed by its path. Background snapshots overwrite one
/// path, so the digest is what proves a marker still describes the bytes
/// on disk — recovery skips markers whose checkpoint no longer matches.
/// The digest is FNV-1a 64 over (type || bytes), so a torn tail — the
/// primary died mid-append — is detected and replay stops cleanly at the
/// last complete record instead of propagating garbage.
///
/// **Snapshot→Flush.** `Snapshot` commands are logged and replicated as
/// `Flush`: the two are state-identical (one forced converged epoch, one
/// latency sample) and the rewrite keeps the replica from re-writing the
/// primary's checkpoint files — and keeps every replicated frame small
/// enough for the `ReplCmd` payload.
///
/// **The replica** (`ReplicaClient`) subscribes over the same transport
/// with a `ReplSync` command, receives one `ReplicaBootstrap` blob chunked
/// into `ReplState` replies — checkpoint, scheduler metrics, epoch policy,
/// seed — then applies each `ReplCmd` exactly as the primary admitted it.
/// When the primary dies (EOF on the socket) the replica *is* the primary
/// state: colors, free-id stack, RNG cursors, and StatsInfo byte-identical
/// (§12.8). This TU is socket-blind: it drives an `int` fd through the
/// helpers declared in transport.hpp.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/service/service.hpp"
#include "src/service/wire.hpp"

namespace dima::service {

// --- durable command log ----------------------------------------------------

/// One parsed log record.
struct LogRecord {
  enum class Type : std::uint8_t { Command = 0, Marker = 1 };
  Type type = Type::Command;
  CommandFrame cmd;     ///< Command records
  std::string marker;   ///< Marker records: checkpoint path
  std::uint64_t markerDigest = 0;  ///< Marker records: checkpoint digest
};

/// Append-only writer; every record is flushed so the log survives a
/// primary kill up to (at worst) a torn final record.
class CommandLog {
 public:
  CommandLog() = default;
  ~CommandLog() { close(); }
  CommandLog(const CommandLog&) = delete;
  CommandLog& operator=(const CommandLog&) = delete;

  /// Truncates and starts a fresh log at `path`.
  bool open(const std::string& path, std::string* error);
  bool isOpen() const { return file_ != nullptr; }
  void close();

  /// Appends one admitted command (Snapshot is rewritten to Flush).
  bool appendCommand(const CommandFrame& cmd);
  /// Appends a snapshot marker naming a checkpoint file just written,
  /// pinned to that file's digest (from `saveCheckpoint`).
  bool appendMarker(const std::string& checkpointPath, std::uint64_t digest);

  /// Fault injection (tests/chaos): fails every future append exactly as a
  /// disk-full write would, until the next `open()`.
  void poison() { bad_.store(true); }

 private:
  bool appendRecord(std::uint8_t type, const std::vector<std::uint8_t>& body);
  std::FILE* file_ = nullptr;
  /// Sticky failure: a broken append may have written a partial record, so
  /// any later record would land behind a torn tail and be lost on replay —
  /// the log must refuse to "succeed" ever again. Atomic only for the
  /// `poison()` test seam; the server's appends are consumer-thread-only.
  std::atomic<bool> bad_{false};
};

struct LogReadResult {
  std::vector<LogRecord> records;
  bool torn = false;  ///< the tail was truncated/corrupt; records stop before it
};

/// Parses `path`. False with `*error` only when the file is unreadable or
/// the magic is wrong; a damaged tail sets `torn` and keeps the good prefix.
bool readCommandLog(const std::string& path, LogReadResult* out,
                    std::string* error);

struct LogRecoverResult {
  std::unique_ptr<ColoringService> service;
  std::uint64_t applied = 0;        ///< command records replayed
  bool torn = false;
  std::string checkpointPath;       ///< marker used; empty = replayed from scratch
};

/// Rebuilds a service from the log: restore from the newest *loadable*
/// snapshot marker, then replay every later command record. With no usable
/// marker the whole log replays against a fresh service (its Hello is
/// record 0). `options` supplies policy/seed for the fresh case and must
/// match the primary's.
bool recoverFromLog(const std::string& path, const ServiceOptions& options,
                    LogRecoverResult* out, std::string* error);

// --- replication bootstrap ---------------------------------------------------

/// Everything a standby needs beyond the future `ReplCmd` stream. Encoded
/// little-endian: "DIMAREP1" | u8 flags | u64 seed | u64 maxBatch |
/// u64 maxStaleness | u64 maxCycles | metrics{4×u64 + samples} |
/// [u64 cpLen | checkpoint bytes] | u64 digest.
struct ReplicaBootstrap {
  bool hasCore = false;   ///< false: primary was still pre-Hello
  bool helloDone = false; ///< session handshake already consumed upstream
  std::uint64_t seed = 0;
  std::uint64_t maxBatch = 0;
  std::uint64_t maxStaleness = 0;
  std::uint64_t maxCycles = 0;
  bool detTime = false;
  SchedulerMetrics metrics;
  Checkpoint cp;          ///< valid when hasCore
};

/// Captures the primary's current state (requires a converged boundary:
/// backlog 0, no in-flight repair — the transport defers `ReplSync` until
/// one).
ReplicaBootstrap captureBootstrap(const ColoringService& service);

std::vector<std::uint8_t> encodeBootstrap(const ReplicaBootstrap& b);
bool decodeBootstrap(const std::uint8_t* data, std::size_t size,
                     ReplicaBootstrap* b, std::string* error);

/// Builds the standby service a bootstrap describes (restored or fresh,
/// metrics installed, handshake state replayed). `monitor` lets soak runs
/// put the standby under the invariant catalog too.
std::unique_ptr<ColoringService> serviceFromBootstrap(
    const ReplicaBootstrap& b, bool monitor = false);

// --- the warm standby --------------------------------------------------------

class ReplicaClient {
 public:
  /// Subscribes over an already-connected fd (see `connectTcp`): sends
  /// `ReplSync`, consumes the `ReplState` chunks, builds the standby
  /// service. False with `*error` on any protocol or decode failure.
  bool sync(int fd, std::string* error, bool monitor = false);

  /// Applies `ReplCmd` frames until EOF (the primary died or closed).
  /// False with `*error` on a framing/protocol error; plain EOF is success.
  bool followUntilEof(int fd, std::string* error);

  /// Commands applied since sync (mirrors the primary's admissions).
  std::uint64_t applied() const { return applied_; }

  ColoringService* service() { return service_.get(); }
  /// Promotion: the standby service *is* the primary state now.
  std::unique_ptr<ColoringService> takeService() {
    return std::move(service_);
  }

 private:
  std::unique_ptr<ColoringService> service_;
  ReplyReader reader_;  ///< persists across sync → follow (coalesced packets)
  std::uint64_t applied_ = 0;
};

/// Applies one replicated command to a standby service — the shared helper
/// `ReplicaClient` and the log replay both use (Snapshot arrives already
/// rewritten to Flush; a leading Hello opens a fresh service).
void applyReplicatedCommand(ColoringService& service, const CommandFrame& cmd);

/// The form a command is logged and replicated in: Snapshot becomes Flush
/// (same seq), everything else passes through. See the file comment.
CommandFrame replicatedForm(const CommandFrame& cmd);

}  // namespace dima::service
