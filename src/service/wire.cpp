#include "src/service/wire.hpp"

#include <cstring>

namespace dima::service {

namespace {

// --- byte-level helpers (little-endian, explicit so the format is the
// same on every host) -------------------------------------------------------

void putU8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void putU16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v & 0xff));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void putU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked sequential reader over one payload. Every `take*` either
/// succeeds or flips `ok` and returns 0 — callers check once at the end,
/// so a truncated payload can never cause an out-of-range read.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t takeU8() {
    if (pos_ + 1 > size_) return fail();
    return data_[pos_++];
  }

  std::uint16_t takeU16() {
    if (pos_ + 2 > size_) return fail();
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(data_[pos_ + static_cast<std::size_t>(
                                                         i)])
                  << (8 * i));
    }
    pos_ += 2;
    return v;
  }

  std::uint32_t takeU32() {
    if (pos_ + 4 > size_) return fail();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t takeU64() {
    if (pos_ + 8 > size_) return fail();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                       i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string takeString(std::size_t length) {
    if (pos_ + length > size_) {
      fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return s;
  }

  bool ok() const { return ok_; }
  /// The whole payload must be consumed: trailing bytes are a frame error.
  bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  std::uint8_t fail() {
    ok_ = false;
    return 0;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool decodeFail(std::string* error, const char* what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

const char* serviceKindName(ServiceKind kind) {
  switch (kind) {
    case ServiceKind::Hello: return "hello";
    case ServiceKind::InsertEdge: return "insert-edge";
    case ServiceKind::EraseEdge: return "erase-edge";
    case ServiceKind::QueryColor: return "query-color";
    case ServiceKind::Flush: return "flush";
    case ServiceKind::Snapshot: return "snapshot";
    case ServiceKind::Stats: return "stats";
    case ServiceKind::Shutdown: return "shutdown";
    case ServiceKind::HelloOk: return "hello-ok";
    case ServiceKind::Ack: return "ack";
    case ServiceKind::ColorInfo: return "color-info";
    case ServiceKind::EpochDone: return "epoch-done";
    case ServiceKind::SnapshotOk: return "snapshot-ok";
    case ServiceKind::StatsInfo: return "stats-info";
    case ServiceKind::Error: return "error";
    case ServiceKind::ReplSync: return "repl-sync";
    case ServiceKind::ReplState: return "repl-state";
    case ServiceKind::ReplCmd: return "repl-cmd";
  }
  return "?";
}

void encodeCommand(const CommandFrame& frame, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  putU8(&payload, static_cast<std::uint8_t>(frame.kind));
  putU32(&payload, frame.seq);
  switch (frame.kind) {
    case ServiceKind::Hello:
    case ServiceKind::InsertEdge:
    case ServiceKind::EraseEdge:
    case ServiceKind::QueryColor:
    case ServiceKind::ReplSync:
      putU32(&payload, frame.a);
      putU32(&payload, frame.b);
      break;
    case ServiceKind::Snapshot:
      putU16(&payload, static_cast<std::uint16_t>(frame.path.size()));
      for (const char c : frame.path) {
        payload.push_back(static_cast<std::uint8_t>(c));
      }
      break;
    case ServiceKind::Flush:
    case ServiceKind::Stats:
    case ServiceKind::Shutdown:
      break;
    default:
      // Reply kinds cannot reach here: makeFrame<> pins directions at
      // compile time and the decoders reject them; tolerate a hand-built
      // frame by encoding an empty body (the peer will reject the kind).
      break;
  }
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

void encodeReply(const ReplyFrame& frame, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  putU8(&payload, static_cast<std::uint8_t>(frame.kind));
  putU32(&payload, frame.seq);
  switch (frame.kind) {
    case ServiceKind::HelloOk:
      putU32(&payload, frame.a);
      putU32(&payload, frame.b);
      break;
    case ServiceKind::Ack:
      putU8(&payload, frame.status);
      putU32(&payload, frame.a);
      break;
    case ServiceKind::ColorInfo:
      putU8(&payload, frame.status);
      putU32(&payload, static_cast<std::uint32_t>(frame.color));
      putU32(&payload, frame.a);
      putU32(&payload, frame.b);
      break;
    case ServiceKind::EpochDone:
      putU32(&payload, frame.a);
      putU32(&payload, frame.b);
      putU64(&payload, frame.value);
      break;
    case ServiceKind::SnapshotOk:
      putU32(&payload, frame.a);
      putU64(&payload, frame.value);
      break;
    case ServiceKind::StatsInfo:
      putU8(&payload, static_cast<std::uint8_t>(frame.stats.size()));
      for (const std::uint64_t v : frame.stats) putU64(&payload, v);
      break;
    case ServiceKind::Error:
      putU8(&payload, frame.status);
      putU16(&payload, static_cast<std::uint16_t>(frame.text.size()));
      for (const char c : frame.text) {
        payload.push_back(static_cast<std::uint8_t>(c));
      }
      break;
    case ServiceKind::ReplState:
      putU32(&payload, frame.a);
      putU32(&payload, frame.b);
      putU16(&payload, static_cast<std::uint16_t>(frame.text.size()));
      for (const char c : frame.text) {
        payload.push_back(static_cast<std::uint8_t>(c));
      }
      break;
    case ServiceKind::ReplCmd:
      putU16(&payload, static_cast<std::uint16_t>(frame.text.size()));
      for (const char c : frame.text) {
        payload.push_back(static_cast<std::uint8_t>(c));
      }
      break;
    default:
      break;
  }
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

bool decodeCommandPayload(const std::uint8_t* data, std::size_t size,
                          CommandFrame* frame, std::string* error) {
  ByteReader r(data, size);
  const std::uint8_t rawKind = r.takeU8();
  if (!r.ok()) return decodeFail(error, "payload shorter than a kind byte");
  const ServiceKind kind = static_cast<ServiceKind>(rawKind);
  if (!detail::formatCarries<CommandFrame>(kind)) {
    return decodeFail(error, "byte is not a command kind");
  }
  *frame = CommandFrame{};
  frame->kind = kind;
  frame->seq = r.takeU32();
  switch (kind) {
    case ServiceKind::Hello:
    case ServiceKind::InsertEdge:
    case ServiceKind::EraseEdge:
    case ServiceKind::QueryColor:
    case ServiceKind::ReplSync:
      frame->a = r.takeU32();
      frame->b = r.takeU32();
      break;
    case ServiceKind::Snapshot: {
      const std::uint16_t len = r.takeU16();
      frame->path = r.takeString(len);
      break;
    }
    default:
      break;  // Flush/Stats/Shutdown carry no fields.
  }
  if (!r.exhausted()) {
    return decodeFail(error, "payload size does not match the command kind");
  }
  return true;
}

bool decodeReplyPayload(const std::uint8_t* data, std::size_t size,
                        ReplyFrame* frame, std::string* error) {
  ByteReader r(data, size);
  const std::uint8_t rawKind = r.takeU8();
  if (!r.ok()) return decodeFail(error, "payload shorter than a kind byte");
  const ServiceKind kind = static_cast<ServiceKind>(rawKind);
  if (!detail::formatCarries<ReplyFrame>(kind)) {
    return decodeFail(error, "byte is not a reply kind");
  }
  *frame = ReplyFrame{};
  frame->kind = kind;
  frame->seq = r.takeU32();
  switch (kind) {
    case ServiceKind::HelloOk:
      frame->a = r.takeU32();
      frame->b = r.takeU32();
      break;
    case ServiceKind::Ack:
      frame->status = r.takeU8();
      frame->a = r.takeU32();
      break;
    case ServiceKind::ColorInfo:
      frame->status = r.takeU8();
      frame->color = static_cast<std::int32_t>(r.takeU32());
      frame->a = r.takeU32();
      frame->b = r.takeU32();
      break;
    case ServiceKind::EpochDone:
      frame->a = r.takeU32();
      frame->b = r.takeU32();
      frame->value = r.takeU64();
      break;
    case ServiceKind::SnapshotOk:
      frame->a = r.takeU32();
      frame->value = r.takeU64();
      break;
    case ServiceKind::StatsInfo: {
      const std::uint8_t count = r.takeU8();
      if (count != kStatsFieldCount) {
        return decodeFail(error, "stats block has the wrong field count");
      }
      frame->stats.reserve(count);
      for (std::uint8_t i = 0; i < count; ++i) {
        frame->stats.push_back(r.takeU64());
      }
      if (!r.ok()) return decodeFail(error, "stats block truncated");
      break;
    }
    case ServiceKind::Error: {
      frame->status = r.takeU8();
      const std::uint16_t len = r.takeU16();
      frame->text = r.takeString(len);
      break;
    }
    case ServiceKind::ReplState: {
      frame->a = r.takeU32();
      frame->b = r.takeU32();
      const std::uint16_t len = r.takeU16();
      frame->text = r.takeString(len);
      break;
    }
    case ServiceKind::ReplCmd: {
      const std::uint16_t len = r.takeU16();
      frame->text = r.takeString(len);
      break;
    }
    default:
      break;
  }
  if (!r.exhausted()) {
    return decodeFail(error, "payload size does not match the reply kind");
  }
  return true;
}

namespace detail {

/// Shared framing walk: splits `buffer[pos..)` into length-prefixed
/// payloads and hands each to the per-direction payload decoder.
template <class Frame>
DecodeStatus frameNext(std::vector<std::uint8_t>& buffer, std::size_t& pos,
                       bool& bad, Frame* frame, std::string* error,
                       bool (*decodePayload)(const std::uint8_t*, std::size_t,
                                             Frame*, std::string*)) {
  if (bad) {
    if (error != nullptr) *error = "stream already failed";
    return DecodeStatus::Bad;
  }
  // Compact the consumed prefix occasionally so a long session does not
  // grow the buffer without bound.
  if (pos > 0 && (pos == buffer.size() || pos >= 64 * 1024)) {
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(pos));
    pos = 0;
  }
  const std::size_t avail = buffer.size() - pos;
  if (avail < 4) return DecodeStatus::NeedMore;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(buffer[pos + static_cast<std::size_t>(
                                                         i)])
              << (8 * i);
  }
  if (length > kMaxPayloadBytes) {
    bad = true;
    if (error != nullptr) {
      *error = "frame length " + std::to_string(length) +
               " exceeds the payload ceiling";
    }
    return DecodeStatus::Bad;
  }
  if (avail < 4 + static_cast<std::size_t>(length)) {
    return DecodeStatus::NeedMore;
  }
  std::string payloadError;
  const bool ok =
      decodePayload(buffer.data() + pos + 4, length, frame, &payloadError);
  if (!ok) {
    bad = true;
    if (error != nullptr) *error = payloadError;
    return DecodeStatus::Bad;
  }
  pos += 4 + static_cast<std::size_t>(length);
  return DecodeStatus::Frame;
}

}  // namespace detail

template <class Frame>
void FrameReader<Frame>::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

template <>
DecodeStatus FrameReader<CommandFrame>::next(CommandFrame* frame,
                                             std::string* error) {
  return detail::frameNext(buffer_, pos_, bad_, frame, error,
                           &decodeCommandPayload);
}

template <>
DecodeStatus FrameReader<ReplyFrame>::next(ReplyFrame* frame,
                                           std::string* error) {
  return detail::frameNext(buffer_, pos_, bad_, frame, error,
                           &decodeReplyPayload);
}

template class FrameReader<CommandFrame>;
template class FrameReader<ReplyFrame>;

}  // namespace dima::service
