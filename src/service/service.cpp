#include "src/service/service.hpp"

#include <sstream>
#include <utility>

#include "src/dynamic/churn.hpp"
#include "src/support/stopwatch.hpp"

namespace dima::service {

namespace {

using coloring::Color;
using coloring::kNoColor;
using dynamic::ChurnBatch;
using dynamic::ChurnOp;
using graph::Edge;
using graph::EdgeId;
using graph::kNoEdge;
using graph::VertexId;

/// Incremental FNV-1a fold of one little-endian u64.
void fnvMix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffU;
    *h *= 0x100000001b3ULL;
  }
}

}  // namespace

ColoringService::ColoringService(const ServiceOptions& options)
    : options_(options) {
  // Before any epoch runs the service sits at a converged boundary by
  // construction: a fresh (or empty) graph has nothing pending. The
  // transport's snapshot/bootstrap gate reads this through lastEpoch().
  lastEpoch_.converged = true;
}

ColoringService::ColoringService(const Checkpoint& cp,
                                 const ServiceOptions& options)
    : options_(options) {
  options_.seed = cp.seed;  // the run's seed wins over the process flag
  n_ = static_cast<std::size_t>(cp.n);
  dynamic::DynamicGraph g = dynamic::DynamicGraph::fromSlots(
      n_, cp.slots, cp.freeIds);
  core_ = std::make_unique<Core>(std::move(g), recolorOptions());
  std::vector<Color> colors = cp.colors;
  colors.resize(core_->dg.edgeSlots(), kNoColor);
  core_->rec.restoreState(std::move(colors), cp.repairs);
  sched_ = EpochScheduler(options_.policy);
  sched_.restoreEpochs(cp.epoch);
  // A checkpoint can only be taken at a converged boundary (§12.4), so a
  // restored service starts at one even though no epoch ran here yet.
  lastEpoch_.converged = true;
}

dynamic::RecolorOptions ColoringService::recolorOptions() {
  dynamic::RecolorOptions ro;
  ro.seed = options_.seed;
  ro.maxCycles = options_.maxCycles;
  // Monitor mode needs the automaton trace; the log outlives core_ by
  // member order.
  ro.trace = options_.monitor ? &traceLog_ : nullptr;
  return ro;
}

void ColoringService::createCore(std::size_t n) {
  n_ = n;
  core_ = std::make_unique<Core>(dynamic::DynamicGraph(n), recolorOptions());
  sched_ = EpochScheduler(options_.policy);
}

void ColoringService::markSessionOpen() {
  DIMA_REQUIRE(core_ != nullptr,
               "markSessionOpen needs restored state to attach to");
  hello_ = true;
}

const dynamic::DynamicGraph& ColoringService::graph() const {
  DIMA_REQUIRE(core_ != nullptr, "service has no graph before Hello/restore");
  return core_->dg;
}

const std::vector<Color>& ColoringService::colors() const {
  DIMA_REQUIRE(core_ != nullptr, "service has no colors before Hello/restore");
  return core_->rec.colors();
}

ReplyFrame ColoringService::errorReply(std::uint32_t seq, ErrorCode code,
                                       std::string message) const {
  ReplyFrame r = makeFrame<ServiceKind::Error, ReplyFrame>();
  r.seq = seq;
  r.status = static_cast<std::uint8_t>(code);
  r.text = std::move(message);
  return r;
}

ReplyFrame ColoringService::handle(const CommandFrame& cmd) {
  if (shutdown_) {
    return errorReply(cmd.seq, ErrorCode::BadState,
                      "session already shut down");
  }
  if (cmd.kind != ServiceKind::Hello && !hello_) {
    return errorReply(cmd.seq, ErrorCode::BadState,
                      "first frame must be Hello");
  }
  switch (cmd.kind) {
    case ServiceKind::Hello:
      return handleHello(cmd);
    case ServiceKind::InsertEdge:
    case ServiceKind::EraseEdge:
      return handleMutation(cmd);
    case ServiceKind::QueryColor:
      return handleQuery(cmd);
    case ServiceKind::Flush: {
      const EpochRecord epoch = runEpoch();
      if (!epoch.converged) {
        return errorReply(cmd.seq, ErrorCode::NotConverged,
                          "repair epoch hit the cycle cap");
      }
      ReplyFrame r = makeFrame<ServiceKind::EpochDone, ReplyFrame>();
      r.seq = cmd.seq;
      r.a = static_cast<std::uint32_t>(epoch.index);
      r.b = static_cast<std::uint32_t>(epoch.repaired);
      r.value = epoch.micros;
      return r;
    }
    case ServiceKind::Snapshot:
      return handleSnapshot(cmd);
    case ServiceKind::Stats:
      return statsReply(cmd.seq);
    case ServiceKind::Shutdown: {
      shutdown_ = true;
      ReplyFrame r = makeFrame<ServiceKind::Ack, ReplyFrame>();
      r.seq = cmd.seq;
      r.status = static_cast<std::uint8_t>(AckStatus::Applied);
      r.a = kNoServiceEdge;
      return r;
    }
    case ServiceKind::ReplSync:
      // A valid command kind, but subscription is a transport concern: the
      // consumer intercepts it before the service ever sees one. A pipe
      // client (or a direct caller) gets a structured rejection.
      return errorReply(cmd.seq, ErrorCode::BadState,
                        "replication requires the socket transport");
    // Reply kinds never decode into a CommandFrame; direct callers (tests)
    // get the same structured rejection a hostile stream would.
    case ServiceKind::HelloOk:
    case ServiceKind::Ack:
    case ServiceKind::ColorInfo:
    case ServiceKind::EpochDone:
    case ServiceKind::SnapshotOk:
    case ServiceKind::StatsInfo:
    case ServiceKind::Error:
    case ServiceKind::ReplState:
    case ServiceKind::ReplCmd:
      break;
  }
  return errorReply(cmd.seq, ErrorCode::BadFrame,
                    "reply kind in command position");
}

ReplyFrame ColoringService::handleHello(const CommandFrame& cmd) {
  if (hello_) {
    return errorReply(cmd.seq, ErrorCode::BadState, "session already open");
  }
  if (cmd.a != kServiceWireVersion) {
    std::ostringstream os;
    os << "wire version " << cmd.a << " unsupported (this server speaks "
       << kServiceWireVersion << ')';
    return errorReply(cmd.seq, ErrorCode::BadVersion, os.str());
  }
  if (core_ != nullptr) {
    // Restored service: Hello re-attaches; 0 means "whatever you have".
    if (cmd.b != 0 && static_cast<std::size_t>(cmd.b) != n_) {
      std::ostringstream os;
      os << "restored graph has " << n_ << " vertices, Hello asked for "
         << cmd.b;
      return errorReply(cmd.seq, ErrorCode::BadState, os.str());
    }
  } else {
    if (cmd.b == 0 || cmd.b > kMaxServiceVertices) {
      return errorReply(cmd.seq, ErrorCode::BadArgument,
                        "Hello needs a vertex count in [1, 2^24]");
    }
    createCore(static_cast<std::size_t>(cmd.b));
  }
  hello_ = true;
  ReplyFrame r = makeFrame<ServiceKind::HelloOk, ReplyFrame>();
  r.seq = cmd.seq;
  r.a = kServiceWireVersion;
  r.b = static_cast<std::uint32_t>(n_);
  return r;
}

ReplyFrame ColoringService::handleMutation(const CommandFrame& cmd) {
  ReplyFrame r = makeFrame<ServiceKind::Ack, ReplyFrame>();
  r.seq = cmd.seq;
  r.a = kNoServiceEdge;
  const VertexId u = cmd.a;
  const VertexId v = cmd.b;
  if (u >= n_ || v >= n_ || u == v) {
    r.status = static_cast<std::uint8_t>(AckStatus::Rejected);
    return r;
  }
  ChurnBatch batch;
  if (cmd.kind == ServiceKind::InsertEdge) {
    const EdgeId e = core_->dg.insertEdge(u, v);
    if (e == kNoEdge) {
      r.status = static_cast<std::uint8_t>(AckStatus::Duplicate);
      return r;
    }
    batch.ops.push_back(ChurnOp{ChurnOp::Kind::Insert, u, v, e});
    batch.inserts = 1;
    r.a = e;
  } else {
    const EdgeId e = core_->dg.eraseEdge(u, v);
    if (e == kNoEdge) {
      r.status = static_cast<std::uint8_t>(AckStatus::Missing);
      return r;
    }
    batch.ops.push_back(ChurnOp{ChurnOp::Kind::Erase, u, v, e});
    batch.erases = 1;
    r.a = e;
  }
  core_->rec.applyBatch(batch);
  r.status = static_cast<std::uint8_t>(AckStatus::Applied);
  if (sched_.admitMutation()) runEpoch();
  return r;
}

ReplyFrame ColoringService::handleQuery(const CommandFrame& cmd) {
  ReplyFrame r = makeFrame<ServiceKind::ColorInfo, ReplyFrame>();
  r.seq = cmd.seq;
  if (sched_.admitQuery()) runEpoch();
  r.a = static_cast<std::uint32_t>(sched_.epochsRun());
  r.b = static_cast<std::uint32_t>(sched_.backlog());
  const VertexId u = cmd.a;
  const VertexId v = cmd.b;
  const EdgeId e =
      (u < n_ && v < n_ && u != v) ? core_->dg.findEdge(u, v) : kNoEdge;
  if (e == kNoEdge) {
    r.status = static_cast<std::uint8_t>(ColorStatus::NoSuchEdge);
    return r;
  }
  const auto& colors = core_->rec.colors();
  const Color c = e < colors.size() ? colors[e] : kNoColor;
  r.color = c;
  r.status = static_cast<std::uint8_t>(c == kNoColor ? ColorStatus::Pending
                                                     : ColorStatus::Colored);
  return r;
}

ReplyFrame ColoringService::handleSnapshot(const CommandFrame& cmd) {
  if (cmd.path.empty()) {
    return errorReply(cmd.seq, ErrorCode::BadArgument,
                      "Snapshot needs a destination path");
  }
  const EpochRecord epoch = runEpoch();
  if (!epoch.converged) {
    return errorReply(cmd.seq, ErrorCode::NotConverged,
                      "cannot checkpoint an unconverged coloring");
  }
  const Checkpoint cp = checkpoint();
  std::string error;
  std::uint64_t bytes = 0;
  std::uint64_t digest = 0;
  if (!saveCheckpoint(cp, cmd.path, &error, &bytes, &digest)) {
    return errorReply(cmd.seq, ErrorCode::IoError, error);
  }
  ReplyFrame r = makeFrame<ServiceKind::SnapshotOk, ReplyFrame>();
  r.seq = cmd.seq;
  r.a = static_cast<std::uint32_t>(bytes);
  r.value = digest;
  return r;
}

ReplyFrame ColoringService::statsReply(std::uint32_t seq) const {
  ReplyFrame r = makeFrame<ServiceKind::StatsInfo, ReplyFrame>();
  r.seq = seq;
  // Fixed order, documented in PROTOCOLS.md §12.
  r.stats = {static_cast<std::uint64_t>(n_),
             static_cast<std::uint64_t>(core_->dg.numEdges()),
             static_cast<std::uint64_t>(core_->dg.maxDegree()),
             sched_.mutationsAdmitted(),
             sched_.queriesAdmitted(),
             sched_.epochsRun(),
             static_cast<std::uint64_t>(sched_.backlog()),
             static_cast<std::uint64_t>(sched_.backlogPeak()),
             sched_.p50Micros(),
             sched_.p99Micros()};
  return r;
}

EpochRecord ColoringService::runEpoch() {
  support::Stopwatch sw;
  const dynamic::RepairStats stats =
      options_.monitor ? monitoredRepair() : core_->rec.repair();
  // Deterministic-latency mode substitutes the automaton cycle count for
  // wall-clock so two processes replaying the same stream report identical
  // quantiles (failover pin, PROTOCOLS.md §12.8).
  const std::uint64_t micros =
      options_.detTime ? stats.cycles
                       : static_cast<std::uint64_t>(sw.seconds() * 1e6);
  EpochRecord record;
  sched_.drain(&record);
  record.repaired = stats.recolored.size();
  record.evicted = stats.evictedEdges;
  record.frontier = stats.frontierVertices;
  record.cycles = stats.cycles;
  record.micros = micros;
  record.converged = stats.converged;
  sched_.recordLatency(micros);
  lastEpoch_ = record;
  return record;
}

dynamic::RepairStats ColoringService::monitoredRepair() {
  // The fuzz harness's per-repair monitoring idiom (sim/fuzz.cpp): snapshot
  // the topology, seed the surviving colors as prior commits, cross-check
  // the automaton trace of this one repair pass.
  std::vector<EdgeId> denseToOverlay;
  const graph::Graph snap = core_->dg.snapshot(&denseToOverlay);
  sim::MonitorOptions mo;
  mo.semantics = sim::Semantics::ProperEdge;
  if (snap.maxDegree() > 0) mo.paletteBound = 2 * snap.maxDegree() - 1;
  sim::InvariantMonitor monitor(snap, mo);
  monitor.attach(traceLog_);
  const auto& colors = core_->rec.colors();
  for (EdgeId e = 0; e < snap.numEdges(); ++e) {
    const Color col =
        denseToOverlay[e] < colors.size() ? colors[denseToOverlay[e]]
                                          : kNoColor;
    if (col == kNoColor) continue;
    const Edge ed = snap.edges()[e];
    const std::size_t budget = snap.degree(ed.u) + snap.degree(ed.v) - 2;
    if (static_cast<std::size_t>(col) <= budget) monitor.seedCommit(e, col);
  }
  dynamic::RepairStats stats = core_->rec.repair();
  monitor.finish();
  traceLog_.setSink({});
  for (sim::Violation v : monitor.violations()) {
    std::ostringstream os;
    os << v.detail << " [epoch " << sched_.epochsRun() << ']';
    v.detail = os.str();
    violations_.push_back(std::move(v));
  }
  return stats;
}

Checkpoint ColoringService::checkpoint() const {
  DIMA_REQUIRE(core_ != nullptr, "no state to checkpoint before Hello");
  Checkpoint cp;
  cp.seed = options_.seed;
  cp.repairs = core_->rec.repairsCompleted();
  cp.epoch = sched_.epochsRun();
  cp.n = n_;
  const std::size_t slots = core_->dg.edgeSlots();
  cp.slots.reserve(slots);
  for (EdgeId e = 0; e < slots; ++e) {
    cp.slots.push_back(core_->dg.alive(e) ? core_->dg.edge(e) : Edge{});
  }
  const auto free = core_->dg.freeIdStack();
  cp.freeIds.assign(free.begin(), free.end());
  cp.colors = core_->rec.colors();
  cp.colors.resize(slots, kNoColor);
  return cp;
}

std::string ColoringService::statsTable() const {
  const ReplyFrame r = statsReply(0);
  static constexpr const char* kNames[kStatsFieldCount] = {
      "n",          "edges",       "maxDegree", "mutations", "queries",
      "epochs",     "backlog",     "backlogPeak", "p50", "p99"};
  std::ostringstream os;
  for (std::size_t i = 0; i < r.stats.size(); ++i) {
    os << kNames[i] << ' ' << r.stats[i] << '\n';
  }
  return os.str();
}

std::uint64_t ColoringService::colorDigest() const {
  DIMA_REQUIRE(core_ != nullptr, "no coloring to digest before Hello");
  const auto& colors = core_->rec.colors();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (EdgeId e = 0; e < core_->dg.edgeSlots(); ++e) {
    if (!core_->dg.alive(e)) continue;
    const Edge ed = core_->dg.edge(e);
    fnvMix(&h, e);
    fnvMix(&h, ed.u);
    fnvMix(&h, ed.v);
    fnvMix(&h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                   e < colors.size() ? colors[e] : kNoColor)));
  }
  return h;
}

std::string ColoringService::colorTable() const {
  DIMA_REQUIRE(core_ != nullptr, "no coloring to print before Hello");
  const auto& colors = core_->rec.colors();
  std::ostringstream os;
  for (EdgeId e = 0; e < core_->dg.edgeSlots(); ++e) {
    if (!core_->dg.alive(e)) continue;
    const Edge ed = core_->dg.edge(e);
    const Color c = e < colors.size() ? colors[e] : kNoColor;
    os << ed.u << ' ' << ed.v << ' ' << c << '\n';
  }
  return os.str();
}

}  // namespace dima::service
