#pragma once

/// \file checkpoint.hpp
/// Checkpoint/restore of a served coloring: the `Snapshot` command writes
/// the complete resumable state of the service to disk, so the process can
/// be killed and a fresh one restored to continue the exact same run.
///
/// What makes the restore *bit-identical* rather than merely valid:
///
///  * Checkpoints are only taken at converged epoch boundaries (`Snapshot`
///    forces a flush epoch first), so there is no in-flight repair state —
///    the resumable state is exactly {graph slots, free-id stack, colors,
///    completed-repair count, seed}.
///  * `IncrementalRecolorer` derives each repair's RNG streams from
///    `mix64(seed, repairIndex)` alone; restoring the repair count makes
///    repair k of the restored process draw the same randomness as repair
///    k of the original.
///  * `DynamicGraph::fromSlots` rebuilds the id-recycling stack verbatim,
///    so future inserts are assigned the same stable edge ids.
///
/// The file format is little-endian, self-describing, and self-checking:
///
///     "DIMACKP1" | u64 seed | u64 repairs | u64 epoch | u64 n
///     u64 slotCount | slotCount × {u32 u, u32 v}   (dead slot: u = 2^32-1)
///     u64 freeCount | freeCount × u32
///     slotCount × i32 color                        (uncolored: -1)
///     u64 digest                                   (FNV-1a of all prior bytes)
///
/// The decoder verifies the magic, the digest, and — because checkpoints
/// also arrive over the replication wire, where the digest is forgeable —
/// every structural invariant itself, *before* anything allocates or
/// reaches the aborting DIMA_REQUIREs in `fromSlots`/`restoreState`:
/// `n ≤ kMaxServiceVertices`, live slots hold `u < v < n` with no
/// duplicate edge, the free-id stack exactly covers the dead slots, and
/// every color is kNoColor or inside the structural palette bound. A
/// truncated, bit-flipped, or forged file is rejected with a message,
/// never half-restored and never aborted on.

#include <cstdint>
#include <string>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"

namespace dima::service {

/// Hard cap on the vertex count a Hello may request (memory guard: the
/// overlay allocates per-vertex state eagerly). It also bounds `n` in a
/// decoded checkpoint — checkpoints arrive over the replication wire
/// (`decodeBootstrap`), so the decoder must reject an attacker-sized graph
/// before anything allocates.
inline constexpr std::uint32_t kMaxServiceVertices = 1u << 24;

/// Resumable service state, decoupled from the live objects.
struct Checkpoint {
  std::uint64_t seed = 0;     ///< RecolorOptions::seed of the run
  std::uint64_t repairs = 0;  ///< completed repair passes
  std::uint64_t epoch = 0;    ///< completed service epochs
  std::uint64_t n = 0;        ///< vertex count
  std::vector<graph::Edge> slots;       ///< per edge id; dead: u = kNoVertex
  std::vector<graph::EdgeId> freeIds;   ///< id-recycling stack, verbatim
  std::vector<coloring::Color> colors;  ///< per edge id; kNoColor when dead

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// FNV-1a 64 over `size` bytes (the checkpoint's integrity digest; also
/// reported by `SnapshotOk` so clients can compare checkpoints cheaply).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// Serializes `cp` to the on-disk byte layout (digest appended).
std::vector<std::uint8_t> encodeCheckpoint(const Checkpoint& cp);

/// Parses bytes back into `*cp`. False (with `*error` set) on a bad magic,
/// bad digest, truncation, trailing bytes, or inconsistent counts.
bool decodeCheckpoint(const std::uint8_t* data, std::size_t size,
                      Checkpoint* cp, std::string* error);

/// Writes `cp` to `path`; false with `*error` on I/O failure. Returns the
/// byte count via `*bytesOut` and the digest via `*digestOut` (both
/// optional) for the `SnapshotOk` reply.
bool saveCheckpoint(const Checkpoint& cp, const std::string& path,
                    std::string* error, std::uint64_t* bytesOut = nullptr,
                    std::uint64_t* digestOut = nullptr);

/// Reads and verifies `path`; false with `*error` on I/O or format errors.
bool loadCheckpoint(const std::string& path, Checkpoint* cp,
                    std::string* error);

}  // namespace dima::service
