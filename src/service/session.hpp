#pragma once

/// \file session.hpp
/// The transport loop of `dimacol serve`: bytes in, bytes out.
///
/// `runSession` pumps a byte stream (stdin pipe, socket wrapped in
/// iostreams, or a test's `std::stringstream`) through the wire decoder
/// into `ColoringService::handle`, writing one encoded reply per decoded
/// command. The loop is strictly sequential — one service, one session at
/// a time — which is what makes the run replayable: the reply stream is a
/// pure function of the command bytes and the service seed.
///
/// Error handling at this layer is about *bytes*, not semantics (the
/// service replies `Error` for semantic problems itself):
///
///  * a malformed frame gets a final `Error{BadFrame}` reply and ends the
///    session — a length-prefixed binary stream cannot resynchronize;
///  * EOF in the middle of a frame is reported as truncation (also with a
///    trailing `Error{BadFrame}`), distinguishing a killed client from a
///    polite `Shutdown`;
///  * a `Shutdown` command ends the loop after its ack is written.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/service/service.hpp"

namespace dima::service {

/// What one session pump observed (counters for tests and the CLI exit
/// path; the service's own metrics live in `EpochScheduler`).
struct SessionResult {
  std::uint64_t commands = 0;  ///< frames decoded and handled
  std::uint64_t replies = 0;   ///< frames written (== commands + errors)
  bool shutdown = false;       ///< ended by a Shutdown command
  bool framingError = false;   ///< ended by malformed bytes
  bool truncated = false;      ///< ended by EOF mid-frame
  std::string error;           ///< decoder detail when framingError

  /// A session that ended the way a well-behaved client ends it.
  bool clean() const { return !framingError && !truncated; }
};

/// Pumps `in` until Shutdown, EOF, or a framing error; replies go to
/// `out` (flushed before returning).
SessionResult runSession(ColoringService& service, std::istream& in,
                         std::ostream& out);

/// The `Error{BadFrame}` reply a malformed or truncated byte stream earns.
/// Shared between the pipe loop above and the socket transport so the two
/// paths report framing errors byte-for-byte identically (seq 0: the
/// offending frame never yielded one).
ReplyFrame framingErrorReply(std::string detail);

}  // namespace dima::service
