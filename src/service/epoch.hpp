#pragma once

/// \file epoch.hpp
/// Repair-epoch scheduling and admission/backlog accounting for the
/// long-running coloring service.
///
/// The service batches mutations into *repair epochs*: inserts and erases
/// are applied to the overlay immediately (so duplicate detection and
/// queries see the true topology), but recoloring runs only at epoch
/// boundaries, amortizing the automaton's startup over many commands. Two
/// knobs bound how far the coloring may lag the topology:
///
///  * `maxBatch` — an epoch is forced once this many mutations are
///    pending (admission control: the backlog can never exceed it).
///  * `maxStaleness` — a `QueryColor` tolerates at most this many pending
///    mutations; a query over a staler coloring forces an epoch first.
///    0 means queries always see a fully repaired coloring.
///
/// `Flush` and `Snapshot` force an epoch unconditionally, so checkpoints
/// are always taken at a converged boundary.
///
/// `EpochScheduler` also owns the service metrics: command admission
/// counters, the backlog gauge and its peak, and per-epoch repair-latency
/// samples that `p50Micros()`/`p99Micros()` summarize via
/// `support::quantile` — the numbers `dimacol bench-serve` commits to
/// BENCH_service.json.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dima::service {

struct EpochPolicy {
  /// Pending mutations that force a repair epoch. 1 = repair every
  /// mutation immediately (the PR 1 `churn` behavior).
  std::size_t maxBatch = 64;
  /// Pending mutations a query tolerates before forcing an epoch.
  std::size_t maxStaleness = 0;
};

/// One completed repair epoch, as recorded by the service.
struct EpochRecord {
  std::uint64_t index = 0;       ///< 0 = the initial full coloring
  std::size_t batch = 0;         ///< mutations drained into this epoch
  std::size_t repaired = 0;      ///< edges recolored (inserted + evicted)
  std::size_t evicted = 0;       ///< uncolored by the budget eviction
  std::size_t frontier = 0;      ///< vertices that participated
  std::uint64_t cycles = 0;      ///< automaton cycles
  std::uint64_t micros = 0;      ///< wall-clock repair latency
  bool converged = false;
};

/// The scheduler's transferable counters: what a warm standby needs on top
/// of the checkpoint so its StatsInfo matches the primary byte-for-byte
/// (the checkpoint alone only carries the epoch index). Latency samples are
/// exchanged as integer ticks — every recorded sample originates from a
/// `std::uint64_t`, so the round-trip through the internal `double` store
/// is lossless.
struct SchedulerMetrics {
  std::uint64_t mutations = 0;
  std::uint64_t queries = 0;
  std::size_t backlogPeak = 0;
  std::vector<std::uint64_t> latency;
};

class EpochScheduler {
 public:
  explicit EpochScheduler(const EpochPolicy& policy = {}) : policy_(policy) {}

  const EpochPolicy& policy() const { return policy_; }

  // --- admission ----------------------------------------------------------
  /// Records an admitted mutation; true when the batch threshold says an
  /// epoch must run now.
  bool admitMutation() {
    ++mutations_;
    ++backlog_;
    if (backlog_ > backlogPeak_) backlogPeak_ = backlog_;
    return backlog_ >= policy_.maxBatch;
  }

  /// Records a query; true when the backlog exceeds the staleness bound
  /// and the epoch must run before answering.
  bool admitQuery() {
    ++queries_;
    return backlog_ > policy_.maxStaleness;
  }

  // --- epoch completion ---------------------------------------------------
  /// Drains the backlog into an epoch record; returns the drained batch
  /// size. Call exactly once per repair pass, right after it finishes.
  std::size_t drain(EpochRecord* record) {
    const std::size_t batch = backlog_;
    backlog_ = 0;
    if (record != nullptr) {
      record->index = epochs_;
      record->batch = batch;
    }
    ++epochs_;
    return batch;
  }

  /// Resumes the epoch counter from a checkpoint so restored processes
  /// report continuous epoch indices (admission counters restart at zero —
  /// they describe this process, not the run).
  void restoreEpochs(std::uint64_t epochs) { epochs_ = epochs; }

  void recordLatency(std::uint64_t micros) {
    latencySamples_.push_back(static_cast<double>(micros));
  }

  /// Snapshot of every transferable counter, for replication bootstrap.
  SchedulerMetrics metrics() const {
    SchedulerMetrics m;
    m.mutations = mutations_;
    m.queries = queries_;
    m.backlogPeak = backlogPeak_;
    m.latency.reserve(latencySamples_.size());
    for (const double s : latencySamples_) {
      m.latency.push_back(static_cast<std::uint64_t>(s));
    }
    return m;
  }

  /// Installs counters captured by `metrics()` on the source process, so a
  /// promoted standby reports the whole run, not just its own lifetime.
  /// The backlog gauge stays untouched: bootstrap happens at a converged
  /// boundary where it is zero on both sides.
  void restoreMetrics(const SchedulerMetrics& m) {
    mutations_ = m.mutations;
    queries_ = m.queries;
    backlogPeak_ = m.backlogPeak;
    latencySamples_.clear();
    latencySamples_.reserve(m.latency.size());
    for (const std::uint64_t s : m.latency) {
      latencySamples_.push_back(static_cast<double>(s));
    }
  }

  // --- metrics ------------------------------------------------------------
  std::size_t backlog() const { return backlog_; }
  std::size_t backlogPeak() const { return backlogPeak_; }
  std::uint64_t mutationsAdmitted() const { return mutations_; }
  std::uint64_t queriesAdmitted() const { return queries_; }
  std::uint64_t epochsRun() const { return epochs_; }
  const std::vector<double>& latencySamples() const {
    return latencySamples_;
  }

  /// Repair-latency quantiles over all completed epochs (0 when none ran).
  std::uint64_t p50Micros() const;
  std::uint64_t p99Micros() const;

 private:
  EpochPolicy policy_;
  std::size_t backlog_ = 0;
  std::size_t backlogPeak_ = 0;
  std::uint64_t mutations_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t epochs_ = 0;
  std::vector<double> latencySamples_;
};

}  // namespace dima::service
