#pragma once

/// \file drill.hpp
/// The failover drill: prove the warm-standby takeover bit-identical at
/// every epoch boundary of a scripted stream.
///
/// For one seed-derived command stream the drill first runs an
/// *uninterrupted golden*: a fresh service (deterministic-latency mode on)
/// handles Hello, every body command, and a final Flush, while the drill
/// records which commands completed an epoch. Each such boundary — plus
/// "before anything" and "after everything" — becomes a kill point k:
///
///   1. fresh primary behind a real `TransportServer` on an ephemeral
///      localhost port, durable-order semantics and all;
///   2. a `ReplicaClient` subscribes (bootstrap lands pre-Hello, so the
///      standby replays the whole session);
///   3. a real socket client sends Hello + commands[0..k), reading every
///      reply — so each of those k commands is *acknowledged*;
///   4. the server is torn down abruptly (`stop()` — the in-process stand-
///      in for SIGKILL: sockets close, buffered bytes still deliver);
///   5. the standby drains the replication stream to EOF, is promoted, and
///      finishes commands[k..) + Flush locally.
///
/// The promoted run must match the golden *byte-for-byte*: the checkpoint
/// (colors, free-id stack, RNG cursor via the repair count, graph slots)
/// compares equal and the StatsInfo table compares equal (PROTOCOLS.md
/// §12.8). One drill is both the `failover-drill` CLI subcommand and the
/// sweep in tests/test_service_failover.cpp.

#include <cstdint>
#include <string>

#include "src/service/driver.hpp"
#include "src/service/epoch.hpp"

namespace dima::service {

struct DrillOptions {
  StreamSpec spec;      ///< the scripted stream (seed, n, command count)
  EpochPolicy policy;   ///< primary's (and so the standby's) epoch policy
  std::uint64_t serviceSeed = 0x5e57eULL;
  std::size_t maxKillPoints = 0;  ///< 0 = sweep every boundary
  bool verbose = false;           ///< per-kill-point line on stdout
};

struct DrillReport {
  std::size_t epochBoundaries = 0;  ///< boundaries found in the golden run
  std::size_t killPoints = 0;       ///< takeovers attempted
  std::size_t passed = 0;           ///< byte-identical takeovers
  std::size_t failed = 0;
  std::uint64_t goldenColorDigest = 0;
  std::string firstFailure;

  bool ok() const { return killPoints > 0 && failed == 0; }
};

/// Runs the sweep; deterministic in the options.
DrillReport runFailoverDrill(const DrillOptions& options);

}  // namespace dima::service
