#include "src/service/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/service/wire_length.hpp"

namespace dima::service {

namespace {

constexpr char kMagic[8] = {'D', 'I', 'M', 'A', 'C', 'K', 'P', '1'};

void putU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v & 0xffU));
  out->push_back(static_cast<std::uint8_t>((v >> 8) & 0xffU));
  out->push_back(static_cast<std::uint8_t>((v >> 16) & 0xffU));
  out->push_back(static_cast<std::uint8_t>((v >> 24) & 0xffU));
}

void putU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffU));
  }
}

/// Bounds-checked little-endian reader over the checkpoint bytes.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t takeU32() {
    if (size_ - pos_ < 4) {
      ok_ = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t takeU64() {
    if (size_ - pos_ < 8) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::uint8_t> encodeCheckpoint(const Checkpoint& cp) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + cp.slots.size() * 12 + cp.freeIds.size() * 4);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  putU64(&out, cp.seed);
  putU64(&out, cp.repairs);
  putU64(&out, cp.epoch);
  putU64(&out, cp.n);
  putU64(&out, cp.slots.size());
  for (const graph::Edge& e : cp.slots) {
    putU32(&out, e.u);
    putU32(&out, e.v);
  }
  putU64(&out, cp.freeIds.size());
  for (const graph::EdgeId e : cp.freeIds) putU32(&out, e);
  for (const coloring::Color c : cp.colors) {
    putU32(&out, static_cast<std::uint32_t>(c));
  }
  putU64(&out, fnv1a64(out.data(), out.size()));
  return out;
}

bool decodeCheckpoint(const std::uint8_t* data, std::size_t size,
                      Checkpoint* cp, std::string* error) {
  if (size < sizeof(kMagic) + 8) return fail(error, "checkpoint truncated");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) {
    if (data[i] != static_cast<std::uint8_t>(kMagic[i])) {
      return fail(error, "bad checkpoint magic");
    }
  }
  // Digest covers everything before the trailing 8 bytes.
  const std::size_t body = size - 8;
  std::uint64_t storedDigest = 0;
  for (int i = 0; i < 8; ++i) {
    storedDigest |=
        static_cast<std::uint64_t>(data[body + static_cast<std::size_t>(i)])
        << (8 * i);
  }
  if (fnv1a64(data, body) != storedDigest) {
    return fail(error, "checkpoint digest mismatch (corrupt or truncated)");
  }

  Reader in(data + sizeof(kMagic), body - sizeof(kMagic));
  cp->seed = in.takeU64();
  cp->repairs = in.takeU64();
  cp->epoch = in.takeU64();

  // Everything below is attacker-controlled until proven otherwise: the
  // digest is an integrity check, not authentication, so a forged-but-
  // self-consistent checkpoint arrives here via the replication bootstrap
  // (`decodeBootstrap`). Every structural invariant that
  // `DynamicGraph::fromSlots` / `restoreState` would enforce with a
  // DIMA_REQUIRE abort must be re-checked here as a soft failure first —
  // otherwise a hostile peer can crash the replica, or size `n` to make
  // the per-vertex overlay allocation a memory bomb.
  const auto n = WireLength(in.takeU64()).below(kMaxServiceVertices);
  if (!in.ok() || !n) return fail(error, "checkpoint vertex count implausible");
  cp->n = *n;

  const auto slotCount = WireLength(in.takeU64()).below(in.remaining() / 8);
  if (!in.ok() || !slotCount) {
    return fail(error, "checkpoint slot count implausible");
  }
  cp->slots.clear();
  cp->slots.reserve(static_cast<std::size_t>(*slotCount));
  std::vector<std::uint64_t> liveKeys;
  std::size_t deadSlots = 0;
  for (std::uint64_t i = 0; i < *slotCount; ++i) {
    graph::Edge e;
    e.u = in.takeU32();
    e.v = in.takeU32();
    if (e.u == graph::kNoVertex) {
      ++deadSlots;
    } else if (e.u >= e.v || e.v >= cp->n) {
      return fail(error, "checkpoint slot holds an invalid edge");
    } else {
      liveKeys.push_back((static_cast<std::uint64_t>(e.u) << 32) | e.v);
    }
    cp->slots.push_back(e);
  }
  std::sort(liveKeys.begin(), liveKeys.end());
  if (std::adjacent_find(liveKeys.begin(), liveKeys.end()) !=
      liveKeys.end()) {
    return fail(error, "checkpoint slots duplicate an edge");
  }

  const auto freeCount = WireLength(in.takeU64()).below(in.remaining() / 4);
  if (!in.ok() || !freeCount || *freeCount != deadSlots) {
    return fail(error, "checkpoint free-id count implausible");
  }
  cp->freeIds.clear();
  cp->freeIds.reserve(static_cast<std::size_t>(*freeCount));
  std::vector<std::uint8_t> seen(cp->slots.size(), 0);
  for (std::uint64_t i = 0; i < *freeCount; ++i) {
    const graph::EdgeId id = in.takeU32();
    if (id >= cp->slots.size() || cp->slots[id].u != graph::kNoVertex ||
        seen[id] != 0) {
      return fail(error, "checkpoint free-id is not a unique dead slot");
    }
    seen[id] = 1;
    cp->freeIds.push_back(id);
  }

  // Colors are fed straight into per-vertex used-color bitsets on restore,
  // so an out-of-range color is an allocation bomb of its own. 2n is a
  // generous structural bound: any proper edge coloring uses at most
  // 2·Δ − 1 < 2n colors.
  const std::uint64_t colorBound = 2 * cp->n;
  cp->colors.clear();
  cp->colors.reserve(static_cast<std::size_t>(*slotCount));
  for (std::uint64_t i = 0; i < *slotCount; ++i) {
    const auto c = static_cast<coloring::Color>(in.takeU32());
    const bool dead = cp->slots[static_cast<std::size_t>(i)].u ==
                      graph::kNoVertex;
    if (dead ? c != coloring::kNoColor
             : c != coloring::kNoColor &&
                   (c < 0 || static_cast<std::uint64_t>(c) >= colorBound)) {
      return fail(error, "checkpoint color out of range");
    }
    cp->colors.push_back(c);
  }
  if (!in.ok()) return fail(error, "checkpoint truncated");
  if (in.remaining() != 0) return fail(error, "checkpoint has trailing bytes");
  return true;
}

bool saveCheckpoint(const Checkpoint& cp, const std::string& path,
                    std::string* error, std::uint64_t* bytesOut,
                    std::uint64_t* digestOut) {
  const std::vector<std::uint8_t> bytes = encodeCheckpoint(cp);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open " + path + " for write");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return fail(error, "short write to " + path);
  }
  if (bytesOut != nullptr) *bytesOut = bytes.size();
  if (digestOut != nullptr) {
    // The stored digest (over everything before the trailing 8 bytes).
    *digestOut = fnv1a64(bytes.data(), bytes.size() - 8);
  }
  return true;
}

bool loadCheckpoint(const std::string& path, Checkpoint* cp,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, "cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool readOk = std::ferror(f) == 0;
  std::fclose(f);
  if (!readOk) return fail(error, "read error on " + path);
  return decodeCheckpoint(bytes.data(), bytes.size(), cp, error);
}

}  // namespace dima::service
