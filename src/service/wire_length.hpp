#pragma once

/// \file wire_length.hpp
/// `WireLength`: a strong type for counts and byte lengths read off the
/// wire. The PR-9 bootstrap bug was a wire-controlled `samples * 8`
/// overflowing the comparison type, turning the length check into a no-op;
/// this type makes that shape unrepresentable. A `WireLength` has no
/// arithmetic at all — the deleted operators below turn `len * 8` into a
/// compile error (pinned by tests/negative_compile/wire_length_unchecked
/// .cpp) — and the only way to extract the raw value is `below(limit)`,
/// which forces the bounds comparison the dimacheck wire-taint rule looks
/// for into the code path.
///
/// Usage at a decode site:
///
///     const auto samples = WireLength(getU64(&p));
///     const auto n = samples.below(remaining / 8);
///     if (!n) return fail(error, "truncated sample section");
///     // *n is checked: *n * 8 <= remaining, no wrap possible.

#include <cstdint>
#include <optional>

namespace dima::service {

class WireLength {
 public:
  explicit constexpr WireLength(std::uint64_t raw) : raw_(raw) {}

  /// The one exit: the raw value, provided it does not exceed `limit`.
  /// Dividing the budget (`remaining / elemSize`) instead of multiplying
  /// the count is what keeps the comparison wrap-free.
  [[nodiscard]] constexpr std::optional<std::uint64_t> below(
      std::uint64_t limit) const {
    if (raw_ > limit) return std::nullopt;
    return raw_;
  }

  /// For diagnostics only (log/error messages), never for sizing.
  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }

  // No arithmetic on an unchecked length: every one of these is the first
  // step of a wrap bug.
  template <class T> WireLength operator*(T) const = delete;
  template <class T> WireLength operator+(T) const = delete;
  template <class T> WireLength operator-(T) const = delete;
  template <class T> WireLength operator<<(T) const = delete;

 private:
  std::uint64_t raw_;
};

}  // namespace dima::service
