#include "src/service/drill.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "src/service/replica.hpp"
#include "src/service/transport.hpp"

namespace dima::service {

namespace {

/// The full scripted session, Hello first, final Flush last.
std::vector<CommandFrame> scriptedSession(const DrillOptions& options) {
  std::vector<CommandFrame> cmds;
  const std::vector<CommandFrame> body = buildCommandList(options.spec);
  cmds.reserve(body.size() + 2);
  CommandFrame hello = makeFrame<ServiceKind::Hello, CommandFrame>();
  hello.a = kServiceWireVersion;
  hello.b = options.spec.n;
  cmds.push_back(hello);
  cmds.insert(cmds.end(), body.begin(), body.end());
  cmds.push_back(makeFrame<ServiceKind::Flush, CommandFrame>());
  std::uint32_t seq = 0;
  for (CommandFrame& cmd : cmds) cmd.seq = seq++;
  return cmds;
}

ServiceOptions drillServiceOptions(const DrillOptions& options) {
  ServiceOptions so;
  so.seed = options.serviceSeed;
  so.policy = options.policy;
  so.detTime = true;  // latency = cycles, so quantiles replicate exactly
  return so;
}

/// Blocking request/response over the drill client's socket.
bool roundTrip(int fd, ReplyReader& reader, const CommandFrame& cmd,
               ReplyFrame* reply, std::string* error) {
  std::vector<std::uint8_t> bytes;
  encodeCommand(cmd, &bytes);
  if (!writeAll(fd, bytes.data(), bytes.size())) {
    *error = "client write failed";
    return false;
  }
  for (;;) {
    const DecodeStatus status = reader.next(reply, error);
    if (status == DecodeStatus::Frame) return true;
    if (status == DecodeStatus::Bad) return false;
    std::uint8_t buf[4096];
    const std::ptrdiff_t got = readSome(fd, buf, sizeof(buf));
    if (got <= 0) {
      *error = "server closed before replying";
      return false;
    }
    reader.feed(buf, static_cast<std::size_t>(got));
  }
}

}  // namespace

DrillReport runFailoverDrill(const DrillOptions& options) {
  DrillReport report;
  const std::vector<CommandFrame> cmds = scriptedSession(options);

  // --- the uninterrupted golden, recording epoch boundaries ---------------
  ColoringService golden(drillServiceOptions(options));
  std::vector<std::size_t> boundaries;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const std::uint64_t before = golden.scheduler().epochsRun();
    (void)golden.handle(cmds[i]);
    if (golden.scheduler().epochsRun() != before && i + 1 < cmds.size()) {
      // Kill after the client has the reply to command i: the primary died
      // exactly at a completed epoch boundary.
      boundaries.push_back(i + 1);
    }
  }
  report.epochBoundaries = boundaries.size();
  const Checkpoint goldenCp = golden.checkpoint();
  const std::string goldenStats = golden.statsTable();
  report.goldenColorDigest = golden.colorDigest();

  // k = commands acknowledged before the kill. 0 (nothing but the replica
  // bootstrap happened) and every epoch boundary; the all-but-Flush point
  // is a boundary already whenever the stream mutates at all.
  std::vector<std::size_t> killPoints;
  killPoints.push_back(0);
  killPoints.insert(killPoints.end(), boundaries.begin(), boundaries.end());
  if (options.maxKillPoints > 0 && killPoints.size() > options.maxKillPoints) {
    // Budgeted sweep (CI smoke): keep an evenly-spaced subset, endpoints
    // included.
    std::vector<std::size_t> kept;
    const std::size_t n = killPoints.size();
    const std::size_t m = options.maxKillPoints;
    for (std::size_t j = 0; j < m; ++j) {
      kept.push_back(killPoints[m == 1 ? 0 : j * (n - 1) / (m - 1)]);
    }
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    killPoints.swap(kept);
  }

  for (const std::size_t k : killPoints) {
    ++report.killPoints;
    const auto fail = [&](const std::string& what) {
      ++report.failed;
      if (report.firstFailure.empty()) {
        std::ostringstream os;
        os << "kill point " << k << ": " << what;
        report.firstFailure = os.str();
      }
    };

    ColoringService primary(drillServiceOptions(options));
    TransportOptions to;
    to.port = 0;
    TransportServer server(primary, to);
    std::string error;
    if (!server.start(&error)) {
      fail("server start: " + error);
      continue;
    }

    // Standby subscribes before the client exists: the bootstrap is the
    // pre-Hello empty state and the whole session arrives as ReplCmds.
    Fd replicaFd = connectTcp("127.0.0.1", server.port(), &error);
    ReplicaClient replica;
    if (!replicaFd.valid() || !replica.sync(replicaFd.get(), &error)) {
      fail("replica sync: " + error);
      server.stop();
      continue;
    }
    bool followOk = false;
    std::string followError;
    std::thread follower([&] {
      followOk = replica.followUntilEof(replicaFd.get(), &followError);
    });

    Fd clientFd = connectTcp("127.0.0.1", server.port(), &error);
    bool streamed = clientFd.valid();
    if (!streamed) error = "client connect: " + error;
    ReplyReader replies;
    for (std::size_t i = 0; streamed && i < k; ++i) {
      ReplyFrame reply;
      streamed = roundTrip(clientFd.get(), replies, cmds[i], &reply, &error);
    }

    server.stop();  // SIGKILL stand-in: abrupt, nothing flushed on purpose
    follower.join();

    if (!streamed) {
      fail(error);
      continue;
    }
    if (!followOk) {
      fail("replica stream: " + followError);
      continue;
    }

    // Promotion: finish the session locally on the standby.
    std::unique_ptr<ColoringService> standby = replica.takeService();
    for (std::size_t i = k; i < cmds.size(); ++i) {
      (void)standby->handle(cmds[i]);
    }

    const bool colorsOk = standby->checkpoint() == goldenCp;
    const bool statsOk = standby->statsTable() == goldenStats;
    if (colorsOk && statsOk) {
      ++report.passed;
    } else {
      std::ostringstream os;
      os << (colorsOk ? "" : "checkpoint diverged ")
         << (statsOk ? "" : "stats diverged");
      fail(os.str());
    }
    if (options.verbose) {
      std::printf("kill %zu/%zu commands: replica applied %llu, %s\n", k,
                  cmds.size(),
                  static_cast<unsigned long long>(replica.applied()),
                  colorsOk && statsOk ? "byte-identical" : "DIVERGED");
    }
  }
  return report;
}

}  // namespace dima::service
