#include "src/coloring/validate.hpp"

#include <sstream>
#include <unordered_map>

#include "src/graph/csr.hpp"

namespace dima::coloring {

namespace {

template <class Topo>
std::string describeEdge(const Topo& g, graph::EdgeId e) {
  std::ostringstream oss;
  oss << "edge " << e << "=(" << g.edge(e).u << "," << g.edge(e).v << ")";
  return oss.str();
}

std::string describeArc(const graph::Digraph& d, graph::ArcId a) {
  const graph::Arc arc = d.arc(a);
  std::ostringstream oss;
  oss << "arc " << a << "=(" << arc.from << "→" << arc.to << ")";
  return oss.str();
}

/// The checker body, generic over the topology surface (Graph or the
/// mmap'd CSR view) — shared so both overloads stay one implementation.
template <class Topo>
Verdict verifyEdgeColoringOn(const Topo& g, const std::vector<Color>& colors,
                             bool allowPartial) {
  if (colors.size() != g.numEdges()) {
    return Verdict::fail("color vector size mismatch");
  }
  for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
    if (colors[e] == kNoColor && !allowPartial) {
      return Verdict::fail(describeEdge(g, e) + " is uncolored");
    }
    if (colors[e] != kNoColor && colors[e] < 0) {
      return Verdict::fail(describeEdge(g, e) + " has a negative color");
    }
  }
  // Per-vertex distinctness: scan each vertex's incident colors.
  std::unordered_map<Color, graph::EdgeId> seen;
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    seen.clear();
    for (const graph::Incidence& inc : g.incidences(v)) {
      const Color c = colors[inc.edge];
      if (c == kNoColor) continue;
      const auto [it, inserted] = seen.emplace(c, inc.edge);
      if (!inserted) {
        std::ostringstream oss;
        oss << "vertex " << v << " sees color " << c << " on both "
            << describeEdge(g, it->second) << " and "
            << describeEdge(g, inc.edge);
        return Verdict::fail(oss.str());
      }
    }
  }
  return Verdict::ok();
}

}  // namespace

Verdict verifyEdgeColoring(const graph::Graph& g,
                           const std::vector<Color>& colors,
                           bool allowPartial) {
  return verifyEdgeColoringOn(g, colors, allowPartial);
}

Verdict verifyEdgeColoring(const graph::MappedGraph& g,
                           const std::vector<Color>& colors,
                           bool allowPartial) {
  return verifyEdgeColoringOn(g, colors, allowPartial);
}

bool strongConflict(const graph::Digraph& d, graph::ArcId a1,
                    graph::ArcId a2) {
  if (a1 == a2) return false;
  const graph::Arc x = d.arc(a1);
  const graph::Arc y = d.arc(a2);
  const graph::Graph& g = d.underlying();
  const graph::VertexId xs[2] = {x.from, x.to};
  const graph::VertexId ys[2] = {y.from, y.to};
  for (graph::VertexId a : xs) {
    for (graph::VertexId b : ys) {
      if (a == b || g.hasEdge(a, b)) return true;
    }
  }
  return false;
}

namespace {

/// Groups arcs by color, then checks pairs within each color class — the
/// classes are small, so this is far cheaper than the all-pairs scan.
template <class OnConflict>
void scanStrongConflicts(const graph::Digraph& d,
                         const std::vector<Color>& colors,
                         OnConflict&& onConflict) {
  std::unordered_map<Color, std::vector<graph::ArcId>> byColor;
  for (graph::ArcId a = 0; a < d.numArcs(); ++a) {
    if (colors[a] != kNoColor) byColor[colors[a]].push_back(a);
  }
  for (const auto& [color, arcs] : byColor) {
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      for (std::size_t j = i + 1; j < arcs.size(); ++j) {
        if (strongConflict(d, arcs[i], arcs[j])) {
          onConflict(arcs[i], arcs[j], color);
        }
      }
    }
  }
}

}  // namespace

Verdict verifyStrongArcColoring(const graph::Digraph& d,
                                const std::vector<Color>& colors,
                                bool allowPartial) {
  if (colors.size() != d.numArcs()) {
    return Verdict::fail("color vector size mismatch");
  }
  for (graph::ArcId a = 0; a < d.numArcs(); ++a) {
    if (colors[a] == kNoColor && !allowPartial) {
      return Verdict::fail(describeArc(d, a) + " is uncolored");
    }
    if (colors[a] != kNoColor && colors[a] < 0) {
      return Verdict::fail(describeArc(d, a) + " has a negative color");
    }
  }
  Verdict verdict = Verdict::ok();
  scanStrongConflicts(d, colors,
                      [&](graph::ArcId a1, graph::ArcId a2, Color c) {
                        if (!verdict.valid) return;
                        std::ostringstream oss;
                        oss << describeArc(d, a1) << " and "
                            << describeArc(d, a2)
                            << " conflict but share color " << c;
                        verdict = Verdict::fail(oss.str());
                      });
  return verdict;
}

std::size_t countStrongConflicts(const graph::Digraph& d,
                                 const std::vector<Color>& colors) {
  DIMA_REQUIRE(colors.size() == d.numArcs(), "color vector size mismatch");
  std::size_t conflicts = 0;
  scanStrongConflicts(d, colors,
                      [&](graph::ArcId, graph::ArcId, Color) { ++conflicts; });
  return conflicts;
}

bool strongEdgeConflict(const graph::Graph& g, graph::EdgeId e1,
                        graph::EdgeId e2) {
  if (e1 == e2) return false;
  const graph::Edge& x = g.edge(e1);
  const graph::Edge& y = g.edge(e2);
  const graph::VertexId xs[2] = {x.u, x.v};
  const graph::VertexId ys[2] = {y.u, y.v};
  for (graph::VertexId a : xs) {
    for (graph::VertexId b : ys) {
      if (a == b || g.hasEdge(a, b)) return true;
    }
  }
  return false;
}

Verdict verifyStrongEdgeColoring(const graph::Graph& g,
                                 const std::vector<Color>& colors,
                                 bool allowPartial) {
  if (colors.size() != g.numEdges()) {
    return Verdict::fail("color vector size mismatch");
  }
  std::unordered_map<Color, std::vector<graph::EdgeId>> byColor;
  for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
    if (colors[e] == kNoColor) {
      if (!allowPartial) {
        return Verdict::fail(describeEdge(g, e) + " is uncolored");
      }
      continue;
    }
    if (colors[e] < 0) {
      return Verdict::fail(describeEdge(g, e) + " has a negative color");
    }
    byColor[colors[e]].push_back(e);
  }
  for (const auto& [color, edges] : byColor) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      for (std::size_t j = i + 1; j < edges.size(); ++j) {
        if (strongEdgeConflict(g, edges[i], edges[j])) {
          std::ostringstream oss;
          oss << describeEdge(g, edges[i]) << " and "
              << describeEdge(g, edges[j]) << " conflict but share color "
              << color;
          return Verdict::fail(oss.str());
        }
      }
    }
  }
  return Verdict::ok();
}

}  // namespace dima::coloring
