#pragma once

/// \file vertex_coloring.hpp
/// Distributed (Δ+1) vertex coloring on the same synchronous one-hop
/// substrate — the second member of the "variety of graph algorithms" the
/// paper's conclusion claims for the automaton approach (alongside MIS;
/// matching, edge coloring and vertex cover are in their own modules).
///
/// Round anatomy (randomized trial coloring, Johansson/Luby style):
///   1. every uncolored node draws a candidate uniformly from its local
///      palette `[0, deg(u)]` minus the colors its neighbors committed,
///      and broadcasts it;
///   2. a node commits its candidate unless a *higher-priority* neighbor
///      (lower id) proposed the same color this round; committed nodes
///      announce, and neighbors strike the color from their palettes.
/// Each node's palette has deg(u)+1 colors, so a free candidate always
/// exists and the result uses at most Δ+1 colors; expected O(log n) rounds.

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"

namespace dima::coloring {

struct VertexColoringResult {
  std::vector<Color> colors;  ///< per vertex
  std::uint64_t rounds = 0;
  bool converged = false;
  std::size_t colorsUsed() const;
};

/// Runs the distributed trial-coloring protocol on `g`.
VertexColoringResult colorVerticesDistributed(const graph::Graph& g,
                                              std::uint64_t seed,
                                              net::EngineOptions options = {});

/// Proper-vertex-coloring checker (independent of the protocol).
/// `allowPartial` skips uncolored vertices.
bool isProperVertexColoring(const graph::Graph& g,
                            const std::vector<Color>& colors,
                            bool allowPartial = false);

}  // namespace dima::coloring
