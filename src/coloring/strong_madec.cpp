#include "src/coloring/strong_madec.hpp"

#include <vector>

#include "src/automata/core.hpp"
#include "src/automata/phase.hpp"
#include "src/net/engine.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

/// An invitation kept in sub-round 0.
struct KeptInvite {
  NodeId from = kNoVertex;
  Color color = kNoColor;
  std::uint32_t idx = 0;  ///< incidence index of `from` at this node
};

/// Node state: the core fields plus the distance-2 bookkeeping.
struct SmNode : automata::CoreNode {
  support::SmallVector<std::uint32_t, 8> uncolored;
  DynamicBitset forbidden;  ///< colors within one hop (own + neighbors')
  std::vector<std::uint32_t> failures;
  // Per-round scratch:
  support::SmallVector<KeptInvite, 4> mine;
  DynamicBitset overheard;
  std::uint32_t inviteIdx = 0;
  Color proposed = kNoColor;
  KeptInvite accepted;
  automata::TentativeState tent;  ///< item = the pending edge id
  Color pendingAnnounce = kNoColor;
};

/// Strong (distance-2) undirected edge coloring as a policy over the
/// shared automaton (see strong_madec.hpp for the round story,
/// automata/core.hpp for the hook contract). The schedule is DiMa2Ed's
/// strict mode with edges in place of arcs: expanding-window proposals
/// against the one-hop forbidden set, the core's tentative/abort handshake
/// keyed by edge id, then the E-state color announce.
class StrongMadecProtocol
    : public automata::MatchingCore<StrongMadecProtocol,
                                    net::TentativeColorWire, SmNode> {
  using Core = automata::MatchingCore<StrongMadecProtocol,
                                      net::TentativeColorWire, SmNode>;

 public:
  StrongMadecProtocol(const graph::Graph& g, const StrongMadecOptions& options)
      : Core(g.numVertices(), options.invitorBias, options.trace),
        g_(&g),
        halves_(g.numEdges(), kNoColor),
        mutantSkipAbortEcho_(options.mutantSkipAbortEcho) {
    const support::SeedSequence seq(options.seed);
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      SmNode& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = static_cast<std::uint32_t>(g.degree(u));
      for (std::uint32_t i = 0; i < deg; ++i) s.uncolored.push_back(i);
      s.failures.assign(deg, 0);
      s.done = deg == 0;
    }
  }

  void resetScratch(NodeId u) {
    SmNode& s = nodes_[u];
    s.mine.clear();
    s.overheard.clear();
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.tent.reset();
    s.pendingAnnounce = kNoColor;
  }

  // I: invite over a random uncolored edge, proposal from the expanding
  // color window against the one-hop forbidden set.
  NodeId pickInvitee(NodeId u) {
    SmNode& s = nodes_[u];
    DIMA_ASSERT(!s.uncolored.empty(), "invitor without uncolored edge");
    s.inviteIdx = s.uncolored[s.rng.index(s.uncolored.size())];
    s.proposed = chooseProposalColor(ColorPolicy::ExpandingWindow, s.forbidden,
                                     s.failures[s.inviteIdx], s.rng);
    return g_->incidences(u)[s.inviteIdx].neighbor;
  }

  Message inviteMessage(NodeId u) {
    const SmNode& s = nodes_[u];
    return Message{net::WireKind::Invite, s.invitee, s.proposed, kNoEdge};
  }

  bool keepInvite(NodeId u, const net::Envelope<Message>& env) {
    SmNode& s = nodes_[u];
    const std::uint32_t idx = incidenceIndexOf(u, env.from);
    const EdgeId e = g_->incidences(u)[idx].edge;
    // Commit halves are written in later sub-rounds, so this sub-round-0
    // read is barrier-separated from every writer.
    if (halves_.merged(e) != kNoColor) return false;
    s.mine.push_back(KeptInvite{env.from, env.msg.color, idx});
    return true;
  }

  // L: colors proposed to someone else are unusable this round.
  void overheardInvite(NodeId u, const net::Envelope<Message>& env) {
    nodes_[u].overheard.set(static_cast<std::size_t>(env.msg.color));
  }

  // R: respond to one acceptable invitation.
  bool chooseAccept(NodeId u) {
    SmNode& s = nodes_[u];
    if (s.mine.empty()) return false;
    support::SmallVector<std::size_t, 4> valid;
    for (std::size_t i = 0; i < s.mine.size(); ++i) {
      const Color c = s.mine[i].color;
      if (!s.overheard.test(static_cast<std::size_t>(c)) &&
          !s.forbidden.test(static_cast<std::size_t>(c))) {
        valid.push_back(i);
      }
    }
    if (valid.empty()) return false;
    s.accepted = s.mine[valid[s.rng.index(valid.size())]];
    return true;
  }

  Message acceptMessage(NodeId u) {
    const SmNode& s = nodes_[u];
    return Message{net::WireKind::Response, s.accepted.from, s.accepted.color,
                   kNoEdge};
  }

  // Both pair sides go tentative; every commit runs through the handshake.
  void onAcceptSent(NodeId u) {
    SmNode& s = nodes_[u];
    s.tent = {g_->incidences(u)[s.accepted.idx].edge, s.accepted.color,
              s.accepted.idx, /*asInvitor=*/false, /*abortMine=*/false};
  }

  void onEcho(NodeId u, const Message&) {
    SmNode& s = nodes_[u];
    s.tent = {g_->incidences(u)[s.inviteIdx].edge, s.proposed, s.inviteIdx,
              /*asInvitor=*/true, /*abortMine=*/false};
  }

  void onNoEcho(NodeId u) {
    SmNode& s = nodes_[u];
    ++s.failures[s.inviteIdx];
  }

  // Tail: the core's tentative/abort handshake, then the color exchange.
  int tailSubRounds() const { return 3; }

  template <class Net>
  void tailSend(NodeId u, int tail, Net& net) {
    switch (tail) {
      case 0: tentativeSend(u, net); return;
      case 1: abortSend(u, net); return;
      default: announceSend(u, net); return;
    }
  }

  void tailReceive(NodeId u, int tail, net::Inbox<Message> inbox) {
    switch (tail) {
      case 0: tentativeConflictScan(u, inbox); return;
      case 1:
        if (mutantSkipAbortEcho_) {
          mutantAbortResolve(u);
        } else {
          abortResolve(u, inbox);
        }
        return;
      default:
        SmNode& s = nodes_[u];
        for (const auto& env : inbox) {
          if (env.msg.kind == net::WireKind::ColorAnnounce) {
            s.forbidden.set(static_cast<std::size_t>(env.msg.color));
          }
        }
        return;
    }
  }

  Message announceMessage(NodeId u) {
    return Message{net::WireKind::ColorAnnounce, kNoVertex,
                   nodes_[u].pendingAnnounce, kNoEdge};
  }

  void commitTentative(NodeId u) {
    const SmNode& s = nodes_[u];
    commitEdge(u, s.tent.idx, s.tent.item, s.tent.color);
  }

  void onTentativeAborted(NodeId u) {
    SmNode& s = nodes_[u];
    if (s.tent.asInvitor) ++s.failures[s.tent.idx];
  }

  bool localWorkDone(NodeId u) const { return nodes_[u].uncolored.empty(); }

  /// Folds the two commit halves of every edge into the output coloring;
  /// the cross-endpoint agreement check lives there (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() const { return halves_.takeMerged(); }

  /// Edges only one endpoint committed (possible only under message loss).
  std::vector<EdgeId> halfCommittedEdges() const {
    return halves_.halfCommitted();
  }

 private:
  /// The planted handshake bug (StrongMadecOptions::mutantSkipAbortEcho):
  /// `abortResolve` minus the inbox scan that adopts the partner's Abort.
  /// An endpoint that did not itself hear the conflicting lower-id
  /// tentative commits its half even though its partner rolled back —
  /// yielding a half-committed edge whose color can conflict at distance 2.
  void mutantAbortResolve(NodeId u) {
    SmNode& s = nodes_[u];
    if (s.tent.item == net::kNoWireItem) return;
    if (s.tent.abortMine) {
      trace(u, net::TraceKind::Aborted, s.tent.item, s.tent.color);
      onTentativeAborted(u);
    } else {
      commitTentative(u);
    }
  }

  std::uint32_t incidenceIndexOf(NodeId u, NodeId neighbor) const {
    const auto inc = g_->incidences(u);
    for (std::uint32_t i = 0; i < inc.size(); ++i) {
      if (inc[i].neighbor == neighbor) return i;
    }
    DIMA_REQUIRE(false, "node " << neighbor << " is not adjacent to " << u);
    return 0;  // unreachable
  }

  void commitEdge(NodeId u, std::uint32_t idx, EdgeId e, Color color) {
    SmNode& s = nodes_[u];
    const NodeId partner = g_->incidences(u)[idx].neighbor;
    for (std::size_t k = 0; k < s.uncolored.size(); ++k) {
      if (s.uncolored[k] == idx) {
        Color& half =
            halves_.half(e, automata::EndpointHalf::ownedBy(u, partner));
        DIMA_ASSERT(half == kNoColor,
                    "edge " << e << " recolored at node " << u);
        half = color;
        s.uncolored.eraseAtUnordered(k);
        s.forbidden.set(static_cast<std::size_t>(color));
        s.pendingAnnounce = color;
        trace(u, net::TraceKind::EdgeColored, partner, color);
        return;
      }
    }
    DIMA_ASSERT(false, "edge " << e << " not uncolored at node " << u);
  }

  const graph::Graph* g_;
  automata::CommitHalves<Color> halves_;
  bool mutantSkipAbortEcho_ = false;
};

}  // namespace

EdgeColoringResult colorEdgesStrongMadec(const graph::Graph& g,
                                         const StrongMadecOptions& options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  StrongMadecProtocol proto(g, options);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  engineOptions.shards = options.shards;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  net::EngineResult run;
  if (options.shards.count > 1) {
    DIMA_REQUIRE(!options.faults.perturbs(),
                 "sharded runs assume reliable links; run fault injection "
                 "on the unsharded reference substrate");
    net::ShardedNetwork<StrongMadecProtocol::Message> net(
        g, graph::makePartition(g, options.shards.partition,
                                options.shards.count));
    run = options.trace != nullptr
              ? runSyncProtocol(proto, net, engineOptions)
              : runShardedProtocol(proto, net, engineOptions);
  } else {
    net::SyncNetwork<StrongMadecProtocol::Message> net(g, options.faults);
    run = runSyncProtocol(proto, net, engineOptions);
  }

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace dima::coloring
