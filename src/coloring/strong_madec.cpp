#include "src/coloring/strong_madec.hpp"

#include <utility>
#include <vector>

#include "src/automata/phase.hpp"
#include "src/net/network.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

struct SmMessage {
  enum class Kind : std::uint8_t {
    Invite,
    Response,
    Tentative,
    Abort,
    ColorAnnounce,
  };
  Kind kind = Kind::Invite;
  NodeId target = kNoVertex;
  Color color = kNoColor;
  EdgeId edge = kNoEdge;

  /// CONGEST wire size: 3-bit kind + id + color + edge id.
  std::uint64_t wireBits() const {
    return 3 + (target == kNoVertex ? 1 : net::bitWidth(target)) +
           (color < 0 ? 1
                      : net::bitWidth(static_cast<std::uint64_t>(color))) +
           (edge == kNoEdge ? 1 : net::bitWidth(edge));
  }
};

class StrongMadecProtocol {
 public:
  using Message = SmMessage;

  StrongMadecProtocol(const graph::Graph& g,
                      const StrongMadecOptions& options)
      : g_(&g),
        options_(options),
        sideColor_(2 * static_cast<std::size_t>(g.numEdges()), kNoColor) {
    const support::SeedSequence seq(options.seed);
    nodes_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      NodeState& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = static_cast<std::uint32_t>(g.degree(u));
      for (std::uint32_t i = 0; i < deg; ++i) s.uncolored.push_back(i);
      s.failures.assign(deg, 0);
      s.done = deg == 0;
    }
  }

  int subRounds() const { return 5; }

  void beginCycle(NodeId u) {
    NodeState& s = nodes_[u];
    s.mine.clear();
    s.overheard.clear();
    s.invitee = kNoVertex;
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.tentEdge = kNoEdge;
    s.tentColor = kNoColor;
    s.tentIdx = 0;
    s.tentAsInvitor = false;
    s.abortMine = false;
    s.pendingAnnounce = kNoColor;
    if (s.done) {
      s.role = Phase::Done;
      return;
    }
    s.role = s.rng.bernoulli(options_.invitorBias) ? Phase::Invite
                                                   : Phase::Listen;
  }

  void send(NodeId u, int sub, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {  // invite over a random uncolored edge.
        if (s.role != Phase::Invite) return;
        DIMA_ASSERT(!s.uncolored.empty(), "invitor without uncolored edge");
        s.inviteIdx = s.uncolored[s.rng.index(s.uncolored.size())];
        s.invitee = g_->incidences(u)[s.inviteIdx].neighbor;
        s.proposed = chooseColor(s, s.inviteIdx);
        net.broadcast(u, Message{Message::Kind::Invite, s.invitee,
                                 s.proposed, kNoEdge});
        break;
      }
      case 1: {  // respond to one acceptable invitation.
        if (s.role != Phase::Listen || s.mine.empty()) return;
        support::SmallVector<std::size_t, 4> valid;
        for (std::size_t i = 0; i < s.mine.size(); ++i) {
          const Color c = s.mine[i].color;
          if (!s.overheard.test(static_cast<std::size_t>(c)) &&
              !s.forbidden.test(static_cast<std::size_t>(c))) {
            valid.push_back(i);
          }
        }
        if (valid.empty()) return;
        const KeptInvite& kept = s.mine[valid[s.rng.index(valid.size())]];
        net.broadcast(u, Message{Message::Kind::Response, kept.from,
                                 kept.color, kNoEdge});
        s.tentEdge = g_->incidences(u)[kept.idx].edge;
        s.tentColor = kept.color;
        s.tentIdx = kept.idx;
        s.tentAsInvitor = false;
        break;
      }
      case 2: {  // tentative announcements.
        if (s.tentEdge != kNoEdge) {
          net.broadcast(u, Message{Message::Kind::Tentative, kNoVertex,
                                   s.tentColor, s.tentEdge});
        }
        break;
      }
      case 3: {  // abort notices.
        if (s.tentEdge != kNoEdge && s.abortMine) {
          net.broadcast(u, Message{Message::Kind::Abort, kNoVertex, kNoColor,
                                   s.tentEdge});
        }
        break;
      }
      case 4: {  // exchange committed colors.
        if (s.pendingAnnounce != kNoColor) {
          net.broadcast(u, Message{Message::Kind::ColorAnnounce, kNoVertex,
                                   s.pendingAnnounce, kNoEdge});
        }
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void receive(NodeId u, int sub,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {
        if (s.role != Phase::Listen) return;
        for (const auto& env : inbox) {
          if (env.msg.kind != Message::Kind::Invite) continue;
          if (env.msg.target == u) {
            const std::uint32_t idx = incidenceIndexOf(u, env.from);
            const EdgeId e = g_->incidences(u)[idx].edge;
            // Commit halves are written in later sub-rounds, so this
            // sub-round-0 read is barrier-separated from every writer.
            if (edgeColor(e) == kNoColor) {
              s.mine.push_back(KeptInvite{env.from, env.msg.color, idx});
            }
          } else {
            s.overheard.set(static_cast<std::size_t>(env.msg.color));
          }
        }
        break;
      }
      case 1: {  // inviter waits for its echo.
        if (s.role != Phase::Invite || s.invitee == kNoVertex) return;
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Response &&
              env.msg.target == u && env.from == s.invitee) {
            s.tentEdge = g_->incidences(u)[s.inviteIdx].edge;
            s.tentColor = s.proposed;
            s.tentIdx = s.inviteIdx;
            s.tentAsInvitor = true;
            return;
          }
        }
        ++s.failures[s.inviteIdx];
        break;
      }
      case 2: {  // conflict scan among same-round tentatives.
        if (s.tentEdge == kNoEdge) return;
        for (const auto& env : inbox) {
          if (env.msg.kind != Message::Kind::Tentative) continue;
          if (env.msg.edge == s.tentEdge) continue;  // partner's echo
          if (env.msg.color == s.tentColor && env.msg.edge < s.tentEdge) {
            s.abortMine = true;
          }
        }
        break;
      }
      case 3: {  // resolve aborts, commit survivors.
        if (s.tentEdge == kNoEdge) return;
        if (!s.abortMine) {
          for (const auto& env : inbox) {
            if (env.msg.kind == Message::Kind::Abort &&
                env.msg.edge == s.tentEdge) {
              s.abortMine = true;
              break;
            }
          }
        }
        if (s.abortMine) {
          if (s.tentAsInvitor) ++s.failures[s.tentIdx];
        } else {
          commitEdge(u, s.tentIdx, s.tentEdge, s.tentColor);
        }
        break;
      }
      case 4: {
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::ColorAnnounce) {
            s.forbidden.set(static_cast<std::size_t>(env.msg.color));
          }
        }
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void endCycle(NodeId u) {
    NodeState& s = nodes_[u];
    if (!s.done && s.uncolored.empty()) s.done = true;
  }

  bool done(NodeId u) const { return nodes_[u].done; }

  /// Folds the two commit halves of every edge into the output coloring;
  /// the cross-endpoint agreement check lives here (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() {
    std::vector<Color> out(sideColor_.size() / 2, kNoColor);
    for (EdgeId e = 0; e < out.size(); ++e) {
      const Color lo = sideColor_[2 * e];
      const Color hi = sideColor_[2 * e + 1];
      DIMA_ASSERT(lo == kNoColor || hi == kNoColor || lo == hi,
                  "edge " << e << " committed with two colors " << lo << "≠"
                          << hi);
      out[e] = lo != kNoColor ? lo : hi;
    }
    return out;
  }

  std::vector<EdgeId> halfCommittedEdges() const {
    std::vector<EdgeId> out;
    for (EdgeId e = 0; 2 * e < sideColor_.size(); ++e) {
      if ((sideColor_[2 * e] != kNoColor) !=
          (sideColor_[2 * e + 1] != kNoColor)) {
        out.push_back(e);
      }
    }
    return out;
  }

 private:
  struct KeptInvite {
    NodeId from = kNoVertex;
    Color color = kNoColor;
    std::uint32_t idx = 0;
  };

  struct NodeState {
    support::Rng rng{0};
    Phase role = Phase::Choose;
    bool done = false;
    support::SmallVector<std::uint32_t, 8> uncolored;
    DynamicBitset forbidden;  ///< colors within one hop (own + neighbors')
    std::vector<std::uint32_t> failures;
    // Per-round scratch:
    support::SmallVector<KeptInvite, 4> mine;
    DynamicBitset overheard;
    NodeId invitee = kNoVertex;
    std::uint32_t inviteIdx = 0;
    Color proposed = kNoColor;
    EdgeId tentEdge = kNoEdge;
    Color tentColor = kNoColor;
    std::uint32_t tentIdx = 0;
    bool tentAsInvitor = false;
    bool abortMine = false;
    Color pendingAnnounce = kNoColor;
  };

  Color chooseColor(NodeState& s, std::uint32_t idx) {
    // Expanding window (see dima2ed.hpp): uniform among the first
    // (1 + failures) free colors, widening on every failed invitation.
    const std::size_t window = 1 + s.failures[idx];
    support::SmallVector<std::size_t, 16> candidates;
    std::size_t c = s.forbidden.firstClear();
    while (candidates.size() < window) {
      candidates.push_back(c);
      ++c;
      while (s.forbidden.test(c)) ++c;
    }
    return static_cast<Color>(candidates[s.rng.index(candidates.size())]);
  }

  std::uint32_t incidenceIndexOf(NodeId u, NodeId neighbor) const {
    const auto inc = g_->incidences(u);
    for (std::uint32_t i = 0; i < inc.size(); ++i) {
      if (inc[i].neighbor == neighbor) return i;
    }
    DIMA_REQUIRE(false, "node " << neighbor << " is not adjacent to " << u);
    return 0;  // unreachable
  }

  void commitEdge(NodeId u, std::uint32_t idx, EdgeId e, Color color) {
    NodeState& s = nodes_[u];
    const NodeId partner = g_->incidences(u)[idx].neighbor;
    for (std::size_t k = 0; k < s.uncolored.size(); ++k) {
      if (s.uncolored[k] == idx) {
        Color& half = sideColor_[2 * e + (u < partner ? 0 : 1)];
        DIMA_ASSERT(half == kNoColor,
                    "edge " << e << " recolored at node " << u);
        half = color;
        s.uncolored.eraseAtUnordered(k);
        s.forbidden.set(static_cast<std::size_t>(color));
        s.pendingAnnounce = color;
        return;
      }
    }
    DIMA_ASSERT(false, "edge " << e << " not uncolored at node " << u);
  }

  /// Merged view of edge e's two commit halves; kNoColor while uncolored.
  Color edgeColor(EdgeId e) const {
    return sideColor_[2 * e] != kNoColor ? sideColor_[2 * e]
                                         : sideColor_[2 * e + 1];
  }

  const graph::Graph* g_;
  StrongMadecOptions options_;
  std::vector<NodeState> nodes_;
  /// Per-endpoint commit halves: slot 2e is written only by the lower-id
  /// endpoint of edge e, slot 2e+1 only by the higher-id one, so the
  /// parallel receive phase has a single writer per slot. `takeColors()`
  /// merges them after the run.
  std::vector<Color> sideColor_;
};

}  // namespace

EdgeColoringResult colorEdgesStrongMadec(const graph::Graph& g,
                                         const StrongMadecOptions& options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  StrongMadecProtocol proto(g, options);
  net::SyncNetwork<SmMessage> net(g, options.faults);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  const net::EngineResult run = runSyncProtocol(proto, net, engineOptions);

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace dima::coloring
