#pragma once

/// \file strong_madec.hpp
/// Strong edge coloring of an *undirected* graph via the matching
/// automaton — the channel-assignment problem exactly as Barrett et al.
/// (the paper's reference [2]) pose it, and the natural third member of
/// the algorithm family: Algorithm 1 handles distance-1 edge constraints,
/// Algorithm 2 the directed distance-2 case; this protocol closes the
/// square with the undirected distance-2 case.
///
/// Round anatomy mirrors DiMa2Ed's strict mode: invitations propose a
/// color drawn from outside the node's one-hop *forbidden* set (colors on
/// edges incident to itself or to any neighbor), responders apply their
/// own forbidden set plus the overheard-proposals filter, and a
/// tentative/abort handshake removes the same-round adjacency conflicts
/// (identical correctness argument — see dima2ed.hpp; the arc-id order is
/// replaced by edge-id order). One undirected edge is colored per matched
/// pair per round, so termination needs O(Δ) rounds; each edge color is
/// committed by both endpoints and announced to both neighborhoods.

#include <cstdint>

#include "src/coloring/result.hpp"
#include "src/graph/graph.hpp"
#include "src/net/chaos.hpp"
#include "src/net/engine.hpp"
#include "src/net/trace.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::coloring {

struct StrongMadecOptions {
  std::uint64_t seed = 0x57406ULL;
  double invitorBias = 0.5;
  net::ChaosModel faults;
  std::uint64_t maxCycles = 1u << 20;
  support::ThreadPool* pool = nullptr;
  /// Multi-shard execution (net/engine.hpp). `count == 1` keeps the
  /// single-arena reference substrate; colors are bit-identical either way.
  net::ShardOptions shards;
  /// Optional event trace (serial executor only).
  net::TraceLog* trace = nullptr;
  /// Planted bug for the fuzzer's mutation self-test (tests/test_sim_fuzz):
  /// the abort-resolve step skips reading the partner's Abort notice, so an
  /// endpoint whose partner aborted a conflicting tentative commits its half
  /// anyway — exactly the handshake hole the strict mode exists to close.
  /// Never set outside the simulation tests.
  bool mutantSkipAbortEcho = false;
};

/// Runs the strong (distance-2) undirected edge coloring on `g`.
EdgeColoringResult colorEdgesStrongMadec(const graph::Graph& g,
                                         const StrongMadecOptions& options = {});

}  // namespace dima::coloring
