#include "src/coloring/dima2ed.hpp"

#include <vector>

#include "src/automata/core.hpp"
#include "src/automata/phase.hpp"
#include "src/coloring/bitplane_engines.hpp"
#include "src/net/engine.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::ArcId;
using graph::kNoArc;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

/// An invitation kept in sub-round 0 ("group a" of Procedure 2-b).
struct KeptInvite {
  NodeId from = kNoVertex;
  Color color = kNoColor;
  std::uint32_t idx = 0;  ///< incidence index of `from` at this node
};

/// Node state: the core fields plus Algorithm 2's two-sided bookkeeping.
struct D2Node : automata::CoreNode {
  /// Incidence indices whose outgoing arc is uncolored.
  support::SmallVector<std::uint32_t, 8> outUncolored;
  std::vector<bool> inColored;  ///< per incidence index
  std::size_t inUncoloredCount = 0;
  /// Colors on arcs incident to me or to a neighbor (one-hop knowledge).
  DynamicBitset forbidden;
  /// Failed invitations per out-arc; widens the color window.
  std::vector<std::uint32_t> failures;
  // Per-round scratch:
  support::SmallVector<KeptInvite, 4> mine;
  DynamicBitset overheard;
  std::uint32_t inviteIdx = 0;
  Color proposed = kNoColor;
  KeptInvite accepted;
  automata::TentativeState tent;  ///< item = the pending arc id
  Color pendingAnnounce = kNoColor;
};

/// Algorithm 2 as a policy over the shared automaton (see dima2ed.hpp for
/// the round story, automata/core.hpp for the hook contract). The state
/// machine lives in the core; this class decides the one-sided role rule,
/// the out-arc proposal (expanding color window), which invitations are
/// valid here, the per-side arc commits, and — in strict mode — it wires
/// the core's tentative/abort handshake into the tail sub-rounds.
class Dima2EdProtocol
    : public automata::MatchingCore<Dima2EdProtocol, net::TentativeColorWire,
                                    D2Node> {
  using Core = automata::MatchingCore<Dima2EdProtocol, net::TentativeColorWire,
                                      D2Node>;

 public:
  Dima2EdProtocol(const graph::Digraph& d, const Dima2EdOptions& options)
      : Core(d.numVertices(), options.invitorBias, options.trace),
        d_(&d),
        g_(&d.underlying()),
        options_(options),
        halves_(d.numArcs(), kNoColor) {
    const support::SeedSequence seq(options.seed);
    for (NodeId u = 0; u < d.numVertices(); ++u) {
      D2Node& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = static_cast<std::uint32_t>(g_->degree(u));
      s.outUncolored.reserve(deg);
      for (std::uint32_t i = 0; i < deg; ++i) s.outUncolored.push_back(i);
      s.inColored.assign(deg, false);
      s.inUncoloredCount = deg;
      s.failures.assign(deg, 0);
      s.done = deg == 0;
    }
  }

  void resetScratch(NodeId u) {
    D2Node& s = nodes_[u];
    s.mine.clear();
    s.overheard.clear();
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.tent.reset();
    s.pendingAnnounce = kNoColor;
  }

  // C: a node whose remaining work is one-sided plays the only useful role;
  // otherwise the paper's fair coin. (A node with only uncolored out-arcs
  // is never deadlocked against a peer in the same situation: an uncolored
  // out-arc u→v implies v still has the uncolored in-arc u→v, so v keeps
  // listening with positive probability.)
  Phase chooseRole(NodeId u) {
    D2Node& s = nodes_[u];
    const bool hasOut = !s.outUncolored.empty();
    const bool hasIn = s.inUncoloredCount > 0;
    DIMA_ASSERT(hasOut || hasIn, "active node with no uncolored arcs");
    if (!hasOut) return Phase::Listen;
    if (!hasIn) return Phase::Invite;
    return s.rng.bernoulli(invitorBias_) ? Phase::Invite : Phase::Listen;
  }

  // I: Procedure 2-a, ChooseRoundPartner — random uncolored out-arc,
  // proposal from the expanding color window.
  NodeId pickInvitee(NodeId u) {
    D2Node& s = nodes_[u];
    DIMA_ASSERT(!s.outUncolored.empty(), "invitor without uncolored arc");
    s.inviteIdx = s.outUncolored[s.rng.index(s.outUncolored.size())];
    s.proposed = chooseProposalColor(options_.policy, s.forbidden,
                                     s.failures[s.inviteIdx], s.rng);
    return g_->incidences(u)[s.inviteIdx].neighbor;
  }

  Message inviteMessage(NodeId u) {
    const D2Node& s = nodes_[u];
    return Message{net::WireKind::Invite, s.invitee, s.proposed, kNoArc};
  }

  bool keepInvite(NodeId u, const net::Envelope<Message>& env) {
    D2Node& s = nodes_[u];
    // Reject proposals for arcs already colored on this side (only
    // reachable under fault injection) and remember the rest. (The commit
    // halves are written in later sub-rounds, so this sub-round-0 read is
    // barrier-separated from every writer.)
    const std::uint32_t idx = incidenceIndexOf(u, env.from);
    const ArcId arc = d_->findArc(env.from, u);
    if (s.inColored[idx] || halves_.merged(arc) != kNoColor) return false;
    s.mine.push_back(KeptInvite{env.from, env.msg.color, idx});
    return true;
  }

  // L: colors proposed to someone else are "group b" — unusable this round.
  void overheardInvite(NodeId u, const net::Envelope<Message>& env) {
    nodes_[u].overheard.set(static_cast<std::size_t>(env.msg.color));
  }

  // R: Procedure 2-b, EvaluateInvites — accept a random valid invitation.
  bool chooseAccept(NodeId u) {
    D2Node& s = nodes_[u];
    if (s.mine.empty()) return false;
    // Valid = usable here, not overheard in someone else's proposal.
    support::SmallVector<std::size_t, 4> valid;
    for (std::size_t i = 0; i < s.mine.size(); ++i) {
      const Color c = s.mine[i].color;
      if (!s.overheard.test(static_cast<std::size_t>(c)) &&
          !s.forbidden.test(static_cast<std::size_t>(c))) {
        valid.push_back(i);
      }
    }
    if (valid.empty()) return false;
    s.accepted = s.mine[valid[s.rng.index(valid.size())]];
    return true;
  }

  Message acceptMessage(NodeId u) {
    const D2Node& s = nodes_[u];
    return Message{net::WireKind::Response, s.accepted.from, s.accepted.color,
                   kNoArc};
  }

  void onAcceptSent(NodeId u) {
    D2Node& s = nodes_[u];
    // The colored arc is the inviter's outgoing arc accepted.from → u.
    const ArcId arc = d_->findArc(s.accepted.from, u);
    DIMA_ASSERT(arc != kNoArc, "response without an arc");
    if (options_.mode == Dima2EdMode::Strict) {
      s.tent = {arc, s.accepted.color, s.accepted.idx, /*asInvitor=*/false,
                /*abortMine=*/false};
    } else {
      commitIncoming(u, s.accepted.idx, arc, s.accepted.color);
    }
  }

  // W: the echo of my invitation.
  void onEcho(NodeId u, [[maybe_unused]] const Message& msg) {
    D2Node& s = nodes_[u];
    DIMA_ASSERT(msg.color == s.proposed, "echoed color mismatches proposal");
    const ArcId arc = d_->findArc(u, s.invitee);
    DIMA_ASSERT(arc != kNoArc, "response without an arc");
    if (options_.mode == Dima2EdMode::Strict) {
      s.tent = {arc, s.proposed, s.inviteIdx, /*asInvitor=*/true,
                /*abortMine=*/false};
    } else {
      commitOutgoing(u, s.inviteIdx, arc, s.proposed);
    }
  }

  // No echo: the invitation failed; widen this arc's color window.
  void onNoEcho(NodeId u) {
    D2Node& s = nodes_[u];
    ++s.failures[s.inviteIdx];
  }

  // Strict mode interleaves the core's tentative/abort handshake before the
  // E-state announce; paper mode announces immediately.
  int tailSubRounds() const {
    return options_.mode == Dima2EdMode::Strict ? 3 : 1;
  }

  template <class Net>
  void tailSend(NodeId u, int tail, Net& net) {
    if (options_.mode == Dima2EdMode::Strict) {
      switch (tail) {
        case 0: tentativeSend(u, net); return;
        case 1: abortSend(u, net); return;
        default: announceSend(u, net); return;
      }
    }
    announceSend(u, net);
  }

  void tailReceive(NodeId u, int tail, net::Inbox<Message> inbox) {
    if (options_.mode == Dima2EdMode::Strict) {
      switch (tail) {
        case 0: tentativeConflictScan(u, inbox); return;
        case 1: abortResolve(u, inbox); return;
        default: receiveAnnounce(u, inbox); return;
      }
    }
    receiveAnnounce(u, inbox);
  }

  Message announceMessage(NodeId u) {
    return Message{net::WireKind::ColorAnnounce, kNoVertex,
                   nodes_[u].pendingAnnounce, kNoArc};
  }

  /// Handshake survivor: finalize the side this node played.
  void commitTentative(NodeId u) {
    const D2Node& s = nodes_[u];
    if (s.tent.asInvitor) {
      commitOutgoing(u, s.tent.idx, s.tent.item, s.tent.color);
    } else {
      commitIncoming(u, s.tent.idx, s.tent.item, s.tent.color);
    }
  }

  /// Handshake loser: an invitor charges the failure to its color window.
  void onTentativeAborted(NodeId u) {
    D2Node& s = nodes_[u];
    if (s.tent.asInvitor) ++s.failures[s.tent.idx];
  }

  bool localWorkDone(NodeId u) const {
    const D2Node& s = nodes_[u];
    return s.outUncolored.empty() && s.inUncoloredCount == 0;
  }

  /// Folds the two commit halves of every arc into the output coloring;
  /// the cross-endpoint agreement check lives there (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() const { return halves_.takeMerged(); }

  /// Arcs only one endpoint committed (possible only under message loss).
  std::vector<ArcId> halfCommittedArcs() const {
    return halves_.halfCommitted();
  }

 private:
  std::uint32_t incidenceIndexOf(NodeId u, NodeId neighbor) const {
    const auto inc = g_->incidences(u);
    for (std::uint32_t i = 0; i < inc.size(); ++i) {
      if (inc[i].neighbor == neighbor) return i;
    }
    DIMA_REQUIRE(false, "node " << neighbor << " is not adjacent to " << u);
    return 0;  // unreachable
  }

  void commitIncoming(NodeId u, std::uint32_t idx, ArcId arc, Color color) {
    D2Node& s = nodes_[u];
    DIMA_ASSERT(!s.inColored[idx], "incoming arc recolored at node " << u);
    writeArc(arc, /*incoming=*/true, color);
    s.inColored[idx] = true;
    DIMA_ASSERT(s.inUncoloredCount > 0, "in-arc underflow at node " << u);
    --s.inUncoloredCount;
    s.forbidden.set(static_cast<std::size_t>(color));
    s.pendingAnnounce = color;
    trace(u, net::TraceKind::EdgeColored, static_cast<std::int64_t>(arc),
          color);
  }

  void commitOutgoing(NodeId u, std::uint32_t idx, ArcId arc, Color color) {
    D2Node& s = nodes_[u];
    for (std::size_t k = 0; k < s.outUncolored.size(); ++k) {
      if (s.outUncolored[k] == idx) {
        writeArc(arc, /*incoming=*/false, color);
        s.outUncolored.eraseAtUnordered(k);
        s.forbidden.set(static_cast<std::size_t>(color));
        s.pendingAnnounce = color;
        trace(u, net::TraceKind::EdgeColored, static_cast<std::int64_t>(arc),
              color);
        return;
      }
    }
    DIMA_ASSERT(false, "outgoing arc " << arc << " not uncolored at " << u);
  }

  /// Writes one commit half of `arc`: the origin owns the first slot, the
  /// target the second, so concurrent same-cycle commits from the two
  /// endpoints never touch the same slot.
  void writeArc(ArcId arc, bool incoming, Color color) {
    Color& half = halves_.half(arc, automata::EndpointHalf::arcEnd(incoming));
    DIMA_ASSERT(half == kNoColor, "arc " << arc << " recolored");
    half = color;
  }

  void receiveAnnounce(NodeId u, net::Inbox<Message> inbox) {
    D2Node& s = nodes_[u];
    for (const auto& env : inbox) {
      if (env.msg.kind == net::WireKind::ColorAnnounce) {
        s.forbidden.set(static_cast<std::size_t>(env.msg.color));
      }
    }
  }

  const graph::Digraph* d_;
  const graph::Graph* g_;
  Dima2EdOptions options_;
  automata::CommitHalves<Color> halves_;
};

}  // namespace

ArcColoringResult colorArcsDima2Ed(const graph::Digraph& d,
                                   const Dima2EdOptions& options) {
  DIMA_REQUIRE(
      options.shards.count == 1 ||
          options.engine == net::EngineKind::Reference,
      "sharding runs on the reference substrate; pick one of shards/engine");
  if (options.engine == net::EngineKind::BitPlane) {
    return colorArcsDima2EdBitPlane(d, options);
  }
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  Dima2EdProtocol proto(d, options);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  engineOptions.shards = options.shards;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  net::EngineResult run;
  if (options.shards.count > 1) {
    DIMA_REQUIRE(!options.faults.perturbs(),
                 "sharded runs assume reliable links; run fault injection "
                 "on the unsharded reference substrate");
    net::ShardedNetwork<Dima2EdProtocol::Message> net(
        d.underlying(),
        graph::makePartition(d.underlying(), options.shards.partition,
                             options.shards.count));
    run = options.trace != nullptr
              ? runSyncProtocol(proto, net, engineOptions)
              : runShardedProtocol(proto, net, engineOptions);
  } else {
    net::SyncNetwork<Dima2EdProtocol::Message> net(d.underlying(),
                                                   options.faults);
    run = runSyncProtocol(proto, net, engineOptions);
  }

  ArcColoringResult result;
  result.halfCommitted = proto.halfCommittedArcs();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace dima::coloring
