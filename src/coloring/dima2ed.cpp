#include "src/coloring/dima2ed.hpp"

#include <utility>
#include <vector>

#include "src/automata/phase.hpp"
#include "src/net/network.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::ArcId;
using graph::kNoArc;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

struct D2Message {
  enum class Kind : std::uint8_t {
    Invite,         ///< target = invitee, color = proposal
    Response,       ///< target = inviter, color = accepted proposal
    Tentative,      ///< strict: arc + color pending commit
    Abort,          ///< strict: arc rolled back
    ColorAnnounce,  ///< E: color committed this round
  };
  Kind kind = Kind::Invite;
  NodeId target = kNoVertex;
  Color color = kNoColor;
  ArcId arc = kNoArc;

  /// CONGEST wire size: 3-bit kind + id + color + arc id.
  std::uint64_t wireBits() const {
    return 3 + (target == kNoVertex ? 1 : net::bitWidth(target)) +
           (color < 0 ? 1
                      : net::bitWidth(static_cast<std::uint64_t>(color))) +
           (arc == kNoArc ? 1 : net::bitWidth(arc));
  }
};

class Dima2EdProtocol {
 public:
  using Message = D2Message;

  Dima2EdProtocol(const graph::Digraph& d, const Dima2EdOptions& options)
      : d_(&d),
        g_(&d.underlying()),
        options_(options),
        sideColor_(2 * static_cast<std::size_t>(d.numArcs()), kNoColor) {
    const support::SeedSequence seq(options.seed);
    nodes_.resize(d.numVertices());
    for (NodeId u = 0; u < d.numVertices(); ++u) {
      NodeState& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = static_cast<std::uint32_t>(g_->degree(u));
      s.outUncolored.reserve(deg);
      for (std::uint32_t i = 0; i < deg; ++i) s.outUncolored.push_back(i);
      s.inColored.assign(deg, false);
      s.inUncoloredCount = deg;
      s.failures.assign(deg, 0);
      s.done = deg == 0;
    }
  }

  int subRounds() const {
    return options_.mode == Dima2EdMode::Strict ? 5 : 3;
  }

  void beginCycle(NodeId u) {
    NodeState& s = nodes_[u];
    s.mine.clear();
    s.overheard.clear();
    s.invitee = kNoVertex;
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.tentArc = kNoArc;
    s.tentColor = kNoColor;
    s.tentIdx = 0;
    s.tentIsOut = false;
    s.abortMine = false;
    s.pendingAnnounce = kNoColor;
    if (s.done) {
      s.role = Phase::Done;
      return;
    }
    // Role choice: a node whose remaining work is one-sided plays the only
    // useful role; otherwise the paper's fair coin. (A node with only
    // uncolored out-arcs is never deadlocked against a peer in the same
    // situation: an uncolored out-arc u→v implies v still has the uncolored
    // in-arc u→v, so v keeps listening with positive probability.)
    const bool hasOut = !s.outUncolored.empty();
    const bool hasIn = s.inUncoloredCount > 0;
    DIMA_ASSERT(hasOut || hasIn, "active node with no uncolored arcs");
    if (!hasOut) {
      s.role = Phase::Listen;
    } else if (!hasIn) {
      s.role = Phase::Invite;
    } else {
      s.role = s.rng.bernoulli(options_.invitorBias) ? Phase::Invite
                                                     : Phase::Listen;
    }
    trace(u, net::TraceKind::StateChoice, s.role == Phase::Invite ? 1 : 0);
  }

  void send(NodeId u, int sub, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    const bool strict = options_.mode == Dima2EdMode::Strict;
    switch (sub) {
      case 0: {  // I: Procedure 2-a, ChooseRoundPartner.
        if (s.role != Phase::Invite) return;
        DIMA_ASSERT(!s.outUncolored.empty(), "invitor without uncolored arc");
        s.inviteIdx = s.outUncolored[s.rng.index(s.outUncolored.size())];
        s.invitee = g_->incidences(u)[s.inviteIdx].neighbor;
        s.proposed = chooseColor(s, s.inviteIdx);
        net.broadcast(u, Message{Message::Kind::Invite, s.invitee, s.proposed,
                                 kNoArc});
        trace(u, net::TraceKind::InviteSent, s.invitee, s.proposed);
        break;
      }
      case 1: {  // R: Procedure 2-b, EvaluateInvites.
        if (s.role != Phase::Listen || s.mine.empty()) return;
        // Valid = usable here, not overheard in someone else's proposal.
        support::SmallVector<std::size_t, 4> valid;
        for (std::size_t i = 0; i < s.mine.size(); ++i) {
          const Color c = s.mine[i].color;
          if (!s.overheard.test(static_cast<std::size_t>(c)) &&
              !s.forbidden.test(static_cast<std::size_t>(c))) {
            valid.push_back(i);
          }
        }
        if (valid.empty()) return;
        const auto& kept = s.mine[valid[s.rng.index(valid.size())]];
        net.broadcast(u, Message{Message::Kind::Response, kept.from,
                                 kept.color, kNoArc});
        trace(u, net::TraceKind::ResponseSent, kept.from, kept.color);
        // The colored arc is the inviter's outgoing arc kept.from → u.
        const ArcId arc = d_->findArc(kept.from, u);
        DIMA_ASSERT(arc != kNoArc, "response without an arc");
        if (strict) {
          s.tentArc = arc;
          s.tentColor = kept.color;
          s.tentIdx = kept.idx;
          s.tentIsOut = false;
        } else {
          commitIncoming(u, kept.idx, arc, kept.color);
        }
        break;
      }
      case 2: {
        if (strict) {  // strict: announce the tentative pair.
          if (s.tentArc != kNoArc) {
            net.broadcast(u, Message{Message::Kind::Tentative, kNoVertex,
                                     s.tentColor, s.tentArc});
          }
        } else {  // paper: E-state color exchange.
          sendAnnounce(u, net);
        }
        break;
      }
      case 3: {  // strict: abort notices.
        if (s.tentArc != kNoArc && s.abortMine) {
          net.broadcast(u, Message{Message::Kind::Abort, kNoVertex, kNoColor,
                                   s.tentArc});
        }
        break;
      }
      case 4: {  // strict: E-state color exchange.
        sendAnnounce(u, net);
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void receive(NodeId u, int sub,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    const bool strict = options_.mode == Dima2EdMode::Strict;
    switch (sub) {
      case 0: {  // L: collect own invites ("group a") and overheard colors
                 // ("group b", Procedure 2-b line 8).
        if (s.role != Phase::Listen) {
          return;  // paper: invitors are in W and do not listen here
        }
        for (const auto& env : inbox) {
          if (env.msg.kind != Message::Kind::Invite) continue;
          if (env.msg.target == u) {
            // Reject proposals for arcs already colored on this side (only
            // reachable under fault injection) and remember the rest. (The
            // commit halves are written in later sub-rounds, so this
            // sub-round-0 read is barrier-separated from every writer.)
            const std::uint32_t idx = incidenceIndexOf(u, env.from);
            const ArcId arc = d_->findArc(env.from, u);
            if (!s.inColored[idx] && arcColor(arc) == kNoColor) {
              s.mine.push_back(KeptInvite{env.from, env.msg.color, idx});
              trace(u, net::TraceKind::InviteKept, env.from, env.msg.color);
            }
          } else {
            s.overheard.set(static_cast<std::size_t>(env.msg.color));
          }
        }
        break;
      }
      case 1: {  // W: find the echo of my invitation.
        if (s.role != Phase::Invite || s.invitee == kNoVertex) return;
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Response &&
              env.msg.target == u && env.from == s.invitee) {
            DIMA_ASSERT(env.msg.color == s.proposed,
                        "echoed color mismatches proposal");
            const ArcId arc = d_->findArc(u, s.invitee);
            DIMA_ASSERT(arc != kNoArc, "response without an arc");
            if (strict) {
              s.tentArc = arc;
              s.tentColor = s.proposed;
              s.tentIdx = s.inviteIdx;
              s.tentIsOut = true;
            } else {
              commitOutgoing(u, s.inviteIdx, arc, s.proposed);
            }
            return;
          }
        }
        // No echo: the invitation failed; widen this arc's color window.
        ++s.failures[s.inviteIdx];
        break;
      }
      case 2: {
        if (strict) {  // conflict scan among same-round tentatives.
          if (s.tentArc == kNoArc) return;
          for (const auto& env : inbox) {
            if (env.msg.kind != Message::Kind::Tentative) continue;
            if (env.msg.arc == s.tentArc) continue;  // partner's echo
            // The sender is a neighbor and an endpoint of its arc, this
            // node is an endpoint of its own arc — adjacency makes any
            // equal-colored pair a strong conflict. Lower arc id wins.
            if (env.msg.color == s.tentColor && env.msg.arc < s.tentArc) {
              s.abortMine = true;
            }
          }
        } else {  // paper: fold announcements into the forbidden set.
          receiveAnnounce(s, inbox);
        }
        break;
      }
      case 3: {  // strict: resolve aborts, then commit survivors.
        if (s.tentArc == kNoArc) return;
        if (!s.abortMine) {
          for (const auto& env : inbox) {
            if (env.msg.kind == Message::Kind::Abort &&
                env.msg.arc == s.tentArc) {
              s.abortMine = true;
              break;
            }
          }
        }
        if (s.abortMine) {
          trace(u, net::TraceKind::Aborted, s.tentArc, s.tentColor);
          if (s.tentIsOut) ++s.failures[s.tentIdx];
        } else if (s.tentIsOut) {
          commitOutgoing(u, s.tentIdx, s.tentArc, s.tentColor);
        } else {
          commitIncoming(u, s.tentIdx, s.tentArc, s.tentColor);
        }
        break;
      }
      case 4: {  // strict: E-state update.
        receiveAnnounce(s, inbox);
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void endCycle(NodeId u) {
    NodeState& s = nodes_[u];
    if (!s.done && s.outUncolored.empty() && s.inUncoloredCount == 0) {
      s.done = true;
      trace(u, net::TraceKind::NodeDone);
    }
  }

  bool done(NodeId u) const { return nodes_[u].done; }

  /// Folds the two commit halves of every arc into the output coloring;
  /// the cross-endpoint agreement check lives here (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() {
    std::vector<Color> out(sideColor_.size() / 2, kNoColor);
    for (ArcId a = 0; a < out.size(); ++a) {
      const Color origin = sideColor_[2 * a];
      const Color target = sideColor_[2 * a + 1];
      DIMA_ASSERT(origin == kNoColor || target == kNoColor || origin == target,
                  "arc " << a << " committed with two colors " << origin
                         << "≠" << target);
      out[a] = origin != kNoColor ? origin : target;
    }
    return out;
  }

  /// Arcs only one endpoint committed (possible only under message loss).
  std::vector<ArcId> halfCommittedArcs() const {
    std::vector<ArcId> out;
    for (ArcId a = 0; 2 * a < sideColor_.size(); ++a) {
      if ((sideColor_[2 * a] != kNoColor) !=
          (sideColor_[2 * a + 1] != kNoColor)) {
        out.push_back(a);
      }
    }
    return out;
  }

  void tickCycle() { ++cycle_; }

 private:
  struct KeptInvite {
    NodeId from = kNoVertex;
    Color color = kNoColor;
    std::uint32_t idx = 0;  ///< incidence index of `from` at this node
  };

  struct NodeState {
    support::Rng rng{0};
    Phase role = Phase::Choose;
    bool done = false;
    /// Incidence indices whose outgoing arc is uncolored.
    support::SmallVector<std::uint32_t, 8> outUncolored;
    std::vector<bool> inColored;  ///< per incidence index
    std::size_t inUncoloredCount = 0;
    /// Colors on arcs incident to me or to a neighbor (one-hop knowledge).
    DynamicBitset forbidden;
    /// Failed invitations per out-arc; widens the color window.
    std::vector<std::uint32_t> failures;
    // Per-round scratch:
    support::SmallVector<KeptInvite, 4> mine;
    DynamicBitset overheard;
    NodeId invitee = kNoVertex;
    std::uint32_t inviteIdx = 0;
    Color proposed = kNoColor;
    ArcId tentArc = kNoArc;
    Color tentColor = kNoColor;
    std::uint32_t tentIdx = 0;
    bool tentIsOut = false;
    bool abortMine = false;
    Color pendingAnnounce = kNoColor;
  };

  Color chooseColor(NodeState& s, std::uint32_t idx) {
    if (options_.policy == ColorPolicy::LowestIndex) {
      return static_cast<Color>(s.forbidden.firstClear());
    }
    // ExpandingWindow: uniform among the first (1 + failures) free colors.
    const std::size_t window = 1 + s.failures[idx];
    support::SmallVector<std::size_t, 16> candidates;
    std::size_t c = s.forbidden.firstClear();
    while (candidates.size() < window) {
      candidates.push_back(c);
      // Next free color after c.
      ++c;
      while (s.forbidden.test(c)) ++c;
    }
    return static_cast<Color>(candidates[s.rng.index(candidates.size())]);
  }

  std::uint32_t incidenceIndexOf(NodeId u, NodeId neighbor) const {
    const auto inc = g_->incidences(u);
    for (std::uint32_t i = 0; i < inc.size(); ++i) {
      if (inc[i].neighbor == neighbor) return i;
    }
    DIMA_REQUIRE(false, "node " << neighbor << " is not adjacent to " << u);
    return 0;  // unreachable
  }

  void commitIncoming(NodeId u, std::uint32_t idx, ArcId arc, Color color) {
    NodeState& s = nodes_[u];
    DIMA_ASSERT(!s.inColored[idx], "incoming arc recolored at node " << u);
    writeArc(arc, /*incoming=*/true, color);
    s.inColored[idx] = true;
    DIMA_ASSERT(s.inUncoloredCount > 0, "in-arc underflow at node " << u);
    --s.inUncoloredCount;
    s.forbidden.set(static_cast<std::size_t>(color));
    s.pendingAnnounce = color;
    trace(u, net::TraceKind::EdgeColored, static_cast<std::int64_t>(arc),
          color);
  }

  void commitOutgoing(NodeId u, std::uint32_t idx, ArcId arc, Color color) {
    NodeState& s = nodes_[u];
    for (std::size_t k = 0; k < s.outUncolored.size(); ++k) {
      if (s.outUncolored[k] == idx) {
        writeArc(arc, /*incoming=*/false, color);
        s.outUncolored.eraseAtUnordered(k);
        s.forbidden.set(static_cast<std::size_t>(color));
        s.pendingAnnounce = color;
        trace(u, net::TraceKind::EdgeColored, static_cast<std::int64_t>(arc),
              color);
        return;
      }
    }
    DIMA_ASSERT(false, "outgoing arc " << arc << " not uncolored at " << u);
  }

  /// Writes one commit half of `arc`: slot 2·arc belongs to the arc's
  /// origin, 2·arc+1 to its target, so concurrent same-cycle commits from
  /// the two endpoints never touch the same slot.
  void writeArc(ArcId arc, bool incoming, Color color) {
    Color& half = sideColor_[2 * arc + (incoming ? 1 : 0)];
    DIMA_ASSERT(half == kNoColor, "arc " << arc << " recolored");
    half = color;
  }

  void sendAnnounce(NodeId u, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    if (s.pendingAnnounce == kNoColor) return;
    net.broadcast(u, Message{Message::Kind::ColorAnnounce, kNoVertex,
                             s.pendingAnnounce, kNoArc});
  }

  void receiveAnnounce(NodeState& s,
                       net::Inbox<Message> inbox) {
    for (const auto& env : inbox) {
      if (env.msg.kind == Message::Kind::ColorAnnounce) {
        s.forbidden.set(static_cast<std::size_t>(env.msg.color));
      }
    }
  }

  void trace(NodeId u, net::TraceKind kind, std::int64_t a = -1,
             std::int64_t b = -1) {
    if (options_.trace != nullptr) {
      options_.trace->record(cycle_, u, kind, a, b);
    }
  }

  /// Merged view of arc a's two commit halves; kNoColor while uncolored.
  Color arcColor(ArcId a) const {
    return sideColor_[2 * a] != kNoColor ? sideColor_[2 * a]
                                         : sideColor_[2 * a + 1];
  }

  const graph::Digraph* d_;
  const graph::Graph* g_;
  Dima2EdOptions options_;
  std::vector<NodeState> nodes_;
  /// Per-endpoint commit halves: slot 2a is written only by arc a's origin
  /// (`commitOutgoing`), slot 2a+1 only by its target (`commitIncoming`),
  /// so the parallel receive phase has a single writer per slot.
  /// `takeColors()` merges them after the run.
  std::vector<Color> sideColor_;
  std::uint64_t cycle_ = 0;
};

}  // namespace

ArcColoringResult colorArcsDima2Ed(const graph::Digraph& d,
                                   const Dima2EdOptions& options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  Dima2EdProtocol proto(d, options);
  net::SyncNetwork<D2Message> net(d.underlying(), options.faults);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  const net::EngineResult run = runSyncProtocol(proto, net, engineOptions);

  ArcColoringResult result;
  result.halfCommitted = proto.halfCommittedArcs();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace dima::coloring
