#include "src/coloring/result.hpp"

#include <algorithm>

#include "src/support/bitset.hpp"

namespace dima::coloring {

PaletteSummary summarizePalette(const std::vector<Color>& colors) {
  PaletteSummary s;
  support::DynamicBitset seen;
  for (Color c : colors) {
    if (c == kNoColor) {
      ++s.uncolored;
      continue;
    }
    ++s.assigned;
    s.maxColor = std::max(s.maxColor, c);
    seen.set(static_cast<std::size_t>(c));
  }
  s.distinct = seen.count();
  return s;
}

bool EdgeColoringResult::complete() const {
  return std::none_of(colors.begin(), colors.end(),
                      [](Color c) { return c == kNoColor; });
}

bool ArcColoringResult::complete() const {
  return std::none_of(colors.begin(), colors.end(),
                      [](Color c) { return c == kNoColor; });
}

}  // namespace dima::coloring
