#include <algorithm>

#include "src/coloring/bitplane_engines.hpp"
#include "src/net/message.hpp"
#include "src/support/assert.hpp"

// dimalint: hot-path — no std::function, no per-message allocation.

namespace dima::coloring {

namespace {

using bp::forEachBitIn;
using bp::forPlaneWords;
using bp::Word;
using graph::ArcId;
using graph::kNoArc;
using graph::kNoVertex;
using net::NodeId;

std::uint64_t wireBits(net::WireKind kind, NodeId target, Color color,
                       std::uint32_t item) {
  return net::TentativeColorWire{kind, target, color, item}.wireBits();
}

/// The reference `chooseProposalColor` replayed over a palette row: the
/// candidate walk draws nothing, so drawing the window index first and
/// walking to that free color is the same single `rng.index` call with the
/// same result.
Color chooseProposalFromRow(ColorPolicy policy, const Word* row,
                            std::size_t stride, std::uint32_t failures,
                            support::Rng& rng) {
  if (policy == ColorPolicy::LowestIndex) {
    return static_cast<Color>(bp::nthClearBit(row, stride, 0));
  }
  const std::size_t window = 1 + failures;
  return static_cast<Color>(
      bp::nthClearBit(row, stride, rng.index(window)));
}

}  // namespace

BitPlaneDima2Ed::BitPlaneDima2Ed(const graph::Digraph& d,
                                 const Dima2EdOptions& options)
    : d_(&d),
      g_(&d.underlying()),
      options_(options),
      pool_(options.pool),
      trace_(options.trace),
      planes_(g_->numVertices()),
      rng_(g_->numVertices()),
      off_(bp::incidenceOffsets(*g_)),
      forbidden_(g_->numVertices(), 1),
      overheard_(g_->numVertices(), 1),
      halves_(d.numArcs(), kNoColor),
      outUncolored_(off_.back(), 0),
      outCount_(g_->numVertices(), 0),
      inColored_(off_.back(), 0),
      inCount_(g_->numVertices(), 0),
      failures_(off_.back(), 0),
      keptFrom_(off_.back(), kNoVertex),
      keptColor_(off_.back(), kNoColor),
      keptIdx_(off_.back(), 0),
      keptCount_(g_->numVertices(), 0),
      invitee_(g_->numVertices(), kNoVertex),
      inviteIdx_(g_->numVertices(), 0),
      proposed_(g_->numVertices(), kNoColor),
      acceptedFrom_(g_->numVertices(), kNoVertex),
      acceptedColor_(g_->numVertices(), kNoColor),
      acceptedIdx_(g_->numVertices(), 0),
      tentItem_(g_->numVertices(), net::kNoWireItem),
      tentColor_(g_->numVertices(), kNoColor),
      tentIdx_(g_->numVertices(), 0),
      tentAsInvitor_(g_->numVertices(), 0),
      tentAbort_(g_->numVertices(), 0),
      pendingAnnounce_(g_->numVertices(), kNoColor),
      shardMax_(pool_ != nullptr ? pool_->workerCount() : 1),
      traffic_(pool_ != nullptr ? pool_->workerCount() : 1) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  DIMA_REQUIRE(!options.faults.perturbs(),
               "the bit-plane engine computes the message plane instead of "
               "delivering it; perturbed channels need EngineKind::Reference");
  DIMA_REQUIRE(trace_ == nullptr || pool_ == nullptr,
               "tracing requires the serial executor");
  reset();
}

void BitPlaneDima2Ed::reset() {
  cycle_ = 0;
  activeCount_ = 0;
  planes_ = bp::StatePlanes(g_->numVertices());
  tentative_ = support::DynamicBitset(g_->numVertices());
  abortSent_ = support::DynamicBitset(g_->numVertices());
  forbidden_.clearAll();
  overheard_.clearAll();
  halves_ = automata::CommitHalves<Color>(d_->numArcs(), kNoColor);
  traffic_ = bp::Traffic(pool_ != nullptr ? pool_->workerCount() : 1);
  std::fill(inColored_.begin(), inColored_.end(), std::uint8_t{0});
  std::fill(failures_.begin(), failures_.end(), 0U);
  const support::SeedSequence seq(options_.seed);
  for (NodeId u = 0; u < g_->numVertices(); ++u) {
    rng_[u] = seq.stream(u);
    const auto deg = static_cast<std::uint32_t>(g_->degree(u));
    outCount_[u] = deg;
    inCount_[u] = deg;
    for (std::uint32_t i = 0; i < deg; ++i) outUncolored_[off_[u] + i] = i;
    if (deg != 0) {
      planes_.active.set(u);
      ++activeCount_;
    }
  }
}

void BitPlaneDima2Ed::commitIncoming(std::size_t /*shard*/, NodeId u,
                                     std::uint32_t idx, ArcId arc,
                                     Color color) {
  DIMA_ASSERT(!inColored_[off_[u] + idx],
              "incoming arc recolored at node " << u);
  Color& half = halves_.half(arc, automata::EndpointHalf::arcEnd(true));
  DIMA_ASSERT(half == kNoColor, "arc " << arc << " recolored");
  half = color;
  inColored_[off_[u] + idx] = 1;
  DIMA_ASSERT(inCount_[u] > 0, "in-arc underflow at node " << u);
  --inCount_[u];
  forbidden_.set(u, static_cast<std::size_t>(color));
  pendingAnnounce_[u] = color;
  if (trace_ != nullptr) {
    trace_->record(cycle_, u, net::TraceKind::EdgeColored,
                   static_cast<std::int64_t>(arc), color);
  }
}

void BitPlaneDima2Ed::commitOutgoing(std::size_t /*shard*/, NodeId u,
                                     std::uint32_t idx, ArcId arc,
                                     Color color) {
  const std::size_t base = off_[u];
  const std::uint32_t cnt = outCount_[u];
  for (std::uint32_t k = 0; k < cnt; ++k) {
    if (outUncolored_[base + k] != idx) continue;
    Color& half = halves_.half(arc, automata::EndpointHalf::arcEnd(false));
    DIMA_ASSERT(half == kNoColor, "arc " << arc << " recolored");
    half = color;
    outUncolored_[base + k] = outUncolored_[base + cnt - 1];
    outCount_[u] = cnt - 1;
    forbidden_.set(u, static_cast<std::size_t>(color));
    pendingAnnounce_[u] = color;
    if (trace_ != nullptr) {
      trace_->record(cycle_, u, net::TraceKind::EdgeColored,
                     static_cast<std::int64_t>(arc), color);
    }
    return;
  }
  DIMA_ASSERT(false, "outgoing arc " << arc << " not uncolored at " << u);
}

void BitPlaneDima2Ed::runCycle() {
  const bool strict = options_.mode == Dima2EdMode::Strict;
  planes_.beginCycle();
  if (strict) {
    auto tw = tentative_.mutableWords();
    auto aw = abortSent_.mutableWords();
    bp::kernels().clearWords(tw.data(), tw.size());
    bp::kernels().clearWords(aw.data(), aw.size());
  }
  for (auto& s : shardMax_) s.maxProposed = kNoColor;

  // --- C: one-sided nodes play the only useful role; otherwise the coin.
  {
    auto inviteWords = planes_.invite.mutableWords();
    auto listenWords = planes_.listen.mutableWords();
    forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                             Word word) {
      Word inviteW = 0;
      Word listenW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        invitee_[u] = kNoVertex;
        keptCount_[u] = 0;
        proposed_[u] = kNoColor;
        tentItem_[u] = net::kNoWireItem;
        tentAbort_[u] = 0;
        pendingAnnounce_[u] = kNoColor;
        const bool hasOut = outCount_[u] > 0;
        const bool hasIn = inCount_[u] > 0;
        DIMA_ASSERT(hasOut || hasIn, "active node with no uncolored arcs");
        bool invitor;
        if (!hasOut) {
          invitor = false;
        } else if (!hasIn) {
          invitor = true;
        } else {
          invitor = rng_[u].bernoulli(options_.invitorBias);
        }
        (invitor ? inviteW : listenW) |= Word{1} << (u % bp::kWordBits);
        if (trace_ != nullptr) {
          trace_->record(cycle_, u, net::TraceKind::StateChoice,
                         invitor ? 1 : 0);
        }
      });
      inviteWords[w] = inviteW;
      listenWords[w] = listenW;
    });
  }

  // --- I: random uncolored out-arc, proposal from the expanding window.
  forPlaneWords(planes_.invite, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId u) {
      const std::uint32_t cnt = outCount_[u];
      DIMA_ASSERT(cnt != 0, "invitor without uncolored arc");
      const std::uint32_t idx = outUncolored_[off_[u] + rng_[u].index(cnt)];
      inviteIdx_[u] = idx;
      const Color c = chooseProposalFromRow(
          options_.policy, forbidden_.row(u), forbidden_.stride(),
          failures_[off_[u] + idx], rng_[u]);
      proposed_[u] = c;
      const NodeId v = g_->incidences(u)[idx].neighbor;
      invitee_[u] = v;
      if (c > shardMax_[shard].maxProposed) shardMax_[shard].maxProposed = c;
      traffic_.onBroadcast(
          shard, wireBits(net::WireKind::Invite, v, c, kNoArc),
          g_->degree(u));
      if (trace_ != nullptr) {
        trace_->record(cycle_, u, net::TraceKind::InviteSent, v, c);
      }
    });
  });

  // Serial palette-growth barrier: this cycle's proposals bound every
  // later palette write (overheard entries, commits, announce folds), so
  // one relayout here keeps every subsequent `set` within capacity.
  {
    Color maxProposed = kNoColor;
    for (const auto& s : shardMax_) {
      maxProposed = std::max(maxProposed, s.maxProposed);
    }
    if (maxProposed >= 0) {
      const auto bits = static_cast<std::size_t>(maxProposed) + 1;
      const std::size_t stride = (bits + bp::kWordBits - 1) / bp::kWordBits;
      forbidden_.growStride(stride);
      overheard_.growStride(stride);
    }
  }

  // --- L: keep invitations naming me; overhear the rest ("group b").
  forPlaneWords(planes_.listen, pool_, [&](std::size_t, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId v) {
      overheard_.clearRow(v);
      const auto inc = g_->incidences(v);
      for (std::uint32_t j = 0; j < inc.size(); ++j) {
        const NodeId u = inc[j].neighbor;
        if (!planes_.invite.test(u)) continue;
        if (invitee_[u] != v) {
          overheard_.set(v, static_cast<std::size_t>(proposed_[u]));
          continue;
        }
        // The reference rejects already-colored arcs here; fault-free that
        // path is unreachable (the invitor only proposes over its own
        // uncolored out-arcs, and both sides commit in the same cycle).
        DIMA_ASSERT(!inColored_[off_[v] + j],
                    "invite over a colored arc reached node " << v);
        const std::size_t slot = off_[v] + keptCount_[v]++;
        keptFrom_[slot] = u;
        keptColor_[slot] = proposed_[u];
        keptIdx_[slot] = j;
        if (trace_ != nullptr) {
          trace_->record(cycle_, v, net::TraceKind::InviteKept, u,
                         proposed_[u]);
        }
      }
    });
  });

  // --- R: accept a random valid invitation (usable here, not overheard).
  {
    auto respondWords = planes_.respond.mutableWords();
    auto tentWords = tentative_.mutableWords();
    auto updateWords = planes_.update.mutableWords();
    forPlaneWords(planes_.listen, pool_, [&](std::size_t shard, std::size_t w,
                                             Word word) {
      Word respondW = 0;
      Word tentW = 0;
      Word updateW = 0;
      forEachBitIn(w, word, [&](NodeId v) {
        const std::uint32_t cnt = keptCount_[v];
        if (cnt == 0) return;
        // Draw among the valid invitations without materializing the set
        // (the round loop must stay allocation-free, and cnt is degree-
        // bounded): count them, draw once, then find the drawn one. The
        // single index(validCount) call keeps the RNG stream — and hence
        // the colors — bit-identical to the materialized version.
        std::uint32_t validCount = 0;
        for (std::uint32_t i = 0; i < cnt; ++i) {
          const auto c = static_cast<std::size_t>(keptColor_[off_[v] + i]);
          if (!overheard_.test(v, c) && !forbidden_.test(v, c)) {
            ++validCount;
          }
        }
        if (validCount == 0) return;  // no draw, exactly like the reference
        auto pick =
            static_cast<std::uint32_t>(rng_[v].index(validCount));
        std::uint32_t chosen = 0;
        for (std::uint32_t i = 0; i < cnt; ++i) {
          const auto c = static_cast<std::size_t>(keptColor_[off_[v] + i]);
          if (!overheard_.test(v, c) && !forbidden_.test(v, c)) {
            if (pick == 0) {
              chosen = i;
              break;
            }
            --pick;
          }
        }
        const std::size_t slot = off_[v] + chosen;
        const NodeId from = keptFrom_[slot];
        const Color color = keptColor_[slot];
        const std::uint32_t idx = keptIdx_[slot];
        acceptedFrom_[v] = from;
        acceptedColor_[v] = color;
        acceptedIdx_[v] = idx;
        respondW |= Word{1} << (v % bp::kWordBits);
        traffic_.onBroadcast(
            shard, wireBits(net::WireKind::Response, from, color, kNoArc),
            g_->degree(v));
        if (trace_ != nullptr) {
          trace_->record(cycle_, v, net::TraceKind::ResponseSent, from,
                         color);
        }
        // onAcceptSent: the colored arc is the invitor's out-arc from → v,
        // the reverse of my out-arc over the same incidence.
        const ArcId arc = graph::Digraph::reverse(d_->outArcs(v)[idx]);
        if (strict) {
          tentItem_[v] = arc;
          tentColor_[v] = color;
          tentIdx_[v] = idx;
          tentAsInvitor_[v] = 0;
          tentW |= Word{1} << (v % bp::kWordBits);
        } else {
          commitIncoming(shard, v, idx, arc, color);
          updateW |= Word{1} << (v % bp::kWordBits);
        }
      });
      respondWords[w] |= respondW;
      tentWords[w] |= tentW;
      updateWords[w] |= updateW;
    });
  }

  // --- W: the echo of my invitation, or a charged failure.
  {
    auto tentWords = tentative_.mutableWords();
    auto updateWords = planes_.update.mutableWords();
    forPlaneWords(planes_.invite, pool_, [&](std::size_t shard, std::size_t w,
                                             Word word) {
      Word tentW = 0;
      Word updateW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        const NodeId v = invitee_[u];
        if (!planes_.respond.test(v) || acceptedFrom_[v] != u) {
          ++failures_[off_[u] + inviteIdx_[u]];  // onNoEcho
          return;
        }
        DIMA_ASSERT(acceptedColor_[v] == proposed_[u],
                    "echoed color mismatches proposal at node " << u);
        const ArcId arc = d_->outArcs(u)[inviteIdx_[u]];
        if (strict) {
          tentItem_[u] = arc;
          tentColor_[u] = proposed_[u];
          tentIdx_[u] = inviteIdx_[u];
          tentAsInvitor_[u] = 1;
          tentW |= Word{1} << (u % bp::kWordBits);
        } else {
          commitOutgoing(shard, u, inviteIdx_[u], arc, proposed_[u]);
          updateW |= Word{1} << (u % bp::kWordBits);
        }
      });
      tentWords[w] |= tentW;
      updateWords[w] |= updateW;
    });
  }

  if (strict) {
    // --- Tentative send: pure traffic (plus the extended-trace event).
    forPlaneWords(tentative_, pool_, [&](std::size_t shard, std::size_t w,
                                         Word word) {
      forEachBitIn(w, word, [&](NodeId u) {
        traffic_.onBroadcast(shard,
                             wireBits(net::WireKind::Tentative, kNoVertex,
                                      tentColor_[u], tentItem_[u]),
                             g_->degree(u));
        if (trace_ != nullptr && trace_->extended()) {
          trace_->record(cycle_, u, net::TraceKind::TentativeSet,
                         tentItem_[u], tentColor_[u]);
        }
      });
    });

    // --- Conflict scan: adjacent same-color tentatives; lower item wins.
    forPlaneWords(tentative_, pool_, [&](std::size_t, std::size_t w,
                                         Word word) {
      forEachBitIn(w, word, [&](NodeId u) {
        for (const auto& inc : g_->incidences(u)) {
          const NodeId nb = inc.neighbor;
          if (!tentative_.test(nb)) continue;
          if (tentItem_[nb] == tentItem_[u]) continue;  // partner's echo
          if (tentColor_[nb] == tentColor_[u] &&
              tentItem_[nb] < tentItem_[u]) {
            tentAbort_[u] = 1;
          }
        }
      });
    });

    // --- Abort send: snapshot who broadcast an abort, so the resolve
    // pass's adoption reads abort state as of this sub-round, not values
    // mutated while the pass runs.
    {
      auto abortWords = abortSent_.mutableWords();
      forPlaneWords(tentative_, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
        Word abortW = 0;
        forEachBitIn(w, word, [&](NodeId u) {
          if (tentAbort_[u] == 0) return;
          abortW |= Word{1} << (u % bp::kWordBits);
          traffic_.onBroadcast(shard,
                               wireBits(net::WireKind::Abort, kNoVertex, -1,
                                        tentItem_[u]),
                               g_->degree(u));
        });
        abortWords[w] = abortW;
      });
    }

    // --- Resolve: adopt a partner's abort, then roll back or finalize.
    {
      auto updateWords = planes_.update.mutableWords();
      forPlaneWords(tentative_, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
        Word updateW = 0;
        forEachBitIn(w, word, [&](NodeId u) {
          if (tentAbort_[u] == 0) {
            for (const auto& inc : g_->incidences(u)) {
              const NodeId nb = inc.neighbor;
              if (abortSent_.test(nb) && tentItem_[nb] == tentItem_[u]) {
                tentAbort_[u] = 1;
                break;
              }
            }
          }
          if (tentAbort_[u] != 0) {
            if (trace_ != nullptr) {
              trace_->record(cycle_, u, net::TraceKind::Aborted, tentItem_[u],
                             tentColor_[u]);
            }
            // onTentativeAborted: invitors charge the failed window.
            if (tentAsInvitor_[u] != 0) ++failures_[off_[u] + tentIdx_[u]];
            return;
          }
          if (tentAsInvitor_[u] != 0) {
            commitOutgoing(shard, u, tentIdx_[u], tentItem_[u],
                           tentColor_[u]);
          } else {
            commitIncoming(shard, u, tentIdx_[u], tentItem_[u],
                           tentColor_[u]);
          }
          updateW |= Word{1} << (u % bp::kWordBits);
        });
        updateWords[w] |= updateW;
      });
    }
  }

  // --- E: announce adopted colors (traffic), then fold neighbors'
  // announcements into the one-hop forbidden rows.
  forPlaneWords(planes_.update, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId u) {
      traffic_.onBroadcast(shard,
                           wireBits(net::WireKind::ColorAnnounce, kNoVertex,
                                    pendingAnnounce_[u], kNoArc),
                           g_->degree(u));
    });
  });
  forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId u) {
      for (const auto& inc : g_->incidences(u)) {
        const NodeId nb = inc.neighbor;
        if (!planes_.update.test(nb)) continue;
        forbidden_.set(u, static_cast<std::size_t>(pendingAnnounce_[nb]));
      }
    });
  });

  // --- D: retire nodes with no uncolored arcs on either side.
  {
    auto doneWords = planes_.doneNew.mutableWords();
    forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                             Word word) {
      Word doneW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        if (outCount_[u] != 0 || inCount_[u] != 0) return;
        doneW |= Word{1} << (u % bp::kWordBits);
        if (trace_ != nullptr) {
          trace_->record(cycle_, u, net::TraceKind::NodeDone);
        }
      });
      doneWords[w] = doneW;
    });
  }
  activeCount_ -= planes_.retire();
}

ArcColoringResult BitPlaneDima2Ed::run() {
  const std::uint64_t subRounds =
      options_.mode == Dima2EdMode::Strict ? 5 : 3;
  bool converged = false;
  while (true) {
    if (activeCount_ == 0) {
      converged = true;
      break;
    }
    if (cycle_ >= options_.maxCycles) break;
    runCycle();
    ++cycle_;  // the reference's tickCycle: trace clock follows the round
  }

  ArcColoringResult result;
  result.halfCommitted = halves_.halfCommitted();
  result.colors = halves_.takeMerged();
  const net::Counters counters = traffic_.fold(cycle_ * subRounds);
  result.metrics.computationRounds = cycle_;
  result.metrics.commRounds = counters.commRounds;
  result.metrics.broadcasts = counters.broadcasts;
  result.metrics.messagesDelivered = counters.messagesDelivered;
  result.metrics.bitsDelivered = counters.bitsDelivered;
  result.metrics.maxMessageBits = counters.maxMessageBits;
  result.metrics.converged = converged;
  return result;
}

ArcColoringResult colorArcsDima2EdBitPlane(const graph::Digraph& d,
                                           const Dima2EdOptions& options) {
  BitPlaneDima2Ed engine(d, options);
  return engine.run();
}

}  // namespace dima::coloring
