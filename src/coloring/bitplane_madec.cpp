#include <cstring>

#include "src/coloring/bitplane_engines.hpp"
#include "src/net/message.hpp"
#include "src/support/assert.hpp"

// dimalint: hot-path — no std::function, no per-message allocation.

namespace dima::coloring {

namespace {

using bp::forEachBitIn;
using bp::forPlaneWords;
using bp::Word;
using graph::kNoVertex;
using net::NodeId;

std::uint64_t inviteBits(NodeId invitee, Color proposed) {
  return net::ColorWire{net::WireKind::Invite, invitee, proposed}.wireBits();
}
std::uint64_t responseBits(NodeId target, Color color) {
  return net::ColorWire{net::WireKind::Response, target, color}.wireBits();
}
std::uint64_t announceBits(Color color) {
  return net::ColorWire{net::WireKind::ColorAnnounce, kNoVertex, color}
      .wireBits();
}

}  // namespace

BitPlaneMadec::BitPlaneMadec(const graph::Graph& g,
                             const MadecOptions& options)
    : g_(&g),
      options_(options),
      pool_(options.pool),
      trace_(options.trace),
      planes_(g.numVertices()),
      rng_(g.numVertices()),
      off_(bp::incidenceOffsets(g)),
      // An edge {u,v} is colored with the lowest index clear in
      // used(u) ∪ used(v); both sets have ≤ deg−1 entries at that moment,
      // so every color index is < 2Δ−1 — a fixed row stride suffices.
      own_(g.numVertices(),
           std::max<std::size_t>(
               1, (2 * g.maxDegree() + bp::kWordBits - 1) / bp::kWordBits)),
      halves_(g.numEdges(), kNoColor),
      uncolored_(off_.back(), 0),
      uncoloredCount_(g.numVertices(), 0),
      invitee_(g.numVertices(), kNoVertex),
      inviteIdx_(g.numVertices(), 0),
      proposed_(g.numVertices(), kNoColor),
      keptFrom_(off_.back(), kNoVertex),
      keptColor_(off_.back(), kNoColor),
      keptCount_(g.numVertices(), 0),
      acceptedFrom_(g.numVertices(), kNoVertex),
      acceptedColor_(g.numVertices(), kNoColor),
      pendingAnnounce_(g.numVertices(), kNoColor),
      traffic_(pool_ != nullptr ? pool_->workerCount() : 1) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  DIMA_REQUIRE(!options.faults.perturbs(),
               "the bit-plane engine computes the message plane instead of "
               "delivering it; perturbed channels need EngineKind::Reference");
  DIMA_REQUIRE(trace_ == nullptr || pool_ == nullptr,
               "tracing requires the serial executor");
  reset();
}

void BitPlaneMadec::reset() {
  cycle_ = 0;
  activeCount_ = 0;
  planes_ = bp::StatePlanes(g_->numVertices());
  own_.clearAll();
  halves_ = automata::CommitHalves<Color>(g_->numEdges(), kNoColor);
  traffic_ = bp::Traffic(pool_ != nullptr ? pool_->workerCount() : 1);
  const support::SeedSequence seq(options_.seed);
  for (NodeId u = 0; u < g_->numVertices(); ++u) {
    rng_[u] = seq.stream(u);
    const auto deg = static_cast<std::uint32_t>(g_->degree(u));
    uncoloredCount_[u] = deg;
    for (std::uint32_t i = 0; i < deg; ++i) uncolored_[off_[u] + i] = i;
    if (deg != 0) {  // isolated vertices have nothing to color
      planes_.active.set(u);
      ++activeCount_;
    }
  }
}

/// Colors the edge {u, partner} from u's side: this endpoint's commit half,
/// used-row bit, uncolored-list retirement, announce scheduling. The exact
/// replay of the reference `colorEdgeAt` (madec.cpp), minus the reference's
/// per-node heap state.
void BitPlaneMadec::colorEdgeAt(std::size_t /*shard*/, NodeId u,
                                NodeId partner, Color color) {
  const auto inc = g_->incidences(u);
  const std::size_t base = off_[u];
  const std::uint32_t cnt = uncoloredCount_[u];
  for (std::uint32_t k = 0; k < cnt; ++k) {
    const std::uint32_t idx = uncolored_[base + k];
    if (inc[idx].neighbor != partner) continue;
    Color& half = halves_.half(inc[idx].edge,
                               automata::EndpointHalf::ownedBy(u, partner));
    DIMA_ASSERT(half == kNoColor,
                "edge " << inc[idx].edge << " recolored at node " << u);
    half = color;
    DIMA_ASSERT(!own_.test(u, static_cast<std::size_t>(color)),
                "node " << u << " reused color " << color);
    own_.set(u, static_cast<std::size_t>(color));
    pendingAnnounce_[u] = color;
    uncolored_[base + k] = uncolored_[base + cnt - 1];  // eraseAtUnordered
    uncoloredCount_[u] = cnt - 1;
    if (trace_ != nullptr) {
      trace_->record(cycle_, u, net::TraceKind::EdgeColored, partner, color);
    }
    return;
  }
  DIMA_ASSERT(false, "node " << u << " has no uncolored edge to " << partner);
}

void BitPlaneMadec::runCycle() {
  planes_.beginCycle();

  // --- C: coin toss + scratch reset, one plane word at a time.
  {
    auto inviteWords = planes_.invite.mutableWords();
    auto listenWords = planes_.listen.mutableWords();
    forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                             Word word) {
      Word inviteW = 0;
      Word listenW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        invitee_[u] = kNoVertex;
        keptCount_[u] = 0;
        pendingAnnounce_[u] = kNoColor;
        const bool invitor = rng_[u].bernoulli(options_.invitorBias);
        const Word bit = Word{1} << (u % bp::kWordBits);
        (invitor ? inviteW : listenW) |= bit;
        if (trace_ != nullptr) {
          trace_->record(cycle_, u, net::TraceKind::StateChoice,
                         invitor ? 1 : 0);
        }
      });
      inviteWords[w] = inviteW;
      listenWords[w] = listenW;
    });
  }

  // --- I: pick a random uncolored edge and the lowest jointly free color.
  // The partner's row read here equals the reference's `neighborUsed`
  // snapshot: fault-free, every color a neighbor uses was announced the
  // cycle it was committed, and no row changed since the last barrier.
  forPlaneWords(planes_.invite, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId u) {
      const std::uint32_t cnt = uncoloredCount_[u];
      DIMA_ASSERT(cnt != 0, "active node with no uncolored edge");
      const std::uint32_t idx =
          uncolored_[off_[u] + rng_[u].index(cnt)];
      inviteIdx_[u] = idx;
      const NodeId v = g_->incidences(u)[idx].neighbor;
      invitee_[u] = v;
      proposed_[u] = static_cast<Color>(
          bp::kernels().firstClearPair(own_.row(u), own_.row(v),
                                       own_.stride()));
      traffic_.onBroadcast(shard, inviteBits(v, proposed_[u]), g_->degree(u));
      if (trace_ != nullptr) {
        trace_->record(cycle_, u, net::TraceKind::InviteSent, v, proposed_[u]);
      }
    });
  });

  // --- L: keep invitations naming me. Incidence lists are ascending by
  // neighbor id — the same order the reference inbox yields — so both
  // paths below build identical kept lists and the accept draw matches.
  if (pool_ == nullptr && trace_ == nullptr) {
    // Serial fast path: scatter over invitors, O(active) instead of O(m).
    forPlaneWords(planes_.invite, nullptr, [&](std::size_t, std::size_t w,
                                               Word word) {
      forEachBitIn(w, word, [&](NodeId u) {
        const NodeId v = invitee_[u];
        if (!planes_.listen.test(v)) return;
        const std::size_t slot = off_[v] + keptCount_[v]++;
        keptFrom_[slot] = u;
        keptColor_[slot] = proposed_[u];
      });
    });
  } else {
    forPlaneWords(planes_.listen, pool_, [&](std::size_t, std::size_t w,
                                             Word word) {
      forEachBitIn(w, word, [&](NodeId v) {
        for (const auto& inc : g_->incidences(v)) {
          const NodeId u = inc.neighbor;
          if (!planes_.invite.test(u) || invitee_[u] != v) continue;
          const std::size_t slot = off_[v] + keptCount_[v]++;
          keptFrom_[slot] = u;
          keptColor_[slot] = proposed_[u];
          if (trace_ != nullptr) {
            trace_->record(cycle_, v, net::TraceKind::InviteKept, u,
                           proposed_[u]);
          }
        }
      });
    });
  }

  // --- R: accept one kept invitation at random; commit the listener half.
  {
    auto respondWords = planes_.respond.mutableWords();
    auto updateWords = planes_.update.mutableWords();
    forPlaneWords(planes_.listen, pool_, [&](std::size_t shard, std::size_t w,
                                             Word word) {
      Word respondW = 0;
      Word updateW = 0;
      forEachBitIn(w, word, [&](NodeId v) {
        const std::uint32_t cnt = keptCount_[v];
        if (cnt == 0) return;
        const std::size_t slot = off_[v] + rng_[v].index(cnt);
        const NodeId from = keptFrom_[slot];
        const Color color = keptColor_[slot];
        acceptedFrom_[v] = from;
        acceptedColor_[v] = color;
        const Word bit = Word{1} << (v % bp::kWordBits);
        respondW |= bit;
        updateW |= bit;
        traffic_.onBroadcast(shard, responseBits(from, color), g_->degree(v));
        if (trace_ != nullptr) {
          trace_->record(cycle_, v, net::TraceKind::ResponseSent, from, color);
        }
        colorEdgeAt(shard, v, from, color);
      });
      respondWords[w] |= respondW;
      updateWords[w] |= updateW;
    });
  }

  // --- W: my invitation echoed back — commit the invitor half.
  {
    auto updateWords = planes_.update.mutableWords();
    forPlaneWords(planes_.invite, pool_, [&](std::size_t shard, std::size_t w,
                                             Word word) {
      Word updateW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        const NodeId v = invitee_[u];
        if (!planes_.respond.test(v) || acceptedFrom_[v] != u) return;
        DIMA_ASSERT(acceptedColor_[v] == proposed_[u],
                    "response color mismatches proposal at node " << u);
        colorEdgeAt(shard, u, v, proposed_[u]);
        updateW |= Word{1} << (u % bp::kWordBits);
      });
      updateWords[w] |= updateW;
    });
  }

  // --- E: announce the adopted color. Pure traffic — receivers' folds are
  // subsumed by the invite pass reading partner rows directly.
  forPlaneWords(planes_.update, pool_, [&](std::size_t shard, std::size_t w,
                                           Word word) {
    forEachBitIn(w, word, [&](NodeId u) {
      traffic_.onBroadcast(shard, announceBits(pendingAnnounce_[u]),
                           g_->degree(u));
    });
  });

  // --- D: retire nodes whose last edge just colored.
  {
    auto doneWords = planes_.doneNew.mutableWords();
    forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                             Word word) {
      Word doneW = 0;
      forEachBitIn(w, word, [&](NodeId u) {
        if (uncoloredCount_[u] != 0) return;
        doneW |= Word{1} << (u % bp::kWordBits);
        if (trace_ != nullptr) {
          trace_->record(cycle_, u, net::TraceKind::NodeDone);
        }
      });
      doneWords[w] = doneW;
    });
  }
  activeCount_ -= planes_.retire();
}

EdgeColoringResult BitPlaneMadec::run() {
  constexpr std::uint64_t kSubRounds = 3;  // invite, respond, announce
  bool converged = false;
  while (true) {
    if (activeCount_ == 0) {
      converged = true;
      break;
    }
    if (cycle_ >= options_.maxCycles) break;
    runCycle();
    ++cycle_;  // the reference's tickCycle: trace clock follows the round
  }

  EdgeColoringResult result;
  result.halfCommitted = halves_.halfCommitted();
  result.colors = halves_.takeMerged();
  const net::Counters counters = traffic_.fold(cycle_ * kSubRounds);
  result.metrics.computationRounds = cycle_;
  result.metrics.commRounds = counters.commRounds;
  result.metrics.broadcasts = counters.broadcasts;
  result.metrics.messagesDelivered = counters.messagesDelivered;
  result.metrics.bitsDelivered = counters.bitsDelivered;
  result.metrics.maxMessageBits = counters.maxMessageBits;
  result.metrics.converged = converged;
  return result;
}

EdgeColoringResult colorEdgesMadecBitPlane(const graph::Graph& g,
                                           const MadecOptions& options) {
  BitPlaneMadec engine(g, options);
  return engine.run();
}

}  // namespace dima::coloring
