#include "src/coloring/madec.hpp"

#include <utility>
#include <vector>

#include "src/automata/phase.hpp"
#include "src/net/async_beta.hpp"
#include "src/net/network.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

/// Wire format: invitations and responses carry the target node and the
/// proposed color; exchange announcements carry the freshly used color.
struct MadecMessage {
  enum class Kind : std::uint8_t { Invite, Response, ColorAnnounce };
  Kind kind = Kind::Invite;
  NodeId target = kNoVertex;
  Color color = kNoColor;

  /// CONGEST wire size: 2-bit kind + id + color (self-delimiting widths).
  std::uint64_t wireBits() const {
    return 2 + (target == kNoVertex ? 1 : net::bitWidth(target)) +
           (color < 0 ? 1 : net::bitWidth(static_cast<std::uint64_t>(color)));
  }
};

/// Algorithm 1 as an engine protocol (see madec.hpp for the round story).
class MadecProtocol {
 public:
  using Message = MadecMessage;

  MadecProtocol(const graph::Graph& g, const MadecOptions& options)
      : g_(&g),
        options_(options),
        sideColor_(2 * static_cast<std::size_t>(g.numEdges()), kNoColor) {
    const support::SeedSequence seq(options.seed);
    nodes_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      NodeState& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = g.degree(u);
      s.uncolored.reserve(deg);
      for (std::uint32_t i = 0; i < deg; ++i) {
        s.uncolored.push_back(i);
      }
      s.neighborUsed.resize(deg);
      s.done = deg == 0;  // isolated vertices have nothing to color
    }
  }

  int subRounds() const { return 3; }

  void beginCycle(NodeId u) {
    NodeState& s = nodes_[u];
    s.keptInvites.clear();
    s.invitee = kNoVertex;
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.newColor = kNoColor;
    if (s.done) {
      s.role = Phase::Done;
      return;
    }
    s.role = s.rng.bernoulli(options_.invitorBias) ? Phase::Invite
                                                   : Phase::Listen;
    trace(u, net::TraceKind::StateChoice,
          s.role == Phase::Invite ? 1 : 0);
  }

  void send(NodeId u, int sub, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {  // I: invite over a random uncolored edge, lowest free color.
        if (s.role != Phase::Invite) return;
        DIMA_ASSERT(!s.uncolored.empty(), "active node with no uncolored edge");
        s.inviteIdx = s.uncolored[s.rng.index(s.uncolored.size())];
        const graph::Incidence inc = g_->incidences(u)[s.inviteIdx];
        s.invitee = inc.neighbor;
        // Lowest color outside used(u) ∪ used(v) — Algorithm 1 line 11.
        s.proposed = static_cast<Color>(
            s.ownUsed.firstClearAlsoClearIn(s.neighborUsed[s.inviteIdx]));
        net.broadcast(u, Message{Message::Kind::Invite, s.invitee,
                                 s.proposed});
        trace(u, net::TraceKind::InviteSent, s.invitee, s.proposed);
        break;
      }
      case 1: {  // R: accept one kept invitation at random.
        if (s.role != Phase::Listen || s.keptInvites.empty()) return;
        const auto& [from, color] =
            s.keptInvites[s.rng.index(s.keptInvites.size())];
        net.broadcast(u, Message{Message::Kind::Response, from, color});
        trace(u, net::TraceKind::ResponseSent, from, color);
        colorEdgeAt(u, from, color);
        break;
      }
      case 2: {  // E: announce the color used this round, if any.
        if (s.newColor == kNoColor) return;
        net.broadcast(u, Message{Message::Kind::ColorAnnounce, kNoVertex,
                                 s.newColor});
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void receive(NodeId u, int sub,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {  // L: keep invitations addressed to me.
        if (s.role != Phase::Listen) return;
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Invite && env.msg.target == u) {
            // With reliable channels the proposal is fresh by construction
            // (the invitor knows used(u) exactly). Under fault injection an
            // announcement or response may have been lost, so the edge may
            // already be colored, or the proposed color may already be in
            // use here; both are vacuous in the fault-free model. (Commit
            // halves are written in sub-round 1, so this sub-round-0 read is
            // barrier-separated from every writer.)
            const graph::EdgeId e = g_->findEdge(u, env.from);
            if (e != graph::kNoEdge && edgeColor(e) == kNoColor &&
                !s.ownUsed.test(static_cast<std::size_t>(env.msg.color))) {
              s.keptInvites.push_back({env.from, env.msg.color});
              trace(u, net::TraceKind::InviteKept, env.from, env.msg.color);
            }
          }
        }
        break;
      }
      case 1: {  // W: my invitation echoed back — the pair formed.
        if (s.role != Phase::Invite || s.invitee == kNoVertex) return;
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Response &&
              env.msg.target == u && env.from == s.invitee) {
            DIMA_ASSERT(env.msg.color == s.proposed,
                        "response color " << env.msg.color
                                          << " != proposal " << s.proposed);
            colorEdgeAt(u, s.invitee, env.msg.color);
            break;
          }
        }
        break;
      }
      case 2: {  // E: fold neighbors' announcements into their used lists.
        const auto inc = g_->incidences(u);
        for (const auto& env : inbox) {
          if (env.msg.kind != Message::Kind::ColorAnnounce) continue;
          for (std::size_t i = 0; i < inc.size(); ++i) {
            if (inc[i].neighbor == env.from) {
              s.neighborUsed[i].set(static_cast<std::size_t>(env.msg.color));
              break;
            }
          }
        }
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void endCycle(NodeId u) {
    NodeState& s = nodes_[u];
    if (!s.done && s.uncolored.empty()) {
      s.done = true;
      trace(u, net::TraceKind::NodeDone);
    }
  }

  bool done(NodeId u) const { return nodes_[u].done; }

  /// Folds the two commit halves of every edge into the output coloring;
  /// the cross-endpoint agreement check lives here (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() {
    std::vector<Color> out(sideColor_.size() / 2, kNoColor);
    for (graph::EdgeId e = 0; e < out.size(); ++e) {
      const Color lo = sideColor_[2 * e];
      const Color hi = sideColor_[2 * e + 1];
      DIMA_ASSERT(lo == kNoColor || hi == kNoColor || lo == hi,
                  "edge " << e << " committed with two colors " << lo << "≠"
                          << hi);
      out[e] = lo != kNoColor ? lo : hi;
    }
    return out;
  }

  /// Edges only one endpoint committed (possible only under message loss).
  std::vector<graph::EdgeId> halfCommittedEdges() const {
    std::vector<graph::EdgeId> out;
    for (graph::EdgeId e = 0; 2 * e < sideColor_.size(); ++e) {
      if ((sideColor_[2 * e] != kNoColor) !=
          (sideColor_[2 * e + 1] != kNoColor)) {
        out.push_back(e);
      }
    }
    return out;
  }

 private:
  struct NodeState {
    support::Rng rng{0};
    Phase role = Phase::Choose;
    bool done = false;
    /// Incidence indices (into incidences(u)) of uncolored edges.
    support::SmallVector<std::uint32_t, 8> uncolored;
    DynamicBitset ownUsed;                   ///< colors on my edges
    std::vector<DynamicBitset> neighborUsed; ///< per incidence index
    // Per-round scratch:
    support::SmallVector<std::pair<NodeId, Color>, 4> keptInvites;
    NodeId invitee = kNoVertex;
    std::uint32_t inviteIdx = 0;
    Color proposed = kNoColor;
    Color newColor = kNoColor;  ///< color adopted this round (to announce)
  };

  /// Colors the edge {u, partner} from u's perspective: writes the shared
  /// output slot, retires the incidence, and schedules the announcement.
  void colorEdgeAt(NodeId u, NodeId partner, Color color) {
    NodeState& s = nodes_[u];
    const auto inc = g_->incidences(u);
    for (std::size_t k = 0; k < s.uncolored.size(); ++k) {
      const std::uint32_t idx = s.uncolored[k];
      if (inc[idx].neighbor == partner) {
        const graph::EdgeId e = inc[idx].edge;
        Color& half = sideColor_[2 * e + (u < partner ? 0 : 1)];
        DIMA_ASSERT(half == kNoColor,
                    "edge " << e << " recolored at node " << u);
        half = color;
        DIMA_ASSERT(!s.ownUsed.test(static_cast<std::size_t>(color)),
                    "node " << u << " reused color " << color);
        s.ownUsed.set(static_cast<std::size_t>(color));
        s.newColor = color;
        s.uncolored.eraseAtUnordered(k);
        trace(u, net::TraceKind::EdgeColored, partner, color);
        return;
      }
    }
    DIMA_ASSERT(false, "node " << u << " has no uncolored edge to "
                               << partner);
  }

  void trace(NodeId u, net::TraceKind kind, std::int64_t a = -1,
             std::int64_t b = -1) {
    if (options_.trace != nullptr) {
      options_.trace->record(cycle_, u, kind, a, b);
    }
  }

 public:
  /// Advances the trace clock; wired to the engine observer.
  void tickCycle() { ++cycle_; }

 private:
  /// Merged view of edge e's two commit halves; kNoColor while uncolored.
  Color edgeColor(graph::EdgeId e) const {
    return sideColor_[2 * e] != kNoColor ? sideColor_[2 * e]
                                         : sideColor_[2 * e + 1];
  }

  const graph::Graph* g_;
  MadecOptions options_;
  std::vector<NodeState> nodes_;
  /// Per-endpoint commit halves: slot 2e is written only by the lower-id
  /// endpoint of edge e, slot 2e+1 only by the higher-id one, so the
  /// parallel receive phase has a single writer per slot (the pre-arena
  /// substrate shared one slot between both endpoints — a data race under
  /// a thread-pool executor). `takeColors()` merges them after the run.
  std::vector<Color> sideColor_;
  std::uint64_t cycle_ = 0;
};

}  // namespace

EdgeColoringResult colorEdgesMadecAsync(const graph::Graph& g,
                                        const MadecOptions& options,
                                        const net::DelayModel& delays,
                                        net::AsyncRunResult* asyncStats,
                                        Synchronizer synchronizer) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  DIMA_REQUIRE(!options.faults.perturbs(),
               "the synchronizer assumes reliable links (acks would "
               "otherwise deadlock)");
  MadecProtocol proto(g, options);
  net::AsyncRunResult run;
  if (synchronizer == Synchronizer::Alpha) {
    run = net::runAlphaSynchronized(proto, g, delays, options.maxCycles);
  } else {
    const net::SpanningTree tree = net::buildSpanningTreeFlood(g, 0);
    run = net::runBetaSynchronized(proto, g, tree, delays, options.maxCycles);
  }
  if (asyncStats != nullptr) *asyncStats = run;

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.pulses;
  result.metrics.broadcasts = run.payloadMessages;  // point-to-point now
  result.metrics.messagesDelivered = run.totalMessages();
  result.metrics.converged = run.converged;
  return result;
}

EdgeColoringResult colorEdgesMadec(const graph::Graph& g,
                                   const MadecOptions& options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  MadecProtocol proto(g, options);
  net::SyncNetwork<MadecMessage> net(g, options.faults);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  const net::EngineResult run = runSyncProtocol(proto, net, engineOptions);

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace dima::coloring
