#include "src/coloring/madec.hpp"

#include <utility>
#include <vector>

#include "src/automata/core.hpp"
#include "src/automata/phase.hpp"
#include "src/coloring/bitplane_engines.hpp"
#include "src/graph/csr.hpp"
#include "src/net/async_beta.hpp"
#include "src/net/engine.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using automata::Phase;
using graph::kNoVertex;
using net::NodeId;
using support::DynamicBitset;

/// Node state: the core fields plus Algorithm 1's color bookkeeping.
struct MadecNode : automata::CoreNode {
  /// Incidence indices (into incidences(u)) of uncolored edges.
  support::SmallVector<std::uint32_t, 8> uncolored;
  DynamicBitset ownUsed;                    ///< colors on my edges
  std::vector<DynamicBitset> neighborUsed;  ///< per incidence index
  // Per-round scratch:
  support::SmallVector<std::pair<NodeId, Color>, 4> keptInvites;
  std::uint32_t inviteIdx = 0;
  Color proposed = kNoColor;
  std::pair<NodeId, Color> accepted{kNoVertex, kNoColor};
  Color pendingAnnounce = kNoColor;  ///< color adopted this round
};

/// Algorithm 1 as a policy over the shared automaton (see madec.hpp for
/// the round story, automata/core.hpp for the hook contract). The state
/// machine — role coin, invite/keep/accept/echo schedule, tracing, done
/// tracking — lives in the core; this class decides only whom to invite
/// (random uncolored edge, lowest jointly free color), which invitations
/// are keepable, and how a formed pair commits and announces its edge.
///
/// Templated on the topology like the network itself, so the mmap'd CSR
/// view (`graph::MappedGraph`) runs the protocol without materializing a
/// `graph::Graph`.
template <class Topo>
class MadecProtocolT
    : public automata::MatchingCore<MadecProtocolT<Topo>, net::ColorWire,
                                    MadecNode> {
  using Core =
      automata::MatchingCore<MadecProtocolT<Topo>, net::ColorWire, MadecNode>;
  using Core::announceSend;
  using Core::nodes_;
  using Core::trace;

 public:
  using typename Core::Message;

  MadecProtocolT(const Topo& g, const MadecOptions& options)
      : Core(g.numVertices(), options.invitorBias, options.trace),
        g_(&g),
        halves_(g.numEdges(), kNoColor) {
    const support::SeedSequence seq(options.seed);
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      MadecNode& s = nodes_[u];
      s.rng = seq.stream(u);
      const auto deg = g.degree(u);
      s.uncolored.reserve(deg);
      for (std::uint32_t i = 0; i < deg; ++i) {
        s.uncolored.push_back(i);
      }
      s.neighborUsed.resize(deg);
      s.done = deg == 0;  // isolated vertices have nothing to color
    }
  }

  void resetScratch(NodeId u) {
    MadecNode& s = nodes_[u];
    s.keptInvites.clear();
    s.inviteIdx = 0;
    s.proposed = kNoColor;
    s.pendingAnnounce = kNoColor;
  }

  // I: invite over a random uncolored edge, lowest free color.
  NodeId pickInvitee(NodeId u) {
    MadecNode& s = nodes_[u];
    DIMA_ASSERT(!s.uncolored.empty(), "active node with no uncolored edge");
    s.inviteIdx = s.uncolored[s.rng.index(s.uncolored.size())];
    // Lowest color outside used(u) ∪ used(v) — Algorithm 1 line 11.
    s.proposed = static_cast<Color>(
        s.ownUsed.firstClearAlsoClearIn(s.neighborUsed[s.inviteIdx]));
    return g_->incidences(u)[s.inviteIdx].neighbor;
  }

  Message inviteMessage(NodeId u) {
    const MadecNode& s = nodes_[u];
    return Message{net::WireKind::Invite, s.invitee, s.proposed};
  }

  bool keepInvite(NodeId u, const net::Envelope<Message>& env) {
    MadecNode& s = nodes_[u];
    // With reliable channels the proposal is fresh by construction (the
    // invitor knows used(u) exactly). Under fault injection an announcement
    // or response may have been lost, so the edge may already be colored,
    // or the proposed color may already be in use here; both are vacuous in
    // the fault-free model. (Commit halves are written in sub-round 1, so
    // this sub-round-0 read is barrier-separated from every writer.)
    const graph::EdgeId e = g_->findEdge(u, env.from);
    if (e == graph::kNoEdge || halves_.merged(e) != kNoColor ||
        s.ownUsed.test(static_cast<std::size_t>(env.msg.color))) {
      return false;
    }
    s.keptInvites.push_back({env.from, env.msg.color});
    return true;
  }

  // R: accept one kept invitation at random.
  bool chooseAccept(NodeId u) {
    MadecNode& s = nodes_[u];
    if (s.keptInvites.empty()) return false;
    s.accepted = s.keptInvites[s.rng.index(s.keptInvites.size())];
    return true;
  }

  Message acceptMessage(NodeId u) {
    const MadecNode& s = nodes_[u];
    return Message{net::WireKind::Response, s.accepted.first,
                   s.accepted.second};
  }

  void onAcceptSent(NodeId u) {
    const MadecNode& s = nodes_[u];
    colorEdgeAt(u, s.accepted.first, s.accepted.second);
  }

  void onEcho(NodeId u, const Message& msg) {
    const MadecNode& s = nodes_[u];
    DIMA_ASSERT(msg.color == s.proposed, "response color "
                                             << msg.color << " != proposal "
                                             << s.proposed);
    colorEdgeAt(u, s.invitee, msg.color);
  }

  // E: announce the color used this round, if any.
  int tailSubRounds() const { return 1; }

  template <class Net>
  void tailSend(NodeId u, int, Net& net) {
    announceSend(u, net);
  }

  Message announceMessage(NodeId u) {
    return Message{net::WireKind::ColorAnnounce, kNoVertex,
                   nodes_[u].pendingAnnounce};
  }

  // E: fold neighbors' announcements into their used lists.
  void tailReceive(NodeId u, int, net::Inbox<Message> inbox) {
    MadecNode& s = nodes_[u];
    const auto inc = g_->incidences(u);
    for (const auto& env : inbox) {
      if (env.msg.kind != net::WireKind::ColorAnnounce) continue;
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (inc[i].neighbor == env.from) {
          s.neighborUsed[i].set(static_cast<std::size_t>(env.msg.color));
          break;
        }
      }
    }
  }

  bool localWorkDone(NodeId u) const { return nodes_[u].uncolored.empty(); }

  /// Folds the two commit halves of every edge into the output coloring;
  /// the cross-endpoint agreement check lives there (serial, post-run)
  /// because during the run the halves are written concurrently.
  std::vector<Color> takeColors() const { return halves_.takeMerged(); }

  /// Edges only one endpoint committed (possible only under message loss).
  std::vector<graph::EdgeId> halfCommittedEdges() const {
    return halves_.halfCommitted();
  }

 private:
  /// Colors the edge {u, partner} from u's perspective: writes this
  /// endpoint's commit half, retires the incidence, and schedules the
  /// announcement.
  void colorEdgeAt(NodeId u, NodeId partner, Color color) {
    MadecNode& s = nodes_[u];
    const auto inc = g_->incidences(u);
    for (std::size_t k = 0; k < s.uncolored.size(); ++k) {
      const std::uint32_t idx = s.uncolored[k];
      if (inc[idx].neighbor == partner) {
        Color& half =
            halves_.half(inc[idx].edge,
                         automata::EndpointHalf::ownedBy(u, partner));
        DIMA_ASSERT(half == kNoColor,
                    "edge " << inc[idx].edge << " recolored at node " << u);
        half = color;
        DIMA_ASSERT(!s.ownUsed.test(static_cast<std::size_t>(color)),
                    "node " << u << " reused color " << color);
        s.ownUsed.set(static_cast<std::size_t>(color));
        s.pendingAnnounce = color;
        s.uncolored.eraseAtUnordered(k);
        trace(u, net::TraceKind::EdgeColored, partner, color);
        return;
      }
    }
    DIMA_ASSERT(false, "node " << u << " has no uncolored edge to "
                               << partner);
  }

  const Topo* g_;
  automata::CommitHalves<Color> halves_;
};

using MadecProtocol = MadecProtocolT<graph::Graph>;

/// The reference-substrate run, generic over the topology: the unsharded
/// slot arena for K == 1 (with fault injection), the sharded arenas plus
/// boundary-buffer exchange otherwise. A traced sharded run goes through
/// the serial engine over the sharded substrate — hook order is globally
/// ascending, so the trace stream is bit-identical to the unsharded one
/// for any partition.
template <class Topo>
EdgeColoringResult colorEdgesMadecSync(const Topo& g,
                                       const MadecOptions& options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  MadecProtocolT<Topo> proto(g, options);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options.maxCycles;
  engineOptions.pool = options.pool;
  engineOptions.shards = options.shards;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  net::EngineResult run;
  if (options.shards.count > 1) {
    DIMA_REQUIRE(!options.faults.perturbs(),
                 "sharded runs assume reliable links; run fault injection "
                 "on the unsharded reference substrate");
    net::ShardedNetwork<net::ColorWire, Topo> net(
        g, graph::makePartition(g, options.shards.partition,
                                options.shards.count));
    run = options.trace != nullptr
              ? runSyncProtocol(proto, net, engineOptions)
              : runShardedProtocol(proto, net, engineOptions);
  } else {
    net::SyncNetwork<net::ColorWire, Topo> net(g, options.faults);
    run = runSyncProtocol(proto, net, engineOptions);
  }

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.counters.commRounds;
  result.metrics.broadcasts = run.counters.broadcasts;
  result.metrics.messagesDelivered = run.counters.messagesDelivered;
  result.metrics.bitsDelivered = run.counters.bitsDelivered;
  result.metrics.maxMessageBits = run.counters.maxMessageBits;
  result.metrics.converged = run.converged;
  return result;
}

}  // namespace

EdgeColoringResult colorEdgesMadecAsync(const graph::Graph& g,
                                        const MadecOptions& options,
                                        const net::DelayModel& delays,
                                        net::AsyncRunResult* asyncStats,
                                        Synchronizer synchronizer) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  DIMA_REQUIRE(!options.faults.perturbs(),
               "the synchronizer assumes reliable links (acks would "
               "otherwise deadlock)");
  MadecProtocol proto(g, options);
  net::AsyncRunResult run;
  if (synchronizer == Synchronizer::Alpha) {
    run = net::runAlphaSynchronized(proto, g, delays, options.maxCycles);
  } else {
    const net::SpanningTree tree = net::buildSpanningTreeFlood(g, 0);
    run = net::runBetaSynchronized(proto, g, tree, delays, options.maxCycles);
  }
  if (asyncStats != nullptr) *asyncStats = run;

  EdgeColoringResult result;
  result.halfCommitted = proto.halfCommittedEdges();
  result.colors = proto.takeColors();
  result.metrics.computationRounds = run.cycles;
  result.metrics.commRounds = run.pulses;
  result.metrics.broadcasts = run.payloadMessages;  // point-to-point now
  result.metrics.messagesDelivered = run.totalMessages();
  result.metrics.converged = run.converged;
  return result;
}

EdgeColoringResult colorEdgesMadec(const graph::Graph& g,
                                   const MadecOptions& options) {
  DIMA_REQUIRE(
      options.shards.count == 1 ||
          options.engine == net::EngineKind::Reference,
      "sharding runs on the reference substrate; pick one of shards/engine");
  if (options.engine == net::EngineKind::BitPlane) {
    return colorEdgesMadecBitPlane(g, options);
  }
  return colorEdgesMadecSync(g, options);
}

EdgeColoringResult colorEdgesMadec(const graph::MappedGraph& g,
                                   const MadecOptions& options) {
  DIMA_REQUIRE(options.engine == net::EngineKind::Reference,
               "mapped CSR graphs run on the reference substrate");
  return colorEdgesMadecSync(g, options);
}

}  // namespace dima::coloring
