#pragma once

/// \file result.hpp
/// Run outputs shared by both coloring algorithms: the coloring itself plus
/// the cost metrics the paper's evaluation reports (computation rounds —
/// the x-axis driver of Figures 3–6 — and message traffic).

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/digraph.hpp"
#include "src/net/message.hpp"

namespace dima::coloring {

/// Cost accounting of one distributed run.
struct RunMetrics {
  /// Computation rounds (full automaton cycles) until global termination.
  std::uint64_t computationRounds = 0;
  /// Communication rounds = cycles × sub-rounds per cycle.
  std::uint64_t commRounds = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t messagesDelivered = 0;
  /// CONGEST accounting (net::Counters): total payload bits delivered and
  /// the largest single message — O(log n) for every protocol here.
  std::uint64_t bitsDelivered = 0;
  std::uint64_t maxMessageBits = 0;
  /// False when the engine's round cap fired first (expected only under
  /// fault injection or deliberately livelocking policies).
  bool converged = false;
};

/// Distinct colors and completeness of a color assignment.
struct PaletteSummary {
  std::size_t assigned = 0;   ///< colored items
  std::size_t uncolored = 0;  ///< items still kNoColor
  std::size_t distinct = 0;   ///< distinct colors used
  Color maxColor = kNoColor;  ///< highest index used
};
PaletteSummary summarizePalette(const std::vector<Color>& colors);

/// Result of Algorithm 1 on an undirected graph: `colors[e]` is the color of
/// edge id `e`.
struct EdgeColoringResult {
  std::vector<Color> colors;
  RunMetrics metrics;
  /// Edges whose color only one endpoint committed — possible only under
  /// message loss, where a responder's acceptance never reached the invitor
  /// (the two-generals limit). Always empty in the paper's reliable model;
  /// fault tests mask these before judging the rest of the coloring.
  std::vector<graph::EdgeId> halfCommitted;

  bool complete() const;
  /// Number of distinct colors used (the paper compares this to Δ).
  std::size_t colorsUsed() const { return summarizePalette(colors).distinct; }
};

/// Result of Algorithm 2 on a symmetric digraph: `colors[a]` is the color of
/// arc id `a`.
struct ArcColoringResult {
  std::vector<Color> colors;
  RunMetrics metrics;
  /// Arcs committed by only one endpoint (see EdgeColoringResult).
  std::vector<graph::ArcId> halfCommitted;

  bool complete() const;
  std::size_t colorsUsed() const { return summarizePalette(colors).distinct; }
};

}  // namespace dima::coloring
