#pragma once

/// \file color.hpp
/// Color indices and the shared proposal-color policy. The paper's palette
/// is conceptually unbounded ("the lowest indexed color available"); colors
/// are small dense integers allocated on demand, `kNoColor` marks an
/// uncolored edge/arc.

#include <cstddef>
#include <cstdint>

#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

using Color = std::int32_t;
inline constexpr Color kNoColor = -1;

/// How an invitor picks the color it proposes (see dima2ed.hpp for why the
/// literal lowest-free-index rule of the pseudo-code can livelock).
enum class ColorPolicy : std::uint8_t {
  ExpandingWindow,  ///< random among first (1 + failures) free colors
  LowestIndex,      ///< always the lowest free color (can livelock)
};

/// Draws a proposal color outside `forbidden`. `failures` is the number of
/// unanswered invitations on the item being proposed for; under
/// `ExpandingWindow` it widens the draw window, which starts at
/// lowest-index quality and gains almost-sure progress on every failure.
inline Color chooseProposalColor(ColorPolicy policy,
                                 const support::DynamicBitset& forbidden,
                                 std::uint32_t failures, support::Rng& rng) {
  if (policy == ColorPolicy::LowestIndex) {
    return static_cast<Color>(forbidden.firstClear());
  }
  // ExpandingWindow: uniform among the first (1 + failures) free colors.
  const std::size_t window = 1 + failures;
  support::SmallVector<std::size_t, 16> candidates;
  std::size_t c = forbidden.firstClear();
  while (candidates.size() < window) {
    candidates.push_back(c);
    // Next free color after c.
    ++c;
    while (forbidden.test(c)) ++c;
  }
  return static_cast<Color>(candidates[rng.index(candidates.size())]);
}

}  // namespace dima::coloring
