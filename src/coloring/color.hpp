#pragma once

/// \file color.hpp
/// Color indices. The paper's palette is conceptually unbounded ("the lowest
/// indexed color available"); colors are small dense integers allocated on
/// demand, `kNoColor` marks an uncolored edge/arc.

#include <cstdint>

namespace dima::coloring {

using Color = std::int32_t;
inline constexpr Color kNoColor = -1;

}  // namespace dima::coloring
