#include "src/coloring/vertex_coloring.hpp"

#include <algorithm>

#include "src/net/engine.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::coloring {

namespace {

using net::NodeId;

struct VcMessage {
  enum class Kind : std::uint8_t { Candidate, Committed };
  Kind kind = Kind::Candidate;
  Color color = kNoColor;

  /// CONGEST wire size: 1-bit kind + color.
  std::uint64_t wireBits() const {
    return 1 +
           (color < 0 ? 1 : net::bitWidth(static_cast<std::uint64_t>(color)));
  }
};

class VertexColoringProtocol {
 public:
  using Message = VcMessage;

  VertexColoringProtocol(const graph::Graph& g, std::uint64_t seed)
      : g_(&g), colors_(g.numVertices(), kNoColor) {
    const support::SeedSequence seq(seed);
    nodes_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      nodes_[u].rng = seq.stream(u);
      if (g.degree(u) == 0) {
        // Isolated vertices take color 0 immediately.
        colors_[u] = 0;
        nodes_[u].done = true;
      }
    }
  }

  int subRounds() const { return 2; }

  void beginCycle(NodeId u) {
    NodeState& s = nodes_[u];
    s.candidate = kNoColor;
    s.commit = false;
    if (s.done) return;
    // Uniform among the free colors of the local palette [0, deg(u)].
    // |taken| ≤ deg(u), so at least one of the deg(u)+1 colors is free.
    support::SmallVector<Color, 16> free;
    const auto paletteSize = g_->degree(u) + 1;
    for (std::size_t c = 0; c < paletteSize; ++c) {
      if (!s.taken.test(c)) free.push_back(static_cast<Color>(c));
    }
    DIMA_ASSERT(!free.empty(), "palette exhausted at vertex " << u);
    s.candidate = free[s.rng.index(free.size())];
  }

  void send(NodeId u, int sub, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0:
        if (!s.done) {
          net.broadcast(u, Message{Message::Kind::Candidate, s.candidate});
        }
        break;
      case 1:
        if (s.commit) {
          net.broadcast(u, Message{Message::Kind::Committed, s.candidate});
        }
        break;
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void receive(NodeId u, int sub,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {
        if (s.done) return;
        // Commit unless a lower-id neighbor proposed the same color.
        bool blocked = false;
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Candidate &&
              env.msg.color == s.candidate && env.from < u) {
            blocked = true;
            break;
          }
        }
        if (!blocked) {
          s.commit = true;
          colors_[u] = s.candidate;
          s.done = true;
        }
        break;
      }
      case 1: {
        for (const auto& env : inbox) {
          if (env.msg.kind == Message::Kind::Committed) {
            s.taken.set(static_cast<std::size_t>(env.msg.color));
          }
        }
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void endCycle(NodeId) {}
  bool done(NodeId u) const { return nodes_[u].done; }

  std::vector<Color> takeColors() { return std::move(colors_); }

 private:
  struct NodeState {
    support::Rng rng{0};
    support::DynamicBitset taken;  ///< colors committed by neighbors
    Color candidate = kNoColor;
    bool commit = false;
    bool done = false;
  };

  const graph::Graph* g_;
  std::vector<NodeState> nodes_;
  std::vector<Color> colors_;
};

}  // namespace

std::size_t VertexColoringResult::colorsUsed() const {
  support::DynamicBitset distinct;
  for (Color c : colors) {
    if (c != kNoColor) distinct.set(static_cast<std::size_t>(c));
  }
  return distinct.count();
}

VertexColoringResult colorVerticesDistributed(const graph::Graph& g,
                                              std::uint64_t seed,
                                              net::EngineOptions options) {
  VertexColoringProtocol proto(g, seed);
  net::SyncNetwork<VcMessage> net(g);
  const net::EngineResult run = runSyncProtocol(proto, net, options);
  VertexColoringResult result;
  result.colors = proto.takeColors();
  result.rounds = run.cycles;
  result.converged = run.converged;
  return result;
}

bool isProperVertexColoring(const graph::Graph& g,
                            const std::vector<Color>& colors,
                            bool allowPartial) {
  if (colors.size() != g.numVertices()) return false;
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    if (colors[v] == kNoColor && !allowPartial) return false;
  }
  return std::none_of(g.edges().begin(), g.edges().end(),
                      [&](const graph::Edge& e) {
                        return colors[e.u] != kNoColor &&
                               colors[e.u] == colors[e.v];
                      });
}

}  // namespace dima::coloring
