#pragma once

/// \file bitplane_engines.hpp
/// MaDEC and DiMa2Ed on the bit-plane automaton engine
/// (src/automata/bitplane.hpp): structure-of-arrays replays of the two
/// reference protocols, bit-identical fault-free — same colors, same
/// `RunMetrics`, same trace event sequence (the parity harness pins all
/// three; PROTOCOLS.md documents the invisibility contract).
///
/// The replay recipe, shared by both engines:
///  * automaton states are the engine's `StatePlanes`; one computation
///    round is a fixed sequence of plane passes, each pass reading only
///    state the previous barrier finished writing (the same discipline
///    that makes the reference engine's parallel executor deterministic);
///  * per-node RNG streams are the reference's streams, drawn in the same
///    per-node order, so every coin lands identically;
///  * palettes are `PaletteRows` — used/forbidden color sets as word rows —
///    and the paper's "lowest jointly free color" is one `firstClearPair`
///    kernel call instead of a per-bit scan;
///  * messages are never materialized: an inbox is an incidence scan that
///    tests the sender's plane bit, and traffic `Counters` are computed
///    with the wire formats' own `wireBits()`, one `onBroadcast` per
///    reference broadcast.
///
/// MaDEC gains one structural simplification the reference cannot make:
/// the per-node `neighborUsed` lists (O(m) bitsets maintained by the
/// announce fold) vanish, because on the fault-free model a neighbor's
/// announced colors ARE its own used-row as of the previous cycle's end —
/// the invite pass just reads the partner's row.
///
/// Most callers never name these classes: `colorEdgesMadec` /
/// `colorArcsDima2Ed` dispatch here on `options.engine ==
/// net::EngineKind::BitPlane`. The classes are exposed so the benches can
/// drive single cycles (`reset` + `runCycle`) and the parity harness can
/// poke at internals-adjacent surfaces.

// dimalint: hot-path — no std::function, no per-message allocation.

#include <cstdint>
#include <vector>

#include "src/automata/bitplane.hpp"
#include "src/automata/core.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/result.hpp"
#include "src/graph/digraph.hpp"
#include "src/graph/graph.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"

namespace dima::coloring {

namespace bp = automata::bitplane;

/// Algorithm 1 (MaDEC) as plane passes. One cycle = the reference's three
/// communication sub-rounds collapsed into seven passes:
/// begin (C: coin + scratch) → invite (I) → keep (L) → accept (R, commits
/// the listener half) → echo (W, commits the invitor half) → announce (E,
/// traffic only — see the header comment) → end (D).
class BitPlaneMadec {
 public:
  BitPlaneMadec(const graph::Graph& g, const MadecOptions& options);

  /// Rewinds to the pre-run state (same seed → same run); the benches use
  /// this to time single dense cycles without reconstructing the engine.
  void reset();

  /// One computation round over the current frontier.
  void runCycle();

  bool finished() const { return activeCount_ == 0; }
  std::uint64_t cycles() const { return cycle_; }

  /// Runs to completion (or the round cap) and folds the result exactly
  /// like the reference driver.
  EdgeColoringResult run();

 private:
  void colorEdgeAt(std::size_t shard, net::NodeId u, net::NodeId partner,
                   Color color);

  const graph::Graph* g_;
  MadecOptions options_;
  support::ThreadPool* pool_;
  net::TraceLog* trace_;
  std::uint64_t cycle_ = 0;
  std::size_t activeCount_ = 0;

  bp::StatePlanes planes_;
  std::vector<support::Rng> rng_;
  std::vector<std::size_t> off_;  ///< incidence CSR offsets
  bp::PaletteRows own_;           ///< used(u); bound: < 2Δ−1 colors
  automata::CommitHalves<Color> halves_;
  std::vector<std::uint32_t> uncolored_;  ///< CSR uncolored incidence idxs
  std::vector<std::uint32_t> uncoloredCount_;
  std::vector<net::NodeId> invitee_;
  std::vector<std::uint32_t> inviteIdx_;
  std::vector<Color> proposed_;
  std::vector<net::NodeId> keptFrom_;  ///< CSR kept invites (ascending from)
  std::vector<Color> keptColor_;
  std::vector<std::uint32_t> keptCount_;
  std::vector<net::NodeId> acceptedFrom_;
  std::vector<Color> acceptedColor_;
  std::vector<Color> pendingAnnounce_;
  bp::Traffic traffic_;
};

/// Algorithm 2 (DiMa2Ed) as plane passes, both modes. Paper mode is the
/// MaDEC pass shape plus overheard-color rows and the announce fold;
/// strict mode inserts the tentative/abort handshake as four more passes
/// (tentative-send → conflict-scan → abort-send → resolve) between echo
/// and announce, exactly mirroring the reference's tail sub-rounds.
class BitPlaneDima2Ed {
 public:
  BitPlaneDima2Ed(const graph::Digraph& d, const Dima2EdOptions& options);

  void reset();
  void runCycle();
  bool finished() const { return activeCount_ == 0; }
  std::uint64_t cycles() const { return cycle_; }

  ArcColoringResult run();

 private:
  void commitIncoming(std::size_t shard, net::NodeId u, std::uint32_t idx,
                      graph::ArcId arc, Color color);
  void commitOutgoing(std::size_t shard, net::NodeId u, std::uint32_t idx,
                      graph::ArcId arc, Color color);

  const graph::Digraph* d_;
  const graph::Graph* g_;
  Dima2EdOptions options_;
  support::ThreadPool* pool_;
  net::TraceLog* trace_;
  std::uint64_t cycle_ = 0;
  std::size_t activeCount_ = 0;

  bp::StatePlanes planes_;
  support::DynamicBitset tentative_;  ///< strict: holds a pending (arc,color)
  support::DynamicBitset abortSent_;  ///< strict: broadcast an abort this cycle
  std::vector<support::Rng> rng_;
  std::vector<std::size_t> off_;
  /// One-hop forbidden/overheard palettes; stride grows at a serial
  /// barrier after the invite pass (proposals bound every later write).
  bp::PaletteRows forbidden_;
  bp::PaletteRows overheard_;
  automata::CommitHalves<Color> halves_;
  std::vector<std::uint32_t> outUncolored_;  ///< CSR, mirrors D2Node
  std::vector<std::uint32_t> outCount_;
  std::vector<std::uint8_t> inColored_;  ///< CSR per incidence
  std::vector<std::uint32_t> inCount_;
  std::vector<std::uint32_t> failures_;  ///< CSR per out-arc
  std::vector<net::NodeId> keptFrom_;    ///< CSR kept invites
  std::vector<Color> keptColor_;
  std::vector<std::uint32_t> keptIdx_;
  std::vector<std::uint32_t> keptCount_;
  std::vector<net::NodeId> invitee_;
  std::vector<std::uint32_t> inviteIdx_;
  std::vector<Color> proposed_;
  std::vector<net::NodeId> acceptedFrom_;
  std::vector<Color> acceptedColor_;
  std::vector<std::uint32_t> acceptedIdx_;
  // Tentative state, SoA over TentativeState:
  std::vector<std::uint32_t> tentItem_;
  std::vector<Color> tentColor_;
  std::vector<std::uint32_t> tentIdx_;
  std::vector<std::uint8_t> tentAsInvitor_;
  std::vector<std::uint8_t> tentAbort_;
  std::vector<Color> pendingAnnounce_;
  /// Per-shard max proposed color this cycle; folded at the palette-growth
  /// barrier. Padded so parallel invite passes never false-share.
  struct alignas(64) ShardMax {
    Color maxProposed = kNoColor;
  };
  std::vector<ShardMax> shardMax_;
  bp::Traffic traffic_;
};

/// Entry points the reference drivers dispatch to on
/// `EngineKind::BitPlane`; equivalent to the reference functions on the
/// fault-free model (DIMA_REQUIRE enforces it).
EdgeColoringResult colorEdgesMadecBitPlane(const graph::Graph& g,
                                           const MadecOptions& options);
ArcColoringResult colorArcsDima2EdBitPlane(const graph::Digraph& d,
                                           const Dima2EdOptions& options);

}  // namespace dima::coloring
