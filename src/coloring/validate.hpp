#pragma once

/// \file validate.hpp
/// Independent checkers for every property the algorithms claim. The
/// validators share no code with the algorithms (they recompute conflicts
/// from the graph alone), so a bug in the protocol bookkeeping cannot hide
/// from them. Every test and every bench run validates its coloring.
///
/// Strong-coloring semantics (DESIGN.md §2): the paper's Definition 2 is
/// garbled, so we use the standard distance-2 notion it cites from Barrett
/// et al.: arcs `e1`, `e2` conflict iff they share an endpoint, or some edge
/// of the graph joins an endpoint of `e1` to an endpoint of `e2`
/// (equivalently, distance ≤ 2 in the line graph of the symmetric closure).
/// Antiparallel twins share both endpoints and therefore always conflict.

#include <string>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/digraph.hpp"
#include "src/graph/graph.hpp"

namespace dima::graph {
class MappedGraph;  // graph/csr.hpp
}

namespace dima::coloring {

/// Outcome of a validation; `ok()` or an explanation of the first violation.
struct Verdict {
  bool valid = true;
  std::string reason;

  static Verdict ok() { return Verdict{}; }
  static Verdict fail(std::string why) { return Verdict{false, std::move(why)}; }
  explicit operator bool() const { return valid; }
};

/// Proper edge coloring: adjacent edges differ; every edge colored.
/// `allowPartial` skips uncolored edges (used by the fault-injection tests,
/// where safety must hold even when liveness is lost).
Verdict verifyEdgeColoring(const graph::Graph& g,
                           const std::vector<Color>& colors,
                           bool allowPartial = false);

/// The same checker over a memory-mapped CSR graph (graph/csr.hpp), so
/// zero-copy runs are validated without materializing a `Graph`.
Verdict verifyEdgeColoring(const graph::MappedGraph& g,
                           const std::vector<Color>& colors,
                           bool allowPartial = false);

/// True when directed arcs `a1`, `a2` of `d` conflict under the strong
/// (distance-2) semantics above.
bool strongConflict(const graph::Digraph& d, graph::ArcId a1, graph::ArcId a2);

/// Strong directed edge coloring: no two conflicting arcs share a color;
/// every arc colored unless `allowPartial`.
Verdict verifyStrongArcColoring(const graph::Digraph& d,
                                const std::vector<Color>& colors,
                                bool allowPartial = false);

/// Counts conflicting same-colored arc pairs (0 for a valid strong
/// coloring). Used to *measure* the paper-faithful DiMa2Ed mode's residual
/// conflict rate (DESIGN.md §2 item 2).
std::size_t countStrongConflicts(const graph::Digraph& d,
                                 const std::vector<Color>& colors);

/// True when *undirected* edges `e1`, `e2` of `g` strongly conflict: they
/// share an endpoint or an edge of `g` joins their endpoint sets (the
/// channel-assignment semantics of Barrett et al., reference [2]).
bool strongEdgeConflict(const graph::Graph& g, graph::EdgeId e1,
                        graph::EdgeId e2);

/// Strong edge coloring of the undirected graph: no two conflicting edges
/// share a color; every edge colored unless `allowPartial`.
Verdict verifyStrongEdgeColoring(const graph::Graph& g,
                                 const std::vector<Color>& colors,
                                 bool allowPartial = false);

}  // namespace dima::coloring
