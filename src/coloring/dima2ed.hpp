#pragma once

/// \file dima2ed.hpp
/// Algorithm 2 of the paper: **Di**stributed **Ma**tching-based distance-**2**
/// **Ed**ge coloring of a symmetric digraph (DiMa2Ed) — the channel-assignment
/// primitive for ad-hoc wireless networks.
///
/// Round structure (paper §III-A): like Algorithm 1, but one invitation
/// colors one *directed arc* (inviter → responder); the responder colors it
/// as its incoming edge (state U_i), the inviter as its outgoing edge (U_o).
/// Every node keeps a *forbidden* color set = colors used on arcs incident
/// to itself or to any neighbor (maintained by the E-state exchange, which
/// is exactly the one-hop information a strong coloring needs for arcs
/// committed in earlier rounds). The responder additionally rejects any
/// proposal whose color appears in an *overheard* invitation not addressed
/// to it — the paper's Procedure 2-b "group b" collision check.
///
/// ## Two modes (DESIGN.md §2)
///
/// * `Mode::Paper` — faithful to the pseudo-code. The group-b check catches
///   same-round conflicts where the responder of one pair neighbors the
///   inviter of the other, but NOT inviter–inviter or responder–responder
///   adjacencies; those can commit one color on two conflicting arcs in the
///   same round. The run result exposes the residual conflicts (measured by
///   the independent validator) rather than hiding them.
///
/// * `Mode::Strict` (default) — appends a tentative/abort handshake that
///   closes every same-round case. After the W/R steps both endpoints of a
///   tentatively colored arc broadcast ⟨arc, color⟩; a tentative endpoint
///   that overhears an equal-colored tentative for a *different* arc from
///   any neighbor aborts when the other arc has the smaller id, and a final
///   abort notice keeps both endpoints consistent.
///
///   Why this is sufficient: two same-round tentatives e1 ≠ e2 with equal
///   color conflict iff some endpoint a of e1 is equal or adjacent to some
///   endpoint b of e2. Equality is impossible (a node plays one role and
///   tentatively colors at most one arc per round), so a and b are
///   neighbors: a hears b's tentative and vice versa, and both order the
///   pair by arc id. Hence in any conflicting pair the larger-id arc is
///   aborted by the endpoint that heard the smaller — so if two commits
///   survived a round and conflicted, the larger would have aborted:
///   contradiction. The endpoint that did not hear the conflict learns of
///   the abort from its partner's notice (partners are adjacent).
///
/// ## Color-choice policy (documented deviation)
///
/// Procedure 2-a says only "choose an open channel φ for v". The literal
/// lowest-free-index rule can livelock: a color free at the inviter may be
/// permanently forbidden at the responder by a two-hop arc the inviter can
/// never observe, and a deterministic inviter then proposes it forever. The
/// default `ColorPolicy::ExpandingWindow` picks uniformly among the first
/// `1 + failures(arc)` free colors, which starts at lowest-index quality and
/// widens on every failed invitation, giving almost-sure progress.
/// `ColorPolicy::LowestIndex` is kept for the ablation bench, which
/// demonstrates the livelock (bounded by maxCycles).

#include <cstdint>

#include "src/coloring/result.hpp"
#include "src/graph/digraph.hpp"
#include "src/net/chaos.hpp"
#include "src/net/engine.hpp"
#include "src/net/trace.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::coloring {

enum class Dima2EdMode : std::uint8_t {
  Paper,   ///< pseudo-code-faithful; same-round conflict holes measurable
  Strict,  ///< + tentative/abort handshake; validated conflict-free
};

// ColorPolicy (ExpandingWindow / LowestIndex) lives in color.hpp — strong
// MaDEC shares the same proposal draw (`chooseProposalColor`).

struct Dima2EdOptions {
  std::uint64_t seed = 0xd12a2edULL;
  Dima2EdMode mode = Dima2EdMode::Strict;
  ColorPolicy policy = ColorPolicy::ExpandingWindow;
  /// Invitor-coin probability when both arc directions still need work.
  double invitorBias = 0.5;
  net::ChaosModel faults;
  std::uint64_t maxCycles = 1u << 20;
  support::ThreadPool* pool = nullptr;
  net::TraceLog* trace = nullptr;
  /// Execution substrate. `BitPlane` (fault-free only) replays the run on
  /// the SoA engine — bit-identical colors, metrics and traces, pinned by
  /// the engine-parity harness.
  net::EngineKind engine = net::EngineKind::Reference;
  /// Multi-shard execution (net/engine.hpp). `count == 1` keeps the
  /// single-arena reference substrate; colors are bit-identical either way.
  /// Mutually exclusive with `engine == BitPlane` and with fault injection.
  net::ShardOptions shards;
};

/// Runs DiMa2Ed on `d` until every arc is colored (or maxCycles fires).
ArcColoringResult colorArcsDima2Ed(const graph::Digraph& d,
                                   const Dima2EdOptions& options = {});

}  // namespace dima::coloring
