#pragma once

/// \file madec.hpp
/// Algorithm 1 of the paper: **Ma**tching-based **D**istributed **E**dge
/// **C**oloring of an undirected graph.
///
/// Per computation round (automaton cycle), each active node:
///   C — tosses a fair coin: invitor (I) or listener (L);
///   I — picks one of its *uncolored* edges e(u,v) uniformly at random and
///       the lowest color outside used(u) ∪ used(v), and broadcasts the
///       invitation ⟨u→v, c⟩ (line 1.11: `live_u \ used_v`, both known
///       exactly because every new color is exchanged at round end);
///   L — keeps invitations naming it;
///   R — accepts one kept invitation uniformly at random, echoes it back,
///       and colors the edge on its side;
///   W — an invitor that hears its echo colors the edge on its side;
///   U/E — nodes that used a new color broadcast it; everyone folds the
///       announcements into per-neighbor used-color lists; nodes with no
///       uncolored edges left enter D.
///
/// Guarantees (paper §II-B, re-derived in DESIGN.md):
///  * any produced coloring is proper (validated independently after every
///    run in tests and benches);
///  * at most 2Δ−1 colors: when an edge {u,v} is colored, |used(u)| ≤ Δ−1
///    and |used(v)| ≤ Δ−1 other colors, so the lowest free index is ≤ 2Δ−2;
///  * O(Δ) computation rounds with high probability (an active node pairs
///    with probability ≥ ~1/4 per round, Proposition 1).

#include <cstdint>

#include "src/coloring/result.hpp"
#include "src/graph/graph.hpp"
#include "src/net/async.hpp"
#include "src/net/chaos.hpp"
#include "src/net/engine.hpp"
#include "src/net/trace.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::graph {
class MappedGraph;  // graph/csr.hpp — the mmap'd zero-copy topology
}

namespace dima::coloring {

struct MadecOptions {
  /// Master seed; per-node streams are derived from it (DESIGN.md §7).
  std::uint64_t seed = 0x1edc01ULL;
  /// Probability of choosing the invitor role in state C. The paper fixes
  /// 1/2; exposed for the ablation bench (Proposition 1 predicts the round
  /// constant degrades toward either extreme).
  double invitorBias = 0.5;
  /// Channel perturbations (all-reliable by default, the paper's model).
  net::ChaosModel faults;
  /// Engine round cap; runs hitting it return converged = false.
  std::uint64_t maxCycles = 1u << 20;
  /// Optional parallel executor.
  support::ThreadPool* pool = nullptr;
  /// Optional event trace (serial executor only).
  net::TraceLog* trace = nullptr;
  /// Execution substrate. `BitPlane` (fault-free only) replays the run on
  /// the SoA engine — bit-identical colors, metrics and traces, pinned by
  /// the engine-parity harness.
  net::EngineKind engine = net::EngineKind::Reference;
  /// Sharded execution (fault-free, reference substrate only): K > 1
  /// partitions the vertices and runs one arena + driver thread per shard
  /// with boundary-arc exchange — bit-identical colors, Counters and
  /// traces for any K and any partition (DESIGN.md §13).
  net::ShardOptions shards;
};

/// Runs Algorithm 1 on `g` until every edge is colored (or the round cap
/// fires, possible only under fault injection).
EdgeColoringResult colorEdgesMadec(const graph::Graph& g,
                                   const MadecOptions& options = {});

/// The same algorithm over a memory-mapped CSR graph (graph/csr.hpp) —
/// social-network-scale inputs color straight off the file image, no
/// mutable `Graph` materialized. Reference substrate only (sharding
/// encouraged); fault injection unsupported.
EdgeColoringResult colorEdgesMadec(const graph::MappedGraph& g,
                                   const MadecOptions& options = {});

/// Which synchronizer carries the protocol over the asynchronous network:
/// α (per-neighbor safety, O(m) control messages per pulse, O(1) latency)
/// or β (spanning-tree convergecast, O(n) messages, O(diameter) latency).
/// β requires a connected graph.
enum class Synchronizer : std::uint8_t { Alpha, Beta };

/// Runs Algorithm 1 on an *asynchronous* network via a synchronizer
/// (net/async.hpp, net/async_beta.hpp): the coloring is bit-identical to
/// the synchronous run with the same options, and `*asyncStats` (optional)
/// receives the true price of the paper's synchrony assumption —
/// payload/ack/control message counts and the simulated completion time
/// under random link delays. `options.pool` and `options.trace` are
/// ignored (the synchronizers are event-driven and single-threaded).
EdgeColoringResult colorEdgesMadecAsync(const graph::Graph& g,
                                        const MadecOptions& options = {},
                                        const net::DelayModel& delays = {},
                                        net::AsyncRunResult* asyncStats =
                                            nullptr,
                                        Synchronizer synchronizer =
                                            Synchronizer::Alpha);

}  // namespace dima::coloring
