#pragma once

/// \file repro.hpp
/// Replayable reproducer files for the simulation fuzzer.
///
/// A repro is a `FuzzCase` plus the outcome it pins, serialized as a
/// line-oriented text file so failures can be committed to `tests/corpus/`,
/// attached to bug reports, and replayed with `dimacol replay <file>`.
/// Serialization is byte-deterministic (fixed line order, doubles with 17
/// significant digits round-trip exactly), so the shrinker's same-seed
/// output is byte-identical across runs — pinned by tests/test_sim_fuzz.
///
/// Format (`#` starts a comment line; one directive per line):
///
///     dimacol-repro v1
///     protocol strong-madec-mutant
///     seed 42
///     max-cycles 64
///     nodes 4
///     edge 0 1
///     crash 2 7            # node, first silent comm round
///     drop 3 0 1           # scripted: round, from, to
///     dup 4 1 0
///     corrupt 5 0 1
///     drop-p 0.25          # probabilistic knobs (omitted when 0)
///     dup-p 0.1
///     corrupt-p 0.01
///     link-drop 0 1 0.5    # from, to, probability
///     chaos-seed 7
///     permute
///     churn-batches 2      # incremental protocol only
///     expect violation handshake-violation   # or: expect safe

#include <string>

#include "src/sim/fuzz.hpp"
#include "src/sim/monitor.hpp"

namespace dima::sim {

struct Repro {
  FuzzCase fuzzCase;
  bool expectViolation = false;
  /// Meaningful only when `expectViolation`: the first violation's code.
  ViolationCode expectCode = ViolationCode::IllegalEvent;
};

/// A repro pinning `outcome` as the expectation for `c`.
Repro makeRepro(const FuzzCase& c, const CaseOutcome& outcome);

/// Deterministic text rendering (format above).
std::string serializeRepro(const Repro& r);

/// Parses the format above. On failure returns false and describes the
/// problem (with its line number) in `*error`.
bool parseRepro(const std::string& text, Repro* out, std::string* error);

struct ReplayResult {
  CaseOutcome outcome;
  /// The run reproduced the pinned expectation (same safe/violation
  /// verdict; for violations, the same first-violation code).
  bool matched = false;
  std::string summary;  ///< one human-readable line
};

/// Runs the repro's case and compares against its expectation.
ReplayResult replayRepro(const Repro& r);

}  // namespace dima::sim
