#include "src/sim/fuzz.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/strong_madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/dynamic/churn.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/graph/digraph.hpp"
#include "src/net/trace.hpp"
#include "src/support/assert.hpp"
#include "src/support/rng.hpp"

namespace dima::sim {

using coloring::Color;
using coloring::kNoColor;
using graph::EdgeId;
using graph::VertexId;
using net::MessageFault;
using net::NodeId;

const char* fuzzProtocolName(FuzzProtocol p) {
  switch (p) {
    case FuzzProtocol::Madec: return "madec";
    case FuzzProtocol::Dima2Ed: return "dima2ed";
    case FuzzProtocol::StrongMadec: return "strong-madec";
    case FuzzProtocol::StrongMadecMutant: return "strong-madec-mutant";
    case FuzzProtocol::Incremental: return "incremental";
  }
  return "unknown";
}

bool fuzzProtocolFromName(const std::string& name, FuzzProtocol* out) {
  for (int i = 0; i <= static_cast<int>(FuzzProtocol::Incremental); ++i) {
    const auto p = static_cast<FuzzProtocol>(i);
    if (name == fuzzProtocolName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

graph::Graph buildCaseGraph(const FuzzCase& c) {
  std::vector<graph::Edge> edges;
  edges.reserve(c.edges.size());
  for (const auto& [a, b] : c.edges) {
    DIMA_REQUIRE(a != b, "fuzz case contains the self-loop " << a);
    DIMA_REQUIRE(a < c.numVertices && b < c.numVertices,
                 "fuzz case edge endpoint out of range");
    edges.push_back(graph::Edge{std::min(a, b), std::max(a, b)});
  }
  std::sort(edges.begin(), edges.end(),
            [](const graph::Edge& x, const graph::Edge& y) {
              return x.u != y.u ? x.u < y.u : x.v < y.v;
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return graph::Graph(c.numVertices, std::move(edges));
}

MonitorOptions monitorOptionsFor(const FuzzCase& c, const graph::Graph& g) {
  MonitorOptions o;
  o.lossy = c.chaos.lossy();
  switch (c.protocol) {
    case FuzzProtocol::Madec:
    case FuzzProtocol::Incremental:
      o.semantics = Semantics::ProperEdge;
      // MaDEC proposes the lowest color free at both endpoints, so commits
      // stay within 2Δ−1 colors even under loss (stale views are subsets).
      o.paletteBound = g.maxDegree() == 0 ? 0 : 2 * g.maxDegree() - 1;
      break;
    case FuzzProtocol::Dima2Ed:
      o.semantics = Semantics::StrongArc;
      break;
    case FuzzProtocol::StrongMadec:
    case FuzzProtocol::StrongMadecMutant:
      o.semantics = Semantics::StrongEdge;
      break;
  }
  return o;
}

namespace {

/// Communication rounds per automaton cycle (2 + tail sub-rounds).
std::uint64_t subRoundsPerCycle(FuzzProtocol p) {
  switch (p) {
    case FuzzProtocol::Madec:
    case FuzzProtocol::Incremental:
      return 3;  // invite, respond, announce
    case FuzzProtocol::Dima2Ed:
    case FuzzProtocol::StrongMadec:
    case FuzzProtocol::StrongMadecMutant:
      return 5;  // + tentative, abort
  }
  return 3;
}

void appendValidatorFailure(CaseOutcome* out, const coloring::Verdict& v) {
  if (v.valid) return;
  out->violations.push_back(Violation{ViolationCode::CommitConflict, 0,
                                      graph::kNoVertex,
                                      "post-run validator: " + v.reason});
}

CaseOutcome runStaticCase(const FuzzCase& c, const graph::Graph& g,
                          std::vector<MessageFault>* recordFired) {
  net::TraceLog log;
  InvariantMonitor monitor(g, monitorOptionsFor(c, g));
  monitor.attach(log);
  const bool lossy = c.chaos.lossy();

  CaseOutcome out;
  switch (c.protocol) {
    case FuzzProtocol::Madec: {
      coloring::MadecOptions o;
      o.seed = c.seed;
      o.faults = c.chaos;
      o.faults.recordTo = recordFired;
      o.maxCycles = c.maxCycles;
      o.trace = &log;
      const auto res = coloring::colorEdgesMadec(g, o);
      out.converged = res.metrics.converged;
      monitor.finish();
      out.violations = monitor.violations();
      if (!lossy) {
        appendValidatorFailure(
            &out, coloring::verifyEdgeColoring(g, res.colors, !out.converged));
      }
      break;
    }
    case FuzzProtocol::Dima2Ed: {
      const graph::Digraph d(g);
      coloring::Dima2EdOptions o;
      o.seed = c.seed;
      o.mode = coloring::Dima2EdMode::Strict;
      o.faults = c.chaos;
      o.faults.recordTo = recordFired;
      o.maxCycles = c.maxCycles;
      o.trace = &log;
      const auto res = coloring::colorArcsDima2Ed(d, o);
      out.converged = res.metrics.converged;
      monitor.finish();
      out.violations = monitor.violations();
      if (!lossy) {
        appendValidatorFailure(
            &out, coloring::verifyStrongArcColoring(d, res.colors,
                                                    !out.converged));
      }
      break;
    }
    case FuzzProtocol::StrongMadec:
    case FuzzProtocol::StrongMadecMutant: {
      coloring::StrongMadecOptions o;
      o.seed = c.seed;
      o.faults = c.chaos;
      o.faults.recordTo = recordFired;
      o.maxCycles = c.maxCycles;
      o.trace = &log;
      o.mutantSkipAbortEcho = c.protocol == FuzzProtocol::StrongMadecMutant;
      const auto res = coloring::colorEdgesStrongMadec(g, o);
      out.converged = res.metrics.converged;
      monitor.finish();
      out.violations = monitor.violations();
      // The mutant half-commits under conflict; treat its half-committed
      // edges as partial so the validator judges the rest.
      const bool partial = !out.converged || !res.halfCommitted.empty();
      if (!lossy) {
        appendValidatorFailure(
            &out, coloring::verifyStrongEdgeColoring(g, res.colors, partial));
      }
      break;
    }
    case FuzzProtocol::Incremental:
      DIMA_REQUIRE(false, "incremental cases run through runIncrementalCase");
  }
  out.eventsSeen = monitor.eventsSeen();
  log.setSink({});
  return out;
}

CaseOutcome runIncrementalCase(const FuzzCase& c,
                               std::vector<MessageFault>* recordFired) {
  const graph::Graph base = buildCaseGraph(c);
  dynamic::DynamicGraph dg(base);
  net::TraceLog log;

  dynamic::RecolorOptions ro;
  ro.seed = c.seed;
  ro.faults = c.chaos;
  ro.faults.recordTo = recordFired;
  ro.maxCycles = c.maxCycles;
  ro.trace = &log;
  dynamic::IncrementalRecolorer rec(dg, ro);

  CaseOutcome out;
  out.converged = true;
  std::size_t pass = 0;

  const auto monitoredRepair = [&]() {
    std::vector<EdgeId> denseToOverlay;
    const graph::Graph snap = dg.snapshot(&denseToOverlay);
    InvariantMonitor monitor(snap, monitorOptionsFor(c, snap));
    monitor.attach(log);
    // Seed the baseline this repair starts from: live colored edges whose
    // color still fits the degree budget (the rest are evicted and
    // recolored inside repair(), so they are commits the monitor will see).
    for (EdgeId e = 0; e < snap.numEdges(); ++e) {
      const Color col = rec.colors()[denseToOverlay[e]];
      if (col == kNoColor) continue;
      const graph::Edge ed = snap.edges()[e];
      const std::size_t budget = snap.degree(ed.u) + snap.degree(ed.v) - 2;
      if (static_cast<std::size_t>(col) <= budget) monitor.seedCommit(e, col);
    }
    const dynamic::RepairStats stats = rec.repair();
    monitor.finish();
    log.setSink({});
    out.converged = out.converged && stats.converged;
    out.eventsSeen += monitor.eventsSeen();
    for (Violation v : monitor.violations()) {
      std::ostringstream os;
      os << v.detail << " [repair pass " << pass << ']';
      v.detail = os.str();
      out.violations.push_back(std::move(v));
    }
    ++pass;
  };

  monitoredRepair();  // initial coloring

  dynamic::ChurnOptions co;
  co.seed = support::mix64(c.seed, 0xc402u);
  co.opsPerBatch = 2;
  dynamic::EventStream stream(co);
  for (std::size_t i = 0; i < c.churnBatches; ++i) {
    const dynamic::ChurnBatch batch = stream.nextBatch(dg);
    rec.applyBatch(batch);
    monitoredRepair();
  }

  if (!c.chaos.lossy() && out.converged) {
    appendValidatorFailure(&out,
                           dynamic::verifyDynamicColoring(dg, rec.colors()));
  }
  return out;
}

}  // namespace

CaseOutcome runCase(const FuzzCase& c,
                    std::vector<MessageFault>* recordFired) {
  if (c.protocol == FuzzProtocol::Incremental) {
    return runIncrementalCase(c, recordFired);
  }
  return runStaticCase(c, buildCaseGraph(c), recordFired);
}

// -- Exhaustive enumeration ------------------------------------------------

SweepReport exhaustiveSweep(const std::vector<FuzzCase>& bases,
                            const SweepOptions& options) {
  SweepReport report;
  for (const FuzzCase& base : bases) {
    FuzzCase t = base;
    t.chaos = net::ChaosModel{};
    t.maxCycles = options.maxCycles;
    const graph::Graph g = buildCaseGraph(t);
    const std::uint64_t horizon =
        options.cyclesHorizon * subRoundsPerCycle(t.protocol);

    std::vector<MessageFault> points;
    for (const graph::Edge& e : g.edges()) {
      for (std::uint64_t r = 0; r < horizon; ++r) {
        points.push_back({MessageFault::Kind::Drop, r, e.u, e.v});
        points.push_back({MessageFault::Kind::Drop, r, e.v, e.u});
      }
    }

    std::size_t patterns = 0;
    const auto runPattern = [&](const std::vector<MessageFault>& script,
                                const std::vector<net::CrashEvent>& crashes) {
      ++patterns;
      ++report.casesRun;
      t.chaos.script = script;
      t.chaos.crashes = crashes;
      const CaseOutcome out = runCase(t);
      if (!out.safe() && report.failures.size() < options.maxFailures) {
        report.failures.push_back(SweepFailure{t, out});
      }
    };

    runPattern({}, {});  // fault-free baseline
    if (options.maxScriptedDrops >= 1) {
      for (const MessageFault& p : points) runPattern({p}, {});
    }
    if (options.maxScriptedDrops >= 2) {
      for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
          runPattern({points[i], points[j]}, {});
        }
      }
    }
    if (options.crashes) {
      for (NodeId v = 0; v < g.numVertices(); ++v) {
        for (std::uint64_t r = 0; r < horizon; ++r) {
          runPattern({}, {net::CrashEvent{v, r}});
          if (!options.crashDropProducts) continue;
          for (const MessageFault& p : points) {
            runPattern({p}, {net::CrashEvent{v, r}});
          }
        }
      }
    }
    report.patterns = std::max(report.patterns, patterns);
  }
  return report;
}

// -- Seeded random search --------------------------------------------------

namespace {

FuzzCase drawRandomCase(const RandomFuzzOptions& options, std::size_t iter) {
  support::Rng rng(support::mix64(options.seed, 0x8a2fu ^ iter));
  FuzzCase c;
  c.protocol = options.protocols[rng.index(options.protocols.size())];
  c.numVertices = 2 + rng.index(options.maxVertices - 1);
  const double density = 0.25 + 0.25 * static_cast<double>(rng.index(3));
  for (VertexId u = 0; u < c.numVertices; ++u) {
    for (VertexId v = u + 1; v < c.numVertices; ++v) {
      if (rng.bernoulli(density)) c.edges.emplace_back(u, v);
    }
  }
  if (c.edges.empty()) c.edges.emplace_back(0, 1);
  c.seed = support::mix64(options.seed, 2 * iter + 1);
  c.maxCycles = options.maxCycles;
  c.chaos.seed = support::mix64(c.seed, 0xfau);
  // Chaos style: reliable, uniform loss, per-link loss, crashes, loss +
  // duplication, or adversarial inbox order (possibly lossy too). Payload
  // corruption is excluded on protocol runs (file comment).
  switch (rng.index(6)) {
    case 0:
      break;
    case 1:
      c.chaos.dropProbability = 0.05 + 0.1 * static_cast<double>(rng.index(4));
      break;
    case 2:
      for (const auto& [u, v] : c.edges) {
        if (rng.bernoulli(0.3)) {
          c.chaos.linkDrops.push_back(net::LinkDrop{
              u, v, 0.1 + 0.2 * static_cast<double>(rng.index(3))});
        }
        if (rng.bernoulli(0.3)) {
          c.chaos.linkDrops.push_back(net::LinkDrop{
              v, u, 0.1 + 0.2 * static_cast<double>(rng.index(3))});
        }
      }
      break;
    case 3: {
      const std::size_t k = 1 + rng.index(2);
      for (std::size_t i = 0; i < k; ++i) {
        c.chaos.crashes.push_back(net::CrashEvent{
            static_cast<NodeId>(rng.index(c.numVertices)), rng.index(12)});
      }
      break;
    }
    case 4:
      c.chaos.dropProbability = 0.05 + 0.1 * static_cast<double>(rng.index(3));
      c.chaos.duplicateProbability =
          0.05 + 0.1 * static_cast<double>(rng.index(3));
      break;
    default:
      c.chaos.permuteInboxes = true;
      if (rng.bernoulli(0.5)) c.chaos.dropProbability = 0.1;
      break;
  }
  if (c.protocol == FuzzProtocol::Incremental) {
    c.churnBatches = rng.index(3);
  }
  return c;
}

}  // namespace

RandomFuzzResult randomFuzz(const RandomFuzzOptions& options) {
  DIMA_REQUIRE(!options.protocols.empty(), "randomFuzz without protocols");
  DIMA_REQUIRE(options.maxVertices >= 2, "randomFuzz needs >= 2 vertices");
  RandomFuzzResult result;
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const FuzzCase c = drawRandomCase(options, iter);
    const CaseOutcome out = runCase(c);
    ++result.casesRun;
    if (out.safe()) continue;
    ++result.failures;
    if (result.failures == 1) {
      result.firstFailure = c;
      result.firstOutcome = out;
    }
  }
  return result;
}

// -- Shrinking -------------------------------------------------------------

namespace {

bool reproduces(const FuzzCase& c, ViolationCode code, CaseOutcome* out,
                std::size_t* runs) {
  ++*runs;
  CaseOutcome o = runCase(c);
  if (o.safe() || o.violations.front().code != code) return false;
  *out = std::move(o);
  return true;
}

/// Removes vertex `v`: incident edges and chaos entries referencing it are
/// dropped, higher vertex ids shift down by one.
FuzzCase withoutVertex(const FuzzCase& c, VertexId v) {
  const auto remap = [v](VertexId x) {
    return x > v ? x - 1 : x;
  };
  FuzzCase out = c;
  out.numVertices = c.numVertices - 1;
  out.edges.clear();
  for (const auto& [a, b] : c.edges) {
    if (a == v || b == v) continue;
    out.edges.emplace_back(remap(a), remap(b));
  }
  out.chaos.linkDrops.clear();
  for (const net::LinkDrop& l : c.chaos.linkDrops) {
    if (l.from == v || l.to == v) continue;
    out.chaos.linkDrops.push_back(
        net::LinkDrop{remap(l.from), remap(l.to), l.dropProbability});
  }
  out.chaos.crashes.clear();
  for (const net::CrashEvent& e : c.chaos.crashes) {
    if (e.node == v) continue;
    out.chaos.crashes.push_back(net::CrashEvent{remap(e.node), e.round});
  }
  out.chaos.script.clear();
  for (const MessageFault& f : c.chaos.script) {
    if (f.from == v || f.to == v) continue;
    out.chaos.script.push_back(
        MessageFault{f.kind, f.round, remap(f.from), remap(f.to)});
  }
  return out;
}

bool probabilistic(const net::ChaosModel& chaos) {
  return chaos.dropProbability > 0.0 || chaos.duplicateProbability > 0.0 ||
         chaos.corruptProbability > 0.0 || !chaos.linkDrops.empty();
}

}  // namespace

ShrinkResult shrinkFailure(const FuzzCase& failing) {
  ShrinkResult r;
  CaseOutcome cur = runCase(failing);
  ++r.runsUsed;
  DIMA_REQUIRE(!cur.safe(), "shrinkFailure requires a failing case");
  r.code = cur.violations.front().code;
  FuzzCase best = failing;
  CaseOutcome out;

  // Greedy vertex removal to a fixpoint (scan restarts on success so the
  // result is independent of incidental id shifts).
  bool progress = true;
  while (progress && best.numVertices > 1) {
    progress = false;
    for (VertexId v = 0; v < best.numVertices; ++v) {
      const FuzzCase cand = withoutVertex(best, v);
      if (reproduces(cand, r.code, &out, &r.runsUsed)) {
        best = cand;
        cur = std::move(out);
        progress = true;
        break;
      }
    }
  }

  // Greedy edge removal.
  progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < best.edges.size(); ++i) {
      FuzzCase cand = best;
      cand.edges.erase(cand.edges.begin() +
                       static_cast<std::ptrdiff_t>(i));
      if (reproduces(cand, r.code, &out, &r.runsUsed)) {
        best = std::move(cand);
        cur = std::move(out);
        progress = true;
        break;
      }
    }
  }

  // Probabilistic → scripted: replay once recording which faults fired,
  // then try the recorded script with every probability zeroed. The
  // scripted form is what ddmin below can bisect.
  if (probabilistic(best.chaos)) {
    std::vector<MessageFault> fired;
    runCase(best, &fired);
    ++r.runsUsed;
    FuzzCase cand = best;
    cand.chaos.dropProbability = 0.0;
    cand.chaos.duplicateProbability = 0.0;
    cand.chaos.corruptProbability = 0.0;
    cand.chaos.linkDrops.clear();
    cand.chaos.script = std::move(fired);
    if (reproduces(cand, r.code, &out, &r.runsUsed)) {
      best = std::move(cand);
      cur = std::move(out);
    }
  }

  // ddmin over the script: try the empty script, then remove chunks of
  // shrinking size until 1-minimal.
  if (!best.chaos.script.empty()) {
    FuzzCase cand = best;
    cand.chaos.script.clear();
    if (reproduces(cand, r.code, &out, &r.runsUsed)) {
      best = std::move(cand);
      cur = std::move(out);
    }
  }
  if (best.chaos.script.size() >= 2) {
    std::size_t chunks = 2;
    while (true) {
      const std::vector<MessageFault>& script = best.chaos.script;
      const std::size_t chunkSize = (script.size() + chunks - 1) / chunks;
      bool reduced = false;
      for (std::size_t start = 0; start < script.size();
           start += chunkSize) {
        FuzzCase cand = best;
        cand.chaos.script.clear();
        for (std::size_t i = 0; i < script.size(); ++i) {
          if (i >= start && i < start + chunkSize) continue;
          cand.chaos.script.push_back(script[i]);
        }
        if (reproduces(cand, r.code, &out, &r.runsUsed)) {
          best = std::move(cand);
          cur = std::move(out);
          chunks = std::max<std::size_t>(chunks - 1, 2);
          reduced = true;
          break;
        }
      }
      if (best.chaos.script.size() < 2) break;
      if (!reduced) {
        if (chunks >= best.chaos.script.size()) break;
        chunks = std::min(chunks * 2, best.chaos.script.size());
      }
    }
  }

  // Crash-list minimization: all gone, then one at a time.
  if (!best.chaos.crashes.empty()) {
    FuzzCase cand = best;
    cand.chaos.crashes.clear();
    if (reproduces(cand, r.code, &out, &r.runsUsed)) {
      best = std::move(cand);
      cur = std::move(out);
    }
  }
  progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < best.chaos.crashes.size(); ++i) {
      FuzzCase cand = best;
      cand.chaos.crashes.erase(cand.chaos.crashes.begin() +
                               static_cast<std::ptrdiff_t>(i));
      if (reproduces(cand, r.code, &out, &r.runsUsed)) {
        best = std::move(cand);
        cur = std::move(out);
        progress = true;
        break;
      }
    }
  }

  // Drop the inbox permutation and trailing churn when not needed.
  if (best.chaos.permuteInboxes) {
    FuzzCase cand = best;
    cand.chaos.permuteInboxes = false;
    if (reproduces(cand, r.code, &out, &r.runsUsed)) {
      best = std::move(cand);
      cur = std::move(out);
    }
  }
  while (best.churnBatches > 0) {
    FuzzCase cand = best;
    cand.churnBatches = best.churnBatches - 1;
    if (!reproduces(cand, r.code, &out, &r.runsUsed)) break;
    best = std::move(cand);
    cur = std::move(out);
  }

  r.minimized = std::move(best);
  r.outcome = std::move(cur);
  return r;
}

}  // namespace dima::sim
