#pragma once

/// \file monitor.hpp
/// `InvariantMonitor`: an online checker of the Fig. 1 automaton safety
/// catalog, subscribed to `MatchingCore` trace events via the `TraceLog`
/// sink. While a protocol runs it rebuilds, per computation cycle, what
/// every node claimed to do and cross-checks the claims against each other
/// and against the topology:
///
///  * **Legal state walks** — events must follow the C → I/L → R/W → U/E
///    → D schedule: a node announces its role (C) before acting, invitors
///    never keep or answer invitations, listeners never invite, responses
///    require a kept invitation, commits require the role's pairing step,
///    and a tentative abort excludes a commit in the same cycle.
///  * **At-most-one-partner** — every response must echo an invitation
///    actually addressed to the responder this cycle, and a node commits at
///    most one item per cycle.
///  * **Handshake exclusivity (lower item id wins)** — when two same-cycle
///    tentatives carry equal colors and some holder of one neighbors a
///    holder of the other, the higher item must abort, not commit.
///    (Extended TentativeSet events power this; checked on reliable runs —
///    under message loss the conflicting tentative may legitimately never
///    arrive.)
///  * **Monotone done-set** — after NodeDone a node stays silent forever.
///  * **Proper-coloring-prefix** — the committed items form, at every cycle
///    boundary, a partial coloring with no conflict under the protocol's
///    semantics (edge-adjacent, strong undirected, or strong directed), no
///    node ever reuses one of its own committed colors, the two halves of a
///    committed item agree, and (optionally) every color respects the
///    2Δ−1 palette bound.
///
/// **The lossy relaxation.** Under message-losing chaos two safety
/// fictions are unavoidable (the two-generals limit, see PROTOCOLS.md
/// §11): an item can end up half-committed, and one-hop color views go
/// stale, which breaks distance-2 (but never same-endpoint) properness.
/// With `MonitorOptions::lossy` set, conflict checks are restricted to
/// fully-committed items, the strong semantics fall back to
/// endpoint-sharing conflicts, and the handshake check is skipped — the
/// per-node color-reuse and state-walk checks stay on, because local
/// bookkeeping owes nothing to the channel.

#include <cstdint>
#include <string>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/digraph.hpp"
#include "src/graph/graph.hpp"
#include "src/net/trace.hpp"

namespace dima::sim {

/// Which conflict notion the committed prefix is checked under.
enum class Semantics : std::uint8_t {
  ProperEdge,  ///< MaDEC / incremental repair: adjacent edges differ
  StrongEdge,  ///< strong MaDEC: undirected distance-2 (Barrett et al.)
  StrongArc,   ///< DiMa2Ed: directed distance-2 over the symmetric digraph
};

enum class ViolationCode : std::uint8_t {
  IllegalEvent,        ///< event outside the legal automaton walk
  PairingViolation,    ///< response without the matching same-cycle invite
  DoneRegression,      ///< activity from a node after its NodeDone
  CommitConflict,      ///< coloring-prefix conflict under the semantics
  HalfCommitMismatch,  ///< an item's two halves committed different colors
  ColorReuse,          ///< a node committed one of its own colors twice
  HandshakeViolation,  ///< higher item survived an adjacent equal tentative
  PaletteOverflow,     ///< committed color outside the 2Δ−1 budget
};

const char* violationCodeName(ViolationCode code);
/// Inverse of `violationCodeName`; false when `name` matches no code.
bool violationCodeFromName(const std::string& name, ViolationCode* out);

struct Violation {
  ViolationCode code = ViolationCode::IllegalEvent;
  std::uint64_t cycle = 0;
  net::NodeId node = graph::kNoVertex;
  std::string detail;

  std::string toString() const;
};

struct MonitorOptions {
  Semantics semantics = Semantics::ProperEdge;
  /// Message-losing chaos is in play: apply the lossy relaxation above.
  bool lossy = false;
  /// When > 0, every committed color must be < `paletteBound` (pass 2Δ−1
  /// for MaDEC; leave 0 for the expanding-window strong protocols, whose
  /// palette is unbounded by design).
  std::size_t paletteBound = 0;
  /// Collection stops after this many violations (the first is what the
  /// fuzzer shrinks on; the rest are context).
  std::size_t maxViolations = 16;
};

/// One monitor observes one protocol run over one fixed topology. Attach
/// it to the `TraceLog` passed to the protocol, run, then call `finish()`
/// to flush the final cycle. Not copyable/movable: the sink installed by
/// `attach` captures `this`.
class InvariantMonitor {
 public:
  InvariantMonitor(const graph::Graph& g, MonitorOptions options = {});
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Subscribes this monitor to `log` (installs the sink and opts into
  /// extended events). The log must not outlive the monitor with the sink
  /// still installed.
  void attach(net::TraceLog& log);

  /// Registers a pre-existing full commit (both halves) — the baseline
  /// coloring a dynamic repair pass starts from. Call before the run.
  void seedCommit(graph::EdgeId edge, coloring::Color color);

  /// Flushes the last open cycle's cross-checks. Call after the run.
  void finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t eventsSeen() const { return eventsSeen_; }

  /// Multi-line rendering of every violation (empty string when ok).
  std::string report() const;

 private:
  /// What one node claimed during the cycle being assembled.
  struct NodeCycle {
    std::uint64_t stamp = 0;  ///< cycle + 1 this record belongs to
    int role = -1;            ///< 1 invitor, 0 listener, -1 no StateChoice
    bool inviteSent = false;
    bool responseSent = false;
    bool tentativeSet = false;
    bool committed = false;
    bool aborted = false;
    std::vector<net::NodeId> keptFrom;  ///< senders of kept invitations
    net::NodeId inviteTarget = graph::kNoVertex;
    net::NodeId responseTarget = graph::kNoVertex;
    std::uint32_t tentItem = net::kNoWireItem;
  };

  /// Commit registry entry: the two endpoint halves of one item.
  struct ItemCommit {
    coloring::Color half[2] = {coloring::kNoColor, coloring::kNoColor};
    bool inConflictSet = false;

    bool any() const { return half[0] != coloring::kNoColor ||
                              half[1] != coloring::kNoColor; }
    bool full() const { return half[0] != coloring::kNoColor &&
                               half[1] != coloring::kNoColor; }
    coloring::Color color() const {
      return half[0] != coloring::kNoColor ? half[0] : half[1];
    }
  };

  struct PendingTentative {
    net::NodeId node;
    std::uint32_t item;
    coloring::Color color;
  };

  void onEvent(const net::TraceEvent& e);
  void flushCycle();
  void addViolation(ViolationCode code, std::uint64_t cycle, net::NodeId node,
                    std::string detail);
  NodeCycle& slot(net::NodeId node);
  /// Item id + endpoint half for an EdgeColored event; false = malformed.
  bool resolveCommit(const net::TraceEvent& e, std::uint32_t* item,
                     bool* secondHalf);
  /// Do items `a` and `b` conflict under the (possibly relaxed) semantics?
  bool itemsConflict(std::uint32_t a, std::uint32_t b) const;
  bool itemsShareEndpoint(std::uint32_t a, std::uint32_t b) const;

  const graph::Graph* g_;
  graph::Digraph digraph_;  ///< built only for Semantics::StrongArc
  MonitorOptions options_;

  std::uint64_t cycle_ = 0;
  std::size_t eventsSeen_ = 0;
  std::vector<NodeCycle> nodeCycles_;
  std::vector<net::NodeId> activeNodes_;       // nodes with events this cycle
  std::vector<std::uint8_t> done_;
  std::vector<ItemCommit> items_;
  std::vector<std::uint32_t> conflictSet_;     // items participating in checks
  std::vector<std::uint32_t> touchedItems_;    // items committed this cycle
  std::vector<PendingTentative> tentatives_;   // this cycle's TentativeSet
  std::vector<std::vector<coloring::Color>> nodeUsed_;
  std::vector<Violation> violations_;
};

}  // namespace dima::sim
