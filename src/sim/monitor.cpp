#include "src/sim/monitor.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/coloring/validate.hpp"
#include "src/support/assert.hpp"

namespace dima::sim {

using coloring::Color;
using coloring::kNoColor;
using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using net::NodeId;
using net::TraceEvent;
using net::TraceKind;

const char* violationCodeName(ViolationCode code) {
  switch (code) {
    case ViolationCode::IllegalEvent: return "illegal-event";
    case ViolationCode::PairingViolation: return "pairing-violation";
    case ViolationCode::DoneRegression: return "done-regression";
    case ViolationCode::CommitConflict: return "commit-conflict";
    case ViolationCode::HalfCommitMismatch: return "half-commit-mismatch";
    case ViolationCode::ColorReuse: return "color-reuse";
    case ViolationCode::HandshakeViolation: return "handshake-violation";
    case ViolationCode::PaletteOverflow: return "palette-overflow";
  }
  return "unknown";
}

bool violationCodeFromName(const std::string& name, ViolationCode* out) {
  for (int i = 0; i <= static_cast<int>(ViolationCode::PaletteOverflow); ++i) {
    const auto code = static_cast<ViolationCode>(i);
    if (name == violationCodeName(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

std::string Violation::toString() const {
  std::ostringstream os;
  os << "cycle " << cycle << ": node " << node << ' '
     << violationCodeName(code) << " (" << detail << ')';
  return os.str();
}

InvariantMonitor::InvariantMonitor(const graph::Graph& g,
                                   MonitorOptions options)
    : g_(&g), options_(options) {
  const std::size_t n = g.numVertices();
  nodeCycles_.resize(n);
  done_.assign(n, 0);
  nodeUsed_.resize(n);
  const std::size_t items = options_.semantics == Semantics::StrongArc
                                ? g.numEdges() * 2
                                : g.numEdges();
  items_.resize(items);
  if (options_.semantics == Semantics::StrongArc) {
    digraph_ = graph::Digraph(g);
  }
}

void InvariantMonitor::attach(net::TraceLog& log) {
  log.enableExtended();
  log.setSink([this](const TraceEvent& e) { onEvent(e); });
}

void InvariantMonitor::seedCommit(EdgeId edge, Color color) {
  DIMA_REQUIRE(options_.semantics != Semantics::StrongArc,
               "seedCommit takes undirected edge ids");
  DIMA_REQUIRE(edge < items_.size(), "seedCommit: edge out of range");
  ItemCommit& item = items_[edge];
  item.half[0] = color;
  item.half[1] = color;
  if (!item.inConflictSet) {
    item.inConflictSet = true;
    conflictSet_.push_back(edge);
  }
  const graph::Edge e = g_->edges()[edge];
  nodeUsed_[e.u].push_back(color);
  nodeUsed_[e.v].push_back(color);
}

void InvariantMonitor::finish() { flushCycle(); }

std::string InvariantMonitor::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += v.toString();
    out += '\n';
  }
  return out;
}

void InvariantMonitor::addViolation(ViolationCode code, std::uint64_t cycle,
                                    NodeId node, std::string detail) {
  if (violations_.size() >= options_.maxViolations) return;
  violations_.push_back(Violation{code, cycle, node, std::move(detail)});
}

InvariantMonitor::NodeCycle& InvariantMonitor::slot(NodeId node) {
  NodeCycle& s = nodeCycles_[node];
  if (s.stamp != cycle_ + 1) {
    s = NodeCycle{};
    s.stamp = cycle_ + 1;
    activeNodes_.push_back(node);
  }
  return s;
}

bool InvariantMonitor::resolveCommit(const TraceEvent& e, std::uint32_t* item,
                                     bool* secondHalf) {
  if (options_.semantics == Semantics::StrongArc) {
    if (e.a < 0 || static_cast<std::size_t>(e.a) >= digraph_.numArcs()) {
      return false;
    }
    const auto arcId = static_cast<graph::ArcId>(e.a);
    const graph::Arc arc = digraph_.arc(arcId);
    if (e.node != arc.from && e.node != arc.to) return false;
    *item = arcId;
    // DiMa2Ed writes the origin's half first, the target's second.
    *secondHalf = e.node == arc.to;
    return true;
  }
  if (e.a < 0 || static_cast<std::size_t>(e.a) >= g_->numVertices()) {
    return false;
  }
  const auto partner = static_cast<NodeId>(e.a);
  const EdgeId edge = g_->findEdge(e.node, partner);
  if (edge == kNoEdge) return false;
  *item = edge;
  *secondHalf = e.node > partner;
  return true;
}

bool InvariantMonitor::itemsShareEndpoint(std::uint32_t a,
                                          std::uint32_t b) const {
  if (options_.semantics == Semantics::StrongArc) {
    const graph::Arc x = digraph_.arc(a);
    const graph::Arc y = digraph_.arc(b);
    return x.from == y.from || x.from == y.to || x.to == y.from ||
           x.to == y.to;
  }
  const graph::Edge x = g_->edges()[a];
  const graph::Edge y = g_->edges()[b];
  return x.u == y.u || x.u == y.v || x.v == y.u || x.v == y.v;
}

bool InvariantMonitor::itemsConflict(std::uint32_t a, std::uint32_t b) const {
  switch (options_.semantics) {
    case Semantics::ProperEdge:
      return itemsShareEndpoint(a, b);
    case Semantics::StrongEdge:
      // Under loss, stale one-hop views excuse distance-2 conflicts but
      // never same-endpoint ones (PROTOCOLS.md §11).
      return options_.lossy ? itemsShareEndpoint(a, b)
                            : coloring::strongEdgeConflict(*g_, a, b);
    case Semantics::StrongArc:
      return options_.lossy ? itemsShareEndpoint(a, b)
                            : coloring::strongConflict(digraph_, a, b);
  }
  return false;
}

void InvariantMonitor::onEvent(const TraceEvent& e) {
  ++eventsSeen_;
  if (e.cycle != cycle_) {
    flushCycle();
    cycle_ = e.cycle;
  }
  if (done_[e.node] != 0) {
    addViolation(ViolationCode::DoneRegression, e.cycle, e.node,
                 std::string("event ") + net::traceKindName(e.kind) +
                     " after NodeDone");
    return;
  }
  NodeCycle& s = slot(e.node);
  const bool strict = options_.semantics != Semantics::ProperEdge;

  switch (e.kind) {
    case TraceKind::StateChoice:
      if (s.role != -1) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "second StateChoice in one cycle");
        return;
      }
      if (e.a != 0 && e.a != 1) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "StateChoice with role outside {0,1}");
        return;
      }
      s.role = static_cast<int>(e.a);
      return;

    case TraceKind::InviteSent:
      if (s.role != 1) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "InviteSent without invitor StateChoice");
        return;
      }
      if (s.inviteSent) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "second InviteSent in one cycle");
        return;
      }
      s.inviteSent = true;
      s.inviteTarget = static_cast<NodeId>(e.a);
      return;

    case TraceKind::InviteKept:
      if (s.role != 0) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "InviteKept without listener StateChoice");
        return;
      }
      if (s.responseSent) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "InviteKept after ResponseSent");
        return;
      }
      s.keptFrom.push_back(static_cast<NodeId>(e.a));
      return;

    case TraceKind::ResponseSent: {
      if (s.role != 0) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "ResponseSent without listener StateChoice");
        return;
      }
      if (s.responseSent) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "second ResponseSent in one cycle");
        return;
      }
      if (s.keptFrom.empty()) {
        addViolation(ViolationCode::PairingViolation, e.cycle, e.node,
                     "ResponseSent without any kept invitation");
        return;
      }
      const auto target = static_cast<NodeId>(e.a);
      if (std::find(s.keptFrom.begin(), s.keptFrom.end(), target) ==
          s.keptFrom.end()) {
        std::ostringstream os;
        os << "response to " << target << " which sent no kept invitation";
        addViolation(ViolationCode::PairingViolation, e.cycle, e.node,
                     os.str());
        return;
      }
      s.responseSent = true;
      s.responseTarget = target;
      return;
    }

    case TraceKind::TentativeSet:
      if (s.role == -1 || (s.role == 1 && !s.inviteSent) ||
          (s.role == 0 && !s.responseSent)) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "TentativeSet without a formed pair");
        return;
      }
      if (s.tentativeSet) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "second TentativeSet in one cycle");
        return;
      }
      s.tentativeSet = true;
      s.tentItem = static_cast<std::uint32_t>(e.a);
      tentatives_.push_back(PendingTentative{
          e.node, static_cast<std::uint32_t>(e.a),
          static_cast<Color>(e.b)});
      return;

    case TraceKind::Aborted:
      if (!s.tentativeSet || s.tentItem != static_cast<std::uint32_t>(e.a)) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "Aborted without a matching TentativeSet");
        return;
      }
      if (s.committed || s.aborted) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "Aborted after a same-cycle commit or abort");
        return;
      }
      s.aborted = true;
      return;

    case TraceKind::EdgeColored: {
      if (s.role == -1 || (s.role == 1 && !s.inviteSent) ||
          (s.role == 0 && !s.responseSent)) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "EdgeColored without a formed pair");
        return;
      }
      if (s.committed) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "second commit in one cycle");
        return;
      }
      if (s.aborted) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "commit after a same-cycle abort");
        return;
      }
      std::uint32_t item = 0;
      bool secondHalf = false;
      if (!resolveCommit(e, &item, &secondHalf)) {
        std::ostringstream os;
        os << "EdgeColored names no incident item (a=" << e.a << ')';
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node, os.str());
        return;
      }
      if (strict && (!s.tentativeSet || s.tentItem != item)) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "strict commit without a matching TentativeSet");
        return;
      }
      const auto color = static_cast<Color>(e.b);
      if (color < 0) {
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
                     "commit with a negative color");
        return;
      }
      s.committed = true;
      ItemCommit& commit = items_[item];
      Color& half = commit.half[secondHalf ? 1 : 0];
      if (half != kNoColor) {
        std::ostringstream os;
        os << "item " << item << " half recommitted (had " << half << ')';
        addViolation(ViolationCode::IllegalEvent, e.cycle, e.node, os.str());
        return;
      }
      half = color;
      touchedItems_.push_back(item);
      if (options_.paletteBound > 0 &&
          static_cast<std::size_t>(color) >= options_.paletteBound) {
        std::ostringstream os;
        os << "color " << color << " outside palette bound "
           << options_.paletteBound;
        addViolation(ViolationCode::PaletteOverflow, e.cycle, e.node,
                     os.str());
      }
      std::vector<Color>& used = nodeUsed_[e.node];
      if (std::find(used.begin(), used.end(), color) != used.end()) {
        std::ostringstream os;
        os << "node recommitted its own color " << color << " (item " << item
           << ')';
        addViolation(ViolationCode::ColorReuse, e.cycle, e.node, os.str());
      }
      used.push_back(color);
      return;
    }

    case TraceKind::NodeDone:
      done_[e.node] = 1;
      return;
  }
  addViolation(ViolationCode::IllegalEvent, e.cycle, e.node,
               "unknown trace kind");
}

void InvariantMonitor::flushCycle() {
  // Cross-node pairing: a response must echo an invitation actually
  // addressed to the responder this cycle. Holds under every message fault
  // we inject (a kept invitation was necessarily sent; payloads are not
  // corrupted on protocol runs).
  for (const NodeId v : activeNodes_) {
    const NodeCycle& s = nodeCycles_[v];
    if (!s.responseSent) continue;
    const NodeCycle& w = nodeCycles_[s.responseTarget];
    if (w.stamp != cycle_ + 1 || !w.inviteSent || w.inviteTarget != v) {
      std::ostringstream os;
      os << "response to " << s.responseTarget
         << " which sent no matching invitation this cycle";
      addViolation(ViolationCode::PairingViolation, cycle_, v, os.str());
    }
  }

  // Handshake exclusivity (reliable runs only): when any holder of one
  // tentative neighbors any holder of an equal-colored other, the
  // conflict is heard, so the higher item must abort at BOTH its holders —
  // the one that heard it directly and the one that only gets the abort
  // echo (exactly the propagation the mutant self-test severs).
  if (!options_.lossy && !tentatives_.empty()) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> implicated;
    for (std::size_t i = 0; i < tentatives_.size(); ++i) {
      for (std::size_t j = i + 1; j < tentatives_.size(); ++j) {
        const PendingTentative& a = tentatives_[i];
        const PendingTentative& b = tentatives_[j];
        if (a.item == b.item || a.color != b.color) continue;
        if (g_->findEdge(a.node, b.node) == kNoEdge) continue;
        implicated.emplace_back(std::max(a.item, b.item),
                                std::min(a.item, b.item));
      }
    }
    std::sort(implicated.begin(), implicated.end());
    implicated.erase(std::unique(implicated.begin(), implicated.end()),
                     implicated.end());
    for (const auto& [loser, winner] : implicated) {
      for (const PendingTentative& t : tentatives_) {
        if (t.item != loser) continue;
        const NodeCycle& s = nodeCycles_[t.node];
        if (s.committed && s.tentItem == loser) {
          std::ostringstream os;
          os << "item " << loser << " committed color " << t.color
             << " despite an adjacent lower-id tentative (item " << winner
             << ')';
          addViolation(ViolationCode::HandshakeViolation, cycle_, t.node,
                       os.str());
        }
      }
    }
  }

  // Coloring-prefix properness: every item committed this cycle is checked
  // against all previously checkable commits and against each other. Under
  // loss only fully-committed items take part (half commits are the
  // two-generals residue, PROTOCOLS.md §11).
  std::sort(touchedItems_.begin(), touchedItems_.end());
  touchedItems_.erase(
      std::unique(touchedItems_.begin(), touchedItems_.end()),
      touchedItems_.end());
  for (const std::uint32_t item : touchedItems_) {
    ItemCommit& commit = items_[item];
    if (commit.full() && commit.half[0] != commit.half[1]) {
      std::ostringstream os;
      os << "item " << item << " halves committed " << commit.half[0]
         << " and " << commit.half[1];
      addViolation(ViolationCode::HalfCommitMismatch, cycle_, kNoVertex,
                   os.str());
    }
    const bool checkable = options_.lossy ? commit.full() : commit.any();
    if (!checkable || commit.inConflictSet) continue;
    for (const std::uint32_t other : conflictSet_) {
      if (items_[other].color() != commit.color()) continue;
      if (!itemsConflict(item, other)) continue;
      std::ostringstream os;
      os << "items " << item << " and " << other << " share color "
         << commit.color();
      addViolation(ViolationCode::CommitConflict, cycle_, kNoVertex,
                   os.str());
    }
    commit.inConflictSet = true;
    conflictSet_.push_back(item);
  }

  activeNodes_.clear();
  touchedItems_.clear();
  tentatives_.clear();
}

}  // namespace dima::sim
