#include "src/sim/repro.hpp"

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace dima::sim {

using net::MessageFault;

namespace {

void putDouble(std::ostream& os, const char* key, double value) {
  if (value == 0.0) return;
  os << key << ' ' << std::setprecision(17) << value << '\n';
}

const char* faultKeyword(MessageFault::Kind kind) {
  switch (kind) {
    case MessageFault::Kind::Drop: return "drop";
    case MessageFault::Kind::Duplicate: return "dup";
    case MessageFault::Kind::Corrupt: return "corrupt";
  }
  return "drop";
}

}  // namespace

Repro makeRepro(const FuzzCase& c, const CaseOutcome& outcome) {
  Repro r;
  r.fuzzCase = c;
  r.expectViolation = !outcome.safe();
  if (r.expectViolation) r.expectCode = outcome.violations.front().code;
  return r;
}

std::string serializeRepro(const Repro& r) {
  const FuzzCase& c = r.fuzzCase;
  std::ostringstream os;
  os << "dimacol-repro v1\n";
  os << "protocol " << fuzzProtocolName(c.protocol) << '\n';
  os << "seed " << c.seed << '\n';
  os << "max-cycles " << c.maxCycles << '\n';
  os << "nodes " << c.numVertices << '\n';
  for (const auto& [u, v] : c.edges) os << "edge " << u << ' ' << v << '\n';
  for (const net::CrashEvent& e : c.chaos.crashes) {
    os << "crash " << e.node << ' ' << e.round << '\n';
  }
  for (const MessageFault& f : c.chaos.script) {
    os << faultKeyword(f.kind) << ' ' << f.round << ' ' << f.from << ' '
       << f.to << '\n';
  }
  putDouble(os, "drop-p", c.chaos.dropProbability);
  putDouble(os, "dup-p", c.chaos.duplicateProbability);
  putDouble(os, "corrupt-p", c.chaos.corruptProbability);
  for (const net::LinkDrop& l : c.chaos.linkDrops) {
    os << "link-drop " << l.from << ' ' << l.to << ' '
       << std::setprecision(17) << l.dropProbability << '\n';
  }
  os << "chaos-seed " << c.chaos.seed << '\n';
  if (c.chaos.permuteInboxes) os << "permute\n";
  if (c.churnBatches > 0) os << "churn-batches " << c.churnBatches << '\n';
  if (r.expectViolation) {
    os << "expect violation " << violationCodeName(r.expectCode) << '\n';
  } else {
    os << "expect safe\n";
  }
  return os.str();
}

bool parseRepro(const std::string& text, Repro* out, std::string* error) {
  const auto fail = [&](std::size_t line, const std::string& why) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "line " << line << ": " << why;
      *error = os.str();
    }
    return false;
  };

  Repro r;
  bool sawHeader = false;
  bool sawExpect = false;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    if (!sawHeader) {
      std::string version;
      if (key != "dimacol-repro" || !(ls >> version) || version != "v1") {
        return fail(lineNo, "expected header 'dimacol-repro v1'");
      }
      sawHeader = true;
      continue;
    }

    FuzzCase& c = r.fuzzCase;
    if (key == "protocol") {
      std::string name;
      if (!(ls >> name) || !fuzzProtocolFromName(name, &c.protocol)) {
        return fail(lineNo, "unknown protocol '" + name + "'");
      }
    } else if (key == "seed") {
      if (!(ls >> c.seed)) return fail(lineNo, "seed needs an integer");
    } else if (key == "max-cycles") {
      if (!(ls >> c.maxCycles)) {
        return fail(lineNo, "max-cycles needs an integer");
      }
    } else if (key == "nodes") {
      if (!(ls >> c.numVertices)) return fail(lineNo, "nodes needs a count");
    } else if (key == "edge") {
      graph::VertexId u = 0;
      graph::VertexId v = 0;
      if (!(ls >> u >> v)) return fail(lineNo, "edge needs two endpoints");
      if (u == v || u >= c.numVertices || v >= c.numVertices) {
        return fail(lineNo, "edge endpoints out of range (declare nodes "
                            "before edges)");
      }
      c.edges.emplace_back(u, v);
    } else if (key == "crash") {
      net::CrashEvent e;
      if (!(ls >> e.node >> e.round)) {
        return fail(lineNo, "crash needs node and round");
      }
      if (e.node >= c.numVertices) {
        return fail(lineNo, "crash node out of range");
      }
      c.chaos.crashes.push_back(e);
    } else if (key == "drop" || key == "dup" || key == "corrupt") {
      MessageFault f;
      f.kind = key == "drop"  ? MessageFault::Kind::Drop
               : key == "dup" ? MessageFault::Kind::Duplicate
                              : MessageFault::Kind::Corrupt;
      if (!(ls >> f.round >> f.from >> f.to)) {
        return fail(lineNo, key + " needs round, from, to");
      }
      if (f.from >= c.numVertices || f.to >= c.numVertices) {
        return fail(lineNo, key + " endpoint out of range");
      }
      c.chaos.script.push_back(f);
    } else if (key == "drop-p") {
      if (!(ls >> c.chaos.dropProbability)) {
        return fail(lineNo, "drop-p needs a probability");
      }
    } else if (key == "dup-p") {
      if (!(ls >> c.chaos.duplicateProbability)) {
        return fail(lineNo, "dup-p needs a probability");
      }
    } else if (key == "corrupt-p") {
      if (!(ls >> c.chaos.corruptProbability)) {
        return fail(lineNo, "corrupt-p needs a probability");
      }
    } else if (key == "link-drop") {
      net::LinkDrop l;
      if (!(ls >> l.from >> l.to >> l.dropProbability)) {
        return fail(lineNo, "link-drop needs from, to, probability");
      }
      if (l.from >= c.numVertices || l.to >= c.numVertices) {
        return fail(lineNo, "link-drop endpoint out of range");
      }
      c.chaos.linkDrops.push_back(l);
    } else if (key == "chaos-seed") {
      if (!(ls >> c.chaos.seed)) {
        return fail(lineNo, "chaos-seed needs an integer");
      }
    } else if (key == "permute") {
      c.chaos.permuteInboxes = true;
    } else if (key == "churn-batches") {
      if (!(ls >> c.churnBatches)) {
        return fail(lineNo, "churn-batches needs a count");
      }
    } else if (key == "expect") {
      std::string what;
      if (!(ls >> what)) return fail(lineNo, "expect needs a verdict");
      if (what == "safe") {
        r.expectViolation = false;
      } else if (what == "violation") {
        std::string code;
        if (!(ls >> code) || !violationCodeFromName(code, &r.expectCode)) {
          return fail(lineNo, "unknown violation code '" + code + "'");
        }
        r.expectViolation = true;
      } else {
        return fail(lineNo, "expect takes 'safe' or 'violation <code>'");
      }
      sawExpect = true;
    } else {
      return fail(lineNo, "unknown directive '" + key + "'");
    }
  }
  if (!sawHeader) return fail(lineNo, "missing 'dimacol-repro v1' header");
  if (!sawExpect) return fail(lineNo, "missing 'expect' line");
  *out = std::move(r);
  return true;
}

ReplayResult replayRepro(const Repro& r) {
  ReplayResult result;
  result.outcome = runCase(r.fuzzCase);
  std::ostringstream os;
  if (r.expectViolation) {
    result.matched =
        !result.outcome.safe() &&
        result.outcome.violations.front().code == r.expectCode;
    os << "expected violation " << violationCodeName(r.expectCode) << ", got ";
  } else {
    result.matched = result.outcome.safe();
    os << "expected safe, got ";
  }
  if (result.outcome.safe()) {
    os << "safe";
  } else {
    os << "violation "
       << violationCodeName(result.outcome.violations.front().code) << " ("
       << result.outcome.violations.front().detail << ')';
  }
  os << (result.matched ? " [match]" : " [MISMATCH]");
  result.summary = os.str();
  return result;
}

}  // namespace dima::sim
