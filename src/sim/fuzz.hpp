#pragma once

/// \file fuzz.hpp
/// The simulation fuzz driver: runs any of the library's protocols under a
/// `net::ChaosModel` with an `InvariantMonitor` attached, enumerates fault
/// patterns exhaustively on tiny graphs, searches randomly on larger ones,
/// and shrinks any failure to a minimal deterministic reproducer.
///
/// Everything here is a pure function of its inputs — a `FuzzCase` fully
/// determines the run (topology, protocol seed, chaos model, round cap), so
/// a failure found once is a failure found forever, and the shrinker's
/// output is byte-stable across runs (tested). Repro files (repro.hpp)
/// serialize exactly a `FuzzCase` plus the expected outcome.
///
/// The monitor gets the semantics and palette bound matching the protocol
/// (proper-edge + 2Δ−1 for MaDEC and the incremental repair, strong
/// undirected for strong MaDEC, strong directed for DiMa2Ed strict) and is
/// told whether the chaos can lose messages, which relaxes exactly the
/// checks message loss is allowed to break (monitor.hpp). Payload
/// corruption is deliberately *not* drawn by the random generator for
/// protocol runs: corrupted fields can trip `DIMA_ASSERT`-checked protocol
/// preconditions by design, so corruption is exercised by the
/// network-layer tests instead (PROTOCOLS.md §11).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/net/chaos.hpp"
#include "src/sim/monitor.hpp"

namespace dima::sim {

enum class FuzzProtocol : std::uint8_t {
  Madec,             ///< Algorithm 1, proper edge coloring
  Dima2Ed,           ///< Algorithm 2 (strict mode), strong arc coloring
  StrongMadec,       ///< strong undirected edge coloring
  StrongMadecMutant, ///< strong MaDEC with the planted abort-echo bug
  Incremental,       ///< dynamic repair under churn batches
};

const char* fuzzProtocolName(FuzzProtocol p);
bool fuzzProtocolFromName(const std::string& name, FuzzProtocol* out);

/// One fully-determined simulation run.
struct FuzzCase {
  FuzzProtocol protocol = FuzzProtocol::Madec;
  std::size_t numVertices = 0;
  /// Undirected edge list; normalized (u < v, sorted, unique) by
  /// `buildCaseGraph`.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
  std::uint64_t seed = 1;
  std::uint64_t maxCycles = 256;
  net::ChaosModel chaos;
  /// Incremental protocol only: churn batches applied (with a monitored
  /// repair pass after each) once the initial coloring converged.
  std::size_t churnBatches = 0;
};

/// The case's topology as an immutable graph (normalizes the edge list).
graph::Graph buildCaseGraph(const FuzzCase& c);

/// Monitor configuration matching the case's protocol and chaos.
MonitorOptions monitorOptionsFor(const FuzzCase& c, const graph::Graph& g);

struct CaseOutcome {
  std::vector<Violation> violations;
  /// All runs converged within the round cap (expected to be false under
  /// heavy loss or crashes — that alone is never a failure).
  bool converged = false;
  std::size_t eventsSeen = 0;

  bool safe() const { return violations.empty(); }
};

/// Runs the case start to finish under its monitor. With `recordFired`,
/// the chaos faults that actually fired are captured there (the shrinkers'
/// probabilistic-to-scripted conversion).
CaseOutcome runCase(const FuzzCase& c,
                    std::vector<net::MessageFault>* recordFired = nullptr);

// -- Exhaustive enumeration on tiny graphs ---------------------------------

struct SweepOptions {
  /// Fault rounds 0..(cyclesHorizon × sub-rounds − 1) are enumerated; the
  /// automaton settles tiny graphs within a couple of cycles, so faults
  /// beyond that horizon hit an idle network.
  std::uint64_t cyclesHorizon = 2;
  /// Enumerate all drop subsets up to this size (2 = all pairs).
  std::size_t maxScriptedDrops = 2;
  /// Also enumerate single crash-stops (every node × every round within the
  /// horizon), and every crash × single-drop product.
  bool crashes = true;
  bool crashDropProducts = true;
  std::uint64_t maxCycles = 64;
  std::size_t maxFailures = 8;  ///< stop collecting after this many
};

struct SweepFailure {
  FuzzCase fuzzCase;
  CaseOutcome outcome;
};

struct SweepReport {
  std::size_t casesRun = 0;
  std::size_t patterns = 0;  ///< fault patterns per base case, for reporting
  std::vector<SweepFailure> failures;

  bool allSafe() const { return failures.empty(); }
};

/// Runs every fault pattern in `options` against every base case (protocol
/// + topology + seed; the base's own chaos is ignored). Deterministic; the
/// pattern space is the scripted-drop/crash product described above.
SweepReport exhaustiveSweep(const std::vector<FuzzCase>& bases,
                            const SweepOptions& options = {});

// -- Seeded random search --------------------------------------------------

struct RandomFuzzOptions {
  std::vector<FuzzProtocol> protocols = {
      FuzzProtocol::Madec, FuzzProtocol::Dima2Ed, FuzzProtocol::StrongMadec,
      FuzzProtocol::Incremental};
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  std::size_t maxVertices = 10;
  std::uint64_t maxCycles = 512;
};

struct RandomFuzzResult {
  std::size_t casesRun = 0;
  std::size_t failures = 0;
  FuzzCase firstFailure;
  CaseOutcome firstOutcome;

  bool found() const { return failures > 0; }
};

/// Draws `iterations` random (graph, protocol, chaos) cases — case `i` is a
/// pure function of (seed, i) — and runs each under its monitor.
RandomFuzzResult randomFuzz(const RandomFuzzOptions& options);

// -- Shrinking -------------------------------------------------------------

struct ShrinkResult {
  FuzzCase minimized;
  CaseOutcome outcome;          ///< outcome of the minimized case
  ViolationCode code;           ///< the violation class preserved throughout
  std::size_t runsUsed = 0;     ///< candidate executions spent shrinking
};

/// Minimizes a failing case while preserving its first violation's code:
/// greedy vertex removal (ids relabeled, chaos references remapped), greedy
/// edge removal, conversion of probabilistic faults to the recorded script,
/// ddmin over the script, crash-list and permutation minimization. Fully
/// deterministic. Precondition: `runCase(failing)` reports a violation.
ShrinkResult shrinkFailure(const FuzzCase& failing);

}  // namespace dima::sim
