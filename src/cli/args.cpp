#include "src/cli/args.hpp"

#include <cstdlib>

namespace dima::cli {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Args::Args(const std::vector<std::string>& tokens) { parse(tokens); }

void Args::parse(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.rfind("--", 0) == 0 && token.size() > 2) {
      const std::string name = token.substr(2);
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        options_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < tokens.size() &&
                 tokens[i + 1].rfind("--", 0) != 0) {
        options_[name] = tokens[++i];
      } else {
        options_[name] = "";  // boolean flag
      }
    } else {
      positionals_.push_back(token);
    }
  }
}

std::string Args::positional(std::size_t i, const std::string& fallback) const {
  return i < positionals_.size() ? positionals_[i] : fallback;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Args::getInt(const std::string& name, std::int64_t fallback) {
  touched_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("--" + name + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return v;
}

std::uint64_t Args::getUint(const std::string& name, std::uint64_t fallback) {
  const std::int64_t v =
      getInt(name, static_cast<std::int64_t>(fallback));
  if (v < 0) {
    errors_.push_back("--" + name + " must be non-negative");
    return fallback;
  }
  return static_cast<std::uint64_t>(v);
}

double Args::getDouble(const std::string& name, double fallback) {
  touched_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0' || it->second.empty()) {
    errors_.push_back("--" + name + " expects a number, got '" + it->second +
                      "'");
    return fallback;
  }
  return v;
}

std::vector<std::string> Args::unusedOptions() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) {
    if (!touched_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace dima::cli
