#include "src/cli/commands.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>
#include <thread>

#include "src/automata/bitplane.hpp"
#include "src/automata/discovery.hpp"
#include "src/automata/mis.hpp"
#include "src/automata/vertex_cover.hpp"
#include "src/baselines/greedy.hpp"
#include "src/baselines/misra_gries.hpp"
#include "src/baselines/pal.hpp"
#include "src/baselines/strong_greedy.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/strong_madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/coloring/vertex_coloring.hpp"
#include "src/dynamic/churn.hpp"
#include "src/dynamic/incremental.hpp"
#include "src/experiments/figures.hpp"
#include "src/experiments/profile.hpp"
#include "src/graph/builder.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"
#include "src/graph/metrics.hpp"
#include "src/net/engine.hpp"
#include "src/service/checkpoint.hpp"
#include "src/service/drill.hpp"
#include "src/service/driver.hpp"
#include "src/service/hostile.hpp"
#include "src/service/replica.hpp"
#include "src/service/service.hpp"
#include "src/service/session.hpp"
#include "src/service/transport.hpp"
#include "src/sim/fuzz.hpp"
#include "src/sim/repro.hpp"
#include "src/support/table.hpp"
#include "src/support/thread_pool.hpp"
#include "src/support/version.hpp"

// Provenance stamped into the committed benchmark JSON (see the top-level
// CMakeLists): a throughput number is only comparable across PRs when the
// artifact names the commit and toolchain that produced it.
#ifndef DIMA_GIT_COMMIT
#define DIMA_GIT_COMMIT "unknown"
#endif
#if defined(__clang__)
#define DIMA_COMPILER_STRING "clang " __VERSION__
#elif defined(__GNUC__)
#define DIMA_COMPILER_STRING "gcc " __VERSION__
#else
#define DIMA_COMPILER_STRING "unknown"
#endif

namespace dima::cli {

namespace {

/// Resolves `--format auto|edgelist|snap|dimacs|csr` for `path`, with
/// content sniffing when unspecified (graph/io.hpp).
graph::GraphFormat resolveFormat(Args& args, const std::string& path,
                                 std::ostream& err, bool* ok) {
  *ok = true;
  const std::string name = args.get("format", "auto");
  graph::GraphFormat requested = graph::GraphFormat::Auto;
  if (!graph::parseGraphFormat(name, &requested)) {
    err << "error: unknown --format '" << name
        << "' (expected auto|edgelist|snap|dimacs|csr)\n";
    *ok = false;
    return graph::GraphFormat::Auto;
  }
  return graph::detectGraphFormat(path, requested);
}

/// Loads `path` as a materialized Graph under `format`. CSR images are
/// rebuilt through the builder — callers that can run directly on the
/// mapped view (madec) branch before reaching here.
graph::Graph loadInputAs(const std::string& path, graph::GraphFormat format,
                         std::ostream& err, bool* ok) {
  *ok = true;
  switch (format) {
    case graph::GraphFormat::Auto:  // detectGraphFormat never returns Auto
    case graph::GraphFormat::EdgeList: {
      bool loaded = false;
      graph::Graph g = graph::loadEdgeList(path, &loaded);
      if (!loaded) {
        err << "error: cannot read edge list '" << path << "'\n";
        *ok = false;
      }
      return g;
    }
    case graph::GraphFormat::Snap: {
      graph::ParseReport report;
      graph::Graph g = graph::loadSnap(path, &report);
      if (!report.ok) {
        err << "error: " << report.error << '\n';
        *ok = false;
      } else if (report.selfLoopsSkipped + report.duplicatesSkipped > 0) {
        err << "note: skipped " << report.selfLoopsSkipped
            << " self-loop(s) and " << report.duplicatesSkipped
            << " duplicate edge(s)\n";
      }
      return g;
    }
    case graph::GraphFormat::Dimacs: {
      graph::ParseReport report;
      graph::Graph g = graph::loadDimacs(path, &report);
      if (!report.ok) {
        err << "error: " << report.error << '\n';
        *ok = false;
      }
      return g;
    }
    case graph::GraphFormat::Csr: {
      std::string error;
      const graph::MappedGraph mg = graph::MappedGraph::open(path, &error);
      if (!mg.ok()) {
        err << "error: " << error << '\n';
        *ok = false;
        return graph::Graph(0);
      }
      graph::GraphBuilder b(mg.numVertices());
      for (graph::EdgeId e = 0; e < mg.numEdges(); ++e) {
        b.addEdge(mg.edge(e).u, mg.edge(e).v);
      }
      return b.build();
    }
  }
  *ok = false;
  return graph::Graph(0);
}

/// Builds the command's input graph: `--input <file>` wins (format from
/// `--format`/sniffing), otherwise a generator family: `--family er|gnp|ba|
/// ws|tree|regular|complete|cycle|path|star|grid|geometric` with its
/// parameters.
graph::Graph makeInputGraph(Args& args, std::ostream& err, bool* ok) {
  *ok = true;
  const std::string input = args.get("input");
  if (!input.empty()) {
    const graph::GraphFormat format = resolveFormat(args, input, err, ok);
    if (!*ok) return graph::Graph(0);
    return loadInputAs(input, format, err, ok);
  }
  const std::string family = args.get("family", "er");
  const auto n = static_cast<std::size_t>(args.getUint("n", 100));
  support::Rng rng(args.getUint("graph-seed", 1));
  if (family == "er") {
    return graph::erdosRenyiAvgDegree(n, args.getDouble("deg", 6.0), rng);
  }
  if (family == "gnp") {
    return graph::erdosRenyiGnp(n, args.getDouble("p", 0.05), rng);
  }
  if (family == "ba") {
    return graph::barabasiAlbert(
        n, static_cast<std::size_t>(args.getUint("m", 3)),
        args.getDouble("power", 1.0), rng);
  }
  if (family == "ws") {
    return graph::wattsStrogatz(
        n, static_cast<std::size_t>(args.getUint("k", 4)),
        args.getDouble("beta", 0.25), rng);
  }
  if (family == "tree") return graph::randomTree(n, rng);
  if (family == "regular") {
    return graph::randomRegular(
        n, static_cast<std::size_t>(args.getUint("deg", 4)), rng);
  }
  if (family == "complete") return graph::complete(n);
  if (family == "cycle") return graph::cycle(n);
  if (family == "path") return graph::path(n);
  if (family == "star") return graph::star(n);
  if (family == "grid") {
    return graph::grid(static_cast<std::size_t>(args.getUint("rows", 8)),
                       static_cast<std::size_t>(args.getUint("cols", 8)));
  }
  if (family == "geometric") {
    return graph::randomGeometric(n, args.getDouble("radius", 0.2), rng)
        .graph;
  }
  err << "error: unknown --family '" << family << "'\n";
  *ok = false;
  return graph::Graph(0);
}

bool saveColors(const std::vector<coloring::Color>& colors,
                const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (coloring::Color c : colors) out << c << '\n';
  return static_cast<bool>(out);
}

std::vector<coloring::Color> loadColors(const std::string& path, bool* ok) {
  std::ifstream in(path);
  std::vector<coloring::Color> colors;
  if (!in) {
    *ok = false;
    return colors;
  }
  long long v = 0;
  while (in >> v) colors.push_back(static_cast<coloring::Color>(v));
  *ok = in.eof();
  return colors;
}

void describeGraph(const graph::Graph& g, std::ostream& out) {
  out << "graph: n=" << g.numVertices() << " m=" << g.numEdges()
      << " max-degree=" << g.maxDegree()
      << " avg-degree=" << g.averageDegree() << '\n';
}

/// Engine selection for the protocols that have a bit-plane substrate
/// (MaDEC, DiMa2Ed, discovery). The choice is observably invisible —
/// identical colors, metrics, and traces (PROTOCOLS.md §9) — so the flag
/// only changes which execution substrate runs.
net::EngineKind parseEngine(Args& args, std::ostream& err, bool* ok) {
  *ok = true;
  const std::string name = args.get("engine", "reference");
  if (name == "reference") return net::EngineKind::Reference;
  if (name == "bitplane") return net::EngineKind::BitPlane;
  err << "error: unknown --engine '" << name
      << "' (expected reference|bitplane)\n";
  *ok = false;
  return net::EngineKind::Reference;
}

const char* engineName(net::EngineKind engine) {
  return engine == net::EngineKind::BitPlane ? "bitplane" : "reference";
}

/// Sharding flags shared by color/strong/matching: `--shards K`,
/// `--partition block|degree`, `--workers W` (workers per shard). The
/// substrate choice is engine-invisible — colors, counters and traces are
/// bit-identical across shard counts (DESIGN.md §13).
net::ShardOptions parseShardOptions(Args& args, std::ostream& err, bool* ok) {
  *ok = true;
  net::ShardOptions shards;
  shards.count = static_cast<std::uint32_t>(args.getUint("shards", 1));
  shards.workersPerShard =
      static_cast<std::size_t>(args.getUint("workers", 1));
  if (shards.count == 0 || shards.workersPerShard == 0) {
    err << "error: --shards and --workers must be >= 1\n";
    *ok = false;
    return shards;
  }
  const std::string partition = args.get("partition", "block");
  if (!graph::parsePartitionKind(partition, &shards.partition)) {
    err << "error: unknown --partition '" << partition
        << "' (expected block|degree)\n";
    *ok = false;
  }
  return shards;
}

/// Sharding runs on the reference substrate only (the drivers DIMA_REQUIRE
/// it); catch the flag combination here so the CLI exits with an error
/// message instead of a contract abort.
bool checkShardEngineConflict(const net::ShardOptions& shards,
                              net::EngineKind engine, std::ostream& err) {
  if (shards.count > 1 && engine == net::EngineKind::BitPlane) {
    err << "error: --shards and --engine bitplane are mutually exclusive\n";
    return false;
  }
  return true;
}

void describeShards(const net::ShardOptions& shards, std::ostream& out) {
  if (shards.count <= 1) return;
  out << "shards: " << shards.count << " ("
      << graph::partitionKindName(shards.partition) << " partition, "
      << shards.workersPerShard << " worker(s) each)\n";
}

int finishColoringCommand(Args& args, std::ostream& out, std::ostream& err,
                          const graph::Graph& g,
                          const std::vector<coloring::Color>& colors) {
  const coloring::Verdict verdict = coloring::verifyEdgeColoring(g, colors);
  if (!verdict.valid) {
    err << "INVALID coloring: " << verdict.reason << '\n';
    return 1;
  }
  out << "valid: yes\n";
  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && !saveColors(colors, colorsOut)) {
    err << "error: cannot write '" << colorsOut << "'\n";
    return 1;
  }
  const std::string dotOut = args.get("dot-out");
  if (!dotOut.empty()) {
    std::ofstream dot(dotOut);
    if (!dot) {
      err << "error: cannot write '" << dotOut << "'\n";
      return 1;
    }
    dot << graph::toDot(g, std::vector<int>(colors.begin(), colors.end()));
  }
  return 0;
}

int cmdGen(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  const std::string outPath = args.get("out");
  if (outPath.empty()) {
    out << graph::toEdgeList(g);
  } else {
    if (!graph::saveEdgeList(g, outPath)) {
      err << "error: cannot write '" << outPath << "'\n";
      return 1;
    }
    describeGraph(g, out);
    out << "written: " << outPath << '\n';
  }
  return 0;
}

/// `dimacol color` on a CSR image: runs MaDEC straight off the mapped
/// view — the graph is never materialized, so coloring a multi-gigabyte
/// SNAP export costs one mmap plus the per-vertex protocol state.
int cmdColorMapped(Args& args, std::ostream& out, std::ostream& err,
                   const std::string& path) {
  std::string error;
  const graph::MappedGraph g = graph::MappedGraph::open(path, &error);
  if (!g.ok()) {
    err << "error: " << error << '\n';
    return 1;
  }
  out << "graph: n=" << g.numVertices() << " m=" << g.numEdges()
      << " max-degree=" << g.maxDegree()
      << " avg-degree=" << g.averageDegree() << " ("
      << (g.isMapped() ? "mmap" : "read") << " CSR)\n";
  coloring::MadecOptions options;
  options.seed = args.getUint("seed", 1);
  options.invitorBias = args.getDouble("bias", 0.5);
  // The mapped path runs the reference substrate only (colorEdgesMadec on a
  // MappedGraph DIMA_REQUIREs it); reject other engines cleanly.
  bool engineOk = false;
  options.engine = parseEngine(args, err, &engineOk);
  if (!engineOk) return 1;
  if (options.engine != net::EngineKind::Reference) {
    err << "error: --engine " << engineName(options.engine)
        << " is not supported on the mapped CSR path (reference only)\n";
    return 1;
  }
  bool shardsOk = false;
  options.shards = parseShardOptions(args, err, &shardsOk);
  if (!shardsOk) return 1;
  describeShards(options.shards, out);
  support::ThreadPool pool(
      options.shards.count == 1 ? options.shards.workersPerShard : 1);
  if (options.shards.count == 1 && options.shards.workersPerShard > 1) {
    options.pool = &pool;
  }
  const auto result = coloring::colorEdgesMadec(g, options);
  out << "algorithm: madec (distributed, mapped)\n"
      << "rounds: " << result.metrics.computationRounds << " (comm rounds "
      << result.metrics.commRounds << ", broadcasts "
      << result.metrics.broadcasts << ")\n";
  const auto summary = coloring::summarizePalette(result.colors);
  out << "colors: " << summary.distinct << " (Delta=" << g.maxDegree()
      << ", worst-case bound " << (2 * g.maxDegree() - 1) << ")\n";
  const coloring::Verdict verdict =
      coloring::verifyEdgeColoring(g, result.colors);
  if (!verdict.valid) {
    err << "INVALID coloring: " << verdict.reason << '\n';
    return 1;
  }
  out << "valid: yes\n";
  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && !saveColors(result.colors, colorsOut)) {
    err << "error: cannot write '" << colorsOut << "'\n";
    return 1;
  }
  return 0;
}

/// `dimacol ingest <input> --out <file.csr>`: one-time conversion of a
/// SNAP / DIMACS / edge-list file into the mmap-ready CSR image that the
/// mapped color path consumes.
int cmdIngest(Args& args, std::ostream& out, std::ostream& err) {
  const std::string input =
      args.has("input") ? args.get("input") : args.positional(1);
  if (input.empty()) {
    err << "error: ingest needs an input file (positional or --input)\n";
    return 2;
  }
  const std::string outPath = args.get("out");
  if (outPath.empty()) {
    err << "error: ingest needs --out <file.csr>\n";
    return 2;
  }
  bool ok = false;
  const graph::GraphFormat format = resolveFormat(args, input, err, &ok);
  if (!ok) return 1;
  std::string error;
  if (!graph::ingestToCsr(input, format, outPath, &error)) {
    err << "error: " << error << '\n';
    return 1;
  }
  const graph::MappedGraph g = graph::MappedGraph::open(outPath, &error);
  if (!g.ok()) {
    err << "error: wrote '" << outPath
        << "' but it fails validation: " << error << '\n';
    return 1;
  }
  out << "ingested " << graph::graphFormatName(format) << " '" << input
      << "': n=" << g.numVertices() << " m=" << g.numEdges()
      << " max-degree=" << g.maxDegree() << '\n'
      << "written: " << outPath << '\n';
  return 0;
}

int cmdColor(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const std::string input = args.get("input");
  if (!input.empty() && args.get("algo", "madec") == "madec") {
    const graph::GraphFormat format = resolveFormat(args, input, err, &ok);
    if (!ok) return 1;
    if (format == graph::GraphFormat::Csr) {
      return cmdColorMapped(args, out, err, input);
    }
  }
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  const std::string algo = args.get("algo", "madec");
  const std::uint64_t seed = args.getUint("seed", 1);

  std::vector<coloring::Color> colors;
  if (algo == "madec") {
    coloring::MadecOptions options;
    options.seed = seed;
    options.invitorBias = args.getDouble("bias", 0.5);
    bool engineOk = false;
    options.engine = parseEngine(args, err, &engineOk);
    if (!engineOk) return 1;
    bool shardsOk = false;
    options.shards = parseShardOptions(args, err, &shardsOk);
    if (!shardsOk) return 1;
    if (!checkShardEngineConflict(options.shards, options.engine, err)) {
      return 1;
    }
    describeShards(options.shards, out);
    support::ThreadPool pool(
        options.shards.count == 1 ? options.shards.workersPerShard : 1);
    if (options.shards.count == 1 && options.shards.workersPerShard > 1) {
      options.pool = &pool;
    }
    const auto result = coloring::colorEdgesMadec(g, options);
    out << "algorithm: madec (distributed)\n"
        << "engine: " << engineName(options.engine) << '\n'
        << "rounds: " << result.metrics.computationRounds
        << " (comm rounds " << result.metrics.commRounds << ", broadcasts "
        << result.metrics.broadcasts << ")\n";
    colors = result.colors;
  } else if (algo == "greedy") {
    colors = baselines::greedyEdgeColoring(g, baselines::EdgeOrder::Random,
                                           seed)
                 .colors;
    out << "algorithm: greedy (sequential)\n";
  } else if (algo == "misra-gries") {
    colors = baselines::misraGriesEdgeColoring(g).colors;
    out << "algorithm: misra-gries (sequential, <= Delta+1)\n";
  } else if (algo == "pal") {
    baselines::PalOptions options;
    options.seed = seed;
    options.epsilon = args.getDouble("epsilon", 0.5);
    const auto result = baselines::palEdgeColoring(g, options);
    out << "algorithm: pal (distributed)\nrounds: " << result.rounds << '\n';
    colors = result.colors;
  } else {
    err << "error: unknown --algo '" << algo << "'\n";
    return 1;
  }
  const auto summary = coloring::summarizePalette(colors);
  out << "colors: " << summary.distinct << " (Delta=" << g.maxDegree()
      << ", worst-case bound " << (2 * g.maxDegree() - 1) << ")\n";
  return finishColoringCommand(args, out, err, g, colors);
}

int cmdStrong(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  if (args.has("undirected")) {
    // Undirected strong coloring (Barrett et al.'s channel assignment).
    describeGraph(g, out);
    coloring::StrongMadecOptions options;
    options.seed = args.getUint("seed", 1);
    bool shardsOk = false;
    options.shards = parseShardOptions(args, err, &shardsOk);
    if (!shardsOk) return 1;
    describeShards(options.shards, out);
    support::ThreadPool pool(
        options.shards.count == 1 ? options.shards.workersPerShard : 1);
    if (options.shards.count == 1 && options.shards.workersPerShard > 1) {
      options.pool = &pool;
    }
    const auto result = coloring::colorEdgesStrongMadec(g, options);
    out << "algorithm: strong-madec (undirected distance-2)\nrounds: "
        << result.metrics.computationRounds << "\ncolors: "
        << result.colorsUsed() << '\n';
    const coloring::Verdict verdict =
        coloring::verifyStrongEdgeColoring(g, result.colors);
    out << "valid: " << (verdict.valid ? "yes" : "NO") << '\n';
    if (!verdict.valid) err << verdict.reason << '\n';
    return verdict.valid ? 0 : 1;
  }
  const graph::Digraph d(g);
  describeGraph(g, out);
  out << "arcs: " << d.numArcs()
      << " (strong clique lower bound " << graph::strongColoringLowerBound(g)
      << ")\n";
  const std::string algo = args.get("algo", "dima2ed");
  std::vector<coloring::Color> colors;
  if (algo == "dima2ed") {
    coloring::Dima2EdOptions options;
    options.seed = args.getUint("seed", 1);
    options.mode = args.get("mode", "strict") == "paper"
                       ? coloring::Dima2EdMode::Paper
                       : coloring::Dima2EdMode::Strict;
    bool engineOk = false;
    options.engine = parseEngine(args, err, &engineOk);
    if (!engineOk) return 1;
    bool shardsOk = false;
    options.shards = parseShardOptions(args, err, &shardsOk);
    if (!shardsOk) return 1;
    if (!checkShardEngineConflict(options.shards, options.engine, err)) {
      return 1;
    }
    describeShards(options.shards, out);
    support::ThreadPool pool(
        options.shards.count == 1 ? options.shards.workersPerShard : 1);
    if (options.shards.count == 1 && options.shards.workersPerShard > 1) {
      options.pool = &pool;
    }
    const auto result = coloring::colorArcsDima2Ed(d, options);
    out << "algorithm: dima2ed ("
        << (options.mode == coloring::Dima2EdMode::Paper ? "paper mode"
                                                         : "strict mode")
        << ")\nengine: " << engineName(options.engine)
        << "\nrounds: " << result.metrics.computationRounds << '\n';
    colors = result.colors;
  } else if (algo == "greedy") {
    colors = baselines::greedyStrongArcColoring(d).colors;
    out << "algorithm: greedy (sequential)\n";
  } else {
    err << "error: unknown --algo '" << algo << "'\n";
    return 1;
  }
  const auto summary = coloring::summarizePalette(colors);
  out << "colors: " << summary.distinct << '\n';
  const coloring::Verdict verdict =
      coloring::verifyStrongArcColoring(d, colors);
  out << "valid: " << (verdict.valid ? "yes" : "NO") << '\n';
  if (!verdict.valid) {
    out << "  first violation: " << verdict.reason << '\n'
        << "  conflicting pairs: "
        << coloring::countStrongConflicts(d, colors) << '\n';
    return args.get("mode") == "paper" ? 0 : 1;  // paper mode may conflict
  }
  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && !saveColors(colors, colorsOut)) {
    err << "error: cannot write '" << colorsOut << "'\n";
    return 1;
  }
  return 0;
}

int cmdMatching(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  bool engineOk = false;
  net::EngineOptions engineOptions;
  engineOptions.engine = parseEngine(args, err, &engineOk);
  if (!engineOk) return 1;
  bool shardsOk = false;
  engineOptions.shards = parseShardOptions(args, err, &shardsOk);
  if (!shardsOk) return 1;
  if (!checkShardEngineConflict(engineOptions.shards, engineOptions.engine,
                                err)) {
    return 1;
  }
  describeShards(engineOptions.shards, out);
  support::ThreadPool pool(engineOptions.shards.count == 1
                               ? engineOptions.shards.workersPerShard
                               : 1);
  if (engineOptions.shards.count == 1 &&
      engineOptions.shards.workersPerShard > 1) {
    engineOptions.pool = &pool;
  }
  const auto result =
      automata::maximalMatching(g, args.getUint("seed", 1),
                                args.getDouble("bias", 0.5), engineOptions);
  out << "engine: " << engineName(engineOptions.engine) << '\n'
      << "matching: " << result.matching.size() << " edges in "
      << result.rounds << " rounds (participation rate "
      << result.stats.participationRate() << ")\n";
  const bool valid = automata::isMaximalMatching(g, result.matching);
  out << "valid: " << (valid ? "yes" : "NO") << " (maximal matching)\n";
  return valid ? 0 : 1;
}

int cmdCover(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  const auto result =
      automata::vertexCoverViaMatching(g, args.getUint("seed", 1));
  out << "cover: " << result.cover.size() << " vertices in " << result.rounds
      << " rounds (matching certificate " << result.matchingSize
      << " => within 2x of optimum)\n";
  const bool valid = automata::isVertexCover(g, result.cover);
  out << "valid: " << (valid ? "yes" : "NO") << '\n';
  return valid ? 0 : 1;
}

int cmdMis(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  const auto result =
      automata::maximalIndependentSet(g, args.getUint("seed", 1));
  out << "independent set: " << result.setSize() << " vertices in "
      << result.rounds << " rounds\n";
  const bool valid = automata::isMaximalIndependentSet(g, result.inSet);
  out << "valid: " << (valid ? "yes" : "NO") << '\n';
  return valid ? 0 : 1;
}

int cmdVertexColor(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  const auto result =
      coloring::colorVerticesDistributed(g, args.getUint("seed", 1));
  out << "vertex colors: " << result.colorsUsed() << " (bound Delta+1="
      << g.maxDegree() + 1 << ") in " << result.rounds << " rounds\n";
  const bool valid = coloring::isProperVertexColoring(g, result.colors);
  out << "valid: " << (valid ? "yes" : "NO") << '\n';
  return valid ? 0 : 1;
}

int cmdFigure(Args& args, std::ostream& out, std::ostream& err) {
  const auto figure = args.getUint("id", args.getUint("figure", 3));
  const auto runs =
      static_cast<std::size_t>(args.getUint("runs", 10));
  const std::uint64_t seed = args.getUint("seed", 0xf160 + figure);
  exp::FigureReport report;
  switch (figure) {
    case 3:
      report = exp::runFigure3(seed, runs);
      break;
    case 4:
      report = exp::runFigure4(seed, runs);
      break;
    case 5:
      report = exp::runFigure5(seed, runs);
      break;
    case 6:
      report = exp::runFigure6(seed, runs);
      break;
    default:
      err << "error: --id must be one of 3, 4, 5, 6\n";
      return 1;
  }
  out << report.render();
  const std::string csvOut = args.get("csv-out");
  if (!csvOut.empty()) {
    std::ofstream csv(csvOut);
    if (!csv) {
      err << "error: cannot write '" << csvOut << "'\n";
      return 1;
    }
    csv << report.csv;
    out << "raw records: " << csvOut << '\n';
  }
  return 0;
}

int cmdProfile(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  if (!graph::isConnected(g)) {
    err << "error: profile needs a connected graph (try --family ws)\n";
    return 1;
  }
  describeGraph(g, out);
  coloring::MadecOptions options;
  options.seed = args.getUint("seed", 1);
  const exp::CompletionProfile profile =
      exp::madecCompletionProfile(g, options);
  out << "colors: " << profile.colors << '\n'
      << "completion rounds: p50=" << profile.p50 << " p90=" << profile.p90
      << " p99=" << profile.p99 << " last=" << profile.lastCompletion
      << '\n'
      << "termination detection: tree built in " << profile.treeBuildRounds
      << " rounds, root knows at round " << profile.detectionRound << " (+"
      << profile.detectionRound - profile.lastCompletion
      << " over last completion)\n";
  return 0;
}

int cmdAsync(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);
  coloring::MadecOptions options;
  options.seed = args.getUint("seed", 1);
  const auto sync = coloring::colorEdgesMadec(g, options);
  out << "sync: " << sync.metrics.computationRounds << " rounds, "
      << sync.metrics.broadcasts << " broadcasts, " << sync.colorsUsed()
      << " colors\n";
  const std::string kindName = args.get("synchronizer", "alpha");
  if (kindName == "beta" && !graph::isConnected(g)) {
    err << "error: the beta synchronizer needs a connected graph\n";
    return 1;
  }
  const coloring::Synchronizer kind = kindName == "beta"
                                          ? coloring::Synchronizer::Beta
                                          : coloring::Synchronizer::Alpha;
  net::DelayModel delays;
  delays.seed = args.getUint("delay-seed", 7);
  net::AsyncRunResult stats;
  const auto async =
      coloring::colorEdgesMadecAsync(g, options, delays, &stats, kind);
  out << "async (" << kindName << "): payload " << stats.payloadMessages
      << " + ack " << stats.ackMessages << " + control "
      << stats.safeMessages << " = " << stats.totalMessages()
      << " messages, sim time " << stats.simTime << '\n';
  const bool identical = sync.colors == async.colors;
  out << "identical coloring: " << (identical ? "yes" : "NO") << '\n';
  return identical ? 0 : 1;
}

int cmdChurn(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  describeGraph(g, out);

  dynamic::DynamicGraph overlay(g);
  dynamic::RecolorOptions recolor;
  recolor.seed = args.getUint("seed", 1);
  recolor.invitorBias = args.getDouble("bias", 0.5);
  dynamic::IncrementalRecolorer recolorer(overlay, recolor);

  dynamic::ChurnOptions churn;
  churn.seed = args.getUint("churn-seed", 0xc4u);
  churn.opsPerBatch = static_cast<std::size_t>(args.getUint("ops", 0));
  churn.rate = args.getDouble("rate", 0.01);
  churn.insertFraction = args.getDouble("insert-frac", 0.5);
  dynamic::EventStream stream(churn);

  const auto batches = static_cast<std::size_t>(args.getUint("batches", 10));

  // Batch 0 is the initial full coloring (the whole graph is the frontier);
  // subsequent batches repair only around the churned edges.
  support::TextTable table({"batch", "+ins", "-del", "evict", "frontier",
                            "cycles", "work", "colors", "2D-1", "valid"});
  bool allValid = true;
  std::size_t failures = 0;
  for (std::size_t b = 0; b <= batches; ++b) {
    dynamic::ChurnBatch batch;
    if (b > 0) {
      batch = stream.nextBatch(overlay);
      recolorer.applyBatch(batch);
    }
    const dynamic::RepairStats stats = recolorer.repair();
    const auto palette = coloring::summarizePalette(recolorer.colors());
    const std::size_t bound =
        overlay.maxDegree() == 0 ? 0 : 2 * overlay.maxDegree() - 1;
    const coloring::Verdict verdict =
        dynamic::verifyDynamicColoring(overlay, recolorer.colors());
    const bool valid = verdict.valid && stats.converged &&
                       palette.distinct <= std::max<std::size_t>(bound, 1);
    if (!valid) {
      allValid = false;
      ++failures;
      if (!verdict.valid) err << "batch " << b << ": " << verdict.reason
                              << '\n';
    }
    table.addRowOf(b, batch.inserts, batch.erases, stats.evictedEdges,
                   stats.frontierVertices, stats.cycles, stats.activeWork(),
                   palette.distinct, bound, valid ? "yes" : "NO");
  }
  out << table.render();
  out << "final: n=" << overlay.numVertices() << " m=" << overlay.numEdges()
      << " max-degree=" << overlay.maxDegree() << '\n';
  out << "all batches valid: " << (allValid ? "yes" : "NO") << '\n';
  if (!allValid) err << failures << " batch(es) failed validation\n";
  return allValid ? 0 : 1;
}

int cmdValidate(Args& args, std::ostream& out, std::ostream& err) {
  bool ok = false;
  const graph::Graph g = makeInputGraph(args, err, &ok);
  if (!ok) return 1;
  const std::string colorsPath = args.get("colors");
  if (colorsPath.empty()) {
    err << "error: validate needs --colors <file>\n";
    return 1;
  }
  bool loaded = false;
  const std::vector<coloring::Color> colors = loadColors(colorsPath, &loaded);
  if (!loaded) {
    err << "error: cannot read colors from '" << colorsPath << "'\n";
    return 1;
  }
  const std::string kind = args.get("kind", "edge");
  coloring::Verdict verdict;
  if (kind == "edge") {
    verdict = coloring::verifyEdgeColoring(g, colors, args.has("partial"));
  } else if (kind == "strong") {
    verdict = coloring::verifyStrongArcColoring(graph::Digraph(g), colors,
                                                args.has("partial"));
  } else if (kind == "vertex") {
    verdict = coloring::isProperVertexColoring(g, colors, args.has("partial"))
                  ? coloring::Verdict::ok()
                  : coloring::Verdict::fail("improper vertex coloring");
  } else {
    err << "error: --kind must be edge, strong or vertex\n";
    return 1;
  }
  out << (verdict.valid ? "valid" : "INVALID: " + verdict.reason) << '\n';
  return verdict.valid ? 0 : 1;
}

/// Comma-separated protocol list → FuzzProtocol values.
bool parseFuzzProtocols(const std::string& list, std::ostream& err,
                        std::vector<sim::FuzzProtocol>* out) {
  std::stringstream ss(list);
  std::string name;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    sim::FuzzProtocol p;
    if (!sim::fuzzProtocolFromName(name, &p)) {
      err << "error: unknown protocol '" << name
          << "' (madec, dima2ed, strong-madec, strong-madec-mutant, "
             "incremental)\n";
      return false;
    }
    out->push_back(p);
  }
  if (out->empty()) {
    err << "error: --protocols names no protocol\n";
    return false;
  }
  return true;
}

/// `dimacol fuzz`: chaos-test the protocols under the invariant monitor,
/// either by seeded random search (default) or by exhaustively enumerating
/// drop/crash fault patterns on tiny canonical graphs.
int cmdFuzz(Args& args, std::ostream& out, std::ostream& err) {
  const std::string mode = args.get("mode", "random");

  if (mode == "exhaustive") {
    std::vector<sim::FuzzProtocol> protocols;
    if (!parseFuzzProtocols(
            args.get("protocols", "madec,dima2ed,strong-madec"), err,
            &protocols)) {
      return 2;
    }
    sim::SweepOptions so;
    so.cyclesHorizon = args.getUint("cycles-horizon", 2);
    so.maxScriptedDrops =
        static_cast<std::size_t>(args.getUint("max-drops", 2));
    so.crashDropProducts = !args.has("no-crash-products");
    so.maxCycles = args.getUint("max-cycles", 64);

    // The canonical tiny topologies: every fault pattern is enumerable
    // within a CI budget, yet they already exercise chains, odd cycles and
    // full adjacency (P4, C5, K4).
    const std::vector<
        std::pair<std::size_t,
                  std::vector<std::pair<graph::VertexId, graph::VertexId>>>>
        shapes = {
            {4, {{0, 1}, {1, 2}, {2, 3}}},
            {5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}},
            {4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
        };
    std::vector<sim::FuzzCase> bases;
    for (const sim::FuzzProtocol p : protocols) {
      for (const auto& [n, edges] : shapes) {
        sim::FuzzCase base;
        base.protocol = p;
        base.numVertices = n;
        base.edges = edges;
        base.seed = args.getUint("seed", 1);
        bases.push_back(std::move(base));
      }
    }
    const sim::SweepReport report = sim::exhaustiveSweep(bases, so);
    out << "exhaustive sweep: " << report.casesRun << " cases over "
        << bases.size() << " (protocol, graph) bases, up to "
        << report.patterns << " fault patterns each\n";
    if (report.allSafe()) {
      out << "all safe\n";
      return 0;
    }
    out << report.failures.size() << " FAILING case(s); first repro:\n\n";
    const sim::SweepFailure& f = report.failures.front();
    out << sim::serializeRepro(sim::makeRepro(f.fuzzCase, f.outcome));
    return 1;
  }

  if (mode != "random") {
    err << "error: --mode must be random or exhaustive\n";
    return 2;
  }
  sim::RandomFuzzOptions fo;
  if (args.has("protocols") &&
      !parseFuzzProtocols(args.get("protocols"), err, &fo.protocols)) {
    return 2;
  }
  fo.seed = args.getUint("seed", 1);
  fo.iterations = static_cast<std::size_t>(args.getUint("iters", 200));
  fo.maxVertices = static_cast<std::size_t>(args.getUint("max-vertices", 10));
  fo.maxCycles = args.getUint("max-cycles", 512);
  const sim::RandomFuzzResult result = sim::randomFuzz(fo);
  out << "random fuzz: " << result.casesRun << " cases, " << result.failures
      << " failure(s)\n";
  if (!result.found()) return 0;

  for (const sim::Violation& v : result.firstOutcome.violations) {
    out << "  " << v.toString() << '\n';
  }
  const sim::ShrinkResult shrunk = sim::shrinkFailure(result.firstFailure);
  out << "shrunk to " << shrunk.minimized.numVertices << " vertices / "
      << shrunk.minimized.edges.size() << " edges in " << shrunk.runsUsed
      << " runs\n\n";
  const std::string repro =
      sim::serializeRepro(sim::makeRepro(shrunk.minimized, shrunk.outcome));
  out << repro;
  const std::string path = args.get("out");
  if (!path.empty()) {
    std::ofstream file(path);
    if (!file) {
      err << "error: cannot write '" << path << "'\n";
      return 2;
    }
    file << repro;
    out << "\nrepro written to " << path << '\n';
  }
  return 1;
}

/// `dimacol replay <file>`: re-run a committed repro and check that the
/// outcome still matches its `expect` line.
int cmdReplay(Args& args, std::ostream& out, std::ostream& err) {
  const std::string path = args.positional(1);
  if (path.empty()) {
    err << "error: replay needs a repro file argument\n";
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    err << "error: cannot read '" << path << "'\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  sim::Repro repro;
  std::string parseError;
  if (!sim::parseRepro(buffer.str(), &repro, &parseError)) {
    err << "error: " << path << ": " << parseError << '\n';
    return 2;
  }
  const sim::ReplayResult result = sim::replayRepro(repro);
  out << path << ": " << result.summary << '\n';
  if (!result.outcome.safe()) {
    for (const sim::Violation& v : result.outcome.violations) {
      out << "  " << v.toString() << '\n';
    }
  }
  return result.matched ? 0 : 1;
}

/// Splits "[HOST:]PORT" (dotted IPv4 or "localhost"); HOST defaults to
/// 127.0.0.1.
bool parseHostPort(const std::string& s, std::string* host,
                   std::uint16_t* port, std::ostream& err) {
  std::string portStr = s;
  const std::size_t colon = s.rfind(':');
  if (colon != std::string::npos) {
    *host = s.substr(0, colon);
    portStr = s.substr(colon + 1);
  } else {
    *host = "127.0.0.1";
  }
  char* end = nullptr;
  const unsigned long v = std::strtoul(portStr.c_str(), &end, 10);
  if (portStr.empty() || *end != '\0' || v == 0 || v > 65535) {
    err << "error: bad port in '" << s << "' (expected [HOST:]PORT)\n";
    return false;
  }
  *port = static_cast<std::uint16_t>(v);
  return true;
}

bool writeTextFile(const std::string& path, const std::string& text,
                   std::ostream& err) {
  std::ofstream f(path);
  if (f) f << text;
  if (!f) {
    err << "error: cannot write '" << path << "'\n";
    return false;
  }
  return true;
}

/// `dimacol serve --listen [HOST:]PORT`: the TCP transport around the same
/// service. Blocks until a client Shutdown (with --exit-on-shutdown) or a
/// signal kills the process — which is precisely what the failover drill
/// does to it.
int cmdServeListen(Args& args, std::ostream& out, std::ostream& err,
                   service::ColoringService& svc, bool monitor) {
  std::string host;
  std::uint16_t port = 0;
  if (!parseHostPort(args.get("listen"), &host, &port, err)) return 2;
  service::TransportOptions to;
  to.host = host;
  to.port = port;
  to.maxSessions = static_cast<std::size_t>(args.getUint("sessions", 16));
  to.logPath = args.get("log");
  to.snapshotEvery = args.getUint("snapshot-every", 0);
  to.snapshotPath = args.get("snapshot-path");
  // Grace per write before a peer that stopped reading is dropped; 0
  // disables the timeout (stop() still cannot deadlock behind a write).
  to.writeTimeoutMs =
      static_cast<std::uint32_t>(args.getUint("write-timeout-ms", 5000));
  to.exitOnShutdown = args.has("exit-on-shutdown");
  if (to.snapshotEvery > 0 && to.snapshotPath.empty()) {
    err << "error: --snapshot-every needs --snapshot-path\n";
    return 2;
  }

  service::TransportServer server(svc, to);
  std::string error;
  if (!server.start(&error)) {
    err << "error: " << error << '\n';
    return 1;
  }
  out << "listening: " << to.host << ':' << server.port() << '\n';
  out.flush();
  err << versionLine() << " serve --listen (sessions<=" << to.maxSessions
      << (to.logPath.empty() ? "" : ", log " + to.logPath) << ")\n";
  server.waitShutdown();
  server.stop();

  const auto& stats = server.stats();
  err << "transport: " << stats.sessionsAccepted.load() << " sessions, "
      << stats.commandsAdmitted.load() << " commands, "
      << stats.repliesWritten.load() << " replies, "
      << stats.framingErrors.load() << " framing errors, "
      << stats.replicasServed.load() << " replicas, "
      << stats.snapshotsTaken.load() << " snapshots\n";

  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && svc.ready() &&
      !writeTextFile(colorsOut, svc.colorTable(), err)) {
    return 1;
  }
  const std::string statsOut = args.get("stats-out");
  if (!statsOut.empty() &&
      !writeTextFile(statsOut, svc.statsTable(), err)) {
    return 1;
  }
  if (monitor) {
    err << "monitor violations: " << svc.violations().size() << '\n';
    if (!svc.violations().empty()) return 1;
  }
  return 0;
}

/// `dimacol serve --replica-of HOST:PORT`: warm standby. Syncs a bootstrap,
/// follows the replicated command stream, and on primary EOF *is* the
/// primary state — colors and stats land in --colors-out/--stats-out.
int cmdServeReplica(Args& args, std::ostream& out, std::ostream& err) {
  std::string host;
  std::uint16_t port = 0;
  if (!parseHostPort(args.get("replica-of"), &host, &port, err)) return 2;

  // The primary may still be binding (CI starts both in one script):
  // retry the connect briefly instead of demanding strict ordering.
  std::string error;
  service::Fd fd;
  const auto retries = args.getUint("connect-retries", 50);
  for (std::uint64_t attempt = 0;; ++attempt) {
    fd = service::connectTcp(host, port, &error);
    if (fd.valid()) break;
    if (attempt >= retries) {
      err << "error: cannot connect to " << host << ':' << port << ": "
          << error << '\n';
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  service::ReplicaClient replica;
  if (!replica.sync(fd.get(), &error, args.has("monitor"))) {
    err << "error: replica sync failed: " << error << '\n';
    return 1;
  }
  err << versionLine() << " serve --replica-of " << host << ':' << port
      << " (synced)\n";
  if (!replica.followUntilEof(fd.get(), &error)) {
    err << "error: replication stream broke: " << error << '\n';
    return 1;
  }
  const std::unique_ptr<service::ColoringService> svc = replica.takeService();
  out << "promoted: " << replica.applied() << " replicated commands applied\n";
  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && svc != nullptr && svc->ready() &&
      !writeTextFile(colorsOut, svc->colorTable(), err)) {
    return 1;
  }
  const std::string statsOut = args.get("stats-out");
  if (!statsOut.empty() && svc != nullptr &&
      !writeTextFile(statsOut, svc->statsTable(), err)) {
    return 1;
  }
  if (args.has("monitor") && svc != nullptr) {
    err << "monitor violations: " << svc->violations().size() << '\n';
    if (!svc->violations().empty()) return 1;
  }
  return 0;
}

/// `dimacol serve`: the long-running coloring service. Binary replies go
/// to stdout; human diagnostics go to stderr, so a piped session stays a
/// clean wire stream.
int cmdServe(Args& args, std::ostream& out, std::ostream& err) {
  if (args.has("hostile")) {
    service::HostileOptions ho;
    ho.seed = args.getUint("seed", ho.seed);
    ho.rounds = static_cast<std::size_t>(args.getUint("rounds", 60));
    ho.n = static_cast<std::uint32_t>(args.getUint("n", 48));
    ho.commands = static_cast<std::size_t>(args.getUint("commands", 120));
    ho.maxBatch = static_cast<std::size_t>(args.getUint("max-batch", 16));
    ho.socket = args.has("socket");
    ho.verbose = args.has("verbose");
    const service::HostileReport report = service::runHostileCampaign(ho);
    out << "hostile campaign: " << report.rounds << " rounds ("
        << (ho.socket ? "socket" : "pipe") << " path), "
        << report.commandsServed << " commands served\n"
        << "  sessions: clean=" << report.cleanSessions
        << " framing-rejects=" << report.framingRejections
        << " truncated=" << report.truncatedSessions << '\n'
        << "  error replies: " << report.errorReplies << '\n'
        << "monitor violations: " << report.monitorViolations
        << ", verify failures: " << report.verifyFailures << '\n';
    if (!report.ok()) {
      err << "FIRST FAILURE: " << report.firstFailure << '\n';
      return 1;
    }
    out << "invariant catalog clean\n";
    return 0;
  }

  if (args.has("replica-of")) return cmdServeReplica(args, out, err);

  service::ServiceOptions so;
  so.seed = args.getUint("seed", so.seed);
  so.policy.maxBatch =
      static_cast<std::size_t>(args.getUint("max-batch", 64));
  so.policy.maxStaleness =
      static_cast<std::size_t>(args.getUint("max-staleness", 0));
  so.monitor = args.has("monitor");
  so.detTime = args.has("det-time");

  std::unique_ptr<service::ColoringService> svc;
  const std::string recoverLog = args.get("recover-log");
  const std::string restore = args.get("restore");
  if (!recoverLog.empty()) {
    service::LogRecoverResult recovered;
    std::string error;
    if (!service::recoverFromLog(recoverLog, so, &recovered, &error)) {
      err << "error: " << error << '\n';
      return 1;
    }
    svc = std::move(recovered.service);
    err << versionLine() << " serve (recovered " << recoverLog << ": "
        << recovered.applied << " commands replayed"
        << (recovered.checkpointPath.empty()
                ? std::string(" from scratch")
                : " after " + recovered.checkpointPath)
        << (recovered.torn ? ", torn tail dropped" : "") << ")\n";
  } else if (!restore.empty()) {
    service::Checkpoint cp;
    std::string error;
    if (!service::loadCheckpoint(restore, &cp, &error)) {
      err << "error: " << error << '\n';
      return 1;
    }
    svc = std::make_unique<service::ColoringService>(cp, so);
    err << versionLine() << " serve (restored " << restore << ": n=" << cp.n
        << ", " << cp.slots.size() << " edge slots, epoch " << cp.epoch
        << ", " << cp.repairs << " repairs)\n";
  } else {
    svc = std::make_unique<service::ColoringService>(so);
    err << versionLine() << " serve\n";
  }

  if (args.has("listen")) {
    return cmdServeListen(args, out, err, *svc, so.monitor);
  }

  std::ifstream fileIn;
  std::istream* in = &std::cin;
  const std::string inPath = args.get("in");
  if (!inPath.empty()) {
    fileIn.open(inPath, std::ios::binary);
    if (!fileIn) {
      err << "error: cannot read '" << inPath << "'\n";
      return 1;
    }
    in = &fileIn;
  }

  const service::SessionResult session = service::runSession(*svc, *in, out);
  err << "session: " << session.commands << " commands, " << session.replies
      << " replies, ";
  if (session.shutdown) {
    err << "shutdown\n";
  } else if (session.framingError) {
    err << "framing error: " << session.error << '\n';
  } else if (session.truncated) {
    err << "truncated mid-frame\n";
  } else {
    err << "eof\n";
  }

  const std::string colorsOut = args.get("colors-out");
  if (!colorsOut.empty() && svc->ready()) {
    std::ofstream f(colorsOut);
    if (!f) {
      err << "error: cannot write '" << colorsOut << "'\n";
      return 1;
    }
    f << svc->colorTable();
    err << "colors: " << colorsOut << " (digest " << svc->colorDigest()
        << ")\n";
  }
  const std::string statsOut = args.get("stats-out");
  if (!statsOut.empty() && !writeTextFile(statsOut, svc->statsTable(), err)) {
    return 1;
  }
  if (so.monitor) {
    err << "monitor violations: " << svc->violations().size() << '\n';
    for (const sim::Violation& v : svc->violations()) {
      err << "  " << v.toString() << '\n';
    }
    if (!svc->violations().empty()) return 1;
  }
  return session.clean() ? 0 : 1;
}

/// `dimacol serve-stream`: deterministic client workloads on disk — the
/// full run plus the head (ends in Snapshot) / tail (resumes) split the
/// checkpoint smoke test replays.
int cmdServeStream(Args& args, std::ostream& out, std::ostream& err) {
  const std::string prefix = args.get("out-prefix");
  if (prefix.empty()) {
    err << "error: serve-stream needs --out-prefix <path>\n";
    return 2;
  }
  service::StreamSpec spec;
  spec.seed = args.getUint("seed", spec.seed);
  spec.n = static_cast<std::uint32_t>(args.getUint("n", spec.n));
  spec.commands =
      static_cast<std::size_t>(args.getUint("commands", spec.commands));
  spec.queryFraction = args.getDouble("query-frac", spec.queryFraction);
  spec.insertFraction = args.getDouble("insert-frac", spec.insertFraction);
  spec.split = static_cast<std::size_t>(args.getUint("split", 0));
  const std::string snapshot = args.get("snapshot", prefix + ".ckpt");
  const service::StreamBundle bundle = service::buildStreams(spec, snapshot);

  const auto write = [&err](const std::string& path,
                            const std::vector<std::uint8_t>& bytes) {
    std::ofstream f(path, std::ios::binary);
    if (f) {
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    }
    if (!f) err << "error: cannot write '" << path << "'\n";
    return static_cast<bool>(f);
  };
  if (!write(prefix + ".full.bin", bundle.full) ||
      !write(prefix + ".head.bin", bundle.head) ||
      !write(prefix + ".tail.bin", bundle.tail)) {
    return 1;
  }
  out << "streams: " << spec.commands << " commands over n=" << spec.n
      << " (seed " << spec.seed << ")\n"
      << "  " << prefix << ".full.bin  (" << bundle.full.size() << " bytes)\n"
      << "  " << prefix << ".head.bin  (" << bundle.head.size()
      << " bytes, snapshots to " << snapshot << ")\n"
      << "  " << prefix << ".tail.bin  (" << bundle.tail.size()
      << " bytes, resumes via --restore)\n";
  return 0;
}

/// `dimacol serve-client --connect HOST:PORT --in FILE`: streams a wire
/// file into a listening server and writes every reply byte to --out (or
/// stdout). The write half closes after the stream; replies drain until
/// the server ends the session.
int cmdServeClient(Args& args, std::ostream& out, std::ostream& err) {
  std::string host;
  std::uint16_t port = 0;
  if (!parseHostPort(args.get("connect"), &host, &port, err)) return 2;
  const std::string inPath = args.get("in");
  if (inPath.empty()) {
    err << "error: serve-client needs --in <stream>\n";
    return 2;
  }
  std::ifstream in(inPath, std::ios::binary);
  if (!in) {
    err << "error: cannot read '" << inPath << "'\n";
    return 1;
  }
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  std::string error;
  service::Fd fd = service::connectTcp(host, port, &error);
  if (!fd.valid()) {
    err << "error: cannot connect to " << host << ':' << port << ": "
        << error << '\n';
    return 1;
  }
  std::thread writer([&] {
    (void)!service::writeAll(
        fd.get(), reinterpret_cast<const std::uint8_t*>(bytes.data()),
        bytes.size());
    service::shutdownWrite(fd.get());
  });

  std::ofstream fileOut;
  std::ostream* replyOut = &out;
  const std::string outPath = args.get("out");
  if (!outPath.empty()) {
    fileOut.open(outPath, std::ios::binary);
    if (!fileOut) {
      err << "error: cannot write '" << outPath << "'\n";
      writer.join();
      return 1;
    }
    replyOut = &fileOut;
  }
  std::uint8_t chunk[8192];
  std::ptrdiff_t got;
  std::uint64_t replyBytes = 0;
  while ((got = service::readSome(fd.get(), chunk, sizeof(chunk))) > 0) {
    replyOut->write(reinterpret_cast<const char*>(chunk),
                    static_cast<std::streamsize>(got));
    replyBytes += static_cast<std::uint64_t>(got);
  }
  writer.join();
  err << "serve-client: " << bytes.size() << " bytes sent, " << replyBytes
      << " reply bytes\n";
  return 0;
}

/// `dimacol failover-drill`: kill-the-primary-at-every-epoch-boundary
/// sweep; exit 0 iff every promoted standby matches the golden run
/// byte-for-byte.
int cmdFailoverDrill(Args& args, std::ostream& out, std::ostream& err) {
  service::DrillOptions options;
  options.spec.seed = args.getUint("seed", options.spec.seed);
  options.spec.n =
      static_cast<std::uint32_t>(args.getUint("n", options.spec.n));
  options.spec.commands =
      static_cast<std::size_t>(args.getUint("commands", 200));
  options.spec.queryFraction =
      args.getDouble("query-frac", options.spec.queryFraction);
  options.policy.maxBatch =
      static_cast<std::size_t>(args.getUint("max-batch", 16));
  options.policy.maxStaleness =
      static_cast<std::size_t>(args.getUint("max-staleness", 0));
  options.serviceSeed = args.getUint("service-seed", options.serviceSeed);
  options.maxKillPoints =
      static_cast<std::size_t>(args.getUint("max-kill-points", 0));
  options.verbose = args.has("verbose");

  const service::DrillReport report = service::runFailoverDrill(options);
  out << "failover drill: " << report.killPoints << " kill points over "
      << report.epochBoundaries << " epoch boundaries\n"
      << "  takeovers byte-identical: " << report.passed << '/'
      << report.killPoints << '\n'
      << "  golden color digest: " << report.goldenColorDigest << '\n';
  if (!report.ok()) {
    err << "FIRST FAILURE: " << report.firstFailure << '\n';
    return 1;
  }
  out << "all takeovers byte-identical\n";
  return 0;
}

/// `dimacol bench-serve`: sustained churn through the wire path; commits
/// commands/s and repair-latency quantiles to BENCH_service.json.
int cmdBenchServe(Args& args, std::ostream& out, std::ostream& err) {
  service::StreamSpec spec;
  spec.seed = args.getUint("seed", spec.seed);
  spec.n = static_cast<std::uint32_t>(args.getUint("n", 128));
  spec.commands =
      static_cast<std::size_t>(args.getUint("commands", 4000));
  spec.queryFraction = args.getDouble("query-frac", spec.queryFraction);
  spec.insertFraction = args.getDouble("insert-frac", spec.insertFraction);
  service::EpochPolicy policy;
  policy.maxBatch = static_cast<std::size_t>(args.getUint("max-batch", 64));
  policy.maxStaleness =
      static_cast<std::size_t>(args.getUint("max-staleness", 0));

  const service::ServeBenchReport r = service::runServeBench(spec, policy);

  // --sessions K adds a concurrent-transport measurement: K clean clients
  // over real TCP sessions into one service (no hostile traffic — this is
  // the throughput number, not the robustness gate).
  const auto sessions = static_cast<std::size_t>(args.getUint("sessions", 0));
  service::SoakReport tr;
  if (sessions > 0) {
    service::SoakSpec soak;
    soak.seed = spec.seed;
    soak.n = spec.n;
    soak.cleanSessions = sessions;
    soak.hostileSessions = 0;
    soak.commands = spec.commands;
    soak.hostileRounds = 0;
    soak.maxBatch = policy.maxBatch;
    soak.queryFraction = spec.queryFraction;
    soak.monitor = false;
    tr = service::runSoakCampaign(soak);
  }

  support::TextTable table({"metric", "value"});
  table.addRowOf("commands", r.commands);
  table.addRowOf("mutations admitted", r.mutations);
  table.addRowOf("queries", r.queries);
  table.addRowOf("epochs", r.epochs);
  table.addRowOf("commands/s", r.commandsPerSec);
  table.addRowOf("mean epoch batch", r.meanEpochBatch);
  table.addRowOf("repair p50 (us)", r.p50RepairMicros);
  table.addRowOf("repair p99 (us)", r.p99RepairMicros);
  table.addRowOf("backlog peak", r.backlogPeak);
  table.addRowOf("final edges", r.finalEdges);
  if (sessions > 0) {
    table.addRowOf("transport sessions", tr.sessions);
    table.addRowOf("transport commands/s", tr.commandsPerSec);
    table.addRowOf("transport p50 (us)", tr.p50RepairMicros);
    table.addRowOf("transport p99 (us)", tr.p99RepairMicros);
  }
  out << table.render();
  out << "color digest: " << r.colorDigest << '\n';

  const std::string jsonOut = args.get("json-out");
  if (!jsonOut.empty()) {
    std::FILE* f = std::fopen(jsonOut.c_str(), "w");
    if (f == nullptr) {
      err << "error: cannot write '" << jsonOut << "'\n";
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"config\": {\n");
    std::fprintf(f, "    \"seed\": %llu,\n",
                 static_cast<unsigned long long>(spec.seed));
    std::fprintf(f, "    \"vertices\": %u,\n", spec.n);
    std::fprintf(f, "    \"commands\": %zu,\n", spec.commands);
    std::fprintf(f, "    \"query_fraction\": %.3f,\n", spec.queryFraction);
    std::fprintf(f, "    \"insert_fraction\": %.3f,\n", spec.insertFraction);
    std::fprintf(f, "    \"max_batch\": %zu,\n", policy.maxBatch);
    std::fprintf(f, "    \"max_staleness\": %zu,\n", policy.maxStaleness);
    std::fprintf(f, "    \"git_commit\": \"%s\",\n", DIMA_GIT_COMMIT);
    std::fprintf(f, "    \"compiler\": \"%s\",\n", DIMA_COMPILER_STRING);
    std::fprintf(f, "    \"bitplane_isa\": \"%s\"\n",
                 automata::bitplane::isaName(automata::bitplane::activeIsa()));
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"results\": {\n");
    std::fprintf(f, "    \"commands\": %llu,\n",
                 static_cast<unsigned long long>(r.commands));
    std::fprintf(f, "    \"mutations_admitted\": %llu,\n",
                 static_cast<unsigned long long>(r.mutations));
    std::fprintf(f, "    \"queries\": %llu,\n",
                 static_cast<unsigned long long>(r.queries));
    std::fprintf(f, "    \"epochs\": %llu,\n",
                 static_cast<unsigned long long>(r.epochs));
    std::fprintf(f, "    \"seconds\": %.6f,\n", r.seconds);
    std::fprintf(f, "    \"commands_per_sec\": %.1f,\n", r.commandsPerSec);
    std::fprintf(f, "    \"mean_epoch_batch\": %.2f,\n", r.meanEpochBatch);
    std::fprintf(f, "    \"repair_latency_p50_us\": %llu,\n",
                 static_cast<unsigned long long>(r.p50RepairMicros));
    std::fprintf(f, "    \"repair_latency_p99_us\": %llu,\n",
                 static_cast<unsigned long long>(r.p99RepairMicros));
    std::fprintf(f, "    \"backlog_peak\": %zu,\n", r.backlogPeak);
    std::fprintf(f, "    \"final_edges\": %zu,\n", r.finalEdges);
    std::fprintf(f, "    \"color_digest\": %llu\n",
                 static_cast<unsigned long long>(r.colorDigest));
    if (sessions > 0) {
      std::fprintf(f, "  },\n");
      std::fprintf(f, "  \"transport\": {\n");
      std::fprintf(f, "    \"sessions\": %zu,\n", tr.sessions);
      std::fprintf(f, "    \"commands_admitted\": %llu,\n",
                   static_cast<unsigned long long>(tr.commandsAdmitted));
      std::fprintf(f, "    \"replies_written\": %llu,\n",
                   static_cast<unsigned long long>(tr.repliesWritten));
      std::fprintf(f, "    \"seconds\": %.6f,\n", tr.seconds);
      std::fprintf(f, "    \"commands_per_sec\": %.1f,\n", tr.commandsPerSec);
      std::fprintf(f, "    \"repair_latency_p50_us\": %llu,\n",
                   static_cast<unsigned long long>(tr.p50RepairMicros));
      std::fprintf(f, "    \"repair_latency_p99_us\": %llu\n",
                   static_cast<unsigned long long>(tr.p99RepairMicros));
      std::fprintf(f, "  }\n");
    } else {
      std::fprintf(f, "  }\n");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    out << "json: " << jsonOut << '\n';
  }
  return 0;
}

}  // namespace

std::string versionLine() { return std::string("dimacol ") + kVersionString; }

std::string usage() {
  std::ostringstream oss;
  oss << versionLine()
      << " — distributed matching-automata edge coloring "
         "(Daigle & Prasad, IPPS 2012)\n\n"
         "usage: dimacol <command> [options]\n\n"
         "commands:\n"
         "  gen       generate a graph           (--family er|gnp|ba|ws|tree|"
         "regular|complete|cycle|path|star|grid|geometric, --n, --deg/--m/"
         "--k/--p/--power/--beta/--radius, --graph-seed, --out)\n"
         "  ingest    convert SNAP/DIMACS/edge-list to a mmap-able CSR "
         "image (ingest <input> --out <file.csr>, --format)\n"
         "  color     edge coloring              (--algo madec|greedy|"
         "misra-gries|pal, --engine reference|bitplane, --shards K, "
         "--partition block|degree, --workers W, --seed, --bias, "
         "--colors-out, --dot-out)\n"
         "  strong    strong distance-2 coloring (--algo dima2ed|greedy, "
         "--mode strict|paper, --engine reference|bitplane, --undirected, "
         "--shards, --partition, --workers, --seed)\n"
         "  matching  maximal matching via the discovery automaton "
         "(--engine reference|bitplane, --shards, --partition, --workers)\n"
         "  cover     2-approx vertex cover via the automaton\n"
         "  mis       maximal independent set (Luby)\n"
         "  vcolor    distributed (Delta+1) vertex coloring\n"
         "  figure    regenerate a paper figure  (--id 3|4|5|6, --runs, "
         "--seed, --csv-out)\n"
         "  profile   per-node completion quantiles + termination "
         "detection cost (connected graphs)\n"
         "  async     run madec on an async network via a synchronizer "
         "(--synchronizer alpha|beta, --delay-seed)\n"
         "  churn     incremental recoloring under topology churn "
         "(--batches, --rate|--ops, --insert-frac, --churn-seed, --seed)\n"
         "  validate  check a coloring file      (--colors <file>, --kind "
         "edge|strong|vertex, --partial)\n"
         "  fuzz      chaos-test the protocols   (--mode random|exhaustive, "
         "--iters, --seed, --protocols <list>, --max-vertices, --max-cycles, "
         "--cycles-horizon, --out <repro>)\n"
         "  replay    re-run a repro file        (replay <file>; exit 0 iff "
         "the pinned outcome reproduces)\n"
         "  serve     long-running coloring service (wire protocol on "
         "stdin/stdout; --in <stream>, --restore <ckpt>, --recover-log "
         "<log>, --max-batch, --max-staleness, --monitor, --det-time, "
         "--colors-out, --stats-out, --hostile [--socket]); with --listen "
         "[HOST:]PORT it serves N TCP sessions (--sessions, --log, "
         "--snapshot-every, --snapshot-path, --write-timeout-ms, "
         "--exit-on-shutdown); with "
         "--replica-of HOST:PORT it runs as a warm standby and promotes "
         "itself when the primary dies\n"
         "  serve-client  stream a wire file into a listening server "
         "(--connect HOST:PORT, --in <stream>, --out <replies>)\n"
         "  failover-drill  kill-the-primary sweep over every epoch "
         "boundary; takeovers must be byte-identical (--commands, --n, "
         "--seed, --max-batch, --max-kill-points, --verbose)\n"
         "  serve-stream  generate client streams for serve "
         "(--out-prefix, --commands, --n, --seed, --split, --snapshot)\n"
         "  bench-serve   sustained-churn service benchmark "
         "(--commands, --n, --max-batch, --sessions K, "
         "--json-out BENCH_service.json)\n"
         "  version   print \"" << versionLine() << "\" and exit "
         "(also --version)\n"
         "  help      this text\n\n"
         "every command accepts --input <file> instead of a generator "
         "family; --format auto|edgelist|snap|dimacs|csr picks the parser "
         "(auto sniffs by extension, magic and content). `color --algo "
         "madec --input g.csr` runs off the memory-mapped image without "
         "materializing the graph.\n";
  return oss.str();
}

int runCommand(Args& args, std::ostream& out, std::ostream& err) {
  const std::string command = args.positional(0, "help");
  if (args.has("version") || command == "version") {
    out << versionLine() << '\n';
    return 0;
  }
  int code = 0;
  if (command == "gen") {
    code = cmdGen(args, out, err);
  } else if (command == "ingest") {
    code = cmdIngest(args, out, err);
  } else if (command == "color") {
    code = cmdColor(args, out, err);
  } else if (command == "strong") {
    code = cmdStrong(args, out, err);
  } else if (command == "matching") {
    code = cmdMatching(args, out, err);
  } else if (command == "cover") {
    code = cmdCover(args, out, err);
  } else if (command == "mis") {
    code = cmdMis(args, out, err);
  } else if (command == "vcolor") {
    code = cmdVertexColor(args, out, err);
  } else if (command == "figure") {
    code = cmdFigure(args, out, err);
  } else if (command == "profile") {
    code = cmdProfile(args, out, err);
  } else if (command == "async") {
    code = cmdAsync(args, out, err);
  } else if (command == "churn") {
    code = cmdChurn(args, out, err);
  } else if (command == "validate") {
    code = cmdValidate(args, out, err);
  } else if (command == "fuzz") {
    code = cmdFuzz(args, out, err);
  } else if (command == "replay") {
    code = cmdReplay(args, out, err);
  } else if (command == "serve") {
    code = cmdServe(args, out, err);
  } else if (command == "serve-client") {
    code = cmdServeClient(args, out, err);
  } else if (command == "failover-drill") {
    code = cmdFailoverDrill(args, out, err);
  } else if (command == "serve-stream") {
    code = cmdServeStream(args, out, err);
  } else if (command == "bench-serve") {
    code = cmdBenchServe(args, out, err);
  } else if (command == "help" || command.empty()) {
    out << usage();
  } else {
    err << "error: unknown command '" << command << "'\n" << usage();
    return 2;
  }
  if (!args.ok()) {
    for (const std::string& e : args.errors()) err << "error: " << e << '\n';
    return 2;
  }
  for (const std::string& name : args.unusedOptions()) {
    err << "warning: unused option --" << name << '\n';
  }
  return code;
}

}  // namespace dima::cli
