#pragma once

/// \file args.hpp
/// Minimal command-line option parser for the `dimacol` tool. Syntax:
/// positionals plus `--name value` / `--flag` options (a `--name` followed
/// by another `--option` or end-of-line is a boolean flag). Typed getters
/// record errors instead of throwing so the tool can report all problems
/// at once.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dima::cli {

class Args {
 public:
  Args(int argc, const char* const* argv);
  explicit Args(const std::vector<std::string>& tokens);

  /// Positional arguments in order (the first is the subcommand).
  const std::vector<std::string>& positionals() const { return positionals_; }
  std::string positional(std::size_t i, const std::string& fallback = "") const;

  /// Flag presence. Marks the flag read, so boolean options (`--hostile`,
  /// `--partial`, ...) don't trip the unused-option warning.
  bool has(const std::string& name) const {
    const bool present = options_.contains(name);
    if (present) touched_[name] = true;
    return present;
  }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback);
  std::uint64_t getUint(const std::string& name, std::uint64_t fallback);
  double getDouble(const std::string& name, double fallback);

  /// Options that were never read by a getter (likely typos).
  std::vector<std::string> unusedOptions() const;

  /// Parse/convert errors accumulated by the getters.
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

 private:
  void parse(const std::vector<std::string>& tokens);

  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> errors_;
};

}  // namespace dima::cli
