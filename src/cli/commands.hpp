#pragma once

/// \file commands.hpp
/// Subcommand implementations for the `dimacol` command-line tool. Each
/// command takes parsed arguments and an output stream and returns a
/// process exit code, which keeps them directly unit-testable.
///
/// Subcommands:
///   gen       generate a workload graph and print/save its edge list
///   color     distributed/sequential edge coloring (madec | greedy |
///             misra-gries | pal) with validation and cost report
///   strong    strong distance-2 arc coloring (dima2ed strict/paper,
///             greedy) on the symmetric digraph
///   matching  maximal matching via the discovery automaton
///   cover     2-approximate vertex cover via the automaton
///   mis       maximal independent set (Luby) on the same substrate
///   vcolor    distributed (Δ+1) vertex coloring
///   figure    regenerate a paper figure (3..6)
///   churn     incremental recoloring under topology churn (per-batch
///             repair stats against the dynamic overlay)
///   validate  check a coloring file against a graph
///   fuzz      chaos-test the protocols under the invariant monitor
///             (random search or exhaustive fault enumeration; failures
///             are shrunk and printed as replayable repro files)
///   replay    re-run a repro file and check its pinned outcome
///   serve     long-running coloring service over the wire protocol
///             (PROTOCOLS.md §12); --restore resumes a checkpoint,
///             --hostile runs the adversarial-client campaign
///   serve-stream  generate deterministic client streams (full/head/tail)
///             for the checkpoint/restore smoke test
///   bench-serve   sustained-churn service benchmark (BENCH_service.json)
///   version   print the version line
///   help      usage

#include <iosfwd>
#include <string>

#include "src/cli/args.hpp"

namespace dima::cli {

/// Entry point used by tools/dimacol.cpp; dispatches on positional 0.
int runCommand(Args& args, std::ostream& out, std::ostream& err);

/// Usage text.
std::string usage();

/// The one place the tool renders its identity: "dimacol <semver>" from
/// support/version.hpp. Used by `--version`, `help`, and the serve banner.
std::string versionLine();

}  // namespace dima::cli
