#include "src/experiments/harness.hpp"

#include "src/graph/metrics.hpp"

namespace dima::exp {

namespace {

/// Deterministic per-(spec, run) seeds so sweeps are reproducible and
/// individual runs can be replayed in isolation.
std::uint64_t runSeed(std::uint64_t master, std::size_t specIndex,
                      std::size_t run) {
  return support::mix64(support::mix64(master, specIndex), run);
}

}  // namespace

std::vector<RunRecord> sweepMadec(const SweepConfig& config,
                                  const coloring::MadecOptions& base) {
  std::vector<RunRecord> records;
  records.reserve(config.specs.size() * config.runsPerSpec);
  for (std::size_t si = 0; si < config.specs.size(); ++si) {
    for (std::size_t run = 0; run < config.runsPerSpec; ++run) {
      const std::uint64_t seed = runSeed(config.seed, si, run);
      support::Rng graphRng(support::mix64(seed, 0x6a1));
      const graph::Graph g = makeGraph(config.specs[si], graphRng);

      coloring::MadecOptions options = base;
      options.seed = seed;
      const coloring::EdgeColoringResult result =
          coloring::colorEdgesMadec(g, options);

      RunRecord rec;
      rec.specIndex = si;
      rec.n = g.numVertices();
      rec.delta = g.maxDegree();
      rec.rounds = result.metrics.computationRounds;
      rec.commRounds = result.metrics.commRounds;
      rec.broadcasts = result.metrics.broadcasts;
      rec.colors = result.colorsUsed();
      rec.colorExcess = static_cast<std::int64_t>(rec.colors) -
                        static_cast<std::int64_t>(rec.delta);
      rec.converged = result.metrics.converged;
      rec.valid = static_cast<bool>(coloring::verifyEdgeColoring(
          g, result.colors, /*allowPartial=*/!result.metrics.converged));
      records.push_back(rec);
    }
  }
  return records;
}

std::vector<RunRecord> sweepDima2Ed(const SweepConfig& config,
                                    const coloring::Dima2EdOptions& base) {
  std::vector<RunRecord> records;
  records.reserve(config.specs.size() * config.runsPerSpec);
  for (std::size_t si = 0; si < config.specs.size(); ++si) {
    for (std::size_t run = 0; run < config.runsPerSpec; ++run) {
      const std::uint64_t seed = runSeed(config.seed, si, run);
      support::Rng graphRng(support::mix64(seed, 0x6a1));
      const graph::Graph g = makeGraph(config.specs[si], graphRng);
      const graph::Digraph d(g);

      coloring::Dima2EdOptions options = base;
      options.seed = seed;
      const coloring::ArcColoringResult result =
          coloring::colorArcsDima2Ed(d, options);

      RunRecord rec;
      rec.specIndex = si;
      rec.n = g.numVertices();
      rec.delta = g.maxDegree();
      rec.rounds = result.metrics.computationRounds;
      rec.commRounds = result.metrics.commRounds;
      rec.broadcasts = result.metrics.broadcasts;
      rec.colors = result.colorsUsed();
      rec.colorExcess =
          static_cast<std::int64_t>(rec.colors) -
          static_cast<std::int64_t>(graph::strongColoringLowerBound(g));
      rec.converged = result.metrics.converged;
      rec.conflicts = coloring::countStrongConflicts(d, result.colors);
      rec.valid = static_cast<bool>(coloring::verifyStrongArcColoring(
          d, result.colors, /*allowPartial=*/!result.metrics.converged));
      records.push_back(rec);
    }
  }
  return records;
}

SweepSummary summarize(const std::vector<GraphSpec>& specs,
                       const std::vector<RunRecord>& records) {
  SweepSummary summary;
  summary.perSpec.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    summary.perSpec[i].spec = specs[i];
  }
  for (const RunRecord& rec : records) {
    DIMA_REQUIRE(rec.specIndex < specs.size(), "record spec out of range");
    SpecAggregate& agg = summary.perSpec[rec.specIndex];
    const auto delta = static_cast<double>(rec.delta);
    const auto rounds = static_cast<double>(rec.rounds);
    agg.delta.add(delta);
    agg.rounds.add(rounds);
    agg.colors.add(static_cast<double>(rec.colors));
    if (rec.delta > 0) agg.roundsPerDelta.add(rounds / delta);
    agg.colorExcess.add(rec.colorExcess);
    ++agg.runs;
    if (!rec.valid) ++agg.invalidRuns;
    if (!rec.converged) ++agg.unconverged;
    if (rec.conflicts > 0) ++agg.conflictRuns;

    summary.roundsVsDelta.add(delta, rounds);
    summary.colorExcess.add(rec.colorExcess);
    ++summary.runs;
    if (!rec.valid) ++summary.invalidRuns;
    if (!rec.converged) ++summary.unconverged;
  }
  return summary;
}

}  // namespace dima::exp
