#include "src/experiments/profile.hpp"

#include <algorithm>

#include "src/graph/metrics.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/net/trace.hpp"
#include "src/support/stats.hpp"

namespace dima::exp {

CompletionProfile madecCompletionProfile(const graph::Graph& g,
                                         coloring::MadecOptions options,
                                         graph::VertexId detectionRoot) {
  DIMA_REQUIRE(graph::isConnected(g),
               "completion profile needs a connected graph (the "
               "convergecast tree must span it)");
  net::TraceLog trace;
  trace.enable();
  options.trace = &trace;
  options.pool = nullptr;
  const coloring::EdgeColoringResult result =
      coloring::colorEdgesMadec(g, options);
  DIMA_REQUIRE(result.metrics.converged, "profiled run did not converge");

  CompletionProfile profile;
  profile.colors = result.colorsUsed();
  // Nodes done at initialization (degree 0) never emit NodeDone; default 0.
  // NodeDone events carry the cycle in which the node retired; the node is
  // "done at the end of" that cycle, i.e. available to report in cycle+1 —
  // we use the cycle index itself, consistent with lastCompletion being the
  // run's round count.
  profile.completionRound.assign(g.numVertices(), 0);
  for (const net::TraceEvent& event : trace.events()) {
    if (event.kind == net::TraceKind::NodeDone) {
      profile.completionRound[event.node] = event.cycle + 1;
    }
  }
  std::vector<double> samples;
  samples.reserve(g.numVertices());
  for (std::uint64_t r : profile.completionRound) {
    profile.lastCompletion = std::max(profile.lastCompletion, r);
    samples.push_back(static_cast<double>(r));
  }
  profile.p50 = support::quantile(samples, 0.5);
  profile.p90 = support::quantile(samples, 0.9);
  profile.p99 = support::quantile(samples, 0.99);

  const net::SpanningTree tree =
      net::buildSpanningTreeFlood(g, detectionRoot);
  profile.treeBuildRounds = tree.buildRounds;
  profile.detectionRound = net::detectionRound(tree, profile.completionRound);
  return profile;
}

}  // namespace dima::exp
