#include "src/experiments/workload.hpp"

#include <cmath>
#include <sstream>

#include "src/support/assert.hpp"

namespace dima::exp {

const char* familyName(Family f) {
  switch (f) {
    case Family::ErdosRenyi:
      return "erdos-renyi";
    case Family::ScaleFree:
      return "scale-free";
    case Family::SmallWorld:
      return "small-world";
    case Family::RandomTree:
      return "random-tree";
    case Family::RandomRegular:
      return "random-regular";
  }
  return "?";
}

std::string GraphSpec::label() const {
  std::ostringstream oss;
  oss << familyName(family) << " n=" << n;
  switch (family) {
    case Family::ErdosRenyi:
      oss << " d=" << param1;
      break;
    case Family::ScaleFree:
      oss << " m=" << param1 << " pow=" << param2;
      break;
    case Family::SmallWorld:
      oss << " k=" << param1 << " beta=" << param2;
      break;
    case Family::RandomTree:
      break;
    case Family::RandomRegular:
      oss << " d=" << param1;
      break;
  }
  return oss.str();
}

graph::Graph makeGraph(const GraphSpec& spec, support::Rng& rng) {
  switch (spec.family) {
    case Family::ErdosRenyi:
      return graph::erdosRenyiAvgDegree(spec.n, spec.param1, rng);
    case Family::ScaleFree:
      return graph::barabasiAlbert(
          spec.n, static_cast<std::size_t>(spec.param1), spec.param2, rng);
    case Family::SmallWorld:
      return graph::wattsStrogatz(
          spec.n, static_cast<std::size_t>(spec.param1), spec.param2, rng);
    case Family::RandomTree:
      return graph::randomTree(spec.n, rng);
    case Family::RandomRegular:
      return graph::randomRegular(
          spec.n, static_cast<std::size_t>(spec.param1), rng);
  }
  DIMA_REQUIRE(false, "unknown family");
  return graph::Graph(0);
}

std::vector<GraphSpec> figure3Workload() {
  std::vector<GraphSpec> specs;
  for (std::size_t n : {200u, 400u}) {
    for (double d : {4.0, 8.0, 16.0}) {
      specs.push_back(GraphSpec{Family::ErdosRenyi, n, d, 0.0});
    }
  }
  return specs;
}

std::vector<GraphSpec> figure4Workload() {
  // "alterations in weighting to create increasingly disparate graphs":
  // the attachment-weight power of preferential attachment. m = 4 keeps the
  // average degree near the paper's other experiments.
  std::vector<GraphSpec> specs;
  for (std::size_t n : {100u, 400u}) {
    for (double power : {0.5, 1.0, 1.5}) {
      specs.push_back(GraphSpec{Family::ScaleFree, n, 4.0, power});
    }
  }
  return specs;
}

std::vector<GraphSpec> figure5Workload() {
  // Sparse lattices use k = 4; dense lattices scale with n so that the
  // dense n = 256 configuration lands near the paper's reported mean
  // Δ ≈ 44.4 (k = 42 → Δ slightly above k after rewiring).
  std::vector<GraphSpec> specs;
  for (std::size_t n : {16u, 64u, 256u}) {
    specs.push_back(GraphSpec{Family::SmallWorld, n, 4.0, 0.25});
    const std::size_t dense = std::max<std::size_t>(6, (n / 6) & ~std::size_t{1});
    specs.push_back(
        GraphSpec{Family::SmallWorld, n, static_cast<double>(dense), 0.25});
  }
  return specs;
}

std::vector<GraphSpec> figure6Workload() {
  std::vector<GraphSpec> specs;
  for (std::size_t n : {200u, 400u}) {
    for (double d : {4.0, 8.0}) {
      specs.push_back(GraphSpec{Family::ErdosRenyi, n, d, 0.0});
    }
  }
  return specs;
}

}  // namespace dima::exp
