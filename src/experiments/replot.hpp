#pragma once

/// \file replot.hpp
/// Re-renders a figure bench's raw CSV (the `figN_records.csv` files) as
/// the ASCII rounds-vs-Δ scatter without re-running the sweep — the
/// round-trip tool for sharing and inspecting experiment outputs.

#include <string>

namespace dima::exp {

struct ReplotResult {
  bool ok = false;
  std::string error;
  std::string plot;
  std::size_t rows = 0;
};

/// Parses the CSV text (header must contain `n`, `delta` and `rounds`
/// columns, as written by the figure benches) and renders the scatter
/// grouped by n. `title` is printed above the plot.
ReplotResult replotFigureCsv(const std::string& csvText,
                             const std::string& title = "replot");

}  // namespace dima::exp
