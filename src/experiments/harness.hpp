#pragma once

/// \file harness.hpp
/// Sweep driver: runs a coloring algorithm over a workload many times with
/// fresh graphs, validates every run with the independent checkers, and
/// aggregates the statistics the paper's figures plot.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/experiments/workload.hpp"
#include "src/support/stats.hpp"

namespace dima::exp {

/// One run = one fresh random graph + one algorithm execution.
struct RunRecord {
  std::size_t specIndex = 0;    ///< index into the sweep's spec list
  std::size_t n = 0;
  std::size_t delta = 0;        ///< Δ of the sampled graph
  std::uint64_t rounds = 0;     ///< computation rounds to completion
  std::uint64_t commRounds = 0;
  std::uint64_t broadcasts = 0;
  std::size_t colors = 0;       ///< distinct colors used
  std::int64_t colorExcess = 0; ///< colors − Δ (MaDEC) or colors − lower bound
  bool converged = false;
  bool valid = false;           ///< independent validator verdict
  std::size_t conflicts = 0;    ///< strong-coloring conflicts (DiMa2Ed audit)
};

struct SweepConfig {
  std::vector<GraphSpec> specs;
  std::size_t runsPerSpec = 50;
  std::uint64_t seed = 0x5eedULL;
};

/// Runs Algorithm 1 over the workload. Every record's `valid` comes from
/// `verifyEdgeColoring`; `colorExcess` = colors − Δ (the paper's quality
/// metric: Conjecture 2 expects ≤ 1 typically).
std::vector<RunRecord> sweepMadec(const SweepConfig& config,
                                  const coloring::MadecOptions& base = {});

/// Runs Algorithm 2 over the workload (graphs are symmetrized). `valid`
/// comes from `verifyStrongArcColoring`; `conflicts` counts residual
/// same-color conflicting pairs (non-zero only in Paper mode);
/// `colorExcess` = colors − strongColoringLowerBound(graph).
std::vector<RunRecord> sweepDima2Ed(const SweepConfig& config,
                                    const coloring::Dima2EdOptions& base = {});

/// Per-spec and whole-sweep aggregation used by the figure renderers.
struct SpecAggregate {
  GraphSpec spec;
  support::OnlineStats delta;
  support::OnlineStats rounds;
  support::OnlineStats colors;
  support::OnlineStats roundsPerDelta;
  support::IntHistogram colorExcess;
  std::size_t runs = 0;
  std::size_t invalidRuns = 0;
  std::size_t unconverged = 0;
  std::size_t conflictRuns = 0;
};

struct SweepSummary {
  std::vector<SpecAggregate> perSpec;
  support::LinearFit roundsVsDelta;  ///< pooled over every run
  support::IntHistogram colorExcess;
  std::size_t runs = 0;
  std::size_t invalidRuns = 0;
  std::size_t unconverged = 0;
};

SweepSummary summarize(const std::vector<GraphSpec>& specs,
                       const std::vector<RunRecord>& records);

}  // namespace dima::exp
