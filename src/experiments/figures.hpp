#pragma once

/// \file figures.hpp
/// Regenerators for every evaluation artifact of the paper (Figures 3–6 and
/// the in-text quality claims). Each driver runs the corresponding workload,
/// validates every run, and renders (a) a per-configuration table, (b) an
/// ASCII scatter of rounds vs Δ grouped by graph size — the figure's shape —
/// and (c) a paper-claim vs measured checklist. Raw per-run rows are
/// returned as CSV for external replotting.

#include <cstdint>
#include <string>
#include <vector>

#include "src/experiments/harness.hpp"

namespace dima::exp {

/// One paper claim checked against the sweep.
struct ClaimCheck {
  std::string claim;     ///< the paper's statement
  std::string measured;  ///< what this reproduction observed
  bool holds = false;
};

struct FigureReport {
  std::string id;       ///< "FIG3" ... "FIG6"
  std::string title;
  std::uint64_t seed = 0;
  std::string table;    ///< per-config aggregate table
  std::string plot;     ///< ASCII scatter, the figure's shape
  std::string csv;      ///< raw per-run records
  std::vector<ClaimCheck> claims;
  SweepSummary summary;
  std::vector<RunRecord> records;

  /// Full human-readable rendering (table + plot + claims).
  std::string render() const;
  /// True when every claim holds and no run was invalid.
  bool reproduced() const;
};

/// §IV-A / Fig. 3: Algorithm 1 on Erdős–Rényi graphs.
FigureReport runFigure3(std::uint64_t seed = 0xf16'3ULL,
                        std::size_t runsPerSpec = 50);
/// §IV-B / Fig. 4: Algorithm 1 on scale-free graphs.
FigureReport runFigure4(std::uint64_t seed = 0xf16'4ULL,
                        std::size_t runsPerSpec = 50);
/// §IV-C / Fig. 5: Algorithm 1 on small-world graphs.
FigureReport runFigure5(std::uint64_t seed = 0xf16'5ULL,
                        std::size_t runsPerSpec = 50);
/// §IV-D / Fig. 6: Algorithm 2 on directed Erdős–Rényi graphs.
FigureReport runFigure6(std::uint64_t seed = 0xf16'6ULL,
                        std::size_t runsPerSpec = 50);

}  // namespace dima::exp
