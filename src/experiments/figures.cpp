#include "src/experiments/figures.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/support/csv.hpp"
#include "src/support/table.hpp"

namespace dima::exp {

namespace {

using support::AsciiPlot;
using support::CsvWriter;
using support::TextTable;

std::string formatDouble(double v) { return TextTable::format(v); }

std::string buildTable(const SweepSummary& summary) {
  TextTable table({"config", "runs", "mean-D", "mean-rounds", "rounds/D",
                   "mean-colors", "excess-histogram", "invalid", "stalled"});
  for (const SpecAggregate& agg : summary.perSpec) {
    table.addRowOf(agg.spec.label(), agg.runs,
                   formatDouble(agg.delta.mean()),
                   formatDouble(agg.rounds.mean()),
                   formatDouble(agg.roundsPerDelta.mean()),
                   formatDouble(agg.colors.mean()),
                   agg.colorExcess.toString(), agg.invalidRuns,
                   agg.unconverged);
  }
  return table.render();
}

std::string buildPlot(const std::string& title,
                      const std::vector<GraphSpec>& specs,
                      const std::vector<RunRecord>& records,
                      const support::LinearFit& fit) {
  AsciiPlot plot(title, "max degree D", "computation rounds");
  // One series per graph size — the paper's figures distinguish sizes to
  // show the n-independence of the round count.
  std::map<std::size_t, support::PlotSeries> byN;
  const char glyphs[] = {'o', '*', '+', 'x', '#', '@'};
  for (const RunRecord& rec : records) {
    auto [it, inserted] = byN.try_emplace(rec.n);
    if (inserted) {
      it->second.name = "n=" + std::to_string(rec.n);
      it->second.glyph = glyphs[(byN.size() - 1) % sizeof(glyphs)];
    }
    it->second.x.push_back(static_cast<double>(rec.delta));
    it->second.y.push_back(static_cast<double>(rec.rounds));
  }
  for (auto& [n, series] : byN) plot.add(series);
  if (fit.count() >= 2) {
    std::ostringstream name;
    name << "fit: rounds = " << formatDouble(fit.slope()) << "*D + "
         << formatDouble(fit.intercept()) << " (r2="
         << formatDouble(fit.r2()) << ")";
    plot.addGuide(name.str(), fit.slope(), fit.intercept());
  }
  (void)specs;
  return plot.render();
}

std::string buildCsv(const std::vector<GraphSpec>& specs,
                     const std::vector<RunRecord>& records) {
  CsvWriter csv;
  csv.header({"config", "n", "delta", "rounds", "comm_rounds", "broadcasts",
              "colors", "color_excess", "converged", "valid", "conflicts"});
  for (const RunRecord& rec : records) {
    csv.rowOf(specs[rec.specIndex].label(), rec.n, rec.delta, rec.rounds,
              rec.commRounds, rec.broadcasts, rec.colors, rec.colorExcess,
              rec.converged ? 1 : 0, rec.valid ? 1 : 0, rec.conflicts);
  }
  return csv.str();
}

/// Checks n-independence: for spec pairs that differ only in n, the mean
/// rounds must agree within `tolerance` after normalizing by mean Δ.
ClaimCheck checkSizeIndependence(const SweepSummary& summary,
                                 double tolerance) {
  double worst = 0.0;
  for (std::size_t i = 0; i < summary.perSpec.size(); ++i) {
    for (std::size_t j = i + 1; j < summary.perSpec.size(); ++j) {
      const SpecAggregate& a = summary.perSpec[i];
      const SpecAggregate& b = summary.perSpec[j];
      if (a.spec.family != b.spec.family || a.spec.param1 != b.spec.param1 ||
          a.spec.param2 != b.spec.param2 || a.spec.n == b.spec.n) {
        continue;
      }
      if (a.runs == 0 || b.runs == 0) continue;
      const double ra = a.roundsPerDelta.mean();
      const double rb = b.roundsPerDelta.mean();
      if (ra <= 0 || rb <= 0) continue;
      worst = std::max(worst, std::abs(ra - rb) / std::max(ra, rb));
    }
  }
  ClaimCheck check;
  check.claim = "round count depends on D, not on network size n";
  std::ostringstream oss;
  oss << "worst rounds/D deviation between sizes: "
      << formatDouble(100.0 * worst) << "%";
  check.measured = oss.str();
  check.holds = worst <= tolerance;
  return check;
}

ClaimCheck checkLinearInDelta(const SweepSummary& summary, double minR2) {
  ClaimCheck check;
  check.claim = "rounds grow linearly with D (O(D) termination)";
  std::ostringstream oss;
  oss << "fit rounds = " << formatDouble(summary.roundsVsDelta.slope())
      << "*D + " << formatDouble(summary.roundsVsDelta.intercept())
      << ", r2 = " << formatDouble(summary.roundsVsDelta.r2());
  check.measured = oss.str();
  check.holds = summary.roundsVsDelta.slope() > 0 &&
                summary.roundsVsDelta.r2() >= minR2;
  return check;
}

ClaimCheck checkAllValid(const SweepSummary& summary, const char* what) {
  ClaimCheck check;
  check.claim = std::string("every run yields a correct ") + what;
  std::ostringstream oss;
  oss << summary.invalidRuns << " invalid and " << summary.unconverged
      << " unconverged of " << summary.runs << " runs";
  check.measured = oss.str();
  check.holds = summary.invalidRuns == 0 && summary.unconverged == 0;
  return check;
}

}  // namespace

std::string FigureReport::render() const {
  std::ostringstream oss;
  oss << "== " << id << ": " << title << " (seed " << seed << ") ==\n\n"
      << table << '\n'
      << plot << '\n';
  for (const ClaimCheck& check : claims) {
    oss << (check.holds ? "  [reproduced] " : "  [DEVIATES]   ")
        << check.claim << "\n                measured: " << check.measured
        << '\n';
  }
  return oss.str();
}

bool FigureReport::reproduced() const {
  return summary.invalidRuns == 0 &&
         std::all_of(claims.begin(), claims.end(),
                     [](const ClaimCheck& c) { return c.holds; });
}

FigureReport runFigure3(std::uint64_t seed, std::size_t runsPerSpec) {
  FigureReport report;
  report.id = "FIG3";
  report.title = "Algorithm 1 (MaDEC) on Erdos-Renyi graphs";
  report.seed = seed;

  SweepConfig config;
  config.specs = figure3Workload();
  config.runsPerSpec = runsPerSpec;
  config.seed = seed;
  report.records = sweepMadec(config);
  report.summary = summarize(config.specs, report.records);

  report.table = buildTable(report.summary);
  report.plot = buildPlot("Fig. 3 -- Edge Coloring of Erdos-Renyi Graphs",
                          config.specs, report.records,
                          report.summary.roundsVsDelta);
  report.csv = buildCsv(config.specs, report.records);

  report.claims.push_back(checkAllValid(report.summary, "edge coloring"));
  report.claims.push_back(checkLinearInDelta(report.summary, 0.8));
  report.claims.push_back(checkSizeIndependence(report.summary, 0.2));
  {
    // §IV-A: "Δ+2 colors were used in only 2 of the 300 runs, and in no run
    // was the number of colors in excess of Δ+2."
    std::uint64_t atMostPlus1 = 0;
    std::int64_t maxExcess = 0;
    for (const RunRecord& rec : report.records) {
      if (rec.colorExcess <= 1) ++atMostPlus1;
      maxExcess = std::max(maxExcess, rec.colorExcess);
    }
    ClaimCheck check;
    check.claim = "colors are D or D+1 in almost every run, never above D+2";
    std::ostringstream oss;
    oss << atMostPlus1 << "/" << report.records.size()
        << " runs used <= D+1 colors; max excess D+" << maxExcess;
    check.measured = oss.str();
    const double frac = report.records.empty()
                            ? 0.0
                            : static_cast<double>(atMostPlus1) /
                                  static_cast<double>(report.records.size());
    check.holds = frac >= 0.97 && maxExcess <= 2;
    report.claims.push_back(check);
  }
  return report;
}

FigureReport runFigure4(std::uint64_t seed, std::size_t runsPerSpec) {
  FigureReport report;
  report.id = "FIG4";
  report.title = "Algorithm 1 (MaDEC) on scale-free graphs";
  report.seed = seed;

  SweepConfig config;
  config.specs = figure4Workload();
  config.runsPerSpec = runsPerSpec;
  config.seed = seed;
  report.records = sweepMadec(config);
  report.summary = summarize(config.specs, report.records);

  report.table = buildTable(report.summary);
  report.plot = buildPlot("Fig. 4 -- Edge Coloring of Scale-Free Graphs",
                          config.specs, report.records,
                          report.summary.roundsVsDelta);
  report.csv = buildCsv(config.specs, report.records);

  report.claims.push_back(checkAllValid(report.summary, "edge coloring"));
  report.claims.push_back(checkLinearInDelta(report.summary, 0.7));
  {
    // §IV-B: "we did not use more than Δ colors to color any of the
    // generated graphs."
    std::uint64_t withinDelta = 0;
    std::int64_t maxExcess = 0;
    for (const RunRecord& rec : report.records) {
      if (rec.colorExcess <= 0) ++withinDelta;
      maxExcess = std::max(maxExcess, rec.colorExcess);
    }
    ClaimCheck check;
    check.claim = "scale-free graphs are colored with at most D colors";
    std::ostringstream oss;
    oss << withinDelta << "/" << report.records.size()
        << " runs used <= D colors; max excess D+" << maxExcess;
    check.measured = oss.str();
    check.holds = withinDelta == report.records.size();
    report.claims.push_back(check);
  }
  return report;
}

FigureReport runFigure5(std::uint64_t seed, std::size_t runsPerSpec) {
  FigureReport report;
  report.id = "FIG5";
  report.title = "Algorithm 1 (MaDEC) on small-world graphs";
  report.seed = seed;

  SweepConfig config;
  config.specs = figure5Workload();
  config.runsPerSpec = runsPerSpec;
  config.seed = seed;
  report.records = sweepMadec(config);
  report.summary = summarize(config.specs, report.records);

  report.table = buildTable(report.summary);
  report.plot = buildPlot("Fig. 5 -- Edge Coloring of Small World Graphs",
                          config.specs, report.records,
                          report.summary.roundsVsDelta);
  report.csv = buildCsv(config.specs, report.records);

  report.claims.push_back(checkAllValid(report.summary, "edge coloring"));
  report.claims.push_back(checkLinearInDelta(report.summary, 0.8));
  {
    // §IV-C: colors < 2Δ−1 in every run (Conjecture 1's bound holds with
    // room), while dense graphs occasionally exceed Δ+1 (Conjecture 2 was
    // "not supported"; the paper saw up to Δ+5 on dense n=256).
    bool allBelowWorstCase = true;
    std::int64_t maxExcess = 0;
    for (const RunRecord& rec : report.records) {
      maxExcess = std::max(maxExcess, rec.colorExcess);
      if (rec.delta >= 2 &&
          rec.colors >= 2 * rec.delta - 1) {
        allBelowWorstCase = false;
      }
    }
    ClaimCheck check;
    check.claim = "colors stay below the 2D-1 worst case in every run";
    std::ostringstream oss;
    oss << "max excess D+" << maxExcess << " (worst case would be D+"
        << "D-1)";
    check.measured = oss.str();
    check.holds = allBelowWorstCase;
    report.claims.push_back(check);
  }
  return report;
}

FigureReport runFigure6(std::uint64_t seed, std::size_t runsPerSpec) {
  FigureReport report;
  report.id = "FIG6";
  report.title =
      "Algorithm 2 (DiMa2Ed, strict) strong coloring of directed Erdos-Renyi "
      "graphs";
  report.seed = seed;

  SweepConfig config;
  config.specs = figure6Workload();
  config.runsPerSpec = runsPerSpec;
  config.seed = seed;
  coloring::Dima2EdOptions strict;
  strict.mode = coloring::Dima2EdMode::Strict;
  report.records = sweepDima2Ed(config, strict);
  report.summary = summarize(config.specs, report.records);

  report.table = buildTable(report.summary);
  report.plot = buildPlot(
      "Fig. 6 -- Strong Edge Coloring of Directed Erdos-Renyi Graphs",
      config.specs, report.records, report.summary.roundsVsDelta);
  report.csv = buildCsv(config.specs, report.records);

  report.claims.push_back(
      checkAllValid(report.summary, "strong (distance-2) arc coloring"));
  report.claims.push_back(checkLinearInDelta(report.summary, 0.6));
  report.claims.push_back(checkSizeIndependence(report.summary, 0.25));
  {
    // DESIGN.md §2: the pseudo-code-faithful mode leaks same-round
    // conflicts; quantify it on a sub-sample to document why the strict
    // handshake exists.
    SweepConfig audit = config;
    audit.runsPerSpec = std::max<std::size_t>(1, runsPerSpec / 10);
    audit.seed = support::mix64(seed, 0xa0d17ULL);
    coloring::Dima2EdOptions paperMode;
    paperMode.mode = coloring::Dima2EdMode::Paper;
    const std::vector<RunRecord> paperRecords =
        sweepDima2Ed(audit, paperMode);
    std::size_t conflictRuns = 0;
    std::size_t totalConflicts = 0;
    for (const RunRecord& rec : paperRecords) {
      if (rec.conflicts > 0) ++conflictRuns;
      totalConflicts += rec.conflicts;
    }
    ClaimCheck check;
    check.claim =
        "pseudo-code-faithful mode leaks same-round conflicts that the "
        "strict handshake eliminates";
    std::ostringstream oss;
    oss << "paper mode: " << conflictRuns << "/" << paperRecords.size()
        << " runs with conflicts (" << totalConflicts
        << " conflicting pairs total); strict mode: 0 by validation";
    check.measured = oss.str();
    check.holds = true;  // informational: documents the measured gap
    report.claims.push_back(check);
  }
  return report;
}

}  // namespace dima::exp
