#pragma once

/// \file workload.hpp
/// Workload specifications for the paper's evaluation (§IV). Each figure is
/// a set of graph-family configurations run many times with fresh random
/// graphs; a `GraphSpec` captures one configuration, and `makeGraph`
/// materializes a sample from it.

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace dima::exp {

enum class Family : std::uint8_t {
  ErdosRenyi,  ///< param1 = average degree
  ScaleFree,   ///< param1 = edges per newcomer (m), param2 = attachment power
  SmallWorld,  ///< param1 = lattice degree k, param2 = rewiring beta
  RandomTree,
  RandomRegular,  ///< param1 = degree
};

const char* familyName(Family f);

struct GraphSpec {
  Family family = Family::ErdosRenyi;
  std::size_t n = 0;
  double param1 = 0.0;
  double param2 = 0.0;

  /// Compact label for tables, e.g. "er n=200 d=8" or "ws n=256 k=42 b=0.25".
  std::string label() const;
};

/// Samples one graph from the spec using the caller's stream.
graph::Graph makeGraph(const GraphSpec& spec, support::Rng& rng);

/// The exact workloads of the paper's four experiments.
/// §IV-A: Erdős–Rényi, n ∈ {200,400} × average degree ∈ {4,8,16}.
std::vector<GraphSpec> figure3Workload();
/// §IV-B: scale-free, n ∈ {100,400} × attachment powers {0.5, 1.0, 1.5}.
std::vector<GraphSpec> figure4Workload();
/// §IV-C: small-world, n ∈ {16,64,256} × {sparse, dense}.
std::vector<GraphSpec> figure5Workload();
/// §IV-D: Erdős–Rényi (symmetric digraph), n ∈ {200,400} × degree {4,8}.
std::vector<GraphSpec> figure6Workload();

}  // namespace dima::exp
