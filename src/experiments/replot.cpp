#include "src/experiments/replot.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/support/csv.hpp"
#include "src/support/stats.hpp"
#include "src/support/table.hpp"

namespace dima::exp {

ReplotResult replotFigureCsv(const std::string& csvText,
                             const std::string& title) {
  ReplotResult out;
  std::istringstream in(csvText);
  std::string line;
  if (!std::getline(in, line)) {
    out.error = "empty CSV";
    return out;
  }
  const auto header = support::parseCsvLine(line);
  auto columnOf = [&](const std::string& name) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  const std::ptrdiff_t nCol = columnOf("n");
  const std::ptrdiff_t deltaCol = columnOf("delta");
  const std::ptrdiff_t roundsCol = columnOf("rounds");
  if (nCol < 0 || deltaCol < 0 || roundsCol < 0) {
    out.error = "CSV header must contain n, delta and rounds columns";
    return out;
  }

  std::map<std::string, support::PlotSeries> byN;
  support::LinearFit fit;
  const char glyphs[] = {'o', '*', '+', 'x', '#', '@'};
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = support::parseCsvLine(line);
    const auto need = static_cast<std::size_t>(
        std::max({nCol, deltaCol, roundsCol}));
    if (cells.size() <= need) {
      out.error = "row with too few cells";
      return out;
    }
    const std::string n = cells[static_cast<std::size_t>(nCol)];
    const double delta =
        std::strtod(cells[static_cast<std::size_t>(deltaCol)].c_str(),
                    nullptr);
    const double rounds =
        std::strtod(cells[static_cast<std::size_t>(roundsCol)].c_str(),
                    nullptr);
    auto [it, inserted] = byN.try_emplace(n);
    if (inserted) {
      it->second.name = "n=" + n;
      it->second.glyph = glyphs[(byN.size() - 1) % sizeof(glyphs)];
    }
    it->second.x.push_back(delta);
    it->second.y.push_back(rounds);
    fit.add(delta, rounds);
    ++out.rows;
  }
  if (out.rows == 0) {
    out.error = "no data rows";
    return out;
  }

  support::AsciiPlot plot(title, "max degree D", "computation rounds");
  for (auto& [n, series] : byN) plot.add(series);
  if (fit.count() >= 2) {
    std::ostringstream name;
    name << "fit: " << support::TextTable::format(fit.slope()) << "*D + "
         << support::TextTable::format(fit.intercept())
         << " (r2=" << support::TextTable::format(fit.r2()) << ")";
    plot.addGuide(name.str(), fit.slope(), fit.intercept());
  }
  out.plot = plot.render();
  out.ok = true;
  return out;
}

}  // namespace dima::exp
