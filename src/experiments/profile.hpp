#pragma once

/// \file profile.hpp
/// Per-node completion profiles. The paper's figures report when the *last*
/// node finishes; the distribution matters too — Proposition 3's worst case
/// is a tail event, and a real deployment additionally pays a convergecast
/// before anyone *knows* the run is over. This module measures both:
/// per-node completion rounds (from the event trace) with quantiles, plus
/// the exact detection round over a distributively built BFS tree
/// (net::spanning_tree).

#include <cstdint>
#include <vector>

#include "src/coloring/madec.hpp"
#include "src/graph/graph.hpp"

namespace dima::exp {

struct CompletionProfile {
  /// Computation round in which each node entered D (0 for nodes done at
  /// start, e.g. isolated vertices).
  std::vector<std::uint64_t> completionRound;
  std::uint64_t lastCompletion = 0;  ///< the figure-reported round count
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  /// Rounds to build the BFS tree by flooding (a real deployment's phase 0).
  std::uint64_t treeBuildRounds = 0;
  /// Round at which the root *detects* global termination via convergecast.
  std::uint64_t detectionRound = 0;
  /// colors used, for context.
  std::size_t colors = 0;
};

/// Runs MaDEC on the *connected* graph `g` and profiles it. The trace and
/// pool fields of `options` are overridden internally (profiling needs the
/// serial executor and its own trace).
CompletionProfile madecCompletionProfile(const graph::Graph& g,
                                         coloring::MadecOptions options = {},
                                         graph::VertexId detectionRoot = 0);

}  // namespace dima::exp
