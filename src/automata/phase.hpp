#pragma once

/// \file phase.hpp
/// The states of the matching discovery automaton (paper Fig. 1, plus the
/// Exchange state Algorithm 1 adds). All protocols in this library move
/// every node through these states in lockstep — the paper's "all
/// transitions are made synchronously" assumption.

#include <cstdint>

namespace dima::automata {

enum class Phase : std::uint8_t {
  Choose,    ///< C: coin toss selects Invite or Listen
  Invite,    ///< I: propose to a random eligible neighbor
  Listen,    ///< L: collect proposals
  Respond,   ///< R: accept one proposal
  Wait,      ///< W: await the acceptance of one's own proposal
  Update,    ///< U: apply the round's local computation
  Exchange,  ///< E: share state deltas with neighbors
  Done,      ///< D: all local work finished
};

const char* phaseName(Phase p);

}  // namespace dima::automata
