#pragma once

/// \file core.hpp
/// The matching-discovery automaton of the paper (Fig. 1) as a reusable
/// engine. One cycle walks the states C → I/L → R/W → U → E → (D): the
/// role coin in `beginCycle` (C), the invitation broadcast in send
/// sub-round 0 (I) against the keep scan in receive 0 (L), the acceptance
/// in send 1 (R) against the echo wait in receive 1 (W), protocol tail
/// sub-rounds for the update/exchange states (U/E — a color announce, a
/// matched announce, or the strict tentative/abort handshake), and done
/// tracking (D) in `endCycle`.
///
/// Every protocol in this library — matching discovery, MaDEC, DiMa2Ed,
/// strong MaDEC, the dynamic repair protocol — is this automaton with
/// different *decisions*: whom to invite, what the invitation carries,
/// which invitations are acceptable, what a formed pair computes, and what
/// gets announced. `MatchingCore` owns the shared walk; a derived protocol
/// supplies only those decisions as CRTP hooks. The core is written so a
/// rebased protocol is bit-identical to its hand-rolled ancestor: hooks
/// fire at the exact points the old code drew random numbers, broadcast
/// messages, and recorded trace events (tests/test_golden.cpp and
/// tests/test_trace_parity.cpp pin this).
///
/// Hook reference (D = required in Derived, d = defaulted here):
///
///   state/schedule
///     d participates(u)      gate for nodes outside the protocol's frontier
///     D resetScratch(u)      clear per-cycle scratch (runs even when done)
///     d onActiveCycle(u)     accounting for a not-done node starting a cycle
///     d chooseRole(u)        C: Invite/Listen draw (default: biased coin)
///     D tailSubRounds()      extra sub-rounds after the invite/respond pair
///     D tailSend(u,t,net)    U/E sends for tail sub-round t
///     D tailReceive(u,t,in)  U/E receives for tail sub-round t
///     d onCycleEnd(u)        end-of-cycle accounting (before the done check)
///     D localWorkDone(u)     D: true once the node has nothing left
///   invitation (I/L)
///     D pickInvitee(u)       choose the peer (and any proposal scratch);
///                            kNoVertex = sit this cycle out, no send
///     D inviteMessage(u)     payload for the invitation broadcast
///     D keepInvite(u,env)    L: store an invitation addressed to me?
///     d overheardInvite(u,env)  L: invitation addressed to someone else
///   response (R/W)
///     D chooseAccept(u)      R: pick one kept invitation; false = silent
///     D acceptMessage(u)     payload echoing the accepted invitation
///     d onAcceptSent(u)      listener-side pair formed (commit/tentative)
///     D onEcho(u,msg)        W: invitor-side pair formed
///     d onNoEcho(u)          W: invitation went unanswered
///   tracing
///     d messageDetail(m)     detail column for Invite/Response trace rows
///
/// Protected helpers implement the recurring tail policies over the unified
/// wire kinds (net::WireKind): `announceSend` (E-state color/matched
/// announce via `announceMessage`/`pendingAnnounce`), and the strict
/// handshake quartet `tentativeSend` / `tentativeConflictScan` /
/// `abortSend` / `abortResolve` over a node's `TentativeState` (lower
/// item id wins color conflicts; the loser re-draws next cycle).

// dimalint: hot-path — no std::function, no per-message allocation.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/automata/phase.hpp"
#include "src/graph/graph.hpp"
#include "src/net/message.hpp"
#include "src/net/trace.hpp"
#include "src/support/assert.hpp"
#include "src/support/rng.hpp"

namespace dima::automata {

/// Per-node state every protocol shares; protocol node types extend it.
struct CoreNode {
  support::Rng rng{0};
  Phase role = Phase::Choose;
  bool done = false;
  net::NodeId invitee = graph::kNoVertex;  ///< per-cycle: whom I invited
};

/// One in-flight pairing of the strict tentative/abort handshake: the item
/// (arc or edge id — the conflict tiebreaker), the color at stake, the
/// protocol's incidence index for the item, and which side of the pair this
/// node played (the invitor charges failed handshakes to its color window).
struct TentativeState {
  std::uint32_t item = net::kNoWireItem;
  std::int32_t color = -1;
  std::uint32_t idx = 0;
  bool asInvitor = false;
  bool abortMine = false;

  void reset() { *this = TentativeState{}; }
};

/// Which commit half of a shared item the caller owns — the capability
/// token gating writes into `CommitHalves`. It is mintable only through
/// the two blessed endpoint→slot mappings below, so the single-writer
/// discipline lives in one audited place: a cross-half write (flipping a
/// raw boolean, indexing the partner's slot) is a compile error, not a
/// convention. tests/negative_compile pins that it stays one.
class EndpointHalf {
 public:
  /// Undirected items (edges): node `me` owns the half determined by the
  /// fixed id order — the higher-id endpoint owns the second slot.
  static constexpr EndpointHalf ownedBy(net::NodeId me, net::NodeId partner) {
    return EndpointHalf(me > partner);
  }

  /// Directed items (arcs): the tail (origin) owns the first slot, the
  /// head owns the second; `incoming` is true at the head's side.
  static constexpr EndpointHalf arcEnd(bool incoming) {
    return EndpointHalf(incoming);
  }

  constexpr bool second() const { return second_; }

 private:
  explicit constexpr EndpointHalf(bool second) : second_(second) {}

  bool second_;
};

/// Per-endpoint commit slots for items (edges or arcs) two nodes finalize
/// concurrently: slot 2i belongs to one fixed endpoint of item i, slot
/// 2i+1 to the other, so the parallel receive phase has a single writer
/// per slot (one shared slot was a data race under the thread pool).
/// Writes require an `EndpointHalf` capability naming the caller's side.
/// `merged`/`takeMerged` fold the halves after the barrier; the halves can
/// disagree in presence only under message loss (`halfCommitted`).
template <class Value>
class CommitHalves {
 public:
  CommitHalves(std::size_t items, Value unset)
      : unset_(unset), slots_(2 * items, unset) {}

  std::size_t items() const { return slots_.size() / 2; }

  /// The half of `item` owned by the endpoint named by `end`.
  Value& half(std::uint32_t item, EndpointHalf end) {
    return slots_[2 * static_cast<std::size_t>(item) + (end.second() ? 1 : 0)];
  }

  /// Merged view, first half preferred; `unset` while uncommitted. No
  /// agreement check — this is the hot read on the keep-invite path.
  Value merged(std::uint32_t item) const {
    const Value first = slots_[2 * static_cast<std::size_t>(item)];
    return first != unset_ ? first
                           : slots_[2 * static_cast<std::size_t>(item) + 1];
  }

  /// Merged view with the cross-endpoint agreement assert; used post-run.
  Value mergedChecked(std::uint32_t item) const {
    const Value first = slots_[2 * static_cast<std::size_t>(item)];
    const Value second = slots_[2 * static_cast<std::size_t>(item) + 1];
    DIMA_ASSERT(first == unset_ || second == unset_ || first == second,
                "item " << item << " committed with two values");
    return first != unset_ ? first : second;
  }

  /// Folds every item's halves into one output vector (checked).
  std::vector<Value> takeMerged() const {
    std::vector<Value> out(items(), unset_);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = mergedChecked(static_cast<std::uint32_t>(i));
    }
    return out;
  }

  /// Items only one endpoint committed (possible only under message loss).
  std::vector<std::uint32_t> halfCommitted() const {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < items(); ++i) {
      if ((slots_[2 * i] != unset_) != (slots_[2 * i + 1] != unset_)) {
        out.push_back(static_cast<std::uint32_t>(i));
      }
    }
    return out;
  }

 private:
  Value unset_;
  std::vector<Value> slots_;
};

/// CRTP base running the shared automaton. `Derived` supplies the decision
/// hooks (see the file comment), `MessageT` the wire format (a type with
/// `kind`/`target` fields over `net::WireKind`), and `NodeT` the node state
/// (must derive from `CoreNode`). The message and node types are template
/// parameters rather than `Derived::Message` lookups because `Derived` is
/// incomplete while this base instantiates.
template <class Derived, class MessageT, class NodeT>
class MatchingCore {
 public:
  using Message = MessageT;

  int subRounds() const { return 2 + self().tailSubRounds(); }

  void beginCycle(net::NodeId u) {
    if (!self().participates(u)) return;
    NodeT& s = nodes_[u];
    // Scratch is cleared even for nodes that just finished, so stale
    // invitations can never leak into a later cycle.
    s.invitee = graph::kNoVertex;
    self().resetScratch(u);
    if (s.done) {
      s.role = Phase::Done;
      return;
    }
    self().onActiveCycle(u);
    s.role = self().chooseRole(u);
    trace(u, net::TraceKind::StateChoice, s.role == Phase::Invite ? 1 : 0);
  }

  template <class Net>
  void send(net::NodeId u, int sub, Net& net) {
    if (!self().participates(u)) return;
    NodeT& s = nodes_[u];
    switch (sub) {
      case 0: {  // I: propose to one peer.
        if (s.role != Phase::Invite) return;
        s.invitee = self().pickInvitee(u);
        if (s.invitee == graph::kNoVertex) return;
        const Message m = self().inviteMessage(u);
        net.broadcast(u, m);
        trace(u, net::TraceKind::InviteSent, s.invitee,
              self().messageDetail(m));
        break;
      }
      case 1: {  // R: accept one kept invitation.
        if (s.role != Phase::Listen) return;
        if (!self().chooseAccept(u)) return;
        const Message m = self().acceptMessage(u);
        net.broadcast(u, m);
        trace(u, net::TraceKind::ResponseSent, m.target,
              self().messageDetail(m));
        self().onAcceptSent(u);
        break;
      }
      default:
        self().tailSend(u, sub - 2, net);
    }
  }

  void receive(net::NodeId u, int sub, net::Inbox<Message> inbox) {
    if (!self().participates(u)) return;
    NodeT& s = nodes_[u];
    switch (sub) {
      case 0: {  // L: keep invitations addressed to me.
        if (s.role != Phase::Listen) {
          return;  // paper: invitors are in W and do not listen here
        }
        for (const auto& env : inbox) {
          if (env.msg.kind != net::WireKind::Invite) continue;
          if (env.msg.target == u) {
            if (self().keepInvite(u, env)) {
              trace(u, net::TraceKind::InviteKept, env.from,
                    self().messageDetail(env.msg));
            }
          } else {
            self().overheardInvite(u, env);
          }
        }
        break;
      }
      case 1: {  // W: my invitation echoed back — the pair formed.
        if (s.role != Phase::Invite || s.invitee == graph::kNoVertex) return;
        bool echoed = false;
        for (const auto& env : inbox) {
          if (env.msg.kind == net::WireKind::Response &&
              env.msg.target == u && env.from == s.invitee) {
            self().onEcho(u, env.msg);
            echoed = true;
            break;
          }
        }
        if (!echoed) self().onNoEcho(u);
        break;
      }
      default:
        self().tailReceive(u, sub - 2, inbox);
    }
  }

  void endCycle(net::NodeId u) {
    if (!self().participates(u)) return;
    NodeT& s = nodes_[u];
    if (s.done) return;
    self().onCycleEnd(u);
    if (self().localWorkDone(u)) {
      s.done = true;
      trace(u, net::TraceKind::NodeDone);
    }
  }

  bool done(net::NodeId u) const { return nodes_[u].done; }

  /// Advances the trace clock; wired to the engine observer.
  void tickCycle() { ++cycle_; }

  // Default hooks; shadow in Derived to override. Public because the base
  // calls them through `self()`.

  /// Nodes outside the protocol's scope skip every hook (e.g. the dynamic
  /// repair frontier). Must be constant over a run.
  bool participates(net::NodeId) const { return true; }

  void onActiveCycle(net::NodeId) {}

  /// C: the paper's biased coin.
  Phase chooseRole(net::NodeId u) {
    return nodes_[u].rng.bernoulli(invitorBias_) ? Phase::Invite
                                                 : Phase::Listen;
  }

  void overheardInvite(net::NodeId, const net::Envelope<Message>&) {}
  void onAcceptSent(net::NodeId) {}
  void onNoEcho(net::NodeId) {}
  void onCycleEnd(net::NodeId) {}

  /// Detail column of Invite/Response trace rows: the carried color when
  /// the wire format has one, -1 otherwise.
  static std::int64_t messageDetail(const Message& m) {
    if constexpr (requires { m.color; }) {
      return m.color;
    } else {
      return -1;
    }
  }

 protected:
  MatchingCore(std::size_t numNodes, double invitorBias,
               net::TraceLog* traceLog)
      : invitorBias_(invitorBias), traceLog_(traceLog) {
    nodes_.resize(numNodes);
  }

  void trace(net::NodeId u, net::TraceKind kind, std::int64_t a = -1,
             std::int64_t b = -1) {
    if (traceLog_ != nullptr) traceLog_->record(cycle_, u, kind, a, b);
  }

  // E-state announce tail, over `NodeT::pendingAnnounce` (a color; < 0 =
  // nothing committed this cycle) and `Derived::announceMessage`.

  template <class Net>
  void announceSend(net::NodeId u, Net& net) {
    if (nodes_[u].pendingAnnounce < 0) return;
    net.broadcast(u, self().announceMessage(u));
  }

  // Strict tentative/abort handshake, over `NodeT::tent` (a
  // `TentativeState`). A same-color conflict between adjacent same-cycle
  // pairings is resolved by item id: lower wins, higher aborts and re-draws
  // next cycle. Requires a wire format with `color`/`item` fields
  // (net::TentativeColorWire).

  template <class Net>
  void tentativeSend(net::NodeId u, Net& net) {
    const NodeT& s = nodes_[u];
    if (s.tent.item == net::kNoWireItem) return;
    net.broadcast(u, Message{net::WireKind::Tentative, graph::kNoVertex,
                             s.tent.color, s.tent.item});
    // Extended-trace subscribers (the invariant monitor) see who went
    // tentative on what; gated so default-trace fingerprints are untouched.
    if (traceLog_ != nullptr && traceLog_->extended()) {
      trace(u, net::TraceKind::TentativeSet, s.tent.item, s.tent.color);
    }
  }

  void tentativeConflictScan(net::NodeId u, net::Inbox<Message> inbox) {
    NodeT& s = nodes_[u];
    if (s.tent.item == net::kNoWireItem) return;
    for (const auto& env : inbox) {
      if (env.msg.kind != net::WireKind::Tentative) continue;
      if (env.msg.item == s.tent.item) continue;  // partner's echo
      // The sender is a neighbor and an endpoint of its item, this node an
      // endpoint of its own — adjacency makes any equal-colored pair a
      // conflict. Lower item id wins.
      if (env.msg.color == s.tent.color && env.msg.item < s.tent.item) {
        s.tent.abortMine = true;
      }
    }
  }

  template <class Net>
  void abortSend(net::NodeId u, Net& net) {
    const NodeT& s = nodes_[u];
    if (s.tent.item == net::kNoWireItem || !s.tent.abortMine) return;
    net.broadcast(u, Message{net::WireKind::Abort, graph::kNoVertex, -1,
                             s.tent.item});
  }

  /// Resolves the handshake: adopt a partner's abort, then either roll back
  /// (`onTentativeAborted`) or finalize (`commitTentative`).
  void abortResolve(net::NodeId u, net::Inbox<Message> inbox) {
    NodeT& s = nodes_[u];
    if (s.tent.item == net::kNoWireItem) return;
    if (!s.tent.abortMine) {
      for (const auto& env : inbox) {
        if (env.msg.kind == net::WireKind::Abort &&
            env.msg.item == s.tent.item) {
          s.tent.abortMine = true;
          break;
        }
      }
    }
    if (s.tent.abortMine) {
      trace(u, net::TraceKind::Aborted, s.tent.item, s.tent.color);
      self().onTentativeAborted(u);
    } else {
      self().commitTentative(u);
    }
  }

  Derived& self() { return static_cast<Derived&>(*this); }
  const Derived& self() const { return static_cast<const Derived&>(*this); }

  std::vector<NodeT> nodes_;
  double invitorBias_ = 0.5;
  net::TraceLog* traceLog_ = nullptr;
  std::uint64_t cycle_ = 0;
};

}  // namespace dima::automata
