#include "src/automata/vertex_cover.hpp"

#include <algorithm>

namespace dima::automata {

VertexCoverResult vertexCoverViaMatching(const graph::Graph& g,
                                         std::uint64_t seed) {
  const MaximalMatchingResult mm = maximalMatching(g, seed);
  VertexCoverResult out;
  out.cover = matchedVertices(g, mm.matching);
  out.matchingSize = mm.matching.size();
  out.rounds = mm.rounds;
  out.converged = mm.converged;
  return out;
}

bool isVertexCover(const graph::Graph& g,
                   const std::vector<graph::VertexId>& cover) {
  std::vector<bool> in(g.numVertices(), false);
  for (graph::VertexId v : cover) {
    if (v >= g.numVertices()) return false;
    in[v] = true;
  }
  return std::all_of(
      g.edges().begin(), g.edges().end(),
      [&](const graph::Edge& e) { return in[e.u] || in[e.v]; });
}

}  // namespace dima::automata
