#pragma once

/// \file bitplane.hpp
/// The bit-plane automaton engine: a structure-of-arrays replay of the
/// Fig. 1 matching-discovery automaton where each machine state is a
/// `DynamicBitset` *plane* over all nodes and one computation round becomes
/// a short sequence of word-parallel passes.
///
/// ## Why a second engine
///
/// `runSyncProtocol` + `MatchingCore` (the *reference* engine) walks every
/// node as an object: per-node virtual-free CRTP hooks, a slot-arena
/// message substrate, per-message accounting. That shape is ideal for
/// fault injection and tracing, but the automaton itself is embarrassingly
/// data-parallel across nodes — every node runs the same tiny transition
/// function — so on the fault-free model the entire message plane can be
/// *computed* instead of *delivered*. This engine does exactly that:
///
///  * each automaton state (C/I/L/R/W/U/E/D) is one bit-plane over nodes;
///    a transition like "retire freshly done nodes" is `active &= ~doneNew`
///    over whole 64-bit words (with AVX2/AVX-512 paths, 256/512 bits at a
///    time);
///  * palettes live in a planes-by-color layout: node u's used-color set is
///    a row of `stride` words in one flat array, so `used(u) ∪ used(v)` and
///    first-clear-color are word-parallel scans over two rows
///    (`DynamicBitset::firstClearInWords`);
///  * messages are never materialized. An "inbox" is an incidence scan that
///    tests the sender's state-plane bit; traffic `Counters` are computed
///    arithmetically with the exact formulas `SyncNetwork` uses, so the
///    totals stay bit-identical to the reference run.
///
/// ## The equivalence contract
///
/// The engine is *semantics-pinned* to the reference: same per-node RNG
/// streams drawn in the same order, same commit arithmetic
/// (`CommitHalves`), same trace event sequence, same counters. The parity
/// harness (tests/test_bitplane_parity.cpp) asserts bit-identical colors,
/// `Counters` and TraceLog fingerprints over the full scenario grid, which
/// is what lets every downstream consumer (InvariantMonitor, determinism
/// sweep, golden pins) verify this engine for free. The pin only holds on
/// the *fault-free* model: drops, duplicates, corruption and inbox
/// permutation all make the message plane stateful, so perturbed runs must
/// use the reference engine (drivers enforce this with DIMA_REQUIRE).
///
/// ## ISA dispatch contract (DESIGN.md §12)
///
/// Every word-parallel kernel has a portable scalar form, always compiled,
/// plus AVX2/AVX-512 forms compiled when the toolchain targets x86-64
/// (per-function `target` attributes; no global -march). At startup the
/// highest CPU-supported path becomes active; `DIMA_BITPLANE_ISA`
/// (`scalar` | `avx2` | `avx512` | `best`) or `setIsa()` force a path, which
/// is how CI runs the parity harness once per compiled path. Engines call
/// kernels only through the dispatch table, so a forced path is the path
/// actually executed — and since kernels are bit-exact by contract, the
/// choice is observably invisible everywhere but the clock.

// dimalint: hot-path — no std::function, no per-message allocation.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/automata/discovery.hpp"
#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"
#include "src/net/message.hpp"
#include "src/net/trace.hpp"
#include "src/support/assert.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::automata::bitplane {

using Word = support::DynamicBitset::Word;
inline constexpr std::size_t kWordBits = support::DynamicBitset::kWordBits;

// ---------------------------------------------------------------------------
// Runtime ISA dispatch.

enum class Isa : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Stable lowercase name ("scalar"/"avx2"/"avx512") — used by the env-var
/// override, bench provenance, and test logs.
const char* isaName(Isa isa);

/// Whether this binary contains code for `isa` (toolchain/arch gate).
bool isaCompiled(Isa isa);
/// Whether `isa` is compiled *and* the running CPU supports it.
bool isaSupported(Isa isa);
/// Highest supported path on this machine (>= Scalar always).
Isa bestIsa();

/// Currently active path. First use applies `DIMA_BITPLANE_ISA` if set
/// (values: scalar|avx2|avx512|best; unsupported values fall back to best
/// so a forced-AVX CI job degrades loudly in logs, not by crashing).
Isa activeIsa();
/// Forces a path for this process; requires `isaSupported(isa)`.
void setIsa(Isa isa);

/// The word-parallel kernels behind every plane operation. All kernels are
/// bit-exact across ISA paths; the dispatch table is the only place the
/// paths differ.
struct Kernels {
  /// words[0..n) = 0.
  void (*clearWords)(Word* words, std::size_t n);
  /// dst[i] &= ~src[i] — the frontier update `active &= ~doneNew`.
  void (*andNotInPlace)(Word* dst, const Word* src, std::size_t n);
  /// Total set bits over the span.
  std::size_t (*popcountWords)(const Word* words, std::size_t n);
  /// Lowest index clear in both spans (same length); n * 64 when none —
  /// the palette scan `lowest color outside used(u) ∪ used(v)`.
  std::size_t (*firstClearPair)(const Word* a, const Word* b, std::size_t n);
};

/// Kernel table for the active ISA path.
const Kernels& kernels();

// ---------------------------------------------------------------------------
// Plane iteration helpers.

/// Calls `fn(node)` for every set bit of `word` (bit b = node
/// wordIndex*64+b), ascending.
template <class Fn>
inline void forEachBitIn(std::size_t wordIndex, Word word, Fn&& fn) {
  while (word != 0) {
    const auto b = static_cast<std::size_t>(std::countr_zero(word));
    fn(static_cast<net::NodeId>(wordIndex * kWordBits + b));
    word &= word - 1;
  }
}

/// Runs `fn(shard, wordIndex, word)` over every nonzero word of `plane`:
/// serial (shard 0) without a pool, chunked by word index across workers
/// with one. Chunking by *word* is what makes the parallel passes safe by
/// construction — node u's bit in every plane lives at word u/64, so a pass
/// that writes only node-local state and planes never writes a word another
/// worker owns, and two passes over same-sized planes see identical chunk
/// boundaries (`ThreadPool::forEachChunk` contract).
template <class Fn>
// dimacheck: hot-path
inline void forPlaneWords(const support::DynamicBitset& plane,
                          support::ThreadPool* pool, Fn&& fn) {
  const auto words = plane.words();
  if (pool == nullptr) {
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (words[w] != 0) fn(std::size_t{0}, w, words[w]);
    }
    return;
  }
  pool->forEachChunk(
      words.size(), [&](std::size_t worker, std::size_t lo, std::size_t hi) {
        for (std::size_t w = lo; w < hi; ++w) {
          if (words[w] != 0) fn(worker, w, words[w]);
        }
      });
}

// ---------------------------------------------------------------------------
// Traffic accounting.

/// Per-worker shard of the arithmetic traffic model; cache-line padded so
/// parallel passes never false-share.
struct alignas(64) TrafficShard {
  std::uint64_t broadcasts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bits = 0;
  std::uint64_t maxBits = 0;
};

/// Computes the exact `Counters` a fault-free `SyncNetwork` run would
/// produce, without materializing a single message: one `onBroadcast` per
/// reference `net.broadcast(u, m)` call, with the sender's degree as the
/// delivery fan-out (`SyncNetwork::writeSlot` delivers one copy per
/// incidence on reliable channels) and the real wire format's `wireBits()`.
class Traffic {
 public:
  explicit Traffic(std::size_t shards) : shards_(shards) {}

  void onBroadcast(std::size_t shard, std::uint64_t wireBits,
                   std::uint64_t degree) {
    TrafficShard& s = shards_[shard];
    s.broadcasts += 1;  // SyncNetwork counts the send even to zero receivers
    if (degree != 0) {
      s.delivered += degree;
      s.bits += wireBits * degree;
      if (wireBits > s.maxBits) s.maxBits = wireBits;
    }
  }

  /// Order-independent fold of the shards; `commRounds` is cycles × the
  /// protocol's sub-round count (the engine calls `deliverRound` once per
  /// sub-round whether or not anyone sent).
  net::Counters fold(std::uint64_t commRounds) const;

 private:
  std::vector<TrafficShard> shards_;
};

// ---------------------------------------------------------------------------
// The state planes.

/// One bit per node per automaton state (paper Fig. 1). `active` persists
/// across cycles (C = the frontier); the rest are per-cycle and cleared by
/// `beginCycle`. Two states need no storage of their own: W (an invitor
/// awaiting its echo) is exactly the `invite` plane after the send pass,
/// and E (announce) is exactly `update` — on the fault-free model every
/// commit is announced the same cycle. D accumulates as `¬active`;
/// `doneNew` holds only this cycle's entrants so the frontier update is a
/// single and-not sweep.
struct StatePlanes {
  support::DynamicBitset active;   ///< C: not yet done
  support::DynamicBitset invite;   ///< I (and W): chose invitor this cycle
  support::DynamicBitset listen;   ///< L: chose listener this cycle
  support::DynamicBitset respond;  ///< R: listener accepted this cycle
  support::DynamicBitset update;   ///< U (and E): committed this cycle
  support::DynamicBitset doneNew;  ///< D: entered done this cycle

  explicit StatePlanes(std::size_t n);

  /// Word-clears every per-cycle plane.
  void beginCycle();
  /// Retires freshly done nodes: `active &= ~doneNew`. Returns the number
  /// retired.
  std::size_t retire();
};

/// CSR offsets of a graph's incidence lists: `off[u]..off[u+1]` indexes
/// flat per-incidence arrays (kept-invite lists, retired flags, failure
/// counters) without per-node vectors.
std::vector<std::size_t> incidenceOffsets(const graph::Graph& g);

/// The planes-by-color palette layout: one row of `stride` words per node,
/// flat and contiguous, so `used(u) ∪ used(v)` / first-clear-color are
/// word-parallel scans over two rows and a whole-population palette op
/// touches memory sequentially. Bits at or beyond `capacityBits()` read as
/// clear (a color never seen is never used), which mirrors
/// `DynamicBitset::test` past its size; `set` requires capacity, so
/// engines with unbounded palettes (DiMa2Ed) grow the matrix at a serial
/// barrier before any out-of-capacity write can happen.
class PaletteRows {
 public:
  PaletteRows(std::size_t nodes, std::size_t strideWords)
      : nodes_(nodes),
        stride_(strideWords),
        words_(nodes * strideWords, Word{0}) {}

  std::size_t stride() const { return stride_; }
  std::size_t capacityBits() const { return stride_ * kWordBits; }

  Word* row(net::NodeId u) { return words_.data() + u * stride_; }
  const Word* row(net::NodeId u) const { return words_.data() + u * stride_; }

  bool test(net::NodeId u, std::size_t bit) const {
    if (bit >= capacityBits()) return false;
    return (row(u)[bit / kWordBits] >> (bit % kWordBits)) & 1U;
  }

  void set(net::NodeId u, std::size_t bit) {
    DIMA_ASSERT(bit < capacityBits(),
                "palette bit " << bit << " outside row capacity "
                               << capacityBits());
    row(u)[bit / kWordBits] |= Word{1} << (bit % kWordBits);
  }

  void clearRow(net::NodeId u) { kernels().clearWords(row(u), stride_); }

  /// Widens every row to `strideWords` (no-op when already that wide).
  /// Serial: relayouts the whole matrix.
  void growStride(std::size_t strideWords);

  /// Rewinds every row to empty without changing capacity.
  void clearAll() { kernels().clearWords(words_.data(), words_.size()); }

 private:
  std::size_t nodes_;
  std::size_t stride_;
  std::vector<Word> words_;
};

/// The `k`-th (0-based) clear bit of a palette row, counting bits at or
/// beyond capacity as clear — the span form of "the k-th free color", which
/// is how the engines replay `chooseProposalColor`'s candidate walk without
/// materializing the candidate list.
std::size_t nthClearBit(const Word* row, std::size_t strideWords,
                        std::size_t k);

// ---------------------------------------------------------------------------
// Plain matching discovery on the bit-plane engine.

/// Bit-plane replay of `MatchingDiscovery` + `runSyncProtocol` (maximal
/// matching mode): same seed → same matching, rounds, stats, counters and
/// trace. Exposed as a class so the parity harness can drive it cycle by
/// cycle; most callers want `maximalMatchingBitPlane`.
class BitPlaneDiscovery {
 public:
  /// Tracing requires the serial path (TraceLog is single-threaded), so
  /// `trace != nullptr` requires `options.pool == nullptr`. `options`
  /// carries the executor, round cap, and per-cycle observer (the same
  /// surface the reference engine takes).
  BitPlaneDiscovery(const graph::Graph& g, std::uint64_t seed,
                    double invitorBias, const net::EngineOptions& options,
                    net::TraceLog* trace);

  /// Runs to maximality (or the round cap); the observer fires after each
  /// cycle with the same `CycleInfo` the reference engine reports.
  net::EngineResult run();

  Matching matching() const;
  const DiscoveryStats& stats() const { return stats_; }

 private:
  void runCycle();

  const graph::Graph* g_;
  net::EngineOptions options_;
  support::ThreadPool* pool_;
  net::TraceLog* trace_;
  double invitorBias_;
  std::uint64_t cycle_ = 0;

  StatePlanes planes_;
  support::DynamicBitset matchedNow_;  ///< matched this cycle (both roles)
  std::vector<support::Rng> rng_;
  std::vector<net::NodeId> invitee_;      ///< per-invitor pick
  std::vector<net::NodeId> matchedWith_;  ///< partner, kNoVertex if none
  std::vector<std::size_t> off_;          ///< incidence CSR offsets
  std::vector<net::NodeId> keptFrom_;     ///< CSR kept-invite senders
  std::vector<std::uint32_t> keptCount_;
  std::vector<std::uint8_t> retired_;  ///< CSR: neighbor retired flags
  std::vector<std::uint32_t> retiredCount_;
  Traffic traffic_;
  DiscoveryStats stats_;
  std::size_t activeCount_ = 0;
  std::size_t matchedThisCycle_ = 0;
};

/// Drop-in for `automata::maximalMatching` on the bit-plane engine; the
/// reference driver dispatches here on `EngineKind::BitPlane`.
MaximalMatchingResult maximalMatchingBitPlane(const graph::Graph& g,
                                              std::uint64_t seed,
                                              double invitorBias = 0.5,
                                              net::EngineOptions options = {});

}  // namespace dima::automata::bitplane
