#include "src/automata/mis.hpp"

#include <algorithm>

#include "src/net/engine.hpp"
#include "src/support/rng.hpp"

namespace dima::automata {

namespace {

using net::NodeId;

struct MisMessage {
  enum class Kind : std::uint8_t { Rank, Joined };
  Kind kind = Kind::Rank;
  std::uint64_t rank = 0;

  /// CONGEST wire size: 1-bit kind + 64-bit rank (Joined carries none).
  std::uint64_t wireBits() const {
    return 1 + (kind == Kind::Rank ? 64 : 0);
  }
};

/// Luby's MIS as an engine protocol. A node is *active* until it joins the
/// set or a neighbor does. Two communication sub-rounds per cycle: rank
/// exchange, then join announcements.
class MisProtocol {
 public:
  using Message = MisMessage;

  MisProtocol(const graph::Graph& g, std::uint64_t seed) : g_(&g) {
    const support::SeedSequence seq(seed);
    nodes_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      nodes_[u].rng = seq.stream(u);
      // Isolated vertices are trivially in every MIS.
      if (g.degree(u) == 0) {
        nodes_[u].inSet = true;
        nodes_[u].done = true;
      }
    }
  }

  int subRounds() const { return 2; }

  void beginCycle(NodeId u) {
    NodeState& s = nodes_[u];
    s.localMin = false;
    if (s.done) return;
    s.rank = s.rng();
  }

  void send(NodeId u, int sub, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0:
        if (!s.done) {
          net.broadcast(u, Message{Message::Kind::Rank, s.rank});
        }
        break;
      case 1:
        if (s.localMin) {
          net.broadcast(u, Message{Message::Kind::Joined, 0});
        }
        break;
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void receive(NodeId u, int sub,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    switch (sub) {
      case 0: {
        if (s.done) return;
        // Strict local minimum among *active* neighbors; ties broken by
        // node id so two equal ranks cannot both join (ranks are 64-bit,
        // so ties are astronomically rare, but correctness must not hinge
        // on that).
        bool minimal = true;
        for (const auto& env : inbox) {
          if (env.msg.kind != Message::Kind::Rank) continue;
          if (env.msg.rank < s.rank ||
              (env.msg.rank == s.rank && env.from < u)) {
            minimal = false;
            break;
          }
        }
        if (minimal) {
          s.localMin = true;
          s.inSet = true;
          s.done = true;
        }
        break;
      }
      case 1: {
        if (s.done) return;
        const bool neighborJoined = std::any_of(
            inbox.begin(), inbox.end(), [](const net::Envelope<Message>& e) {
              return e.msg.kind == Message::Kind::Joined;
            });
        if (neighborJoined) s.done = true;  // retired, not in the set
        break;
      }
      default:
        DIMA_ASSERT(false, "unexpected sub-round " << sub);
    }
  }

  void endCycle(NodeId) {}
  bool done(NodeId u) const { return nodes_[u].done; }

  std::vector<bool> membership() const {
    std::vector<bool> out(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) out[i] = nodes_[i].inSet;
    return out;
  }

 private:
  struct NodeState {
    support::Rng rng{0};
    std::uint64_t rank = 0;
    bool localMin = false;
    bool inSet = false;
    bool done = false;
  };

  const graph::Graph* g_;
  std::vector<NodeState> nodes_;
};

}  // namespace

std::size_t MisResult::setSize() const {
  return static_cast<std::size_t>(
      std::count(inSet.begin(), inSet.end(), true));
}

MisResult maximalIndependentSet(const graph::Graph& g, std::uint64_t seed,
                                net::EngineOptions options) {
  MisProtocol proto(g, seed);
  net::SyncNetwork<MisMessage> net(g);
  const net::EngineResult run = runSyncProtocol(proto, net, options);
  MisResult result;
  result.inSet = proto.membership();
  result.rounds = run.cycles;
  result.converged = run.converged;
  return result;
}

bool isMaximalIndependentSet(const graph::Graph& g,
                             const std::vector<bool>& inSet) {
  if (inSet.size() != g.numVertices()) return false;
  for (const graph::Edge& e : g.edges()) {
    if (inSet[e.u] && inSet[e.v]) return false;  // not independent
  }
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    if (inSet[v]) continue;
    const auto inc = g.incidences(v);
    const bool covered =
        std::any_of(inc.begin(), inc.end(), [&](const graph::Incidence& i) {
          return inSet[i.neighbor];
        });
    if (!covered) return false;  // not maximal
  }
  return true;
}

}  // namespace dima::automata
