#pragma once

/// \file discovery.hpp
/// The matching discovery automaton itself (paper Fig. 1 / reference [3]),
/// as a protocol for the synchronous engine.
///
/// Behaviour per computation round, exactly the paper's narrative:
///   C  — every active node tosses a fair coin: invitor (I) or listener (L);
///   I  — an invitor picks one *eligible* neighbor uniformly at random and
///        broadcasts an invitation naming it;
///   L  — a listener keeps the invitations that name it;
///   R  — a listener that kept invitations accepts one uniformly at random
///        and broadcasts the acceptance naming the invitor;
///   W  — an invitor that hears its own invitation echoed is matched;
///   E  — freshly matched nodes announce it, so neighbors drop them from
///        their eligible sets.
///
/// This is the purest instantiation of the shared automaton core
/// (automata/core.hpp): the C/I/L/R/W schedule is inherited verbatim, and
/// the policy code below only decides eligibility, records matches, and
/// runs the retire-announce tail.
///
/// Run for one round it emits one matching (`discoverMatching`); iterated to
/// exhaustion every node ends matched or with no unmatched neighbors, i.e.
/// the union-of-rounds greedy yields a *maximal* matching
/// (`maximalMatching`) — the framework's original use, reused here for the
/// 2-approximate vertex cover of the authors' earlier paper.
///
/// The per-round participation statistics gathered here empirically check
/// the paper's Proposition 1 (an active node pairs with probability bounded
/// below by a constant ≈ 1/4), which is the engine behind every O(Δ) claim.

#include <cstdint>
#include <vector>

#include "src/automata/core.hpp"
#include "src/automata/matching.hpp"
#include "src/automata/phase.hpp"
#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::automata {

/// Wire format of the discovery automaton: the shared bare pairing format
/// (Invite / Response / MatchedAnnounce).
using MatchMessage = net::PairWire;

/// Aggregate statistics of a discovery run.
struct DiscoveryStats {
  /// Matched pairs found in each computation round.
  std::vector<std::size_t> pairsPerRound;
  /// Node-rounds in which a node was active (not yet done) — denominator of
  /// the participation probability.
  std::uint64_t activeNodeRounds = 0;
  /// Node-rounds in which an active node became matched — numerator.
  std::uint64_t matchedNodeRounds = 0;

  /// Empirical per-round pairing probability (Proposition 1's constant).
  double participationRate() const {
    if (activeNodeRounds == 0) return 0.0;
    return static_cast<double>(matchedNodeRounds) /
           static_cast<double>(activeNodeRounds);
  }
};

/// Node state: core fields plus match bookkeeping.
struct DiscoveryNode : CoreNode {
  net::NodeId matchedWith = graph::kNoVertex;
  bool matchedThisRound = false;
  bool activeThisRound = false;  ///< folded into DiscoveryStats serially
  support::SmallVector<net::NodeId, 4> keptInvites;
  std::vector<bool> neighborRetired;  ///< parallel to incidences(u)
};

/// The automaton as an engine protocol. Most callers want the convenience
/// drivers below; the class is public so the ablation bench can tweak the
/// invitor-coin bias (the paper's 1/2) and observe the effect on round
/// counts.
class MatchingDiscovery
    : public MatchingCore<MatchingDiscovery, MatchMessage, DiscoveryNode> {
  using Core = MatchingCore<MatchingDiscovery, MatchMessage, DiscoveryNode>;

 public:
  /// `stopWhenMatched == true` gives the maximal-matching behaviour (matched
  /// nodes retire); `false` re-matches every round (used by the one-round
  /// driver). `invitorBias` is the probability of choosing I in state C.
  MatchingDiscovery(const graph::Graph& g, std::uint64_t seed,
                    bool stopWhenMatched = true, double invitorBias = 0.5,
                    net::TraceLog* trace = nullptr);

  // Decision hooks of the shared automaton (see automata/core.hpp).
  void resetScratch(net::NodeId u);
  void onActiveCycle(net::NodeId u);
  net::NodeId pickInvitee(net::NodeId u);
  Message inviteMessage(net::NodeId u);
  bool keepInvite(net::NodeId u, const net::Envelope<Message>& env);
  bool chooseAccept(net::NodeId u);
  Message acceptMessage(net::NodeId u);
  void onEcho(net::NodeId u, const Message& msg);
  int tailSubRounds() const { return 1; }
  // E: announce a fresh match so neighbors retire us. Templated over the
  // substrate so the same hook runs on SyncNetwork and ShardedNetwork.
  template <class Net>
  void tailSend(net::NodeId u, int, Net& net) {
    const DiscoveryNode& s = nodes_[u];
    if (s.matchedThisRound && stopWhenMatched_) {
      net.broadcast(u, Message{net::WireKind::MatchedAnnounce, u});
    }
  }
  void tailReceive(net::NodeId u, int tail, net::Inbox<Message> inbox);
  bool localWorkDone(net::NodeId u) const;

  /// Partner of `u` (kNoVertex while unmatched).
  net::NodeId matchedWith(net::NodeId u) const {
    return nodes_[u].matchedWith;
  }

  /// All matched pairs as a Matching over the host graph.
  Matching matching() const;

  const DiscoveryStats& stats() const { return stats_; }

  /// Collects per-round pair counts; called internally.
  void finishRoundAccounting();

 private:
  const graph::Graph* g_;
  bool stopWhenMatched_;
  DiscoveryStats stats_;
};

/// Runs the automaton for exactly one computation round and returns the
/// discovered matching (possibly empty; never invalid).
Matching discoverMatching(const graph::Graph& g, std::uint64_t seed);

/// Iterates the automaton until no node can still be matched; the union of
/// all rounds' pairs is a maximal matching. Also reports round statistics.
struct MaximalMatchingResult {
  Matching matching;
  std::uint64_t rounds = 0;
  bool converged = false;
  DiscoveryStats stats;
};
MaximalMatchingResult maximalMatching(const graph::Graph& g,
                                      std::uint64_t seed,
                                      double invitorBias = 0.5,
                                      net::EngineOptions options = {});

}  // namespace dima::automata
