#pragma once

/// \file discovery.hpp
/// The matching discovery automaton itself (paper Fig. 1 / reference [3]),
/// as a protocol for the synchronous engine.
///
/// Behaviour per computation round, exactly the paper's narrative:
///   C  — every active node tosses a fair coin: invitor (I) or listener (L);
///   I  — an invitor picks one *eligible* neighbor uniformly at random and
///        broadcasts an invitation naming it;
///   L  — a listener keeps the invitations that name it;
///   R  — a listener that kept invitations accepts one uniformly at random
///        and broadcasts the acceptance naming the invitor;
///   W  — an invitor that hears its own invitation echoed is matched;
///   E  — freshly matched nodes announce it, so neighbors drop them from
///        their eligible sets.
///
/// Run for one round it emits one matching (`discoverMatching`); iterated to
/// exhaustion every node ends matched or with no unmatched neighbors, i.e.
/// the union-of-rounds greedy yields a *maximal* matching
/// (`maximalMatching`) — the framework's original use, reused here for the
/// 2-approximate vertex cover of the authors' earlier paper.
///
/// The per-round participation statistics gathered here empirically check
/// the paper's Proposition 1 (an active node pairs with probability bounded
/// below by a constant ≈ 1/4), which is the engine behind every O(Δ) claim.

#include <cstdint>
#include <vector>

#include "src/automata/matching.hpp"
#include "src/automata/phase.hpp"
#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"
#include "src/net/network.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::automata {

/// Wire format of the discovery automaton.
struct MatchMessage {
  enum class Kind : std::uint8_t { Invite, Response, MatchedAnnounce };
  Kind kind = Kind::Invite;
  /// Invite: the invited listener. Response: the accepted invitor.
  net::NodeId target = graph::kNoVertex;

  /// CONGEST wire size: 2-bit kind + target id.
  std::uint64_t wireBits() const {
    return 2 + (target == graph::kNoVertex ? 1 : net::bitWidth(target));
  }
};

/// Aggregate statistics of a discovery run.
struct DiscoveryStats {
  /// Matched pairs found in each computation round.
  std::vector<std::size_t> pairsPerRound;
  /// Node-rounds in which a node was active (not yet done) — denominator of
  /// the participation probability.
  std::uint64_t activeNodeRounds = 0;
  /// Node-rounds in which an active node became matched — numerator.
  std::uint64_t matchedNodeRounds = 0;

  /// Empirical per-round pairing probability (Proposition 1's constant).
  double participationRate() const {
    if (activeNodeRounds == 0) return 0.0;
    return static_cast<double>(matchedNodeRounds) /
           static_cast<double>(activeNodeRounds);
  }
};

/// The automaton as an engine protocol. Most callers want the convenience
/// drivers below; the class is public so the ablation bench can tweak the
/// invitor-coin bias (the paper's 1/2) and observe the effect on round
/// counts.
class MatchingDiscovery {
 public:
  using Message = MatchMessage;

  /// `stopWhenMatched == true` gives the maximal-matching behaviour (matched
  /// nodes retire); `false` re-matches every round (used by the one-round
  /// driver). `invitorBias` is the probability of choosing I in state C.
  MatchingDiscovery(const graph::Graph& g, std::uint64_t seed,
                    bool stopWhenMatched = true, double invitorBias = 0.5);

  int subRounds() const { return 3; }
  void beginCycle(net::NodeId u);
  void send(net::NodeId u, int sub, net::SyncNetwork<Message>& net);
  void receive(net::NodeId u, int sub,
               net::Inbox<Message> inbox);
  void endCycle(net::NodeId u);
  bool done(net::NodeId u) const { return nodes_[u].done; }

  /// Partner of `u` (kNoVertex while unmatched).
  net::NodeId matchedWith(net::NodeId u) const {
    return nodes_[u].matchedWith;
  }

  /// All matched pairs as a Matching over the host graph.
  Matching matching() const;

  const DiscoveryStats& stats() const { return stats_; }

  /// Collects per-round pair counts; called internally.
  void finishRoundAccounting();

 private:
  struct NodeState {
    Phase role = Phase::Choose;  ///< Invite or Listen for the current round
    bool done = false;
    net::NodeId matchedWith = graph::kNoVertex;
    net::NodeId invitee = graph::kNoVertex;   ///< whom I invited this round
    bool matchedThisRound = false;
    support::SmallVector<net::NodeId, 4> keptInvites;
    std::vector<bool> neighborRetired;  ///< parallel to incidences(u)
    support::Rng rng{0};
  };

  const graph::Graph* g_;
  bool stopWhenMatched_;
  double invitorBias_;
  std::vector<NodeState> nodes_;
  DiscoveryStats stats_;
  std::uint64_t round_ = 0;
};

/// Runs the automaton for exactly one computation round and returns the
/// discovered matching (possibly empty; never invalid).
Matching discoverMatching(const graph::Graph& g, std::uint64_t seed);

/// Iterates the automaton until no node can still be matched; the union of
/// all rounds' pairs is a maximal matching. Also reports round statistics.
struct MaximalMatchingResult {
  Matching matching;
  std::uint64_t rounds = 0;
  bool converged = false;
  DiscoveryStats stats;
};
MaximalMatchingResult maximalMatching(const graph::Graph& g,
                                      std::uint64_t seed,
                                      double invitorBias = 0.5,
                                      net::EngineOptions options = {});

}  // namespace dima::automata
