#include "src/automata/bitplane.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/support/assert.hpp"
#include "src/support/log.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DIMA_BITPLANE_X86 1
#include <immintrin.h>
#endif

namespace dima::automata::bitplane {

// ---------------------------------------------------------------------------
// Kernels: scalar path (always compiled, the semantic definition).

namespace {

void clearScalar(Word* words, std::size_t n) {
  std::fill_n(words, n, Word{0});
}

void andNotScalar(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

std::size_t popcountScalar(const Word* words, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return c;
}

std::size_t firstClearPairScalar(const Word* a, const Word* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word inv = ~(a[i] | b[i]);
    if (inv != 0) {
      return i * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  return n * kWordBits;
}

constexpr Kernels kScalarKernels{clearScalar, andNotScalar, popcountScalar,
                                 firstClearPairScalar};

#if DIMA_BITPLANE_X86

// AVX2 path: 256-bit (4-word) strides, scalar tail. Bit-exact with the
// scalar path by construction — same words, same results, wider loads.

__attribute__((target("avx2"))) void clearAvx2(Word* words, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), zero);
  }
  for (; i < n; ++i) words[i] = 0;
}

__attribute__((target("avx2"))) void andNotAvx2(Word* dst, const Word* src,
                                                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    // andnot(a, b) = ~a & b: clear in dst every bit set in src.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) std::size_t firstClearPairAvx2(
    const Word* a, const Word* b, std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i merged = _mm256_or_si256(va, vb);
    // Lane mask of words that are fully set; any clear lane holds the bit.
    const int full = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(merged, ones)));
    if (full != 0xF) {
      const auto lane = static_cast<std::size_t>(
          std::countr_zero(static_cast<unsigned>(~full & 0xF)));
      const Word word = a[i + lane] | b[i + lane];
      return (i + lane) * kWordBits +
             static_cast<std::size_t>(std::countr_zero(~word));
    }
  }
  for (; i < n; ++i) {
    const Word inv = ~(a[i] | b[i]);
    if (inv != 0) {
      return i * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  return n * kWordBits;
}

constexpr Kernels kAvx2Kernels{clearAvx2, andNotAvx2, popcountScalar,
                               firstClearPairAvx2};

// AVX-512F path: 512-bit (8-word) strides.

__attribute__((target("avx512f"))) void clearAvx512(Word* words,
                                                    std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(reinterpret_cast<void*>(words + i), zero);
  }
  for (; i < n; ++i) words[i] = 0;
}

__attribute__((target("avx512f"))) void andNotAvx512(Word* dst,
                                                     const Word* src,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i s =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    const __m512i d =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_andnot_si512(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx512f"))) std::size_t firstClearPairAvx512(
    const Word* a, const Word* b, std::size_t n) {
  const __m512i ones = _mm512_set1_epi64(-1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + i));
    const __m512i vb =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + i));
    const __mmask8 notFull =
        _mm512_cmpneq_epu64_mask(_mm512_or_si512(va, vb), ones);
    if (notFull != 0) {
      const auto lane = static_cast<std::size_t>(
          std::countr_zero(static_cast<unsigned>(notFull)));
      const Word word = a[i + lane] | b[i + lane];
      return (i + lane) * kWordBits +
             static_cast<std::size_t>(std::countr_zero(~word));
    }
  }
  for (; i < n; ++i) {
    const Word inv = ~(a[i] | b[i]);
    if (inv != 0) {
      return i * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  return n * kWordBits;
}

constexpr Kernels kAvx512Kernels{clearAvx512, andNotAvx512, popcountScalar,
                                 firstClearPairAvx512};

#endif  // DIMA_BITPLANE_X86

Isa initialIsa() {
  const Isa best = bestIsa();
  const char* env = std::getenv("DIMA_BITPLANE_ISA");
  if (env == nullptr || std::strcmp(env, "best") == 0) return best;
  for (const Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Avx512}) {
    if (std::strcmp(env, isaName(isa)) == 0) {
      if (isaSupported(isa)) return isa;
      DIMA_LOG_WARN("DIMA_BITPLANE_ISA=" << env
                                         << " not supported here; using "
                                         << isaName(best));
      return best;
    }
  }
  DIMA_LOG_WARN("unknown DIMA_BITPLANE_ISA value '" << env << "'; using "
                                                    << isaName(best));
  return best;
}

Isa& activeIsaSlot() {
  static Isa isa = initialIsa();
  return isa;
}

}  // namespace

const char* isaName(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return "scalar";
    case Isa::Avx2:
      return "avx2";
    case Isa::Avx512:
      return "avx512";
  }
  return "scalar";
}

bool isaCompiled(Isa isa) {
#if DIMA_BITPLANE_X86
  return isa == Isa::Scalar || isa == Isa::Avx2 || isa == Isa::Avx512;
#else
  return isa == Isa::Scalar;
#endif
}

bool isaSupported(Isa isa) {
  if (!isaCompiled(isa)) return false;
#if DIMA_BITPLANE_X86
  __builtin_cpu_init();
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Isa::Avx512:
      return __builtin_cpu_supports("avx512f") != 0;
  }
#endif
  return isa == Isa::Scalar;
}

Isa bestIsa() {
  if (isaSupported(Isa::Avx512)) return Isa::Avx512;
  if (isaSupported(Isa::Avx2)) return Isa::Avx2;
  return Isa::Scalar;
}

Isa activeIsa() { return activeIsaSlot(); }

void setIsa(Isa isa) {
  DIMA_REQUIRE(isaSupported(isa),
               "ISA path " << isaName(isa) << " not supported on this host");
  activeIsaSlot() = isa;
}

const Kernels& kernels() {
  switch (activeIsaSlot()) {
#if DIMA_BITPLANE_X86
    case Isa::Avx2:
      return kAvx2Kernels;
    case Isa::Avx512:
      return kAvx512Kernels;
#endif
    default:
      return kScalarKernels;
  }
}

// ---------------------------------------------------------------------------

net::Counters Traffic::fold(std::uint64_t commRounds) const {
  net::Counters c;
  c.commRounds = commRounds;
  for (const TrafficShard& s : shards_) {
    c.broadcasts += s.broadcasts;
    c.messagesDelivered += s.delivered;
    c.bitsDelivered += s.bits;
    c.maxMessageBits = std::max(c.maxMessageBits, s.maxBits);
  }
  return c;
}

StatePlanes::StatePlanes(std::size_t n)
    : active(n), invite(n), listen(n), respond(n), update(n), doneNew(n) {}

void StatePlanes::beginCycle() {
  const Kernels& k = kernels();
  for (support::DynamicBitset* plane :
       {&invite, &listen, &respond, &update, &doneNew}) {
    const auto words = plane->mutableWords();
    k.clearWords(words.data(), words.size());
  }
}

std::size_t StatePlanes::retire() {
  const Kernels& k = kernels();
  const auto act = active.mutableWords();
  const auto done = doneNew.words();
  const std::size_t retired = k.popcountWords(done.data(), done.size());
  k.andNotInPlace(act.data(), done.data(), act.size());
  return retired;
}

std::vector<std::size_t> incidenceOffsets(const graph::Graph& g) {
  std::vector<std::size_t> off(g.numVertices() + 1, 0);
  for (net::NodeId u = 0; u < g.numVertices(); ++u) {
    off[u + 1] = off[u] + g.degree(u);
  }
  return off;
}

void PaletteRows::growStride(std::size_t strideWords) {
  if (strideWords <= stride_) return;
  std::vector<Word> wide(nodes_ * strideWords, Word{0});
  for (std::size_t u = 0; u < nodes_; ++u) {
    std::memcpy(wide.data() + u * strideWords, words_.data() + u * stride_,
                stride_ * sizeof(Word));
  }
  words_.swap(wide);
  stride_ = strideWords;
}

std::size_t nthClearBit(const Word* row, std::size_t strideWords,
                        std::size_t k) {
  for (std::size_t w = 0; w < strideWords; ++w) {
    Word inv = ~row[w];
    const auto free = static_cast<std::size_t>(std::popcount(inv));
    if (k < free) {
      while (k > 0) {
        inv &= inv - 1;  // drop the lowest set bit
        --k;
      }
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
    k -= free;
  }
  return strideWords * kWordBits + k;  // every later color is free
}

// ---------------------------------------------------------------------------
// BitPlaneDiscovery: Fig. 1 maximal-matching mode as plane passes.
//
// Pass order per cycle (each a barrier; the comment names the reference
// hook it replays):
//   C  role coin + scratch reset                 (beginCycle)
//   I  pick invitee, account the broadcast       (send sub 0)
//   L  incidence-scan the invite plane           (receive sub 0)
//   R  accept one kept invite, commit listener   (send sub 1)
//   W  echo check via the respond plane          (receive sub 1)
//   E  announce traffic + retire announced       (tail send/receive)
//   D  done check, retire frontier               (endCycle + compaction)

BitPlaneDiscovery::BitPlaneDiscovery(const graph::Graph& g,
                                     std::uint64_t seed, double invitorBias,
                                     const net::EngineOptions& options,
                                     net::TraceLog* trace)
    : g_(&g),
      options_(options),
      pool_(options.pool),
      trace_(trace),
      invitorBias_(invitorBias),
      planes_(g.numVertices()),
      matchedNow_(g.numVertices()),
      invitee_(g.numVertices(), graph::kNoVertex),
      matchedWith_(g.numVertices(), graph::kNoVertex),
      off_(incidenceOffsets(g)),
      keptFrom_(off_.back(), graph::kNoVertex),
      keptCount_(g.numVertices(), 0),
      retired_(off_.back(), 0),
      retiredCount_(g.numVertices(), 0),
      traffic_(pool_ != nullptr ? pool_->workerCount() : 1) {
  DIMA_REQUIRE(invitorBias > 0.0 && invitorBias < 1.0,
               "invitor bias must be in (0,1), got " << invitorBias);
  DIMA_REQUIRE(trace_ == nullptr || pool_ == nullptr,
               "tracing requires the serial engine");
  const support::SeedSequence seq(seed);
  rng_.reserve(g.numVertices());
  for (net::NodeId u = 0; u < g.numVertices(); ++u) {
    rng_.push_back(seq.stream(u));
    if (g.degree(u) != 0) {  // isolated vertices start done (reference ctor)
      planes_.active.set(u);
      ++activeCount_;
    }
  }
}

void BitPlaneDiscovery::runCycle() {
  const Kernels& k = kernels();
  planes_.beginCycle();
  {
    const auto words = matchedNow_.mutableWords();
    k.clearWords(words.data(), words.size());
  }
  stats_.activeNodeRounds += activeCount_;  // onActiveCycle per frontier node

  // C: scratch reset + role coin; build the I/L planes a word at a time.
  forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                           Word bits) {
    Word inviteW = 0;
    Word listenW = 0;
    forEachBitIn(w, bits, [&](net::NodeId u) {
      invitee_[u] = graph::kNoVertex;
      keptCount_[u] = 0;
      const bool invitor = rng_[u].bernoulli(invitorBias_);
      const Word bit = Word{1} << (u % kWordBits);
      if (invitor) {
        inviteW |= bit;
      } else {
        listenW |= bit;
      }
      if (trace_ != nullptr) {
        trace_->record(cycle_, u, net::TraceKind::StateChoice,
                       invitor ? 1 : 0);
      }
    });
    planes_.invite.mutableWords()[w] = inviteW;
    planes_.listen.mutableWords()[w] = listenW;
  });

  // I: pick the k-th eligible (non-retired) neighbor, account the
  // broadcast. A node whose neighbors all retired sits out: no draw, no
  // send (reference pickInvitee).
  forPlaneWords(planes_.invite, pool_, [&](std::size_t shard, std::size_t w,
                                           Word bits) {
    forEachBitIn(w, bits, [&](net::NodeId u) {
      const auto inc = g_->incidences(u);
      const std::uint32_t eligible =
          static_cast<std::uint32_t>(inc.size()) - retiredCount_[u];
      if (eligible == 0) return;
      // The reference builds the eligible list in incidence order and draws
      // an index into it; walking to the pick-th non-retired incidence
      // selects the identical neighbor without materializing the list.
      const std::uint8_t* ret = &retired_[off_[u]];
      auto pick = static_cast<std::uint32_t>(rng_[u].index(eligible));
      std::size_t i = 0;
      for (;; ++i) {
        if (ret[i] != 0) continue;
        if (pick == 0) break;
        --pick;
      }
      const net::NodeId v = inc[i].neighbor;
      invitee_[u] = v;
      const MatchMessage m{net::WireKind::Invite, v};
      traffic_.onBroadcast(shard, m.wireBits(), inc.size());
      if (trace_ != nullptr) {
        trace_->record(cycle_, u, net::TraceKind::InviteSent, v);
      }
    });
  });

  // L: an inbox is an incidence scan testing the sender's invite-plane bit;
  // incidence order is exactly the arena's slot order, so the kept list
  // (and its trace events) come out in the same order.
  forPlaneWords(planes_.listen, pool_, [&](std::size_t, std::size_t w,
                                           Word bits) {
    forEachBitIn(w, bits, [&](net::NodeId v) {
      const auto inc = g_->incidences(v);
      net::NodeId* kept = &keptFrom_[off_[v]];
      std::uint32_t cnt = 0;
      for (const auto& ic : inc) {
        const net::NodeId sender = ic.neighbor;
        if (!planes_.invite.test(sender) || invitee_[sender] != v) continue;
        kept[cnt++] = sender;
        if (trace_ != nullptr) {
          trace_->record(cycle_, v, net::TraceKind::InviteKept, sender);
        }
      }
      keptCount_[v] = cnt;
    });
  });

  // R: accept one kept invite uniformly at random.
  forPlaneWords(planes_.listen, pool_, [&](std::size_t shard, std::size_t w,
                                           Word bits) {
    Word respondW = 0;
    forEachBitIn(w, bits, [&](net::NodeId v) {
      const std::uint32_t cnt = keptCount_[v];
      if (cnt == 0) return;
      const net::NodeId from = keptFrom_[off_[v] + rng_[v].index(cnt)];
      matchedWith_[v] = from;
      respondW |= Word{1} << (v % kWordBits);
      const MatchMessage m{net::WireKind::Response, from};
      traffic_.onBroadcast(shard, m.wireBits(),
                           static_cast<std::uint64_t>(g_->degree(v)));
      if (trace_ != nullptr) {
        trace_->record(cycle_, v, net::TraceKind::ResponseSent, from);
      }
    });
    if (respondW != 0) {
      planes_.respond.mutableWords()[w] = respondW;
      matchedNow_.mutableWords()[w] = respondW;
    }
  });

  // W: the invitor's echo check — did my invitee respond naming me?
  forPlaneWords(planes_.invite, pool_, [&](std::size_t, std::size_t w,
                                           Word bits) {
    Word matchedW = matchedNow_.mutableWords()[w];
    forEachBitIn(w, bits, [&](net::NodeId u) {
      const net::NodeId v = invitee_[u];
      if (v == graph::kNoVertex) return;
      if (!planes_.respond.test(v) || matchedWith_[v] != u) return;
      matchedWith_[u] = v;
      matchedW |= Word{1} << (u % kWordBits);
    });
    matchedNow_.mutableWords()[w] = matchedW;
  });

  // E (send): freshly matched nodes announce themselves.
  forPlaneWords(matchedNow_, pool_, [&](std::size_t shard, std::size_t w,
                                        Word bits) {
    forEachBitIn(w, bits, [&](net::NodeId u) {
      const MatchMessage m{net::WireKind::MatchedAnnounce, u};
      traffic_.onBroadcast(shard, m.wireBits(),
                           static_cast<std::uint64_t>(g_->degree(u)));
    });
  });

  // E (receive): retire announced neighbors from the eligible sets.
  forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                           Word bits) {
    forEachBitIn(w, bits, [&](net::NodeId u) {
      const auto inc = g_->incidences(u);
      std::uint8_t* ret = &retired_[off_[u]];
      std::uint32_t cnt = retiredCount_[u];
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (ret[i] == 0 && matchedNow_.test(inc[i].neighbor)) {
          ret[i] = 1;
          ++cnt;
        }
      }
      retiredCount_[u] = cnt;
    });
  });

  // D: done check over the frontier, then retire in one and-not sweep.
  {
    const auto words = matchedNow_.words();
    matchedThisCycle_ = k.popcountWords(words.data(), words.size());
  }
  stats_.matchedNodeRounds += matchedThisCycle_;  // onCycleEnd equivalent
  forPlaneWords(planes_.active, pool_, [&](std::size_t, std::size_t w,
                                           Word bits) {
    Word doneW = 0;
    forEachBitIn(w, bits, [&](net::NodeId u) {
      if (matchedWith_[u] == graph::kNoVertex &&
          retiredCount_[u] != g_->degree(u)) {
        return;
      }
      doneW |= Word{1} << (u % kWordBits);
      if (trace_ != nullptr) {
        trace_->record(cycle_, u, net::TraceKind::NodeDone);
      }
    });
    if (doneW != 0) planes_.doneNew.mutableWords()[w] = doneW;
  });
  activeCount_ -= planes_.retire();
}

net::EngineResult BitPlaneDiscovery::run() {
  constexpr std::uint64_t kSubRounds = 3;  // invite, respond, announce
  const std::size_t n = g_->numVertices();
  net::EngineResult result;
  while (true) {
    if (activeCount_ == 0) {
      result.converged = true;
      break;
    }
    if (result.cycles >= options_.maxCycles) break;
    runCycle();
    ++result.cycles;
    // finishRoundAccounting + the user observer, in reference order.
    stats_.pairsPerRound.push_back(matchedThisCycle_ / 2);
    ++cycle_;
    if (options_.observer) {
      options_.observer(
          net::CycleInfo{result.cycles - 1, n - activeCount_, n});
    }
  }
  result.counters = traffic_.fold(result.cycles * kSubRounds);
  return result;
}

Matching BitPlaneDiscovery::matching() const {
  Matching m;
  for (net::NodeId u = 0; u < g_->numVertices(); ++u) {
    const net::NodeId v = matchedWith_[u];
    if (v != graph::kNoVertex && u < v) {
      DIMA_REQUIRE(matchedWith_[v] == u, "asymmetric match " << u << "↔" << v);
      const graph::EdgeId e = g_->findEdge(u, v);
      DIMA_REQUIRE(e != graph::kNoEdge, "match without an edge");
      m.add(e);
    }
  }
  return m;
}

MaximalMatchingResult maximalMatchingBitPlane(const graph::Graph& g,
                                              std::uint64_t seed,
                                              double invitorBias,
                                              net::EngineOptions options) {
  BitPlaneDiscovery proto(g, seed, invitorBias, options, /*trace=*/nullptr);
  const net::EngineResult run = proto.run();
  MaximalMatchingResult out;
  out.matching = proto.matching();
  out.rounds = run.cycles;
  out.converged = run.converged;
  out.stats = proto.stats();
  return out;
}

}  // namespace dima::automata::bitplane
