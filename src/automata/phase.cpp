#include "src/automata/phase.hpp"

namespace dima::automata {

const char* phaseName(Phase p) {
  switch (p) {
    case Phase::Choose:
      return "C";
    case Phase::Invite:
      return "I";
    case Phase::Listen:
      return "L";
    case Phase::Respond:
      return "R";
    case Phase::Wait:
      return "W";
    case Phase::Update:
      return "U";
    case Phase::Exchange:
      return "E";
    case Phase::Done:
      return "D";
  }
  return "?";
}

}  // namespace dima::automata
