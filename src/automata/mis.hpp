#pragma once

/// \file mis.hpp
/// Distributed maximal independent set — the classic symmetry-breaking
/// primitive (Luby 1986) implemented on the same synchronous one-hop
/// substrate as the matching automaton. The paper's conclusion argues the
/// automaton approach extends to "a variety of graph algorithms"; MIS is
/// the canonical member of that family and shares the round anatomy
/// (randomize → compare with neighbors → commit winners → retire).
///
/// Round structure (Luby's permutation variant):
///   1. every active node draws a random 64-bit rank and broadcasts it;
///   2. a node whose rank is a strict local minimum joins the set and
///      announces it; neighbors of joiners retire.
/// Terminates in O(log n) rounds w.h.p.; the result is independent (no two
/// adjacent members) and maximal (every non-member has a member neighbor).
///
/// Deliberately *not* built on `automata/core.hpp`: the rank exchange is a
/// symmetric compare-with-all-neighbors step with no invite/accept pairing
/// and no roles, so it is a structurally different automaton from Fig. 1
/// (see docs/PROTOCOLS.md §10).

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"

namespace dima::automata {

struct MisResult {
  std::vector<bool> inSet;  ///< per vertex
  std::uint64_t rounds = 0;
  bool converged = false;
  std::size_t setSize() const;
};

/// Runs Luby's algorithm on `g` over a simulated synchronous network.
MisResult maximalIndependentSet(const graph::Graph& g, std::uint64_t seed,
                                net::EngineOptions options = {});

/// Independence + maximality checker (independent of the protocol).
bool isMaximalIndependentSet(const graph::Graph& g,
                             const std::vector<bool>& inSet);

}  // namespace dima::automata
