#include "src/automata/matching.hpp"

#include <algorithm>

namespace dima::automata {

bool isMatching(const graph::Graph& g, const Matching& m) {
  std::vector<bool> touched(g.numVertices(), false);
  std::vector<bool> used(g.numEdges(), false);
  for (graph::EdgeId e : m.edges()) {
    if (e >= g.numEdges()) return false;
    if (used[e]) return false;  // duplicate edge id
    used[e] = true;
    const graph::Edge& edge = g.edge(e);
    if (touched[edge.u] || touched[edge.v]) return false;
    touched[edge.u] = true;
    touched[edge.v] = true;
  }
  return true;
}

bool isMaximalMatching(const graph::Graph& g, const Matching& m) {
  if (!isMatching(g, m)) return false;
  std::vector<bool> touched(g.numVertices(), false);
  for (graph::EdgeId e : m.edges()) {
    touched[g.edge(e).u] = true;
    touched[g.edge(e).v] = true;
  }
  return std::all_of(g.edges().begin(), g.edges().end(),
                     [&](const graph::Edge& edge) {
                       return touched[edge.u] || touched[edge.v];
                     });
}

std::vector<graph::VertexId> matchedVertices(const graph::Graph& g,
                                             const Matching& m) {
  std::vector<graph::VertexId> out;
  out.reserve(m.size() * 2);
  for (graph::EdgeId e : m.edges()) {
    out.push_back(g.edge(e).u);
    out.push_back(g.edge(e).v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dima::automata
