#pragma once

/// \file vertex_cover.hpp
/// 2-approximate vertex cover via the matching automaton — the framework's
/// application in the authors' earlier work ([3]), referenced by this
/// paper's introduction and conclusion. Taking both endpoints of any maximal
/// matching covers every edge and is at most twice the optimum (the matching
/// itself lower-bounds any cover).

#include <cstdint>
#include <vector>

#include "src/automata/discovery.hpp"
#include "src/graph/graph.hpp"

namespace dima::automata {

struct VertexCoverResult {
  std::vector<graph::VertexId> cover;
  /// Size of the maximal matching that produced the cover; any vertex cover
  /// has at least this many vertices, so |cover| ≤ 2·OPT.
  std::size_t matchingSize = 0;
  std::uint64_t rounds = 0;
  bool converged = false;
};

/// Runs the distributed automaton to a maximal matching and returns both
/// endpoints of every matched edge.
VertexCoverResult vertexCoverViaMatching(const graph::Graph& g,
                                         std::uint64_t seed);

/// True when every edge of `g` has an endpoint in `cover`.
bool isVertexCover(const graph::Graph& g,
                   const std::vector<graph::VertexId>& cover);

}  // namespace dima::automata
