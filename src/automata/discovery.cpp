#include "src/automata/discovery.hpp"

#include <algorithm>

#include "src/automata/bitplane.hpp"

namespace dima::automata {

MatchingDiscovery::MatchingDiscovery(const graph::Graph& g, std::uint64_t seed,
                                     bool stopWhenMatched, double invitorBias,
                                     net::TraceLog* trace)
    : Core(g.numVertices(), invitorBias, trace),
      g_(&g),
      stopWhenMatched_(stopWhenMatched) {
  DIMA_REQUIRE(invitorBias > 0.0 && invitorBias < 1.0,
               "invitor bias must be in (0,1), got " << invitorBias);
  const support::SeedSequence seq(seed);
  for (net::NodeId u = 0; u < g.numVertices(); ++u) {
    DiscoveryNode& s = nodes_[u];
    s.rng = seq.stream(u);
    s.neighborRetired.assign(g.degree(u), false);
    // Isolated vertices have no one to match with.
    s.done = stopWhenMatched_ && g.degree(u) == 0;
  }
}

void MatchingDiscovery::resetScratch(net::NodeId u) {
  DiscoveryNode& s = nodes_[u];
  s.keptInvites.clear();
  s.matchedThisRound = false;
}

// Per-node hooks run concurrently under the pooled and sharded executors,
// so they must not touch the shared DiscoveryStats: mark the node here and
// fold the counters in finishRoundAccounting, which runs in the exclusive
// observer slot.
void MatchingDiscovery::onActiveCycle(net::NodeId u) {
  nodes_[u].activeThisRound = true;
}

// I: one invitation to a random eligible neighbor; a node whose neighbors
// all retired sits the round out (no draw, no send).
net::NodeId MatchingDiscovery::pickInvitee(net::NodeId u) {
  DiscoveryNode& s = nodes_[u];
  const auto inc = g_->incidences(u);
  support::SmallVector<net::NodeId, 8> eligible;
  for (std::size_t i = 0; i < inc.size(); ++i) {
    if (!s.neighborRetired[i]) eligible.push_back(inc[i].neighbor);
  }
  if (eligible.empty()) return graph::kNoVertex;
  return eligible[s.rng.index(eligible.size())];
}

MatchMessage MatchingDiscovery::inviteMessage(net::NodeId u) {
  return Message{net::WireKind::Invite, nodes_[u].invitee};
}

// L: every invitation naming me is keepable.
bool MatchingDiscovery::keepInvite(net::NodeId u,
                                   const net::Envelope<Message>& env) {
  nodes_[u].keptInvites.push_back(env.from);
  return true;
}

// R: accept one kept invitation uniformly at random.
bool MatchingDiscovery::chooseAccept(net::NodeId u) {
  DiscoveryNode& s = nodes_[u];
  if (s.keptInvites.empty()) return false;
  s.matchedWith = s.keptInvites[s.rng.index(s.keptInvites.size())];
  s.matchedThisRound = true;
  return true;
}

MatchMessage MatchingDiscovery::acceptMessage(net::NodeId u) {
  return Message{net::WireKind::Response, nodes_[u].matchedWith};
}

// W: my invitation echoed back means the pair formed.
void MatchingDiscovery::onEcho(net::NodeId u, const Message&) {
  DiscoveryNode& s = nodes_[u];
  s.matchedWith = s.invitee;
  s.matchedThisRound = true;
}

// E: retire announced neighbors from the eligible set.
void MatchingDiscovery::tailReceive(net::NodeId u, int,
                                    net::Inbox<Message> inbox) {
  DiscoveryNode& s = nodes_[u];
  const auto inc = g_->incidences(u);
  for (const auto& env : inbox) {
    if (env.msg.kind != net::WireKind::MatchedAnnounce) continue;
    for (std::size_t i = 0; i < inc.size(); ++i) {
      if (inc[i].neighbor == env.from) {
        s.neighborRetired[i] = true;
        break;
      }
    }
  }
}

bool MatchingDiscovery::localWorkDone(net::NodeId u) const {
  const DiscoveryNode& s = nodes_[u];
  if (!stopWhenMatched_) return false;
  if (s.matchedWith != graph::kNoVertex) return true;
  return std::all_of(s.neighborRetired.begin(), s.neighborRetired.end(),
                     [](bool retired) { return retired; });
}

// dimacheck: observer-slot — folds shared round counters; must only run
// from the exclusive observer slot, never from a per-node hook.
void MatchingDiscovery::finishRoundAccounting() {
  std::size_t pairs = 0;
  for (DiscoveryNode& s : nodes_) {
    if (s.activeThisRound) {
      ++stats_.activeNodeRounds;
      s.activeThisRound = false;
    }
    if (s.matchedThisRound) {
      ++pairs;
      ++stats_.matchedNodeRounds;
      // Consume the flag here rather than relying on beginCycle: a node that
      // matched is done, and the frontier engine stops running its hooks, so
      // a beginCycle reset would never happen and the pair would be
      // recounted every later round.
      s.matchedThisRound = false;
    }
  }
  stats_.pairsPerRound.push_back(pairs / 2);
  tickCycle();
}

Matching MatchingDiscovery::matching() const {
  Matching m;
  for (net::NodeId u = 0; u < nodes_.size(); ++u) {
    const net::NodeId v = nodes_[u].matchedWith;
    if (v != graph::kNoVertex && u < v) {
      // Both sides must agree, or the run is inconsistent.
      DIMA_REQUIRE(nodes_[v].matchedWith == u,
                   "asymmetric match " << u << "↔" << v);
      const graph::EdgeId e = g_->findEdge(u, v);
      DIMA_REQUIRE(e != graph::kNoEdge, "match without an edge");
      m.add(e);
    }
  }
  return m;
}

Matching discoverMatching(const graph::Graph& g, std::uint64_t seed) {
  MatchingDiscovery proto(g, seed, /*stopWhenMatched=*/true);
  net::SyncNetwork<MatchMessage> net(g);
  net::EngineOptions options;
  options.maxCycles = 1;
  options.observer = [&](const net::CycleInfo&) {
    proto.finishRoundAccounting();
  };
  runSyncProtocol(proto, net, options);
  return proto.matching();
}

MaximalMatchingResult maximalMatching(const graph::Graph& g,
                                      std::uint64_t seed, double invitorBias,
                                      net::EngineOptions options) {
  if (options.engine == net::EngineKind::BitPlane) {
    return bitplane::maximalMatchingBitPlane(g, seed, invitorBias, options);
  }
  MatchingDiscovery proto(g, seed, /*stopWhenMatched=*/true, invitorBias);
  auto userObserver = options.observer;
  options.observer = [&](const net::CycleInfo& info) {
    proto.finishRoundAccounting();
    if (userObserver) userObserver(info);
  };
  net::EngineResult run;
  if (options.shards.count > 1) {
    net::ShardedNetwork<MatchMessage> net(
        g, graph::makePartition(g, options.shards.partition,
                                options.shards.count));
    run = runShardedProtocol(proto, net, options);
  } else {
    net::SyncNetwork<MatchMessage> net(g);
    run = runSyncProtocol(proto, net, options);
  }
  MaximalMatchingResult out;
  out.matching = proto.matching();
  out.rounds = run.cycles;
  out.converged = run.converged;
  out.stats = proto.stats();
  return out;
}

}  // namespace dima::automata
