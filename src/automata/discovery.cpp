#include "src/automata/discovery.hpp"

#include <algorithm>

namespace dima::automata {

MatchingDiscovery::MatchingDiscovery(const graph::Graph& g, std::uint64_t seed,
                                     bool stopWhenMatched, double invitorBias)
    : g_(&g), stopWhenMatched_(stopWhenMatched), invitorBias_(invitorBias) {
  DIMA_REQUIRE(invitorBias > 0.0 && invitorBias < 1.0,
               "invitor bias must be in (0,1), got " << invitorBias);
  const support::SeedSequence seq(seed);
  nodes_.resize(g.numVertices());
  for (net::NodeId u = 0; u < g.numVertices(); ++u) {
    NodeState& s = nodes_[u];
    s.rng = seq.stream(u);
    s.neighborRetired.assign(g.degree(u), false);
    // Isolated vertices have no one to match with.
    s.done = stopWhenMatched_ && g.degree(u) == 0;
  }
}

void MatchingDiscovery::beginCycle(net::NodeId u) {
  NodeState& s = nodes_[u];
  s.keptInvites.clear();
  s.invitee = graph::kNoVertex;
  s.matchedThisRound = false;
  if (s.done) {
    s.role = Phase::Done;
    return;
  }
  ++stats_.activeNodeRounds;
  s.role = s.rng.bernoulli(invitorBias_) ? Phase::Invite : Phase::Listen;
}

void MatchingDiscovery::send(net::NodeId u, int sub,
                             net::SyncNetwork<Message>& net) {
  NodeState& s = nodes_[u];
  switch (sub) {
    case 0: {  // I: broadcast one invitation to a random eligible neighbor.
      if (s.role != Phase::Invite) return;
      const auto inc = g_->incidences(u);
      support::SmallVector<net::NodeId, 8> eligible;
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (!s.neighborRetired[i]) eligible.push_back(inc[i].neighbor);
      }
      if (eligible.empty()) return;
      s.invitee = eligible[s.rng.index(eligible.size())];
      net.broadcast(u, Message{Message::Kind::Invite, s.invitee});
      break;
    }
    case 1: {  // R: accept one kept invitation uniformly at random.
      if (s.role != Phase::Listen || s.keptInvites.empty()) return;
      const net::NodeId chosen =
          s.keptInvites[s.rng.index(s.keptInvites.size())];
      s.matchedWith = chosen;
      s.matchedThisRound = true;
      net.broadcast(u, Message{Message::Kind::Response, chosen});
      break;
    }
    case 2: {  // E: announce a fresh match so neighbors retire us.
      if (s.matchedThisRound && stopWhenMatched_) {
        net.broadcast(u, Message{Message::Kind::MatchedAnnounce, u});
      }
      break;
    }
    default:
      DIMA_ASSERT(false, "unexpected sub-round " << sub);
  }
}

void MatchingDiscovery::receive(net::NodeId u, int sub,
                                net::Inbox<Message> inbox) {
  NodeState& s = nodes_[u];
  switch (sub) {
    case 0: {  // L: keep invitations that name me.
      if (s.role != Phase::Listen) return;
      for (const auto& env : inbox) {
        if (env.msg.kind == Message::Kind::Invite && env.msg.target == u) {
          s.keptInvites.push_back(env.from);
        }
      }
      break;
    }
    case 1: {  // W: my invitation echoed back means the pair formed.
      if (s.role != Phase::Invite || s.invitee == graph::kNoVertex) return;
      for (const auto& env : inbox) {
        if (env.msg.kind == Message::Kind::Response && env.msg.target == u &&
            env.from == s.invitee) {
          s.matchedWith = s.invitee;
          s.matchedThisRound = true;
          break;
        }
      }
      break;
    }
    case 2: {  // E: retire announced neighbors from the eligible set.
      const auto inc = g_->incidences(u);
      for (const auto& env : inbox) {
        if (env.msg.kind != Message::Kind::MatchedAnnounce) continue;
        for (std::size_t i = 0; i < inc.size(); ++i) {
          if (inc[i].neighbor == env.from) {
            s.neighborRetired[i] = true;
            break;
          }
        }
      }
      break;
    }
    default:
      DIMA_ASSERT(false, "unexpected sub-round " << sub);
  }
}

void MatchingDiscovery::endCycle(net::NodeId u) {
  NodeState& s = nodes_[u];
  if (s.done) return;
  if (s.matchedThisRound) ++stats_.matchedNodeRounds;
  if (!stopWhenMatched_) return;
  if (s.matchedWith != graph::kNoVertex) {
    s.done = true;
    return;
  }
  s.done = std::all_of(s.neighborRetired.begin(), s.neighborRetired.end(),
                       [](bool retired) { return retired; });
}

void MatchingDiscovery::finishRoundAccounting() {
  std::size_t pairs = 0;
  for (NodeState& s : nodes_) {
    if (s.matchedThisRound) {
      ++pairs;
      // Consume the flag here rather than relying on beginCycle: a node that
      // matched is done, and the frontier engine stops running its hooks, so
      // a beginCycle reset would never happen and the pair would be
      // recounted every later round.
      s.matchedThisRound = false;
    }
  }
  stats_.pairsPerRound.push_back(pairs / 2);
  ++round_;
}

Matching MatchingDiscovery::matching() const {
  Matching m;
  for (net::NodeId u = 0; u < nodes_.size(); ++u) {
    const net::NodeId v = nodes_[u].matchedWith;
    if (v != graph::kNoVertex && u < v) {
      // Both sides must agree, or the run is inconsistent.
      DIMA_REQUIRE(nodes_[v].matchedWith == u,
                   "asymmetric match " << u << "↔" << v);
      const graph::EdgeId e = g_->findEdge(u, v);
      DIMA_REQUIRE(e != graph::kNoEdge, "match without an edge");
      m.add(e);
    }
  }
  return m;
}

Matching discoverMatching(const graph::Graph& g, std::uint64_t seed) {
  MatchingDiscovery proto(g, seed, /*stopWhenMatched=*/true);
  net::SyncNetwork<MatchMessage> net(g);
  net::EngineOptions options;
  options.maxCycles = 1;
  options.observer = [&](const net::CycleInfo&) {
    proto.finishRoundAccounting();
  };
  runSyncProtocol(proto, net, options);
  return proto.matching();
}

MaximalMatchingResult maximalMatching(const graph::Graph& g,
                                      std::uint64_t seed, double invitorBias,
                                      net::EngineOptions options) {
  MatchingDiscovery proto(g, seed, /*stopWhenMatched=*/true, invitorBias);
  net::SyncNetwork<MatchMessage> net(g);
  auto userObserver = options.observer;
  options.observer = [&](const net::CycleInfo& info) {
    proto.finishRoundAccounting();
    if (userObserver) userObserver(info);
  };
  const net::EngineResult run = runSyncProtocol(proto, net, options);
  MaximalMatchingResult out;
  out.matching = proto.matching();
  out.rounds = run.cycles;
  out.converged = run.converged;
  out.stats = proto.stats();
  return out;
}

}  // namespace dima::automata
