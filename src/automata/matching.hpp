#pragma once

/// \file matching.hpp
/// Matchings: the object the automaton discovers each computation round
/// (paper footnote 1: a set of edges no two of which share a vertex).

#include <vector>

#include "src/graph/graph.hpp"

namespace dima::automata {

/// A set of edges of a host graph, by edge id.
class Matching {
 public:
  Matching() = default;
  explicit Matching(std::vector<graph::EdgeId> edges)
      : edges_(std::move(edges)) {}

  void add(graph::EdgeId e) { edges_.push_back(e); }
  const std::vector<graph::EdgeId>& edges() const { return edges_; }
  std::size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

 private:
  std::vector<graph::EdgeId> edges_;
};

/// True when no two edges of `m` share an endpoint in `g` (and all ids are
/// valid and distinct).
bool isMatching(const graph::Graph& g, const Matching& m);

/// True when `m` is a matching that cannot be extended: every edge of `g`
/// has an endpoint covered by `m`.
bool isMaximalMatching(const graph::Graph& g, const Matching& m);

/// Vertices covered by the matching (both endpoints of every edge).
std::vector<graph::VertexId> matchedVertices(const graph::Graph& g,
                                             const Matching& m);

}  // namespace dima::automata
