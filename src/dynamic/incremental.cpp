#include "src/dynamic/incremental.hpp"

#include <utility>
#include <vector>

#include "src/automata/core.hpp"
#include "src/coloring/madec.hpp"
#include "src/net/engine.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"
#include "src/support/small_vector.hpp"

namespace dima::dynamic {

namespace {

using coloring::Color;
using coloring::kNoColor;
using net::NodeId;
using support::DynamicBitset;

constexpr std::uint32_t kNoIndex = static_cast<std::uint32_t>(-1);

/// Node state: the core fields plus the frontier flag and MaDEC's color
/// bookkeeping rebuilt from the overlay at repair start.
struct RepairNode : automata::CoreNode {
  bool active = false;
  /// Incidence indices (into incidences(u)) of uncolored edges.
  support::SmallVector<std::uint32_t, 8> uncolored;
  DynamicBitset ownUsed;                    ///< colors on my edges
  std::vector<DynamicBitset> neighborUsed;  ///< per incidence index
  // Per-cycle scratch:
  support::SmallVector<std::pair<NodeId, Color>, 4> keptInvites;
  std::pair<NodeId, Color> accepted{kNoVertex, kNoColor};
  Color proposed = kNoColor;
  Color pendingAnnounce = kNoColor;  ///< color adopted this cycle
};

/// MaDEC (coloring/madec.cpp) restricted to the dirty frontier: the same
/// automaton core with `participates` gating every hook on frontier
/// membership, so non-frontier vertices no-op while the engine still
/// drives all n nodes. See incremental.hpp for the correctness and
/// color-bound story.
class RepairProtocol
    : public automata::MatchingCore<RepairProtocol, net::ColorWire,
                                    RepairNode> {
  using Core =
      automata::MatchingCore<RepairProtocol, net::ColorWire, RepairNode>;

 public:
  RepairProtocol(const DynamicGraph& g, std::vector<Color>& colors,
                 std::span<const EdgeId> uncolored,
                 const RecolorOptions& options, std::size_t repairIndex)
      : Core(g.numVertices(), options.invitorBias, options.trace),
        g_(&g),
        colors_(&colors),
        halves_(colors.size(), kNoColor) {
    // Pass 1 — frontier membership from the uncolored edge set.
    for (const EdgeId e : uncolored) {
      const Edge edge = g.edge(e);
      nodes_[edge.u].active = true;
      nodes_[edge.v].active = true;
    }
    // Pass 2 — local state: per-vertex RNG stream (keyed by repair index so
    // successive batches draw fresh randomness), uncolored incidence list,
    // exact own used-set from the overlay's surviving colors.
    const support::SeedSequence seq(
        support::mix64(options.seed, repairIndex));
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      RepairNode& s = nodes_[u];
      if (!s.active) {
        s.done = true;
        continue;
      }
      ++frontier_;
      s.rng = seq.stream(u);
      const auto inc = g.incidences(u);
      for (std::uint32_t i = 0; i < inc.size(); ++i) {
        if ((*colors_)[inc[i].edge] == kNoColor) {
          s.uncolored.push_back(i);
        } else {
          s.ownUsed.set(static_cast<std::size_t>((*colors_)[inc[i].edge]));
        }
      }
      DIMA_ASSERT(!s.uncolored.empty(), "frontier vertex with no dirty edge");
      s.neighborUsed.resize(inc.size());
    }
    // Pass 3 — the link-up exchange: a frontier vertex learns the partner's
    // used-set across each uncolored edge (one message over that link in a
    // deployment; the partner is on the frontier too, so its set is ready).
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      RepairNode& s = nodes_[u];
      if (!s.active) continue;
      const auto inc = g.incidences(u);
      for (const std::uint32_t i : s.uncolored) {
        s.neighborUsed[i] = nodes_[inc[i].neighbor].ownUsed;
      }
    }
  }

  std::size_t frontierVertices() const { return frontier_; }

  /// Folds the per-endpoint commit halves into the shared coloring; called
  /// once after the engine run, serially (during the run the halves are
  /// written concurrently by the parallel receive phase).
  void mergeCommits() {
    for (EdgeId e = 0; e < halves_.items(); ++e) {
      const Color merged = halves_.mergedChecked(e);
      if (merged != kNoColor) (*colors_)[e] = merged;
    }
  }

  bool participates(NodeId u) const { return nodes_[u].active; }

  void resetScratch(NodeId u) {
    // Runs even for just-finished nodes so a final-cycle announcement is
    // not replayed.
    RepairNode& s = nodes_[u];
    s.keptInvites.clear();
    s.proposed = kNoColor;
    s.pendingAnnounce = kNoColor;
  }

  // I: invite over a random uncolored edge, lowest free color.
  NodeId pickInvitee(NodeId u) {
    RepairNode& s = nodes_[u];
    const std::uint32_t idx = s.uncolored[s.rng.index(s.uncolored.size())];
    s.proposed = static_cast<Color>(
        s.ownUsed.firstClearAlsoClearIn(s.neighborUsed[idx]));
    return g_->incidences(u)[idx].neighbor;
  }

  Message inviteMessage(NodeId u) {
    const RepairNode& s = nodes_[u];
    return Message{net::WireKind::Invite, s.invitee, s.proposed};
  }

  // L: keep invitations arriving over my uncolored edges.
  bool keepInvite(NodeId u, const net::Envelope<Message>& env) {
    RepairNode& s = nodes_[u];
    // The connecting edge must still be uncolored on my side, and the
    // proposal fresh — both hold by construction on reliable links (the
    // invitor knows used(u) exactly); checked defensively.
    if (uncoloredIndexOf(u, env.from) == kNoIndex ||
        s.ownUsed.test(static_cast<std::size_t>(env.msg.color))) {
      return false;
    }
    s.keptInvites.push_back({env.from, env.msg.color});
    return true;
  }

  // R: accept one kept invitation at random.
  bool chooseAccept(NodeId u) {
    RepairNode& s = nodes_[u];
    if (s.keptInvites.empty()) return false;
    s.accepted = s.keptInvites[s.rng.index(s.keptInvites.size())];
    return true;
  }

  Message acceptMessage(NodeId u) {
    const RepairNode& s = nodes_[u];
    return Message{net::WireKind::Response, s.accepted.first,
                   s.accepted.second};
  }

  void onAcceptSent(NodeId u) {
    const RepairNode& s = nodes_[u];
    colorEdgeAt(u, s.accepted.first, s.accepted.second);
  }

  void onEcho(NodeId u, const Message& msg) {
    const RepairNode& s = nodes_[u];
    DIMA_ASSERT(msg.color == s.proposed, "response color "
                                             << msg.color << " != proposal "
                                             << s.proposed);
    colorEdgeAt(u, s.invitee, msg.color);
  }

  // E: announce the color adopted this cycle, if any.
  int tailSubRounds() const { return 1; }

  template <class Net>
  void tailSend(NodeId u, int, Net& net) {
    announceSend(u, net);
  }

  Message announceMessage(NodeId u) {
    return Message{net::WireKind::ColorAnnounce, kNoVertex,
                   nodes_[u].pendingAnnounce};
  }

  // E: fold neighbors' announcements into their used-sets.
  void tailReceive(NodeId u, int, net::Inbox<Message> inbox) {
    RepairNode& s = nodes_[u];
    if (s.done) return;
    const auto inc = g_->incidences(u);
    for (const auto& env : inbox) {
      if (env.msg.kind != net::WireKind::ColorAnnounce) continue;
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (inc[i].neighbor == env.from) {
          s.neighborUsed[i].set(static_cast<std::size_t>(env.msg.color));
          break;
        }
      }
    }
  }

  bool localWorkDone(NodeId u) const { return nodes_[u].uncolored.empty(); }

 private:
  /// Position of `partner` in u's uncolored list, or kNoIndex.
  std::uint32_t uncoloredIndexOf(NodeId u, NodeId partner) const {
    const RepairNode& s = nodes_[u];
    const auto inc = g_->incidences(u);
    for (std::size_t k = 0; k < s.uncolored.size(); ++k) {
      if (inc[s.uncolored[k]].neighbor == partner) {
        return static_cast<std::uint32_t>(k);
      }
    }
    return kNoIndex;
  }

  /// Commits {u, partner} from u's side: writes this endpoint's commit
  /// half, retires the incidence, schedules the announcement.
  void colorEdgeAt(NodeId u, NodeId partner, Color color) {
    RepairNode& s = nodes_[u];
    const std::uint32_t k = uncoloredIndexOf(u, partner);
    DIMA_ASSERT(k != kNoIndex,
                "node " << u << " has no uncolored edge to " << partner);
    const EdgeId e = g_->incidences(u)[s.uncolored[k]].edge;
    Color& half = halves_.half(e, automata::EndpointHalf::ownedBy(u, partner));
    DIMA_ASSERT(half == kNoColor, "edge " << e << " recolored at " << u);
    half = color;
    DIMA_ASSERT(!s.ownUsed.test(static_cast<std::size_t>(color)),
                "node " << u << " reused color " << color);
    s.ownUsed.set(static_cast<std::size_t>(color));
    s.pendingAnnounce = color;
    s.uncolored.eraseAtUnordered(k);
    trace(u, net::TraceKind::EdgeColored, partner, color);
  }

  const DynamicGraph* g_;
  std::vector<Color>* colors_;
  /// Per-endpoint commit halves for this batch (slot pair per edge slot);
  /// `mergeCommits()` folds them into the shared coloring after the run.
  automata::CommitHalves<Color> halves_;
  std::size_t frontier_ = 0;
};

}  // namespace

IncrementalRecolorer::IncrementalRecolorer(DynamicGraph& g,
                                           const RecolorOptions& options)
    : g_(&g), options_(options) {
  DIMA_REQUIRE(options.invitorBias > 0.0 && options.invitorBias < 1.0,
               "invitor bias must be in (0,1)");
  colors_.resize(g.edgeSlots(), kNoColor);
  uncoloredMark_.resize(g.edgeSlots(), 0);
  for (const EdgeId e : g.liveEdges()) markUncolored(e);
}

void IncrementalRecolorer::markUncolored(EdgeId e) {
  if (e >= colors_.size()) {
    colors_.resize(g_->edgeSlots(), kNoColor);
    uncoloredMark_.resize(g_->edgeSlots(), 0);
  }
  colors_[e] = kNoColor;
  if (uncoloredMark_[e] == 0) {
    uncoloredMark_[e] = 1;
    uncolored_.push_back(e);
  }
}

void IncrementalRecolorer::restoreState(std::vector<coloring::Color> colors,
                                        std::size_t repairsDone) {
  DIMA_REQUIRE(colors.size() == g_->edgeSlots(),
               "restored color array sized " << colors.size() << ", graph has "
                                             << g_->edgeSlots() << " slots");
  colors_ = std::move(colors);
  repairs_ = repairsDone;
  uncolored_.clear();
  uncoloredMark_.assign(g_->edgeSlots(), 0);
  // liveEdges() is in id order after DynamicGraph::fromSlots, so any
  // re-queued stragglers repair in a deterministic order.
  for (const EdgeId e : g_->liveEdges()) {
    if (colors_[e] == kNoColor) markUncolored(e);
  }
}

void IncrementalRecolorer::applyBatch(const ChurnBatch& batch) {
  for (const ChurnOp& op : batch.ops) {
    if (op.kind == ChurnOp::Kind::Insert) {
      markUncolored(op.edge);
    } else if (op.edge < colors_.size()) {
      // Erase frees the color; the stale queue entry (if the edge was
      // inserted and erased between repairs) is filtered out by liveness
      // at repair start.
      colors_[op.edge] = kNoColor;
    }
  }
}

RepairStats IncrementalRecolorer::repair() {
  RepairStats stats;
  stats.repairIndex = repairs_;

  // Budget eviction: deletions can leave an old color above the current
  // degrees' budget; such edges rejoin the frontier. Only edges incident
  // to dirty vertices can violate (a violation needs a degree to shrink).
  for (const VertexId v : g_->dirtyVertices()) {
    for (const Incidence& inc : g_->incidences(v)) {
      const Color c = colors_[inc.edge];
      if (c == kNoColor) continue;
      const std::size_t budget =
          g_->degree(v) + g_->degree(inc.neighbor) - 2;
      if (static_cast<std::size_t>(c) > budget) {
        markUncolored(inc.edge);
        ++stats.evictedEdges;
      }
    }
  }

  // Live uncolored edges = this repair's work list; stale entries (erased
  // since they were queued) drop out here, and their marks are cleared so
  // recycled ids start clean.
  stats.recolored.reserve(uncolored_.size());
  for (const EdgeId e : uncolored_) {
    uncoloredMark_[e] = 0;
    if (g_->alive(e) && colors_[e] == kNoColor) stats.recolored.push_back(e);
  }
  uncolored_.clear();
  stats.insertedEdges = stats.recolored.size() - stats.evictedEdges;

  if (stats.recolored.empty()) {
    stats.converged = true;
    g_->clearDirty();
    ++repairs_;
    return stats;
  }

  RepairProtocol proto(*g_, colors_, stats.recolored, options_, repairs_);
  net::SyncNetwork<RepairProtocol::Message, DynamicGraph> net(*g_,
                                                              options_.faults);
  net::EngineOptions engineOptions;
  engineOptions.maxCycles = options_.maxCycles;
  engineOptions.pool = options_.pool;
  engineOptions.observer = [&](const net::CycleInfo&) { proto.tickCycle(); };
  const net::EngineResult run = runSyncProtocol(proto, net, engineOptions);
  proto.mergeCommits();

  stats.frontierVertices = proto.frontierVertices();
  stats.cycles = run.cycles;
  stats.converged = run.converged;
  if (!run.converged) {
    // Possible only at the round cap; requeue what is still uncolored.
    for (const EdgeId e : stats.recolored) {
      if (colors_[e] == kNoColor) markUncolored(e);
    }
  }
  g_->clearDirty();
  ++repairs_;
  return stats;
}

coloring::Verdict verifyDynamicColoring(
    const DynamicGraph& g, const std::vector<coloring::Color>& colors) {
  std::vector<EdgeId> denseToOverlay;
  const graph::Graph snap = g.snapshot(&denseToOverlay);
  std::vector<Color> dense(denseToOverlay.size(), kNoColor);
  for (std::size_t i = 0; i < denseToOverlay.size(); ++i) {
    if (denseToOverlay[i] < colors.size()) {
      dense[i] = colors[denseToOverlay[i]];
    }
  }
  return coloring::verifyEdgeColoring(snap, dense);
}

FullRecolorResult fullRecolor(const DynamicGraph& g,
                              const RecolorOptions& options) {
  std::vector<EdgeId> denseToOverlay;
  const graph::Graph snap = g.snapshot(&denseToOverlay);
  coloring::MadecOptions madec;
  madec.seed = options.seed;
  madec.invitorBias = options.invitorBias;
  madec.maxCycles = options.maxCycles;
  madec.pool = options.pool;
  const coloring::EdgeColoringResult run = coloring::colorEdgesMadec(snap,
                                                                    madec);
  FullRecolorResult result;
  result.cycles = run.metrics.computationRounds;
  result.converged = run.metrics.converged;
  result.colors.resize(g.edgeSlots(), kNoColor);
  for (std::size_t i = 0; i < denseToOverlay.size(); ++i) {
    result.colors[denseToOverlay[i]] = run.colors[i];
  }
  return result;
}

}  // namespace dima::dynamic
