#pragma once

/// \file dynamic_graph.hpp
/// `DynamicGraph`: a mutable edge-set overlay for topology churn.
///
/// The paper's target application — channel assignment in ad-hoc wireless
/// networks — is dynamic: links appear and disappear as nodes move. The
/// immutable CSR `graph::Graph` is the right representation for a fixed
/// run, so instead of making it mutable the dynamic subsystem layers a
/// mutable overlay on top:
///
///  * **Stable edge ids.** Every edge keeps its id for its whole lifetime;
///    ids of deleted edges are recycled for later inserts. Per-edge arrays
///    (colors, TDMA slots, ...) indexed by id therefore stay valid across
///    arbitrary churn — `edgeSlots()` bounds the indices ever in use.
///  * **Per-vertex dirty sets.** Both endpoints of every inserted or erased
///    edge are recorded until `clearDirty()`; the incremental recoloring
///    protocol seeds its frontier from exactly these vertices.
///  * **The `graph::Graph` topology surface.** `numVertices`, `degree`,
///    `maxDegree`, `incidences`, `hasEdge`, `findEdge` match the immutable
///    graph, so `net::SyncNetwork<M, DynamicGraph>` runs protocols directly
///    over the current overlay — no per-batch snapshot on the hot path.
///
/// Mutations are O(deg) (sorted adjacency vectors, like the CSR slices they
/// replace); `maxDegree` is maintained by a degree histogram in O(1)
/// amortized; uniform live-edge sampling is O(1) via a swap-remove list.
/// `snapshot()` materializes the current topology as an immutable `Graph`
/// for validators and from-scratch comparison runs.

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace dima::dynamic {

using graph::Edge;
using graph::EdgeId;
using graph::Incidence;
using graph::kNoEdge;
using graph::kNoVertex;
using graph::VertexId;

class DynamicGraph {
 public:
  /// Starts from `base`: same vertices, same edges with the same ids.
  explicit DynamicGraph(const graph::Graph& base);
  /// Empty overlay with `n` isolated vertices.
  explicit DynamicGraph(std::size_t n);

  // --- graph::Graph topology surface -------------------------------------
  std::size_t numVertices() const { return adjacency_.size(); }
  /// Live edges (dead id slots excluded).
  std::size_t numEdges() const { return live_.size(); }
  std::size_t degree(VertexId v) const {
    checkVertex(v);
    return adjacency_[v].size();
  }
  /// Maximum degree Δ of the *current* overlay (maintained incrementally).
  std::size_t maxDegree() const { return maxDegree_; }
  double averageDegree() const;
  /// Incident (neighbor, edge) pairs of `v`, neighbor-sorted. Invalidated
  /// by mutations touching `v`.
  std::span<const Incidence> incidences(VertexId v) const {
    checkVertex(v);
    return {adjacency_[v].data(), adjacency_[v].size()};
  }
  bool hasEdge(VertexId a, VertexId b) const {
    return findEdge(a, b) != kNoEdge;
  }
  /// Edge id joining `a` and `b`, or kNoEdge (binary search, O(log deg)).
  EdgeId findEdge(VertexId a, VertexId b) const;
  /// Endpoints of the *live* edge `e`.
  const Edge& edge(EdgeId e) const {
    DIMA_REQUIRE(alive(e), "edge id " << e << " is not alive");
    return edges_[e];
  }

  // --- overlay-specific surface ------------------------------------------
  /// One past the largest edge id ever issued: size per-edge arrays to this.
  std::size_t edgeSlots() const { return edges_.size(); }
  bool alive(EdgeId e) const {
    return e < edges_.size() && edges_[e].u != kNoVertex;
  }

  /// Inserts the undirected edge {a,b}; returns its id (recycled when
  /// possible), or kNoEdge if the edge already exists or a == b. Marks both
  /// endpoints dirty on success.
  EdgeId insertEdge(VertexId a, VertexId b);

  /// Erases the live edge {a,b}; returns its (now recyclable) id, or
  /// kNoEdge when absent. Marks both endpoints dirty on success.
  EdgeId eraseEdge(VertexId a, VertexId b);
  /// Erases by id; false when the id is not alive.
  bool eraseEdge(EdgeId e);

  /// Uniform live edge (O(1)); precondition: numEdges() > 0.
  EdgeId sampleEdge(support::Rng& rng) const {
    DIMA_REQUIRE(!live_.empty(), "sampleEdge on an edgeless overlay");
    return live_[rng.index(live_.size())];
  }
  /// All live edge ids, unspecified order.
  std::span<const EdgeId> liveEdges() const { return live_; }

  /// Vertices incident to an edge inserted or erased since the last
  /// `clearDirty()`, in first-dirtied order, without duplicates.
  std::span<const VertexId> dirtyVertices() const { return dirty_; }
  bool isDirty(VertexId v) const { return dirtyMark_[v] != 0; }
  void clearDirty();

  /// Immutable copy of the current topology with dense edge ids `0..m-1`.
  /// When `denseToOverlay` is non-null it receives, per dense id, the
  /// overlay id of the same edge (for mapping per-edge arrays).
  graph::Graph snapshot(std::vector<EdgeId>* denseToOverlay = nullptr) const;

  /// The id-recycling stack (dead slots; back = next id reused). Exposed
  /// for checkpointing: together with `edgeSlots()` + `edge()` it pins the
  /// overlay's id-assignment state, so a restored process recycles the
  /// same ids for the same future inserts (`service/checkpoint.hpp`).
  std::span<const EdgeId> freeIdStack() const { return freeIds_; }

  /// Rebuilds an overlay from checkpointed slot state: `slots[e]` holds
  /// the endpoints of edge id `e` (`u == kNoVertex` marks a dead slot,
  /// live slots are normalized `u < v`) and `freeIds` is the recycling
  /// stack, verbatim. Dirty sets start empty. The live-edge *order* is
  /// rebuilt in id order — unobservable to the repair protocols, which
  /// walk sorted incidences; only `sampleEdge` draw sequences could differ
  /// from the checkpointed process.
  static DynamicGraph fromSlots(std::size_t n, std::span<const Edge> slots,
                                std::span<const EdgeId> freeIds);

 private:
  void checkVertex(VertexId v) const {
    DIMA_REQUIRE(v < adjacency_.size(), "vertex id " << v << " out of range");
  }
  void markDirty(VertexId v);
  void bumpDegree(VertexId v);
  void dropDegree(VertexId v);
  void linkIncidence(VertexId at, VertexId neighbor, EdgeId e);
  void unlinkIncidence(VertexId at, VertexId neighbor);
  void retireEdge(EdgeId e);

  std::vector<std::vector<Incidence>> adjacency_;  // neighbor-sorted
  std::vector<Edge> edges_;        // slot per id; dead slots have u=kNoVertex
  std::vector<EdgeId> freeIds_;    // dead slots available for reuse
  std::vector<EdgeId> live_;       // live ids, swap-remove order
  std::vector<std::uint32_t> livePos_;  // live_[livePos_[e]] == e
  std::vector<std::size_t> degHist_;    // degHist_[d] = #vertices of degree d
  std::size_t maxDegree_ = 0;

  std::vector<VertexId> dirty_;
  std::vector<std::uint8_t> dirtyMark_;
};

}  // namespace dima::dynamic
