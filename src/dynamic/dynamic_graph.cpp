#include "src/dynamic/dynamic_graph.hpp"

#include <algorithm>

namespace dima::dynamic {

DynamicGraph::DynamicGraph(std::size_t n)
    : adjacency_(n), degHist_(1, n), dirtyMark_(n, 0) {}

DynamicGraph::DynamicGraph(const graph::Graph& base)
    : DynamicGraph(base.numVertices()) {
  edges_.assign(base.edges().begin(), base.edges().end());
  live_.resize(edges_.size());
  livePos_.resize(edges_.size());
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    live_[e] = e;
    livePos_[e] = e;
  }
  for (VertexId v = 0; v < adjacency_.size(); ++v) {
    const auto inc = base.incidences(v);
    adjacency_[v].assign(inc.begin(), inc.end());
    const std::size_t deg = adjacency_[v].size();
    --degHist_[0];
    if (deg >= degHist_.size()) degHist_.resize(deg + 1, 0);
    ++degHist_[deg];
    if (deg > maxDegree_) maxDegree_ = deg;
  }
}

double DynamicGraph::averageDegree() const {
  const std::size_t n = numVertices();
  if (n == 0) return 0.0;
  return 2.0 * static_cast<double>(numEdges()) / static_cast<double>(n);
}

EdgeId DynamicGraph::findEdge(VertexId a, VertexId b) const {
  checkVertex(a);
  checkVertex(b);
  if (degree(a) > degree(b)) std::swap(a, b);
  const auto& inc = adjacency_[a];
  const auto it = std::lower_bound(
      inc.begin(), inc.end(), b,
      [](const Incidence& i, VertexId target) { return i.neighbor < target; });
  if (it != inc.end() && it->neighbor == b) return it->edge;
  return kNoEdge;
}

void DynamicGraph::markDirty(VertexId v) {
  if (dirtyMark_[v] != 0) return;
  dirtyMark_[v] = 1;
  dirty_.push_back(v);
}

void DynamicGraph::clearDirty() {
  for (const VertexId v : dirty_) dirtyMark_[v] = 0;
  dirty_.clear();
}

void DynamicGraph::bumpDegree(VertexId v) {
  const std::size_t deg = adjacency_[v].size();  // already grown
  --degHist_[deg - 1];
  if (deg >= degHist_.size()) degHist_.resize(deg + 1, 0);
  ++degHist_[deg];
  if (deg > maxDegree_) maxDegree_ = deg;
}

void DynamicGraph::dropDegree(VertexId v) {
  const std::size_t deg = adjacency_[v].size();  // already shrunk
  --degHist_[deg + 1];
  ++degHist_[deg];
  while (maxDegree_ > 0 && degHist_[maxDegree_] == 0) --maxDegree_;
}

void DynamicGraph::linkIncidence(VertexId at, VertexId neighbor, EdgeId e) {
  auto& inc = adjacency_[at];
  const auto it = std::lower_bound(
      inc.begin(), inc.end(), neighbor,
      [](const Incidence& i, VertexId target) { return i.neighbor < target; });
  inc.insert(it, Incidence{neighbor, e});
  bumpDegree(at);
}

void DynamicGraph::unlinkIncidence(VertexId at, VertexId neighbor) {
  auto& inc = adjacency_[at];
  const auto it = std::lower_bound(
      inc.begin(), inc.end(), neighbor,
      [](const Incidence& i, VertexId target) { return i.neighbor < target; });
  DIMA_ASSERT(it != inc.end() && it->neighbor == neighbor,
              "missing incidence " << at << "→" << neighbor);
  inc.erase(it);
  dropDegree(at);
}

EdgeId DynamicGraph::insertEdge(VertexId a, VertexId b) {
  checkVertex(a);
  checkVertex(b);
  if (a == b) return kNoEdge;
  if (a > b) std::swap(a, b);
  if (hasEdge(a, b)) return kNoEdge;

  EdgeId e;
  if (!freeIds_.empty()) {
    e = freeIds_.back();
    freeIds_.pop_back();
    edges_[e] = Edge{a, b};
  } else {
    e = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{a, b});
    livePos_.push_back(0);
  }
  livePos_[e] = static_cast<std::uint32_t>(live_.size());
  live_.push_back(e);
  linkIncidence(a, b, e);
  linkIncidence(b, a, e);
  markDirty(a);
  markDirty(b);
  return e;
}

void DynamicGraph::retireEdge(EdgeId e) {
  const Edge edge = edges_[e];
  unlinkIncidence(edge.u, edge.v);
  unlinkIncidence(edge.v, edge.u);
  // Swap-remove from the live list, keeping positions consistent.
  const std::uint32_t pos = livePos_[e];
  const EdgeId lastId = live_.back();
  live_[pos] = lastId;
  livePos_[lastId] = pos;
  live_.pop_back();
  edges_[e] = Edge{};  // u = kNoVertex marks the slot dead
  freeIds_.push_back(e);
  markDirty(edge.u);
  markDirty(edge.v);
}

EdgeId DynamicGraph::eraseEdge(VertexId a, VertexId b) {
  const EdgeId e = findEdge(a, b);
  if (e == kNoEdge) return kNoEdge;
  retireEdge(e);
  return e;
}

bool DynamicGraph::eraseEdge(EdgeId e) {
  if (!alive(e)) return false;
  retireEdge(e);
  return true;
}

DynamicGraph DynamicGraph::fromSlots(std::size_t n,
                                     std::span<const Edge> slots,
                                     std::span<const EdgeId> freeIds) {
  DynamicGraph g(n);
  g.edges_.assign(slots.begin(), slots.end());
  g.livePos_.assign(slots.size(), 0);
  std::size_t dead = 0;
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const Edge edge = g.edges_[e];
    if (edge.u == kNoVertex) {
      ++dead;
      continue;
    }
    DIMA_REQUIRE(edge.u < n && edge.v < n && edge.u < edge.v,
                 "slot " << e << " holds an invalid edge");
    DIMA_REQUIRE(g.findEdge(edge.u, edge.v) == kNoEdge,
                 "slot " << e << " duplicates edge {" << edge.u << ","
                         << edge.v << "}");
    g.livePos_[e] = static_cast<std::uint32_t>(g.live_.size());
    g.live_.push_back(e);
    g.linkIncidence(edge.u, edge.v, e);
    g.linkIncidence(edge.v, edge.u, e);
  }
  DIMA_REQUIRE(freeIds.size() == dead,
               "free-id stack size " << freeIds.size() << " does not cover "
                                     << dead << " dead slots");
  std::vector<std::uint8_t> seen(slots.size(), 0);
  for (const EdgeId e : freeIds) {
    DIMA_REQUIRE(e < slots.size() && g.edges_[e].u == kNoVertex,
                 "free-id " << e << " is not a dead slot");
    DIMA_REQUIRE(seen[e] == 0, "free-id " << e << " listed twice");
    seen[e] = 1;
  }
  g.freeIds_.assign(freeIds.begin(), freeIds.end());
  return g;
}

graph::Graph DynamicGraph::snapshot(std::vector<EdgeId>* denseToOverlay) const {
  std::vector<Edge> edges;
  edges.reserve(live_.size());
  if (denseToOverlay != nullptr) {
    denseToOverlay->clear();
    denseToOverlay->reserve(live_.size());
  }
  // Id order keeps the snapshot deterministic regardless of churn history.
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].u == kNoVertex) continue;
    edges.push_back(edges_[e]);
    if (denseToOverlay != nullptr) denseToOverlay->push_back(e);
  }
  return graph::Graph(numVertices(), std::move(edges));
}

}  // namespace dima::dynamic
