#include "src/dynamic/churn.hpp"

#include <algorithm>

namespace dima::dynamic {

namespace {

/// Rejection-sampling budget per insert. A draw fails only when the sampled
/// pair is a self-loop or an existing edge; on the sparse graphs churn
/// targets the first try almost always lands.
constexpr int kInsertTries = 64;

}  // namespace

bool EventStream::drawInsert(DynamicGraph& g, ChurnOp* op) {
  const std::size_t n = g.numVertices();
  if (n < 2) return false;
  for (int attempt = 0; attempt < kInsertTries; ++attempt) {
    const auto a = static_cast<VertexId>(rng_.index(n));
    const auto b = static_cast<VertexId>(rng_.index(n));
    const EdgeId e = g.insertEdge(a, b);
    if (e == kNoEdge) continue;
    op->kind = ChurnOp::Kind::Insert;
    op->u = std::min(a, b);
    op->v = std::max(a, b);
    op->edge = e;
    return true;
  }
  return false;
}

bool EventStream::drawErase(DynamicGraph& g, ChurnOp* op) {
  if (g.numEdges() == 0) return false;
  const EdgeId e = g.sampleEdge(rng_);
  const Edge edge = g.edge(e);
  g.eraseEdge(e);
  op->kind = ChurnOp::Kind::Erase;
  op->u = edge.u;
  op->v = edge.v;
  op->edge = e;
  return true;
}

ChurnBatch EventStream::nextBatch(DynamicGraph& g) {
  std::size_t ops = options_.opsPerBatch;
  if (ops == 0) {
    const double scaled =
        options_.rate * static_cast<double>(g.numEdges());
    ops = std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
  }
  ChurnBatch batch;
  batch.ops.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    ChurnOp op;
    if (rng_.bernoulli(options_.insertFraction) ? drawInsert(g, &op)
                                                : drawErase(g, &op)) {
      batch.ops.push_back(op);
      if (op.kind == ChurnOp::Kind::Insert) {
        ++batch.inserts;
      } else {
        ++batch.erases;
      }
    }
  }
  ++batches_;
  return batch;
}

}  // namespace dima::dynamic
