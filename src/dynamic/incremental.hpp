#pragma once

/// \file incremental.hpp
/// Incremental edge recoloring under topology churn.
///
/// `IncrementalRecolorer` keeps a proper `≤ 2Δ−1` edge coloring of a
/// `DynamicGraph` alive across insert/erase batches by running the paper's
/// Fig. 1 automaton only on the *dirty frontier* — the vertices incident to
/// uncolored edges — instead of recoloring the whole graph:
///
///  * **Erase** never breaks properness; it only frees the edge's color at
///    both endpoints (their used-sets shrink).
///  * **Insert** leaves the new edge uncolored; both endpoints join the
///    frontier.
///  * **Budget eviction** restores the current-topology color bound: every
///    colored edge must satisfy `color(e) ≤ deg(u) + deg(v) − 2` (the
///    MaDEC selection rule guarantees this at assignment time, see below).
///    Deletions can shrink degrees under an old color; such edges are
///    uncolored and rejoin the frontier. Eviction checks touch only edges
///    incident to dirty vertices, so repair work stays local to the 1-hop
///    neighborhood of the churn.
///
/// The repair protocol is MaDEC verbatim (invite over a random uncolored
/// edge with the lowest color free at both endpoints; listeners accept one
/// invitation; both sides commit and announce) with two dynamic-specific
/// twists, both one-hop local:
///  * non-frontier vertices start in state D and never act — the engine
///    still drives all n nodes, but only frontier vertices participate, and
///    the per-batch work proxy is `cycles × frontierVertices`;
///  * a frontier vertex initializes its partner's used-set from the overlay
///    state (the "link-up exchange": when a link comes up, its endpoints
///    trade used-color lists — one message over the new link) instead of
///    from the empty history a from-scratch run starts with.
///
/// Color-bound argument (the `≤ 2Δ−1` invariant): a proposal for edge
/// {u,v} is the lowest color outside used(u) ∪ used(v); since {u,v} itself
/// is uncolored, |used(u)| ≤ deg(u)−1 and |used(v)| ≤ deg(v)−1, so the
/// proposal is ≤ deg(u)+deg(v)−2 ≤ 2Δ−2. Eviction re-establishes exactly
/// this per-edge inequality after degree-shrinking deletions, hence after
/// every converged repair the palette is within [0, 2Δ−2]: at most 2Δ−1
/// colors for the *current* Δ. Properness is Proposition 2 unchanged: each
/// vertex commits at most one edge per cycle, used-sets are exact at cycle
/// start (initial exchange + per-cycle announcements), so same-cycle
/// commits are vertex-disjoint and every proposal avoids both endpoints'
/// full used-sets — including colors inherited from previous batches.
/// Edges colored at repair start are never rewritten: only inserted or
/// evicted edges change color (tested property).

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/coloring/validate.hpp"
#include "src/dynamic/churn.hpp"
#include "src/dynamic/dynamic_graph.hpp"
#include "src/net/chaos.hpp"
#include "src/net/trace.hpp"
#include "src/support/thread_pool.hpp"

namespace dima::dynamic {

struct RecolorOptions {
  /// Master seed; per-(repair, node) streams are derived from it, so
  /// successive repairs use fresh randomness deterministically.
  std::uint64_t seed = 0x1edc02ULL;
  /// Invitor-role probability of the automaton's C state.
  double invitorBias = 0.5;
  /// Channel perturbations for the repair runs (all-reliable by default).
  /// Under message loss a repair may fail to converge within `maxCycles`;
  /// unrepaired edges simply stay queued for the next `repair()` call.
  net::ChaosModel faults;
  /// Engine round cap per repair.
  std::uint64_t maxCycles = 1u << 20;
  /// Optional parallel executor (results identical to serial; tested).
  support::ThreadPool* pool = nullptr;
  /// Optional event trace (serial executor only). The cycle clock restarts
  /// at 0 for every repair pass.
  net::TraceLog* trace = nullptr;
};

/// Cost and outcome accounting of one repair pass.
struct RepairStats {
  std::size_t repairIndex = 0;      ///< 0 = initial full coloring
  std::size_t insertedEdges = 0;    ///< uncolored because newly inserted
  std::size_t evictedEdges = 0;     ///< uncolored by the budget eviction
  std::size_t frontierVertices = 0; ///< vertices that participated
  std::uint64_t cycles = 0;         ///< automaton cycles this repair ran
  bool converged = false;
  /// Edge ids recolored this pass (== uncolored set at repair start).
  std::vector<EdgeId> recolored;

  /// Work proxy comparable across incremental and full runs:
  /// automaton cycles × participating vertices.
  std::uint64_t activeWork() const { return cycles * frontierVertices; }
};

class IncrementalRecolorer {
 public:
  /// Binds to `g` (which must outlive the recolorer). All live edges start
  /// uncolored; the first `repair()` produces the initial coloring (it is
  /// simply a repair whose frontier is the whole graph).
  IncrementalRecolorer(DynamicGraph& g, const RecolorOptions& options = {});

  /// Color per overlay edge id (kNoColor for dead or not-yet-repaired
  /// slots); indexed up to `g.edgeSlots()`.
  const std::vector<coloring::Color>& colors() const { return colors_; }

  /// Syncs the color array with a churn batch already applied to the graph:
  /// erased edges lose their color, inserted edges are queued for repair.
  void applyBatch(const ChurnBatch& batch);

  /// Runs budget eviction plus the frontier automaton until every live
  /// edge is colored; consumes and clears the graph's dirty set.
  RepairStats repair();

  /// Completed repair passes. Together with `options.seed` this pins every
  /// future RNG stream (`SeedSequence(mix64(seed, repairIndex))`), so a
  /// process restored with the same graph, colors and count replays
  /// bit-identical repairs (service/checkpoint.hpp).
  std::size_t repairsCompleted() const { return repairs_; }

  /// Overwrites the repair state with checkpointed values: per-slot colors
  /// (sized to `g.edgeSlots()`) and the completed-repair count. Live slots
  /// left `kNoColor` are re-queued; a checkpoint taken at a converged epoch
  /// boundary has none.
  void restoreState(std::vector<coloring::Color> colors,
                    std::size_t repairsDone);

  /// Re-points the optional event trace for subsequent repairs (the
  /// service's monitor mode attaches a fresh log per epoch).
  void setTrace(net::TraceLog* trace) { options_.trace = trace; }

 private:
  void markUncolored(EdgeId e);

  DynamicGraph* g_;
  RecolorOptions options_;
  std::vector<coloring::Color> colors_;
  std::vector<EdgeId> uncolored_;          // queued for the next repair
  std::vector<std::uint8_t> uncoloredMark_;  // per edge slot
  std::size_t repairs_ = 0;
};

/// Independent validation of the overlay coloring: snapshots the topology
/// and runs the static checker (`coloring/validate`) on the mapped colors.
coloring::Verdict verifyDynamicColoring(
    const DynamicGraph& g, const std::vector<coloring::Color>& colors);

/// From-scratch comparator: full MaDEC on a snapshot of the current
/// topology. `colors` come back indexed by *overlay* edge id; `cycles × n`
/// is the full-recolor work proxy the benches compare against.
struct FullRecolorResult {
  std::vector<coloring::Color> colors;
  std::uint64_t cycles = 0;
  bool converged = false;
};
FullRecolorResult fullRecolor(const DynamicGraph& g,
                              const RecolorOptions& options = {});

}  // namespace dima::dynamic
