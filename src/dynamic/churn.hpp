#pragma once

/// \file churn.hpp
/// `EventStream`: a seeded topology-churn workload generator.
///
/// Models link churn in an ad-hoc network as batches of edge inserts and
/// erases applied to a `DynamicGraph`: each batch draws `opsPerBatch`
/// operations (or `rate` × current edge count when a relative rate is set),
/// choosing insert vs erase with probability `insertFraction`. Erases pick
/// a uniform live edge; inserts pick a uniform non-adjacent vertex pair by
/// rejection sampling (bounded tries, so near-complete graphs degrade to
/// erase-only batches instead of spinning).
///
/// Ops are applied to the overlay *as they are drawn* — later ops in a
/// batch see earlier ones — and the batch records exactly what happened
/// (kind, endpoints, and the stable edge id), which is all the incremental
/// recolorer needs to keep its per-edge color array in sync. Everything is
/// driven by one `support::Rng` stream, so a (seed, initial graph) pair
/// reproduces the whole trace.

#include <cstdint>
#include <vector>

#include "src/dynamic/dynamic_graph.hpp"
#include "src/support/rng.hpp"

namespace dima::dynamic {

struct ChurnOptions {
  std::uint64_t seed = 0xc4u;
  /// Operations per batch when > 0; otherwise `rate` applies.
  std::size_t opsPerBatch = 0;
  /// Fraction of the current live-edge count churned per batch (used when
  /// opsPerBatch == 0); at least one op per non-empty batch.
  double rate = 0.01;
  /// Probability that an op is an insert (the rest are erases).
  double insertFraction = 0.5;
};

struct ChurnOp {
  enum class Kind : std::uint8_t { Insert, Erase };
  Kind kind = Kind::Insert;
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  /// Stable overlay id of the inserted/erased edge.
  EdgeId edge = kNoEdge;
};

struct ChurnBatch {
  std::vector<ChurnOp> ops;
  std::size_t inserts = 0;
  std::size_t erases = 0;
};

class EventStream {
 public:
  explicit EventStream(const ChurnOptions& options = {})
      : options_(options), rng_(options.seed) {}

  const ChurnOptions& options() const { return options_; }
  std::size_t batchesGenerated() const { return batches_; }

  /// Draws the next batch and applies it to `g` op by op. Ops that cannot
  /// be satisfied (no live edge to erase, no free pair found within the
  /// rejection budget) are skipped, so the returned batch may be smaller
  /// than the configured size.
  ChurnBatch nextBatch(DynamicGraph& g);

 private:
  bool drawInsert(DynamicGraph& g, ChurnOp* op);
  bool drawErase(DynamicGraph& g, ChurnOp* op);

  ChurnOptions options_;
  support::Rng rng_;
  std::size_t batches_ = 0;
};

}  // namespace dima::dynamic
