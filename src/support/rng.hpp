#pragma once

/// \file rng.hpp
/// Deterministic random-number generation for the simulator.
///
/// Design goals (see DESIGN.md §7):
///  * Every compute node in a simulated network owns an *independent* stream so
///    that results do not depend on the order in which the executor steps the
///    nodes. Streams are derived from a single 64-bit master seed with
///    SplitMix64, the recommended seeding procedure for the xoshiro family.
///  * The generators are tiny, allocation-free value types that model the
///    standard `UniformRandomBitGenerator` concept, so `<random>` distributions
///    work — but we also provide bias-free bounded integers (Lemire's method)
///    and the handful of draws the algorithms need (coin flips, index picks,
///    shuffles) so hot paths avoid `std::uniform_int_distribution`'s
///    implementation-defined (non-reproducible across stdlibs) output.

#include <array>
#include <cstdint>
#include <vector>

#include "src/support/assert.hpp"

namespace dima::support {

/// SplitMix64: a fast, well-distributed 64-bit mixer. Used to derive seeds and
/// as a standalone generator for cheap hashing of (seed, key) pairs.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit words; used to key per-(round, src, dst)
/// decisions in the fault model so they are reproducible.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm();
}

/// Xoshiro256**: the default engine for all simulation randomness.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Seeds the four state words via SplitMix64 as recommended by the authors.
  explicit Xoshiro256(std::uint64_t seed = 0x7c0ffee1dea1ULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  std::uint64_t operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of operator(); used to fork non-overlapping
  /// streams from one seeded generator.
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

/// A reproducible random stream bound to one simulated entity (one graph
/// generator, one compute node, ...). Thin convenience wrapper over
/// Xoshiro256 with the draws the algorithms need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7c0ffee1dea1ULL) : engine_(seed) {}

  using result_type = std::uint64_t;
  static constexpr result_type min() { return Xoshiro256::min(); }
  static constexpr result_type max() { return Xoshiro256::max(); }
  std::uint64_t operator()() { return engine_(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire 2018).
  /// Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t index into a container of the given size (> 0).
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(below(static_cast<std::uint64_t>(size)));
  }

  /// Fair coin.
  bool coin() { return (engine_() >> 63) != 0; }

  /// Bernoulli(p) with p in [0,1].
  bool bernoulli(double p);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle of an index-addressable container.
  template <class Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      using std::swap;
      swap(c[i], c[index(i + 1)]);
    }
  }

  /// Picks a uniform element from a non-empty container (by value).
  template <class Container>
  auto pick(const Container& c) -> typename Container::value_type {
    DIMA_REQUIRE(!c.empty(), "Rng::pick on empty container");
    return c[index(c.size())];
  }

 private:
  Xoshiro256 engine_;
};

/// Factory for independent per-entity streams derived from one master seed.
///
/// `SeedSequence(master).stream(k)` is deterministic in (master, k) and
/// distinct streams are statistically independent — the derivation hashes the
/// key through SplitMix64 twice before seeding Xoshiro.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t masterSeed) : master_(masterSeed) {}

  /// 64-bit sub-seed for entity `key`.
  std::uint64_t subSeed(std::uint64_t key) const {
    return mix64(mix64(master_, 0xd1b54a32d192ed03ULL), key);
  }

  /// Independent generator for entity `key`.
  Rng stream(std::uint64_t key) const { return Rng(subSeed(key)); }

  /// One generator per entity id in [0, count).
  std::vector<Rng> streams(std::size_t count) const;

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

}  // namespace dima::support
