#include "src/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/assert.hpp"

namespace dima::support {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::sampleVariance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void IntHistogram::add(std::int64_t key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::uint64_t IntHistogram::countOf(std::int64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::int64_t IntHistogram::minKey() const {
  DIMA_REQUIRE(!counts_.empty(), "minKey of empty histogram");
  return counts_.begin()->first;
}

std::int64_t IntHistogram::maxKey() const {
  DIMA_REQUIRE(!counts_.empty(), "maxKey of empty histogram");
  return counts_.rbegin()->first;
}

double IntHistogram::fraction(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(countOf(key)) / static_cast<double>(total_);
}

std::string IntHistogram::toString() const {
  std::ostringstream oss;
  bool first = true;
  for (const auto& [k, c] : counts_) {
    if (!first) oss << ' ';
    first = false;
    oss << k << ':' << c;
  }
  return oss.str();
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  DIMA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1], got " << q);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

void LinearFit::add(double x, double y) {
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  syy_ += y * y;
}

double LinearFit::slope() const {
  if (n_ < 2) return 0.0;
  const auto n = static_cast<double>(n_);
  const double den = n * sxx_ - sx_ * sx_;
  if (den == 0.0) return 0.0;
  return (n * sxy_ - sx_ * sy_) / den;
}

double LinearFit::intercept() const {
  if (n_ == 0) return 0.0;
  const auto n = static_cast<double>(n_);
  return (sy_ - slope() * sx_) / n;
}

double LinearFit::r2() const {
  if (n_ < 2) return 0.0;
  const auto n = static_cast<double>(n_);
  const double sxxc = sxx_ - sx_ * sx_ / n;
  const double syyc = syy_ - sy_ * sy_ / n;
  const double sxyc = sxy_ - sx_ * sy_ / n;
  if (sxxc <= 0.0 || syyc <= 0.0) return 0.0;
  const double r = sxyc / std::sqrt(sxxc * syyc);
  return r * r;
}

}  // namespace dima::support
