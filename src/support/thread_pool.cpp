#include "src/support/thread_pool.hpp"

#include <algorithm>

#include "src/support/assert.hpp"

namespace dima::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn the rest.
  for (std::size_t i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::runBlock(std::size_t worker) {
  // Contiguous block partitioning: worker w handles indices
  // [w*count/W, (w+1)*count/W). Blocks are disjoint, so no atomics needed.
  const std::size_t workers = workerCount();
  const std::size_t lo = worker * jobCount_ / workers;
  const std::size_t hi = (worker + 1) * jobCount_ / workers;
  if (lo < hi) job_(jobCtx_, lo, hi, worker);
}

void ThreadPool::workerLoop(std::size_t self) {
  std::size_t seen = 0;
  while (true) {
    {
      UniqueLock lock(mutex_);
      wake_.wait(lock.native(), [&]() DIMA_REQUIRES(mutex_) {
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
    }
    runBlock(self);
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::dispatch(std::size_t count, BlockFn block, const void* ctx) {
  if (count == 0) return;
  if (threads_.empty()) {
    block(ctx, 0, count, 0);
    return;
  }
  {
    MutexLock lock(mutex_);
    DIMA_REQUIRE(job_ == nullptr, "ThreadPool::forEach is not reentrant");
    job_ = block;
    jobCtx_ = ctx;
    jobCount_ = count;
    pending_ = threads_.size();
    ++generation_;
  }
  wake_.notify_all();
  runBlock(0);
  {
    UniqueLock lock(mutex_);
    done_.wait(lock.native(),
               [&]() DIMA_REQUIRES(mutex_) { return pending_ == 0; });
    job_ = nullptr;
    jobCtx_ = nullptr;
    jobCount_ = 0;
  }
}

}  // namespace dima::support
