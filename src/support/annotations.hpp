#pragma once

/// \file annotations.hpp
/// Portable macros over clang's thread-safety (capability) analysis.
///
/// The concurrency substrate's contracts — which fields a mutex guards,
/// which functions require it, which phases may touch the network's epoch
/// counters — are written into the types with these macros and checked by
/// clang's `-Wthread-safety` at zero runtime cost; the Werror static-
/// analysis build (`DIMA_WERROR=ON` under clang, see the `static-analysis`
/// CI job) turns a violation into a compile error. Off clang (GCC, MSVC)
/// every macro expands to nothing, so annotated code builds everywhere.
///
/// Naming follows the clang documentation's modern capability vocabulary
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the `DIMA_`
/// prefix keeps the macros out of other libraries' namespaces. Use the
/// wrappers in src/support/mutex.hpp rather than raw `std::mutex` —
/// libstdc++'s mutex types carry no capability attribute, so the analysis
/// cannot see them.

#if defined(__clang__) && !defined(SWIG)
#define DIMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DIMA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a type as a capability (lockable / phase token). The string names
/// the capability kind in diagnostics ("mutex", "phase", ...).
#define DIMA_CAPABILITY(x) DIMA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define DIMA_SCOPED_CAPABILITY DIMA_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define DIMA_GUARDED_BY(x) DIMA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given capability.
#define DIMA_PT_GUARDED_BY(x) DIMA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define DIMA_ACQUIRED_BEFORE(...) \
  DIMA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DIMA_ACQUIRED_AFTER(...) \
  DIMA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively (resp. shared) on
/// entry and does not release it.
#define DIMA_REQUIRES(...) \
  DIMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DIMA_REQUIRES_SHARED(...) \
  DIMA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires (resp. releases) the capability.
#define DIMA_ACQUIRE(...) \
  DIMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DIMA_ACQUIRE_SHARED(...) \
  DIMA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define DIMA_RELEASE(...) \
  DIMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DIMA_RELEASE_SHARED(...) \
  DIMA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define DIMA_TRY_ACQUIRE(...) \
  DIMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy declaration).
#define DIMA_EXCLUDES(...) DIMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it —
/// the choke point for disciplines enforced by structure rather than locks
/// (the engine's phase barriers, single-threaded setup code).
#define DIMA_ASSERT_CAPABILITY(x) \
  DIMA_THREAD_ANNOTATION(assert_capability(x))
#define DIMA_ASSERT_SHARED_CAPABILITY(x) \
  DIMA_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define DIMA_RETURN_CAPABILITY(x) DIMA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code whose safety argument the analysis cannot follow
/// (e.g. the thread pool's publish-by-generation handoff). Every use must
/// carry a comment stating the actual happens-before argument.
#define DIMA_NO_THREAD_SAFETY_ANALYSIS \
  DIMA_THREAD_ANNOTATION(no_thread_safety_analysis)
