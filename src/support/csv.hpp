#pragma once

/// \file csv.hpp
/// Minimal CSV emission for experiment records. Every figure bench writes its
/// raw per-run rows next to the rendered ASCII figure so results can be
/// re-plotted externally.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dima::support {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Writes to an in-memory buffer; call `str()` to retrieve.
  CsvWriter() = default;

  /// Sets the header row (must be called before any `row`).
  CsvWriter& header(const std::vector<std::string>& columns);

  /// Appends one row; the cell count must match the header when one was set.
  CsvWriter& row(const std::vector<std::string>& cells);

  /// Convenience: formats arbitrary streamable values into one row.
  template <class... Ts>
  CsvWriter& rowOf(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(toCell(values)), ...);
    return row(cells);
  }

  /// Full document so far.
  std::string str() const { return buffer_.str(); }

  std::size_t rowCount() const { return rows_; }

  /// Writes the document to `path`; returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Quotes a cell when it contains separators/quotes/newlines.
  static std::string escape(const std::string& cell);

 private:
  template <class T>
  static std::string toCell(const T& v) {
    std::ostringstream oss;
    oss << v;
    return oss.str();
  }

  std::ostringstream buffer_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
  bool haveHeader_ = false;
};

/// Parses one CSV line (quoting-aware); used by tests and the replot tool.
std::vector<std::string> parseCsvLine(const std::string& line);

}  // namespace dima::support
