#include "src/support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/support/assert.hpp"

namespace dima::support {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DIMA_REQUIRE(!columns_.empty(), "TextTable needs at least one column");
}

void TextTable::addRow(std::vector<std::string> cells) {
  DIMA_REQUIRE(cells.size() == columns_.size(),
               "row has " << cells.size() << " cells, table has "
                          << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  std::string s(buf);
  // Trim trailing zeros but keep at least one decimal digit.
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << cells[c];
      if (c + 1 < cells.size()) {
        oss << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    oss << '\n';
  };
  emit(columns_);
  std::size_t ruleLen = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    ruleLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  oss << std::string(ruleLen, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

AsciiPlot::AsciiPlot(std::string title, std::string xLabel, std::string yLabel,
                     int width, int height)
    : title_(std::move(title)),
      xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel)),
      width_(width),
      height_(height) {
  DIMA_REQUIRE(width_ >= 16 && height_ >= 6, "plot area too small");
}

void AsciiPlot::add(PlotSeries series) {
  DIMA_REQUIRE(series.x.size() == series.y.size(),
               "series '" << series.name << "' has mismatched x/y sizes");
  series_.push_back(std::move(series));
}

void AsciiPlot::addGuide(std::string name, double slope, double intercept) {
  guides_.push_back(Guide{std::move(name), slope, intercept});
}

std::string AsciiPlot::render() const {
  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!any) {
        xmin = xmax = s.x[i];
        ymin = ymax = s.y[i];
        any = true;
      } else {
        xmin = std::min(xmin, s.x[i]);
        xmax = std::max(xmax, s.x[i]);
        ymin = std::min(ymin, s.y[i]);
        ymax = std::max(ymax, s.y[i]);
      }
    }
  }
  // Pad degenerate ranges so every point lands inside the frame.
  if (xmax - xmin < 1e-12) xmax = xmin + 1.0;
  if (ymax - ymin < 1e-12) ymax = ymin + 1.0;
  // Anchor at zero when near it: figures read better with a true origin.
  if (xmin > 0 && xmin < 0.35 * xmax) xmin = 0;
  if (ymin > 0 && ymin < 0.35 * ymax) ymin = 0;

  const auto w = static_cast<std::size_t>(width_);
  const auto h = static_cast<std::size_t>(height_);
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto plot = [&](double px, double py, char glyph) {
    const double fx = (px - xmin) / (xmax - xmin);
    const double fy = (py - ymin) / (ymax - ymin);
    if (fx < 0 || fx > 1 || fy < 0 || fy > 1) return;
    auto col = static_cast<std::size_t>(
        std::lround(fx * static_cast<double>(w - 1)));
    auto row = h - 1 -
               static_cast<std::size_t>(
                   std::lround(fy * static_cast<double>(h - 1)));
    grid[row][col] = glyph;
  };

  for (const auto& g : guides_) {
    for (std::size_t c = 0; c < w; ++c) {
      const double px =
          xmin + (xmax - xmin) * static_cast<double>(c) /
                     static_cast<double>(w - 1);
      plot(px, g.slope * px + g.intercept, '.');
    }
  }
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) plot(s.x[i], s.y[i], s.glyph);
  }

  std::ostringstream oss;
  oss << title_ << '\n';
  char lab[64];
  std::snprintf(lab, sizeof(lab), "%8.1f", ymax);
  oss << lab << " +" << std::string(w, '-') << "+\n";
  for (std::size_t r = 0; r < h; ++r) {
    oss << std::string(9, ' ') << '|' << grid[r] << "|\n";
  }
  std::snprintf(lab, sizeof(lab), "%8.1f", ymin);
  oss << lab << " +" << std::string(w, '-') << "+\n";
  std::snprintf(lab, sizeof(lab), "%10.1f", xmin);
  oss << lab;
  std::snprintf(lab, sizeof(lab), "%*.1f", static_cast<int>(w) - 8, xmax);
  oss << lab << '\n';
  oss << std::string(10, ' ') << "x: " << xLabel_ << "   y: " << yLabel_
      << '\n';
  for (const auto& s : series_) {
    oss << std::string(10, ' ') << s.glyph << " = " << s.name << '\n';
  }
  for (const auto& g : guides_) {
    oss << std::string(10, ' ') << ". = " << g.name << '\n';
  }
  return oss.str();
}

}  // namespace dima::support
