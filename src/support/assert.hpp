#pragma once

/// \file assert.hpp
/// Contract-checking macros used throughout the library.
///
/// Two flavours:
///  * `DIMA_REQUIRE(cond, msg)` — precondition / invariant check that is always
///    compiled in. Simulation correctness is the entire point of this library,
///    so interface contracts stay armed in release builds.
///  * `DIMA_ASSERT(cond, msg)`  — internal consistency check, compiled out when
///    `NDEBUG` is defined and `DIMA_CHECKED` is not.
///
/// Failures print file:line plus the message and terminate via
/// `dima::support::contractFailure`, which tests may intercept.

#include <sstream>
#include <string>

namespace dima::support {

/// Called on contract failure. Prints the diagnostic and aborts.
/// Declared noreturn; defined in assert.cpp so the abort site is centralized.
[[noreturn]] void contractFailure(const char* kind, const char* file, int line,
                                  const std::string& message);

}  // namespace dima::support

#define DIMA_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream dimaOss_;                                           \
      dimaOss_ << msg;                                                       \
      ::dima::support::contractFailure("REQUIRE(" #cond ")", __FILE__,       \
                                       __LINE__, dimaOss_.str());            \
    }                                                                        \
  } while (false)

#if defined(NDEBUG) && !defined(DIMA_CHECKED)
#define DIMA_ASSERT(cond, msg) \
  do {                         \
  } while (false)
#else
#define DIMA_ASSERT(cond, msg)                                               \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream dimaOss_;                                           \
      dimaOss_ << msg;                                                       \
      ::dima::support::contractFailure("ASSERT(" #cond ")", __FILE__,        \
                                       __LINE__, dimaOss_.str());            \
    }                                                                        \
  } while (false)
#endif
