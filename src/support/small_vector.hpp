#pragma once

/// \file small_vector.hpp
/// `SmallVector<T, N>`: a vector with inline storage for the first `N`
/// elements. Message inboxes in the network simulator hold a handful of
/// messages per round (at most one per neighbor), so inline storage removes
/// the dominant allocation from the round loop.
///
/// Supports the subset of `std::vector`'s interface the library uses:
/// push_back/emplace_back, clear, erase-by-index, iteration, indexing,
/// copy/move. Elements need not be trivially copyable.

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/support/assert.hpp"

namespace dima::support {

template <class T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) {
      push_back(other.data()[i]);
    }
  }

  SmallVector(SmallVector&& other) noexcept { moveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) {
        push_back(other.data()[i]);
      }
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroyAll();
      releaseHeap();
      moveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    destroyAll();
    releaseHeap();
  }

  T* data() { return heap_ ? heap_ : inlinePtr(); }
  const T* data() const { return heap_ ? heap_ : inlinePtr(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return heap_ ? heapCap_ : N; }
  bool usesInlineStorage() const { return heap_ == nullptr; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](std::size_t i) {
    DIMA_ASSERT(i < size_, "SmallVector index " << i << " >= " << size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    DIMA_ASSERT(i < size_, "SmallVector index " << i << " >= " << size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity()) grow(capacity() * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    DIMA_ASSERT(size_ > 0, "pop_back on empty SmallVector");
    --size_;
    data()[size_].~T();
  }

  /// Removes the element at `i` preserving order (O(n - i)).
  void eraseAt(std::size_t i) {
    DIMA_REQUIRE(i < size_, "eraseAt(" << i << ") out of range " << size_);
    T* d = data();
    for (std::size_t j = i + 1; j < size_; ++j) d[j - 1] = std::move(d[j]);
    pop_back();
  }

  /// Removes the element at `i` by swapping with the last (O(1), reorders).
  void eraseAtUnordered(std::size_t i) {
    DIMA_REQUIRE(i < size_, "eraseAtUnordered(" << i << ") out of range "
                                                << size_);
    T* d = data();
    if (i + 1 != size_) d[i] = std::move(d[size_ - 1]);
    pop_back();
  }

  void clear() {
    destroyAll();
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity()) grow(cap);
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inlinePtr() { return std::launder(reinterpret_cast<T*>(inline_)); }
  const T* inlinePtr() const {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void destroyAll() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
  }

  void releaseHeap() {
    if (heap_) {
      ::operator delete(static_cast<void*>(heap_),
                        std::align_val_t{alignof(T)});
      heap_ = nullptr;
      heapCap_ = 0;
    }
  }

  void grow(std::size_t newCap) {
    newCap = std::max<std::size_t>(newCap, N * 2);
    T* fresh = static_cast<T*>(::operator new(
        newCap * sizeof(T), std::align_val_t{alignof(T)}));
    T* old = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(old[i]));
      old[i].~T();
    }
    releaseHeap();
    heap_ = fresh;
    heapCap_ = newCap;
  }

  void moveFrom(SmallVector&& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      heapCap_ = other.heapCap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.heapCap_ = 0;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      heapCap_ = 0;
      size_ = 0;
      for (std::size_t i = 0; i < other.size_; ++i) {
        emplace_back(std::move(other.inlinePtr()[i]));
      }
      other.clear();
    }
  }

  alignas(T) unsigned char inline_[sizeof(T) * N];
  T* heap_ = nullptr;
  std::size_t heapCap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dima::support
