#include "src/support/csv.hpp"

#include "src/support/assert.hpp"

namespace dima::support {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needsQuote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuote) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::header(const std::vector<std::string>& columns) {
  DIMA_REQUIRE(!haveHeader_ && rows_ == 0,
               "CsvWriter::header must be the first emission");
  haveHeader_ = true;
  columns_ = columns.size();
  return row(columns);
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  if (haveHeader_) {
    DIMA_REQUIRE(cells.size() == columns_,
                 "CSV row has " << cells.size() << " cells, header has "
                                << columns_);
  }
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) buffer_ << ',';
    first = false;
    buffer_ << escape(cell);
  }
  buffer_ << '\n';
  ++rows_;
  return *this;
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << buffer_.str();
  return static_cast<bool>(out);
}

std::vector<std::string> parseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool inQuotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (inQuotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          inQuotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      inQuotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace dima::support
