#include "src/support/rng.hpp"

namespace dima::support {

void Xoshiro256::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = t;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  DIMA_REQUIRE(bound > 0, "Rng::below requires positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = engine_();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = engine_();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  DIMA_REQUIRE(lo <= hi, "Rng::between requires lo <= hi, got " << lo << " > "
                                                                << hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? engine_() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

bool Rng::bernoulli(double p) {
  DIMA_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli(p) needs p in [0,1], got " << p);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<Rng> SeedSequence::streams(std::size_t count) const {
  std::vector<Rng> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(stream(i));
  return out;
}

}  // namespace dima::support
