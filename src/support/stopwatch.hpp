#pragma once

/// \file stopwatch.hpp
/// Wall-clock stopwatch for the benchmark harness.

#include <chrono>

namespace dima::support {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dima::support
