#include "src/support/bitset.hpp"

#include <algorithm>
#include <bit>

namespace dima::support {

void DynamicBitset::resize(std::size_t bits) {
  bits_ = bits;
  words_.resize((bits + kWordBits - 1) / kWordBits, 0);
  trimTail();
}

void DynamicBitset::trimTail() {
  // Keep bits above `bits_` clear so count()/scans stay exact.
  const std::size_t rem = bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << rem) - 1;
  }
}

void DynamicBitset::set(std::size_t i) {
  if (i >= bits_) resize(i + 1);
  words_[i / kWordBits] |= Word{1} << (i % kWordBits);
}

void DynamicBitset::reset(std::size_t i) {
  if (i >= bits_) return;
  words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
}

void DynamicBitset::clear() {
  std::fill(words_.begin(), words_.end(), Word{0});
}

std::size_t DynamicBitset::count() const {
  std::size_t c = 0;
  for (Word w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DynamicBitset::none() const {
  return std::all_of(words_.begin(), words_.end(),
                     [](Word w) { return w == 0; });
}

std::size_t DynamicBitset::firstClear() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const Word inv = ~words_[w];
    if (inv != 0) {
      const auto bit =
          w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
      return bit;  // may equal bits_ when all in-range bits are set; fine.
    }
  }
  return bits_;
}

std::size_t DynamicBitset::firstClearAlsoClearIn(
    const DynamicBitset& other) const {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) {
    const Word inv = ~(words_[w] | other.words_[w]);
    if (inv != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  // Tail: only one operand still has words; a clear bit there is clear in
  // both (out-of-range reads as clear).
  const auto& longer = words_.size() >= other.words_.size() ? *this : other;
  for (std::size_t w = common; w < longer.words_.size(); ++w) {
    const Word inv = ~longer.words_[w];
    if (inv != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  return longer.words_.size() * kWordBits;
}

void DynamicBitset::andNotInto(const DynamicBitset& other,
                               DynamicBitset& out) const {
  out.bits_ = bits_;
  out.words_.resize(words_.size());
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) {
    out.words_[w] = words_[w] & ~other.words_[w];
  }
  for (std::size_t w = common; w < words_.size(); ++w) {
    out.words_[w] = words_[w];
  }
}

std::size_t DynamicBitset::firstClearInWords(std::span<const Word> a,
                                             std::span<const Word> b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t w = 0; w < common; ++w) {
    const Word inv = ~(a[w] | b[w]);
    if (inv != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  const std::span<const Word> longer = a.size() >= b.size() ? a : b;
  for (std::size_t w = common; w < longer.size(); ++w) {
    const Word inv = ~longer[w];
    if (inv != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(inv));
    }
  }
  return longer.size() * kWordBits;
}

std::size_t DynamicBitset::firstSet() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return npos;
}

std::size_t DynamicBitset::nextSet(std::size_t i) const {
  ++i;
  if (i >= bits_) return npos;
  std::size_t w = i / kWordBits;
  Word cur = words_[w] & (~Word{0} << (i % kWordBits));
  while (true) {
    if (cur != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(cur));
    }
    if (++w >= words_.size()) return npos;
    cur = words_[w];
  }
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  if (other.bits_ > bits_) resize(other.bits_);
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) words_[w] &= other.words_[w];
  for (std::size_t w = common; w < words_.size(); ++w) words_[w] = 0;
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) words_[w] &= ~other.words_[w];
  return *this;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
  const std::size_t common = std::min(a.words_.size(), b.words_.size());
  for (std::size_t w = 0; w < common; ++w) {
    if (a.words_[w] != b.words_[w]) return false;
  }
  // Longer operand's tail must be all-zero for set equality.
  const auto& longer = a.words_.size() >= b.words_.size() ? a : b;
  for (std::size_t w = common; w < longer.words_.size(); ++w) {
    if (longer.words_[w] != 0) return false;
  }
  return true;
}

std::string DynamicBitset::toString() const {
  std::string s;
  s.reserve(bits_);
  for (std::size_t i = 0; i < bits_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

std::vector<std::size_t> DynamicBitset::setBits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t i = firstSet(); i != npos; i = nextSet(i)) out.push_back(i);
  return out;
}

}  // namespace dima::support
