#pragma once

/// \file log.hpp
/// Leveled logging. The simulator is quiet by default; tests and the tracing
/// example raise the level. Not thread-safe per message interleaving beyond
/// the atomicity of a single `fwrite`, which is sufficient for diagnostics.

#include <sstream>
#include <string>

namespace dima::support {

enum class LogLevel : int { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-wide log threshold (default Warn).
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Emits one line "[level] message" to stderr when `level` is enabled.
void logMessage(LogLevel level, const std::string& message);

const char* logLevelName(LogLevel level);

}  // namespace dima::support

#define DIMA_LOG(level, expr)                                          \
  do {                                                                 \
    if (static_cast<int>(::dima::support::logLevel()) >=               \
        static_cast<int>(level)) {                                     \
      std::ostringstream dimaLog_;                                     \
      dimaLog_ << expr;                                                \
      ::dima::support::logMessage(level, dimaLog_.str());              \
    }                                                                  \
  } while (false)

#define DIMA_LOG_ERROR(expr) DIMA_LOG(::dima::support::LogLevel::Error, expr)
#define DIMA_LOG_WARN(expr) DIMA_LOG(::dima::support::LogLevel::Warn, expr)
#define DIMA_LOG_INFO(expr) DIMA_LOG(::dima::support::LogLevel::Info, expr)
#define DIMA_LOG_DEBUG(expr) DIMA_LOG(::dima::support::LogLevel::Debug, expr)
