#include "src/support/log.hpp"

#include <atomic>
#include <cstdio>

namespace dima::support {

namespace {
std::atomic<int> gLevel{static_cast<int>(LogLevel::Warn)};
}  // namespace

LogLevel logLevel() { return static_cast<LogLevel>(gLevel.load()); }

void setLogLevel(LogLevel level) { gLevel.store(static_cast<int>(level)); }

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Off:
      return "off";
    case LogLevel::Error:
      return "error";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Info:
      return "info";
    case LogLevel::Debug:
      return "debug";
  }
  return "?";
}

void logMessage(LogLevel level, const std::string& message) {
  std::string line = "[";
  line += logLevelName(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace dima::support
