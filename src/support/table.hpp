#pragma once

/// \file table.hpp
/// Terminal rendering for the benchmark harness: aligned tables (the paper's
/// in-text result summaries) and ASCII scatter plots (Figures 3–6 are
/// rounds-vs-Δ scatters grouped by graph size).

#include <string>
#include <vector>

namespace dima::support {

/// Fixed-column ASCII table with a header rule, e.g.
///
///   family      n   avg-deg | mean-D  rounds  rounds/D
///   ----------------------- | -------------------------
///   erdos-renyi 200 4       | 6.9     14.2    2.06
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void addRow(std::vector<std::string> cells);

  template <class... Ts>
  void addRowOf(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(format(values)), ...);
    addRow(std::move(cells));
  }

  std::string render() const;
  std::size_t rowCount() const { return rows_.size(); }

  /// Formats a double with trailing-zero trimming ("2.50" -> "2.5").
  static std::string format(double v);
  static std::string format(const std::string& v) { return v; }
  static std::string format(const char* v) { return v; }
  template <class T>
  static std::string format(const T& v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// One plotted series: named points sharing a glyph.
struct PlotSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Renders series as an ASCII scatter plot with axes and a legend; the
/// harness uses it to regenerate the *shape* of the paper's figures in the
/// bench output. Width/height are the plotting area in characters.
class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string xLabel, std::string yLabel,
            int width = 72, int height = 22);

  void add(PlotSeries series);

  /// Optional reference line y = slope*x + intercept drawn with '.' glyphs
  /// (used for the 2Δ / 4Δ guides).
  void addGuide(std::string name, double slope, double intercept);

  std::string render() const;

 private:
  std::string title_, xLabel_, yLabel_;
  int width_, height_;
  std::vector<PlotSeries> series_;
  struct Guide {
    std::string name;
    double slope;
    double intercept;
  };
  std::vector<Guide> guides_;
};

}  // namespace dima::support
