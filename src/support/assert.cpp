#include "src/support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace dima::support {

[[noreturn]] void contractFailure(const char* kind, const char* file, int line,
                                  const std::string& message) {
  std::fprintf(stderr, "[dima] contract violation: %s at %s:%d\n  %s\n", kind,
               file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dima::support
