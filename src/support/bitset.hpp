#pragma once

/// \file bitset.hpp
/// `DynamicBitset`: a growable bit set tuned for the color-palette operations
/// the coloring algorithms perform every round:
///  * `firstClear()` / `firstClearNotIn(other)` — "lowest indexed available
///    color", the selection rule of Algorithm 1 line 11;
///  * set-algebra updates (`|=`, `&=`, `-=`) for merging neighbors' used-color
///    announcements into the local dead list;
///  * amortized O(words) iteration over set bits.
///
/// Unlike `std::vector<bool>` it exposes word-level scans (hardware `ctz`)
/// and auto-grows on `set()`, which matches the paper's unbounded palette:
/// color indices are small integers, allocated lazily as the run discovers it
/// needs them.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dima::support {

class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynamicBitset() = default;
  /// Constructs with `bits` addressable bits, all clear.
  explicit DynamicBitset(std::size_t bits) { resize(bits); }

  /// Number of addressable bits.
  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  /// Grows (or shrinks) the addressable range; new bits are clear.
  void resize(std::size_t bits);

  /// Reads bit `i`; out-of-range bits read as 0 (a color never seen is free).
  bool test(std::size_t i) const {
    const std::size_t w = i / kWordBits;
    if (w >= words_.size()) return false;
    return (words_[w] >> (i % kWordBits)) & 1U;
  }
  bool operator[](std::size_t i) const { return test(i); }

  /// Sets bit `i`, growing the set if needed.
  void set(std::size_t i);
  /// Clears bit `i`; no-op when out of range.
  void reset(std::size_t i);
  /// Clears every bit (size unchanged).
  void clear();

  /// Number of set bits.
  std::size_t count() const;
  /// True when no bit is set.
  bool none() const;
  /// True when any bit is set.
  bool any() const { return !none(); }

  /// Index of the lowest clear bit (the "first available color"). A bitset
  /// always has a conceptual clear bit at `size()`, so this never fails.
  std::size_t firstClear() const;

  /// Index of the lowest bit clear in both `this` and `other` — the lowest
  /// color outside `used(u) ∪ used(v)`.
  std::size_t firstClearAlsoClearIn(const DynamicBitset& other) const;

  /// Lowest set bit, or npos when none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t firstSet() const;
  /// Lowest set bit at index > `i`, or npos.
  std::size_t nextSet(std::size_t i) const;

  /// Set algebra. Operands may differ in size; the result grows as needed.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Set difference: clears every bit set in `other`.
  DynamicBitset& operator-=(const DynamicBitset& other);

  /// True when `this` and `other` share at least one set bit.
  bool intersects(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b);

  /// Dense "0101..." rendering, lowest index first (debugging aid).
  std::string toString() const;

  /// Indices of all set bits in increasing order.
  std::vector<std::size_t> setBits() const;

 private:
  void trimTail();

  std::vector<Word> words_;
  std::size_t bits_ = 0;
};

}  // namespace dima::support
