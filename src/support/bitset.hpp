#pragma once

/// \file bitset.hpp
/// `DynamicBitset`: a growable bit set tuned for the color-palette operations
/// the coloring algorithms perform every round:
///  * `firstClear()` / `firstClearNotIn(other)` — "lowest indexed available
///    color", the selection rule of Algorithm 1 line 11;
///  * set-algebra updates (`|=`, `&=`, `-=`) for merging neighbors' used-color
///    announcements into the local dead list;
///  * amortized O(words) iteration over set bits.
///
/// Unlike `std::vector<bool>` it exposes word-level scans (hardware `ctz`)
/// and auto-grows on `set()`, which matches the paper's unbounded palette:
/// color indices are small integers, allocated lazily as the run discovers it
/// needs them.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dima::support {

class DynamicBitset {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  DynamicBitset() = default;
  /// Constructs with `bits` addressable bits, all clear.
  explicit DynamicBitset(std::size_t bits) { resize(bits); }

  /// Number of addressable bits.
  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  /// Grows (or shrinks) the addressable range; new bits are clear.
  void resize(std::size_t bits);

  /// Reads bit `i`; out-of-range bits read as 0 (a color never seen is free).
  bool test(std::size_t i) const {
    const std::size_t w = i / kWordBits;
    if (w >= words_.size()) return false;
    return (words_[w] >> (i % kWordBits)) & 1U;
  }
  bool operator[](std::size_t i) const { return test(i); }

  /// Sets bit `i`, growing the set if needed.
  void set(std::size_t i);
  /// Clears bit `i`; no-op when out of range.
  void reset(std::size_t i);
  /// Clears every bit (size unchanged).
  void clear();

  /// Number of set bits.
  std::size_t count() const;
  /// True when no bit is set.
  bool none() const;
  /// True when any bit is set.
  bool any() const { return !none(); }

  /// Index of the lowest clear bit (the "first available color"). A bitset
  /// always has a conceptual clear bit at `size()`, so this never fails.
  std::size_t firstClear() const;

  /// Index of the lowest bit clear in both `this` and `other` — the lowest
  /// color outside `used(u) ∪ used(v)`.
  std::size_t firstClearAlsoClearIn(const DynamicBitset& other) const;

  /// Lowest set bit, or npos when none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t firstSet() const;
  /// Lowest set bit at index > `i`, or npos.
  std::size_t nextSet(std::size_t i) const;

  /// Set algebra. Operands may differ in size; the result grows as needed.
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Set difference: clears every bit set in `other`.
  DynamicBitset& operator-=(const DynamicBitset& other);

  /// True when `this` and `other` share at least one set bit.
  bool intersects(const DynamicBitset& other) const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b);

  /// Read-only view of the backing words, lowest-indexed bits first. The
  /// class invariant (trimTail) keeps bits at index >= size() clear, so word
  /// loops over this span need no tail mask of their own.
  std::span<const Word> words() const { return words_; }

  /// Mutable word view for engines that batch-update whole state planes.
  /// Callers own the invariant: bits at index >= size() must stay clear,
  /// or count()/scans over this set become wrong.
  std::span<Word> mutableWords() { return words_; }

  /// Calls `fn(wordIndex, word)` for every nonzero backing word in ascending
  /// order — the batched form of set-bit iteration: one callback per 64 bits
  /// instead of one per bit, so dense planes iterate at word speed.
  template <class Fn>
  void forEachSetWord(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0) fn(w, words_[w]);
    }
  }

  /// out = this & ~other, sized to `size()`. The word-parallel form of the
  /// frontier update `active &= ~doneNew`; unlike operator-= it writes a
  /// destination set, leaving both operands untouched.
  void andNotInto(const DynamicBitset& other, DynamicBitset& out) const;

  /// Lowest index clear in both raw word spans; indices beyond either span
  /// read as clear. This is `firstClearAlsoClearIn` over a word range, for
  /// callers that store many palettes as rows of a flat word array (the
  /// planes-by-color layout) rather than as DynamicBitset objects. Callers
  /// own tail masking: any padding bits set in the final words count as used.
  static std::size_t firstClearInWords(std::span<const Word> a,
                                       std::span<const Word> b);

  /// Dense "0101..." rendering, lowest index first (debugging aid).
  std::string toString() const;

  /// Indices of all set bits in increasing order.
  std::vector<std::size_t> setBits() const;

 private:
  void trimTail();

  std::vector<Word> words_;
  std::size_t bits_ = 0;
};

}  // namespace dima::support
