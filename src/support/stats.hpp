#pragma once

/// \file stats.hpp
/// Statistics used by the experiment harness: streaming moments (Welford),
/// integer histograms (color-excess distributions), sample quantiles, and
/// ordinary least-squares regression (the "rounds grow linearly with Δ"
/// claims of §IV are slope/r² statements).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dima::support {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm; stable
/// for long runs).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (n in the denominator); 0 for n < 1.
  double variance() const;
  /// Sample variance (n-1 in the denominator); 0 for n < 2.
  double sampleVariance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counting histogram over integer keys; used for "colors − Δ" distributions
/// (e.g. the paper's "Δ+2 colors in only 2 of the 300 runs").
class IntHistogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);
  std::uint64_t countOf(std::int64_t key) const;
  std::uint64_t total() const { return total_; }
  bool empty() const { return counts_.empty(); }
  std::int64_t minKey() const;
  std::int64_t maxKey() const;
  /// Fraction of mass at `key` (0 when the histogram is empty).
  double fraction(std::int64_t key) const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return counts_;
  }
  /// Renders as "k:count k:count ...".
  std::string toString() const;

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Sample quantile with linear interpolation (type-7, the numpy default).
/// `q` in [0,1]. The input is copied and sorted; empty input returns 0.
double quantile(std::vector<double> samples, double q);

/// Ordinary least squares y = slope*x + intercept.
class LinearFit {
 public:
  void add(double x, double y);
  std::size_t count() const { return n_; }
  /// Slope of the fitted line; 0 when degenerate (n < 2 or zero x-variance).
  double slope() const;
  double intercept() const;
  /// Coefficient of determination in [0,1]; 0 when degenerate.
  double r2() const;

 private:
  std::size_t n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, sxy_ = 0, syy_ = 0;
};

}  // namespace dima::support
