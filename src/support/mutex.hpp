#pragma once

/// \file mutex.hpp
/// Capability-annotated synchronization wrappers (see annotations.hpp).
///
/// libstdc++'s `std::mutex` carries no capability attribute, so clang's
/// thread-safety analysis cannot track it. These thin wrappers are the
/// standard fix: `Mutex` is byte-for-byte a `std::mutex` with annotated
/// lock/unlock, and the RAII types mirror `std::lock_guard` /
/// `std::unique_lock`. Condition-variable waits go through
/// `UniqueLock::native()` — the analysis treats the capability as held
/// across the wait, which is the conventional (and safe) fiction: the
/// guarded predicate is only ever evaluated with the lock re-acquired.
///
/// `PhaseCapability` annotates disciplines enforced by *structure* instead
/// of a lock: the engine's bulk-synchronous barriers serialize
/// `deliverRound()` against the parallel send/receive phases, and setup
/// code (sink registration, option setting) runs before any worker exists.
/// It occupies no storage beyond an empty byte and its methods compile to
/// nothing; the value is that any *new* member function touching a
/// phase-guarded field must pass one of the assertion choke points, where
/// a reviewer sees the claim being made.

#include <mutex>

#include "src/support/annotations.hpp"

namespace dima::support {

/// `std::mutex` with capability annotations.
class DIMA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DIMA_ACQUIRE() { m_.lock(); }
  void unlock() DIMA_RELEASE() { m_.unlock(); }
  bool try_lock() DIMA_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped mutex, for APIs that need the std type (condition
  /// variables via `UniqueLock::native()`).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// `std::lock_guard` over `Mutex`.
class DIMA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) DIMA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() DIMA_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// `std::unique_lock` over `Mutex`; `native()` feeds condition-variable
/// waits. Always constructed locked and destructed unlocked (no deferred
/// or adopted states — the analysis cannot follow those).
class DIMA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) DIMA_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() DIMA_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// A lock-less capability modeling a structural discipline (bulk-
/// synchronous phase barriers, single-threaded setup). Fields annotated
/// `DIMA_GUARDED_BY(phase_)` can only be touched by functions that pass an
/// assertion choke point — the annotation names the discipline, clang
/// checks that no unaudited access path exists, and everything compiles to
/// nothing at runtime.
class DIMA_CAPABILITY("phase") PhaseCapability {
 public:
  /// The caller is the phase's single writer (e.g. the serial barrier
  /// between send and receive phases).
  void assertExclusive() const DIMA_ASSERT_CAPABILITY(this) {}
  /// The caller only reads phase-guarded state (e.g. concurrent senders
  /// reading the open epoch).
  void assertShared() const DIMA_ASSERT_SHARED_CAPABILITY(this) {}
};

}  // namespace dima::support
