#pragma once

/// \file thread_pool.hpp
/// Barrier-style parallel-for pool for the network simulator.
///
/// The simulator's round structure is bulk-synchronous (BSP, the same shape
/// as an MPI program alternating compute and `MPI_Barrier`): every node runs
/// its send step, a barrier, delivery, a barrier, every node runs its receive
/// step. `ThreadPool::forEach(n, fn)` executes `fn(i)` for `i in [0,n)`
/// partitioned into contiguous blocks across the workers and returns only
/// when every index completed — the implicit barrier.
///
/// `forEach` is a template: the callable is passed through a captureless
/// trampoline as one indirect call *per worker block*, not one
/// `std::function` call per element (which at n=10⁵ nodes × 4 hooks × many
/// rounds was real overhead). `forEachChunk(n, fn)` hands each worker its
/// whole contiguous range `fn(worker, lo, hi)` — the building block for
/// per-worker reductions (done-counter folds, two-pass compaction).
///
/// Determinism: node steps never touch shared mutable state (each node owns
/// its RNG, state and outbox), so results are identical for any worker count;
/// tests assert this.

// dimalint: hot-path — no std::function, no per-message allocation.

#include <condition_variable>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/support/annotations.hpp"
#include "src/support/mutex.hpp"

namespace dima::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means `hardware_concurrency()` (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return threads_.size() + 1; }

  /// Runs `fn(i)` for every `i` in `[0, count)`, blocking until all are done.
  /// The calling thread participates, so a pool with one worker degenerates
  /// to a plain loop. `fn` must not throw.
  template <class Fn>
  void forEach(std::size_t count, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(
        count,
        [](const void* ctx, std::size_t lo, std::size_t hi, std::size_t) {
          const F& f = *static_cast<const F*>(ctx);
          for (std::size_t i = lo; i < hi; ++i) f(i);
        },
        &fn);
  }

  /// Runs `fn(worker, lo, hi)` once per worker with that worker's contiguous
  /// index block of `[0, count)`; workers with an empty block are skipped.
  /// The block boundaries depend only on `count` and the worker count, so
  /// two `forEachChunk` calls with the same `count` see identical ranges
  /// (what two-pass count/scatter algorithms rely on). `fn` must not throw.
  template <class Fn>
  void forEachChunk(std::size_t count, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(
        count,
        [](const void* ctx, std::size_t lo, std::size_t hi,
           std::size_t worker) {
          const F& f = *static_cast<const F*>(ctx);
          f(worker, lo, hi);
        },
        &fn);
  }

 private:
  /// Per-block trampoline: invoked once per worker with its index range.
  using BlockFn = void (*)(const void* ctx, std::size_t lo, std::size_t hi,
                           std::size_t worker);

  /// Shared barrier machinery behind both templates: partitions `[0, count)`
  /// into contiguous per-worker blocks, runs `block(ctx, lo, hi, worker)` on
  /// each non-empty block, and returns when every block completed.
  void dispatch(std::size_t count, BlockFn block, const void* ctx);

  void workerLoop(std::size_t self);
  /// Runs outside the lock on purpose: the job fields are published under
  /// `mutex_` before `generation_` is bumped, and a worker reads them only
  /// after observing the bump under the same mutex — that unlock/lock pair
  /// is the happens-before edge the analysis cannot follow.
  void runBlock(std::size_t worker) DIMA_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> threads_;
  Mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // Current job, guarded by mutex_ for setup/teardown; the index ranges are
  // fixed per job so workers read them without contention (see runBlock).
  BlockFn job_ DIMA_GUARDED_BY(mutex_) = nullptr;
  const void* jobCtx_ DIMA_GUARDED_BY(mutex_) = nullptr;
  std::size_t jobCount_ DIMA_GUARDED_BY(mutex_) = 0;
  std::size_t generation_ DIMA_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ DIMA_GUARDED_BY(mutex_) = 0;
  bool stop_ DIMA_GUARDED_BY(mutex_) = false;
};

}  // namespace dima::support
