#pragma once

/// \file thread_pool.hpp
/// Barrier-style parallel-for pool for the network simulator.
///
/// The simulator's round structure is bulk-synchronous (BSP, the same shape
/// as an MPI program alternating compute and `MPI_Barrier`): every node runs
/// its send step, a barrier, delivery, a barrier, every node runs its receive
/// step. `ThreadPool::forEach(n, fn)` executes `fn(i)` for `i in [0,n)`
/// partitioned into contiguous blocks across the workers and returns only
/// when every index completed — the implicit barrier.
///
/// Determinism: node steps never touch shared mutable state (each node owns
/// its RNG, state and outbox), so results are identical for any worker count;
/// tests assert this.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dima::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means `hardware_concurrency()` (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return threads_.size() + 1; }

  /// Runs `fn(i)` for every `i` in `[0, count)`, blocking until all are done.
  /// The calling thread participates, so a pool with one worker degenerates
  /// to a plain loop. `fn` must not throw.
  void forEach(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop(std::size_t self);
  void runBlock(std::size_t worker);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // Current job, guarded by mutex_ for setup/teardown; the index ranges are
  // fixed per job so workers read them without contention.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobCount_ = 0;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace dima::support
