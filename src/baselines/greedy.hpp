#pragma once

/// \file greedy.hpp
/// Sequential greedy edge coloring — the classical centralized comparator.
/// Scans edges in a configurable order and gives each the lowest color not
/// used at either endpoint; never exceeds 2Δ−1 colors and is the natural
/// quality reference for Algorithm 1 (which is, in effect, a distributed
/// randomized greedy).

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"
#include "src/support/rng.hpp"

namespace dima::baselines {

using coloring::Color;

enum class EdgeOrder : std::uint8_t {
  ById,         ///< construction order
  Random,       ///< uniform shuffle (needs a seed)
  HighDegreeFirst,  ///< by decreasing endpoint-degree sum (helps quality)
};

struct GreedyResult {
  std::vector<Color> colors;
  std::size_t colorsUsed = 0;
};

/// Colors every edge of `g` greedily in the given order.
GreedyResult greedyEdgeColoring(const graph::Graph& g,
                                EdgeOrder order = EdgeOrder::ById,
                                std::uint64_t seed = 1);

}  // namespace dima::baselines
