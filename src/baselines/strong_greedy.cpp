#include "src/baselines/strong_greedy.hpp"

#include <numeric>

#include "src/support/bitset.hpp"

namespace dima::baselines {

using coloring::Color;
using coloring::kNoColor;

namespace {

/// Applies `fn(arcId)` to every arc that strongly conflicts with `a`: all
/// arcs incident to any vertex of N[from] ∪ N[to]. This over-approximates
/// slightly (it can visit an arc twice) but never misses a conflict: a
/// conflicting arc has an endpoint equal or adjacent to one of a's
/// endpoints, hence is incident to a vertex in the closed neighborhoods.
template <class Fn>
void forEachConflicting(const graph::Digraph& d, graph::ArcId a, Fn&& fn) {
  const graph::Graph& g = d.underlying();
  const graph::Arc arc = d.arc(a);
  auto visitVertexArcs = [&](graph::VertexId v) {
    for (graph::ArcId out : d.outArcs(v)) {
      if (out != a) fn(out);
      const graph::ArcId in = graph::Digraph::reverse(out);
      if (in != a) fn(in);
    }
  };
  for (graph::VertexId endpoint : {arc.from, arc.to}) {
    visitVertexArcs(endpoint);
    for (const graph::Incidence& inc : g.incidences(endpoint)) {
      visitVertexArcs(inc.neighbor);
    }
  }
}

}  // namespace

StrongGreedyResult greedyStrongArcColoring(const graph::Digraph& d,
                                           ArcOrder order,
                                           std::uint64_t seed) {
  std::vector<graph::ArcId> sequence(d.numArcs());
  std::iota(sequence.begin(), sequence.end(), 0);
  if (order == ArcOrder::Random) {
    support::Rng rng(seed);
    rng.shuffle(sequence);
  }

  StrongGreedyResult out;
  out.colors.assign(d.numArcs(), kNoColor);
  support::DynamicBitset forbidden;
  support::DynamicBitset distinct;
  for (graph::ArcId a : sequence) {
    forbidden.clear();
    forEachConflicting(d, a, [&](graph::ArcId other) {
      if (out.colors[other] != kNoColor) {
        forbidden.set(static_cast<std::size_t>(out.colors[other]));
      }
    });
    const auto c = forbidden.firstClear();
    out.colors[a] = static_cast<Color>(c);
    distinct.set(c);
  }
  out.colorsUsed = distinct.count();
  return out;
}

}  // namespace dima::baselines
