#include "src/baselines/tree_coloring.hpp"

#include <queue>

#include "src/graph/metrics.hpp"
#include "src/support/assert.hpp"
#include "src/support/bitset.hpp"

namespace dima::baselines {

using coloring::Color;
using coloring::kNoColor;

TreeColoringResult treeEdgeColoring(const graph::Graph& g) {
  DIMA_REQUIRE(graph::isForest(g), "treeEdgeColoring requires a forest");
  TreeColoringResult out;
  out.colors.assign(g.numEdges(), kNoColor);

  // Only consumed by the palette-overflow assertion (compiled out in
  // release builds).
  [[maybe_unused]] const auto palette = g.maxDegree() + 1;
  std::vector<bool> visited(g.numVertices(), false);
  std::vector<Color> incoming(g.numVertices(), kNoColor);  // parent-edge color
  std::size_t maxLevel = 0;

  for (graph::VertexId root = 0; root < g.numVertices(); ++root) {
    if (visited[root]) continue;
    // BFS orientation from the root; each node assigns child-edge colors
    // counting up through the palette, skipping its parent edge's color.
    std::queue<std::pair<graph::VertexId, std::size_t>> frontier;
    frontier.push({root, 0});
    visited[root] = true;
    while (!frontier.empty()) {
      const auto [v, level] = frontier.front();
      frontier.pop();
      maxLevel = std::max(maxLevel, level);
      Color next = 0;
      for (const graph::Incidence& inc : g.incidences(v)) {
        if (visited[inc.neighbor]) continue;  // parent or cross (none in tree)
        if (next == incoming[v]) ++next;
        DIMA_ASSERT(static_cast<std::size_t>(next) < palette,
                    "palette overflow at vertex " << v);
        out.colors[inc.edge] = next;
        incoming[inc.neighbor] = next;
        ++next;
        visited[inc.neighbor] = true;
        frontier.push({inc.neighbor, level + 1});
      }
    }
  }

  support::DynamicBitset distinct;
  for (Color c : out.colors) {
    if (c != kNoColor) distinct.set(static_cast<std::size_t>(c));
  }
  out.colorsUsed = distinct.count();
  out.scheduledRounds = maxLevel + g.maxDegree() + 1;
  return out;
}

}  // namespace dima::baselines
