#pragma once

/// \file pal.hpp
/// The "simple" distributed randomized edge-coloring baseline after
/// Marathe, Panconesi & Risinger (J. Exp. Algorithmics 2004) — reference
/// [10] of the paper. Every uncolored edge repeatedly picks a tentative
/// color uniformly at random from a (1+ε)Δ palette minus the colors already
/// final at its endpoints; a tentative color is committed when no adjacent
/// edge picked or owns it. Converges in O(log n) rounds w.h.p.
///
/// The baseline is simulated at round granularity on shared state (edge
/// agents), not through the message engine: the paper compares against it
/// qualitatively (round scaling and colors), not on message counts.

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"

namespace dima::baselines {

struct PalOptions {
  std::uint64_t seed = 0xba5e11ULL;
  /// Palette size factor: palette = ceil((1+epsilon)·Δ), at least Δ+1.
  double epsilon = 0.5;
  std::uint64_t maxRounds = 1u << 16;
};

struct PalResult {
  std::vector<coloring::Color> colors;
  std::uint64_t rounds = 0;
  bool converged = false;
  std::size_t colorsUsed = 0;
};

PalResult palEdgeColoring(const graph::Graph& g, const PalOptions& options = {});

}  // namespace dima::baselines
