#pragma once

/// \file tree_coloring.hpp
/// Deterministic edge coloring for forests, after Gandham, Dawande &
/// Prakash (INFOCOM 2005, reference [4]): orient each tree at a root and
/// hand every node's child edges colors that dodge its parent edge's color.
/// Uses at most Δ+1 colors and mirrors the 2Δ+1-round distributed schedule
/// the paper cites as the deterministic comparator for acyclic graphs.

#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"

namespace dima::baselines {

struct TreeColoringResult {
  std::vector<coloring::Color> colors;
  std::size_t colorsUsed = 0;
  /// Communication rounds the distributed schedule would need: each BFS
  /// level settles one round after its parent, and a node needs up to Δ
  /// slots to enumerate child colors — reported as levels + Δ.
  std::size_t scheduledRounds = 0;
};

/// Precondition: `g` is a forest (graph::isForest). Colors all edges with at
/// most Δ+1 colors.
TreeColoringResult treeEdgeColoring(const graph::Graph& g);

}  // namespace dima::baselines
