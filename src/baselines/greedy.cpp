#include "src/baselines/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "src/support/bitset.hpp"

namespace dima::baselines {

GreedyResult greedyEdgeColoring(const graph::Graph& g, EdgeOrder order,
                                std::uint64_t seed) {
  std::vector<graph::EdgeId> sequence(g.numEdges());
  std::iota(sequence.begin(), sequence.end(), 0);
  switch (order) {
    case EdgeOrder::ById:
      break;
    case EdgeOrder::Random: {
      support::Rng rng(seed);
      rng.shuffle(sequence);
      break;
    }
    case EdgeOrder::HighDegreeFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](graph::EdgeId a, graph::EdgeId b) {
                         const auto ka = g.degree(g.edge(a).u) +
                                         g.degree(g.edge(a).v);
                         const auto kb = g.degree(g.edge(b).u) +
                                         g.degree(g.edge(b).v);
                         return ka > kb;
                       });
      break;
  }

  GreedyResult out;
  out.colors.assign(g.numEdges(), coloring::kNoColor);
  std::vector<support::DynamicBitset> used(g.numVertices());
  support::DynamicBitset distinct;
  for (graph::EdgeId e : sequence) {
    const graph::Edge& edge = g.edge(e);
    const std::size_t c = used[edge.u].firstClearAlsoClearIn(used[edge.v]);
    out.colors[e] = static_cast<Color>(c);
    used[edge.u].set(c);
    used[edge.v].set(c);
    distinct.set(c);
  }
  out.colorsUsed = distinct.count();
  return out;
}

}  // namespace dima::baselines
