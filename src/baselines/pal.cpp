#include "src/baselines/pal.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/assert.hpp"
#include "src/support/bitset.hpp"
#include "src/support/rng.hpp"

namespace dima::baselines {

using coloring::Color;
using coloring::kNoColor;

PalResult palEdgeColoring(const graph::Graph& g, const PalOptions& options) {
  DIMA_REQUIRE(options.epsilon >= 0.0, "epsilon must be non-negative");
  PalResult out;
  out.colors.assign(g.numEdges(), kNoColor);
  if (g.numEdges() == 0) {
    out.converged = true;
    return out;
  }
  const auto delta = static_cast<double>(g.maxDegree());
  const auto palette = std::max<std::size_t>(
      g.maxDegree() + 1,
      static_cast<std::size_t>(std::ceil((1.0 + options.epsilon) * delta)));

  support::SeedSequence seq(options.seed);
  std::vector<support::Rng> edgeRng;
  edgeRng.reserve(g.numEdges());
  for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
    edgeRng.push_back(seq.stream(e));
  }

  std::vector<support::DynamicBitset> finalAt(g.numVertices());
  std::vector<Color> tentative(g.numEdges(), kNoColor);
  std::size_t uncolored = g.numEdges();

  while (uncolored > 0 && out.rounds < options.maxRounds) {
    ++out.rounds;
    // Propose: uniform over the palette minus endpoint-final colors.
    std::fill(tentative.begin(), tentative.end(), kNoColor);
    for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
      if (out.colors[e] != kNoColor) continue;
      const graph::Edge& edge = g.edge(e);
      std::vector<Color> candidates;
      candidates.reserve(palette);
      for (std::size_t c = 0; c < palette; ++c) {
        if (!finalAt[edge.u].test(c) && !finalAt[edge.v].test(c)) {
          candidates.push_back(static_cast<Color>(c));
        }
      }
      if (candidates.empty()) {
        // The fixed (1+ε)Δ palette can run dry at unlucky high-degree edge
        // pairs (the endpoints jointly see up to 2Δ−2 final colors); fall
        // back to the lowest jointly free color beyond it.
        tentative[e] = static_cast<Color>(
            finalAt[edge.u].firstClearAlsoClearIn(finalAt[edge.v]));
      } else {
        tentative[e] = candidates[edgeRng[e].index(candidates.size())];
      }
    }
    // Commit: a tentative wins when no adjacent edge proposed the same color
    // (final colors were already excluded during proposal).
    for (graph::EdgeId e = 0; e < g.numEdges(); ++e) {
      if (tentative[e] == kNoColor) continue;
      const graph::Edge& edge = g.edge(e);
      bool clash = false;
      for (graph::VertexId endpoint : {edge.u, edge.v}) {
        for (const graph::Incidence& inc : g.incidences(endpoint)) {
          if (inc.edge != e && tentative[inc.edge] == tentative[e]) {
            clash = true;
            break;
          }
        }
        if (clash) break;
      }
      if (!clash) {
        out.colors[e] = tentative[e];
        finalAt[edge.u].set(static_cast<std::size_t>(tentative[e]));
        finalAt[edge.v].set(static_cast<std::size_t>(tentative[e]));
        --uncolored;
      }
    }
  }
  out.converged = uncolored == 0;

  support::DynamicBitset distinct;
  for (Color c : out.colors) {
    if (c != kNoColor) distinct.set(static_cast<std::size_t>(c));
  }
  out.colorsUsed = distinct.count();
  return out;
}

}  // namespace dima::baselines
