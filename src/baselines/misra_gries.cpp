#include "src/baselines/misra_gries.hpp"

#include <algorithm>

#include "src/support/assert.hpp"
#include "src/support/bitset.hpp"

namespace dima::baselines {

namespace {

using coloring::Color;
using coloring::kNoColor;
using graph::EdgeId;
using graph::kNoEdge;
using graph::VertexId;

/// Book-keeping for a partial proper coloring with palette [0, Δ].
class Board {
 public:
  explicit Board(const graph::Graph& g)
      : g_(&g),
        palette_(g.maxDegree() + 1),
        colorOf_(g.numEdges(), kNoColor),
        at_(g.numVertices(), std::vector<EdgeId>(palette_, kNoEdge)) {}

  std::size_t palette() const { return palette_; }
  Color colorOf(EdgeId e) const { return colorOf_[e]; }

  /// Edge at `v` colored `c`, or kNoEdge.
  EdgeId edgeAt(VertexId v, Color c) const {
    return at_[v][static_cast<std::size_t>(c)];
  }
  bool freeAt(VertexId v, Color c) const { return edgeAt(v, c) == kNoEdge; }

  /// Lowest color in [0, Δ] free at `v`; always exists (deg ≤ Δ < Δ+1).
  Color freeColor(VertexId v) const {
    for (std::size_t c = 0; c < palette_; ++c) {
      if (at_[v][c] == kNoEdge) return static_cast<Color>(c);
    }
    DIMA_REQUIRE(false, "no free color at vertex " << v);
    return kNoColor;
  }

  void setColor(EdgeId e, Color c) {
    DIMA_ASSERT(colorOf_[e] == kNoColor, "edge " << e << " already colored");
    const graph::Edge& edge = g_->edge(e);
    DIMA_ASSERT(freeAt(edge.u, c) && freeAt(edge.v, c),
                "color " << c << " not free for edge " << e);
    colorOf_[e] = c;
    at_[edge.u][static_cast<std::size_t>(c)] = e;
    at_[edge.v][static_cast<std::size_t>(c)] = e;
  }

  void clearColor(EdgeId e) {
    const Color c = colorOf_[e];
    DIMA_ASSERT(c != kNoColor, "edge " << e << " not colored");
    const graph::Edge& edge = g_->edge(e);
    at_[edge.u][static_cast<std::size_t>(c)] = kNoEdge;
    at_[edge.v][static_cast<std::size_t>(c)] = kNoEdge;
    colorOf_[e] = kNoColor;
  }

  std::vector<Color> take() { return std::move(colorOf_); }

 private:
  const graph::Graph* g_;
  std::size_t palette_;
  std::vector<Color> colorOf_;
  std::vector<std::vector<EdgeId>> at_;
};

/// Inverts the maximal cd-alternating path starting at `u` (whose first edge
/// is colored d; c is free at u so the path cannot return to u).
void invertPath(const graph::Graph& g, Board& board, VertexId u, Color c,
                Color d) {
  std::vector<EdgeId> pathEdges;
  VertexId x = u;
  Color col = d;
  while (true) {
    const EdgeId e = board.edgeAt(x, col);
    if (e == kNoEdge) break;
    pathEdges.push_back(e);
    x = g.edge(e).other(x);
    col = (col == d) ? c : d;
    DIMA_ASSERT(pathEdges.size() <= g.numEdges(), "cd-path cycled");
  }
  // Uncolor the whole path, then recolor with c and d swapped.
  std::vector<Color> newColors(pathEdges.size());
  for (std::size_t i = 0; i < pathEdges.size(); ++i) {
    newColors[i] = board.colorOf(pathEdges[i]) == c ? d : c;
    board.clearColor(pathEdges[i]);
  }
  for (std::size_t i = 0; i < pathEdges.size(); ++i) {
    board.setColor(pathEdges[i], newColors[i]);
  }
}

void colorOneEdge(const graph::Graph& g, Board& board, EdgeId target) {
  const VertexId u = g.edge(target).u;
  const VertexId v = g.edge(target).v;

  // Maximal fan of u starting at v: each next vertex's edge to u wears a
  // color free on the previous fan vertex.
  std::vector<VertexId> fan{v};
  std::vector<bool> inFan(g.numVertices(), false);
  inFan[v] = true;
  while (true) {
    const VertexId tail = fan.back();
    VertexId next = graph::kNoVertex;
    for (const graph::Incidence& inc : g.incidences(u)) {
      if (inFan[inc.neighbor]) continue;
      const Color col = board.colorOf(inc.edge);
      if (col == kNoColor) continue;
      if (board.freeAt(tail, col)) {
        next = inc.neighbor;
        break;
      }
    }
    if (next == graph::kNoVertex) break;
    fan.push_back(next);
    inFan[next] = true;
  }

  const Color c = board.freeColor(u);
  const Color d = board.freeColor(fan.back());
  if (!board.freeAt(u, d)) {
    invertPath(g, board, u, c, d);
  }
  DIMA_ASSERT(board.freeAt(u, d), "d not free at u after inversion");

  // Shrink to the first prefix that is still a fan (post-inversion colors)
  // with d free on its tip, then rotate it and color the tip edge d.
  std::size_t w = fan.size();
  for (std::size_t i = 0; i < fan.size(); ++i) {
    if (i > 0) {
      const EdgeId ei = g.findEdge(u, fan[i]);
      const Color ci = board.colorOf(ei);
      // Prefix stops being a fan as soon as the chain condition breaks.
      if (ci == kNoColor || !board.freeAt(fan[i - 1], ci)) break;
    }
    if (board.freeAt(fan[i], d)) {
      w = i;
      break;
    }
  }
  DIMA_REQUIRE(w < fan.size(), "Misra–Gries: no rotatable fan prefix found");

  // Rotate: edge (u, fan[i]) takes the color of edge (u, fan[i+1]).
  std::vector<EdgeId> fanEdges(w + 1);
  std::vector<Color> fanColors(w + 1, kNoColor);
  for (std::size_t i = 0; i <= w; ++i) {
    fanEdges[i] = g.findEdge(u, fan[i]);
    fanColors[i] = board.colorOf(fanEdges[i]);
  }
  for (std::size_t i = 1; i <= w; ++i) board.clearColor(fanEdges[i]);
  for (std::size_t i = 0; i + 1 <= w; ++i) {
    board.setColor(fanEdges[i], fanColors[i + 1]);
  }
  board.setColor(fanEdges[w], d);
}

}  // namespace

MisraGriesResult misraGriesEdgeColoring(const graph::Graph& g) {
  MisraGriesResult out;
  if (g.numEdges() == 0) {
    out.colors.clear();
    return out;
  }
  Board board(g);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    colorOneEdge(g, board, e);
  }
  out.colors = board.take();
  support::DynamicBitset distinct;
  for (Color c : out.colors) distinct.set(static_cast<std::size_t>(c));
  out.colorsUsed = distinct.count();
  return out;
}

}  // namespace dima::baselines
