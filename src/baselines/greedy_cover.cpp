#include "src/baselines/greedy_cover.hpp"

#include <algorithm>

namespace dima::baselines {

CoverResult greedyVertexCover(const graph::Graph& g) {
  CoverResult out;
  std::vector<bool> edgeCovered(g.numEdges(), false);
  std::vector<std::size_t> uncoveredDegree(g.numVertices());
  for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
    uncoveredDegree[v] = g.degree(v);
  }
  std::size_t remaining = g.numEdges();
  while (remaining > 0) {
    // Max uncovered-degree vertex (lowest id wins ties → deterministic).
    graph::VertexId best = 0;
    for (graph::VertexId v = 1; v < g.numVertices(); ++v) {
      if (uncoveredDegree[v] > uncoveredDegree[best]) best = v;
    }
    DIMA_ASSERT(uncoveredDegree[best] > 0, "uncovered edges but no degree");
    out.cover.push_back(best);
    for (const graph::Incidence& inc : g.incidences(best)) {
      if (edgeCovered[inc.edge]) continue;
      edgeCovered[inc.edge] = true;
      --remaining;
      --uncoveredDegree[best];
      --uncoveredDegree[inc.neighbor];
    }
  }
  std::sort(out.cover.begin(), out.cover.end());
  return out;
}

CoverResult matchingVertexCover(const graph::Graph& g) {
  CoverResult out;
  std::vector<bool> matched(g.numVertices(), false);
  for (const graph::Edge& e : g.edges()) {
    if (!matched[e.u] && !matched[e.v]) {
      matched[e.u] = matched[e.v] = true;
      out.cover.push_back(e.u);
      out.cover.push_back(e.v);
    }
  }
  std::sort(out.cover.begin(), out.cover.end());
  return out;
}

}  // namespace dima::baselines
