#pragma once

/// \file strong_greedy.hpp
/// Sequential greedy strong (distance-2) arc coloring of a symmetric
/// digraph: the centralized quality comparator for DiMa2Ed. Arcs are
/// scanned in a configurable order; each takes the lowest color absent from
/// every arc it conflicts with (shares an endpoint, or an edge joins their
/// endpoint sets).

#include <cstdint>
#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/digraph.hpp"
#include "src/support/rng.hpp"

namespace dima::baselines {

enum class ArcOrder : std::uint8_t { ById, Random };

struct StrongGreedyResult {
  std::vector<coloring::Color> colors;
  std::size_t colorsUsed = 0;
};

StrongGreedyResult greedyStrongArcColoring(const graph::Digraph& d,
                                           ArcOrder order = ArcOrder::ById,
                                           std::uint64_t seed = 1);

}  // namespace dima::baselines
