#pragma once

/// \file greedy_cover.hpp
/// Sequential vertex-cover comparators for the automaton-based 2-approx
/// cover (automata::vertexCoverViaMatching):
///  * max-degree greedy — repeatedly takes the vertex covering the most
///    uncovered edges (ln-n approximation, usually excellent in practice);
///  * matching-based 2-approx, sequential — both endpoints of a greedily
///    built maximal matching, the centralized twin of the distributed
///    algorithm.

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace dima::baselines {

struct CoverResult {
  std::vector<graph::VertexId> cover;
};

/// Max-degree greedy cover.
CoverResult greedyVertexCover(const graph::Graph& g);

/// Sequential maximal matching (edge-id order) → both endpoints.
CoverResult matchingVertexCover(const graph::Graph& g);

}  // namespace dima::baselines
