#pragma once

/// \file misra_gries.hpp
/// Misra & Gries (1992) constructive proof of Vizing's theorem: a proper
/// edge coloring with at most Δ+1 colors in O(n·m) time. This is the
/// strongest sequential quality baseline — the paper's Conjecture 2 claims
/// Algorithm 1 typically matches it (Δ or Δ+1 colors) despite being
/// distributed and probabilistic.
///
/// Implementation follows the classical fan/cd-path presentation:
/// for each uncolored edge (u,v): build a maximal fan of u starting at v,
/// pick colors c free on u and d free on the last fan vertex, invert the
/// maximal cd-alternating path through u, shrink the fan to the first
/// prefix that is still a fan with d free on its tip, rotate it, and color
/// the tip edge d.

#include <vector>

#include "src/coloring/color.hpp"
#include "src/graph/graph.hpp"

namespace dima::baselines {

struct MisraGriesResult {
  std::vector<coloring::Color> colors;
  std::size_t colorsUsed = 0;
};

/// Colors every edge of `g` with at most Δ+1 colors.
MisraGriesResult misraGriesEdgeColoring(const graph::Graph& g);

}  // namespace dima::baselines
