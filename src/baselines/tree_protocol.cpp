#include "src/baselines/tree_protocol.hpp"

#include "src/graph/metrics.hpp"
#include "src/net/engine.hpp"
#include "src/net/spanning_tree.hpp"
#include "src/support/bitset.hpp"

namespace dima::baselines {

namespace {

using coloring::Color;
using coloring::kNoColor;
using net::NodeId;

struct AssignMessage {
  Color color = kNoColor;
};

/// Phase-2 protocol: one unicast color assignment per active node per
/// round. A node is *active* once its parent edge is colored (root: from
/// the start) and retires when every child edge is assigned.
class TreeColorProtocol {
 public:
  using Message = AssignMessage;

  TreeColorProtocol(const graph::Graph& g, const net::SpanningTree& tree)
      : g_(&g), tree_(&tree), edgeColor_(g.numEdges(), kNoColor) {
    nodes_.resize(g.numVertices());
    for (NodeId u = 0; u < g.numVertices(); ++u) {
      NodeState& s = nodes_[u];
      for (const graph::Incidence& inc : g.incidences(u)) {
        if (tree.parent[inc.neighbor] == u) {
          s.pendingChildren.push_back(inc);
        }
      }
      s.parentColored = tree.parent[u] == graph::kNoVertex;  // root
    }
  }

  int subRounds() const { return 1; }
  void beginCycle(NodeId) {}

  void send(NodeId u, int, net::SyncNetwork<Message>& net) {
    NodeState& s = nodes_[u];
    if (!s.parentColored || s.pendingChildren.empty()) return;
    // Lowest color unused on this node's already-colored incident edges
    // (the parent edge included — its color is in `used`).
    const graph::Incidence child = s.pendingChildren.back();
    s.pendingChildren.pop_back();
    const auto c = s.used.firstClear();
    s.used.set(c);
    edgeColor_[child.edge] = static_cast<Color>(c);
    net.unicast(u, child.neighbor, AssignMessage{static_cast<Color>(c)});
  }

  void receive(NodeId u, int,
               net::Inbox<Message> inbox) {
    NodeState& s = nodes_[u];
    for (const auto& env : inbox) {
      // The parent's assignment for my parent edge.
      DIMA_ASSERT(tree_->parent[u] == env.from, "assignment not from parent");
      s.parentColored = true;
      s.used.set(static_cast<std::size_t>(env.msg.color));
    }
  }

  void endCycle(NodeId) {}

  bool done(NodeId u) const {
    const NodeState& s = nodes_[u];
    return s.parentColored && s.pendingChildren.empty();
  }

  std::vector<Color> takeColors() { return std::move(edgeColor_); }

 private:
  struct NodeState {
    bool parentColored = false;
    support::DynamicBitset used;
    std::vector<graph::Incidence> pendingChildren;
  };

  const graph::Graph* g_;
  const net::SpanningTree* tree_;
  std::vector<NodeState> nodes_;
  std::vector<Color> edgeColor_;
};

}  // namespace

TreeProtocolResult distributedTreeColoring(const graph::Graph& g,
                                           graph::VertexId root,
                                           net::EngineOptions options) {
  DIMA_REQUIRE(graph::isForest(g) && graph::isConnected(g),
               "distributedTreeColoring requires a connected tree");
  TreeProtocolResult out;
  if (g.numVertices() == 0) {
    out.coloring.metrics.converged = true;
    return out;
  }
  const net::SpanningTree tree = net::buildSpanningTreeFlood(g, root);
  out.floodRounds = tree.buildRounds;

  TreeColorProtocol proto(g, tree);
  net::SyncNetwork<AssignMessage> net(g);
  const net::EngineResult run = runSyncProtocol(proto, net, options);
  out.coloringRounds = run.cycles;
  out.coloring.colors = proto.takeColors();
  out.coloring.metrics.computationRounds = tree.buildRounds + run.cycles;
  out.coloring.metrics.commRounds = tree.buildRounds + run.counters.commRounds;
  out.coloring.metrics.broadcasts = run.counters.broadcasts;
  out.coloring.metrics.messagesDelivered = run.counters.messagesDelivered;
  out.coloring.metrics.converged = run.converged;
  return out;
}

}  // namespace dima::baselines
