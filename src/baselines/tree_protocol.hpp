#pragma once

/// \file tree_protocol.hpp
/// *Distributed* deterministic edge coloring of a tree, after Gandham,
/// Dawande & Prakash (INFOCOM 2005, the paper's reference [4]) — the
/// deterministic comparator the paper cites for acyclic topologies, here
/// as an actual message-passing protocol on the same engine the
/// probabilistic algorithms use (`tree_coloring.hpp` is the sequential
/// emulation).
///
/// Phase 1 roots the tree by synchronous flooding (net::spanning_tree).
/// Phase 2 pipelines colors down the tree: as soon as a node's parent edge
/// is colored (the root starts immediately), the node assigns one child
/// edge per round — the lowest color unused on its already-colored
/// incident edges — and tells the child by unicast. Determinism: no coin
/// tosses anywhere; same tree ⇒ same coloring.
///
/// Costs: ≤ Δ+1 colors (a node sees at most deg(u) incident edges plus
/// the parent skip) and depth + Δ + O(1) rounds for the coloring phase —
/// pipelined, so deep paths and bushy nodes overlap. The paper quotes
/// 2Δ+1 rounds for this family of algorithms; the bench reports both
/// phases' measured rounds.

#include <cstdint>

#include "src/coloring/result.hpp"
#include "src/graph/graph.hpp"
#include "src/net/engine.hpp"

namespace dima::baselines {

struct TreeProtocolResult {
  coloring::EdgeColoringResult coloring;
  std::uint64_t floodRounds = 0;     ///< phase 1 (rooting)
  std::uint64_t coloringRounds = 0;  ///< phase 2 (pipelined assignment)
};

/// Precondition: `g` is a connected tree (or a single vertex). `root`
/// defaults to vertex 0.
TreeProtocolResult distributedTreeColoring(const graph::Graph& g,
                                           graph::VertexId root = 0,
                                           net::EngineOptions options = {});

}  // namespace dima::baselines
