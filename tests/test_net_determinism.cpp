/// Determinism sweep for the slot-arena substrate and frontier engine: the
/// same protocol run must be bit-identical — same colors, same traffic
/// counters — for any worker count, because inbox order is incidence order
/// (fixed by the topology, not by delivery timing) and every counter fold is
/// order-independent. Sweeps worker counts {1, 2, 8} over ER and scale-free
/// graphs for both MaDEC and DiMa2Ed, plus a fault-model run where drops and
/// duplicates are keyed on (seed, round, edge) and so must also replay
/// identically.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/automata/discovery.hpp"
#include "src/coloring/dima2ed.hpp"
#include "src/coloring/madec.hpp"
#include "src/graph/digraph.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/net/trace.hpp"
#include "src/support/thread_pool.hpp"

namespace dima {
namespace {

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};

void expectSameMetrics(const coloring::RunMetrics& a,
                       const coloring::RunMetrics& b, std::size_t workers) {
  EXPECT_EQ(a.computationRounds, b.computationRounds) << workers << " workers";
  EXPECT_EQ(a.commRounds, b.commRounds) << workers << " workers";
  EXPECT_EQ(a.broadcasts, b.broadcasts) << workers << " workers";
  EXPECT_EQ(a.messagesDelivered, b.messagesDelivered) << workers << " workers";
  EXPECT_EQ(a.bitsDelivered, b.bitsDelivered) << workers << " workers";
  EXPECT_EQ(a.maxMessageBits, b.maxMessageBits) << workers << " workers";
  EXPECT_EQ(a.converged, b.converged) << workers << " workers";
}

void sweepMadec(const graph::Graph& g, const net::FaultModel& faults,
                net::EngineKind engine = net::EngineKind::Reference) {
  std::optional<coloring::EdgeColoringResult> serial;
  for (const std::size_t workers : kWorkerCounts) {
    support::ThreadPool pool(workers);
    coloring::MadecOptions options;
    options.seed = 0xdeed5;
    options.faults = faults;
    options.engine = engine;
    // Message loss breaks liveness (two-generals), so the perturbed sweep
    // would otherwise spin to the engine's huge default cap; a capped run
    // still has to replay bit-identically across worker counts.
    if (faults.perturbs()) options.maxCycles = 100;
    options.pool = workers == 1 ? nullptr : &pool;
    const coloring::EdgeColoringResult run = coloring::colorEdgesMadec(
        g, options);
    if (!serial) {
      serial = run;
      EXPECT_TRUE(run.metrics.converged || faults.perturbs());
      continue;
    }
    EXPECT_EQ(serial->colors, run.colors) << workers << " workers";
    EXPECT_EQ(serial->halfCommitted, run.halfCommitted)
        << workers << " workers";
    expectSameMetrics(serial->metrics, run.metrics, workers);
  }
}

void sweepDima2Ed(const graph::Graph& g,
                  net::EngineKind engine = net::EngineKind::Reference) {
  const graph::Digraph d(g);
  std::optional<coloring::ArcColoringResult> serial;
  for (const std::size_t workers : kWorkerCounts) {
    support::ThreadPool pool(workers);
    coloring::Dima2EdOptions options;
    options.seed = 0xfeed7;
    options.engine = engine;
    options.pool = workers == 1 ? nullptr : &pool;
    const coloring::ArcColoringResult run = coloring::colorArcsDima2Ed(
        d, options);
    if (!serial) {
      serial = run;
      EXPECT_TRUE(run.metrics.converged);
      continue;
    }
    EXPECT_EQ(serial->colors, run.colors) << workers << " workers";
    expectSameMetrics(serial->metrics, run.metrics, workers);
  }
}

TEST(DeterminismSweep, MadecErdosRenyiBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(21);
  sweepMadec(graph::erdosRenyiAvgDegree(400, 8.0, rng), net::FaultModel{});
}

TEST(DeterminismSweep, MadecScaleFreeBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(22);
  sweepMadec(graph::barabasiAlbert(400, 4, 1.0, rng), net::FaultModel{});
}

TEST(DeterminismSweep, MadecFaultyChannelsReplayIdentically) {
  // Drops and duplicates are decided per (seed, round, edge), independent of
  // which worker issues the send — the perturbed run must sweep clean too.
  support::Rng rng(23);
  net::FaultModel faults;
  faults.dropProbability = 0.05;
  faults.duplicateProbability = 0.05;
  sweepMadec(graph::erdosRenyiAvgDegree(300, 6.0, rng), faults);
}

TEST(DeterminismSweep, Dima2EdErdosRenyiBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(24);
  sweepDima2Ed(graph::erdosRenyiAvgDegree(300, 6.0, rng));
}

TEST(DeterminismSweep, Dima2EdScaleFreeBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(25);
  sweepDima2Ed(graph::barabasiAlbert(300, 3, 1.0, rng));
}

// The bit-plane engine chunks work by plane word instead of by node, so its
// worker-count independence rests on a different argument (word ownership
// instead of slot-arena ownership) and gets its own sweep. Fault-free only:
// the bit-plane engine refuses perturbed channels by contract.

TEST(DeterminismSweep, BitPlaneMadecBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(21);
  sweepMadec(graph::erdosRenyiAvgDegree(400, 8.0, rng), net::FaultModel{},
             net::EngineKind::BitPlane);
}

TEST(DeterminismSweep, BitPlaneMadecScaleFreeBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(22);
  sweepMadec(graph::barabasiAlbert(400, 4, 1.0, rng), net::FaultModel{},
             net::EngineKind::BitPlane);
}

TEST(DeterminismSweep, BitPlaneDima2EdBitIdenticalAcrossWorkerCounts) {
  support::Rng rng(24);
  sweepDima2Ed(graph::erdosRenyiAvgDegree(300, 6.0, rng),
               net::EngineKind::BitPlane);
}

// ---------------------------------------------------------------------------
// Sharded substrate (net/shard.hpp, DESIGN.md §13): boundary records are
// merged into the very slots the mirror table would have written, so the
// sharded engine must be *observably invisible* — bit-identical colors,
// half-committed lists, and the full Counters fold — for every shard count,
// worker count, and partition strategy. The sweep crosses shards {1, 2, 8}
// with workers-per-shard {1, 2, 8} on ER and scale-free graphs for MaDEC,
// DiMa2Ed, and matching discovery, anchored against the unsharded
// reference run.

constexpr std::uint32_t kShardCounts[] = {1, 2, 8};

void sweepMadecSharded(const graph::Graph& g, graph::PartitionKind partition) {
  coloring::MadecOptions base;
  base.seed = 0xdeed5;
  const coloring::EdgeColoringResult anchor = coloring::colorEdgesMadec(g, base);
  ASSERT_TRUE(anchor.metrics.converged);
  for (const std::uint32_t shards : kShardCounts) {
    for (const std::size_t workers : kWorkerCounts) {
      coloring::MadecOptions options;
      options.seed = 0xdeed5;
      options.shards.count = shards;
      options.shards.partition = partition;
      options.shards.workersPerShard = workers;
      support::ThreadPool pool(workers);
      if (shards == 1 && workers > 1) options.pool = &pool;
      const coloring::EdgeColoringResult run =
          coloring::colorEdgesMadec(g, options);
      EXPECT_EQ(anchor.colors, run.colors)
          << shards << " shards x " << workers << " workers";
      EXPECT_EQ(anchor.halfCommitted, run.halfCommitted)
          << shards << " shards x " << workers << " workers";
      expectSameMetrics(anchor.metrics, run.metrics, workers);
    }
  }
}

void sweepDima2EdSharded(const graph::Graph& g,
                         graph::PartitionKind partition) {
  const graph::Digraph d(g);
  coloring::Dima2EdOptions base;
  base.seed = 0xfeed7;
  const coloring::ArcColoringResult anchor = coloring::colorArcsDima2Ed(d, base);
  ASSERT_TRUE(anchor.metrics.converged);
  for (const std::uint32_t shards : kShardCounts) {
    for (const std::size_t workers : kWorkerCounts) {
      coloring::Dima2EdOptions options;
      options.seed = 0xfeed7;
      options.shards.count = shards;
      options.shards.partition = partition;
      options.shards.workersPerShard = workers;
      support::ThreadPool pool(workers);
      if (shards == 1 && workers > 1) options.pool = &pool;
      const coloring::ArcColoringResult run =
          coloring::colorArcsDima2Ed(d, options);
      EXPECT_EQ(anchor.colors, run.colors)
          << shards << " shards x " << workers << " workers";
      expectSameMetrics(anchor.metrics, run.metrics, workers);
    }
  }
}

TEST(ShardDeterminism, MadecErdosRenyiBitIdenticalAcrossShardMatrix) {
  support::Rng rng(21);
  sweepMadecSharded(graph::erdosRenyiAvgDegree(400, 8.0, rng),
                    graph::PartitionKind::Block);
}

TEST(ShardDeterminism, MadecScaleFreeBitIdenticalAcrossShardMatrix) {
  support::Rng rng(22);
  sweepMadecSharded(graph::barabasiAlbert(400, 4, 1.0, rng),
                    graph::PartitionKind::Block);
}

TEST(ShardDeterminism, MadecDegreeBalancedPartitionIsAlsoInvisible) {
  // Determinism must hold for ANY vertex assignment, not just contiguous
  // blocks — the scattered ids of the degree-balanced strategy are the
  // adversarial case for the incidence-order merge argument.
  support::Rng rng(22);
  sweepMadecSharded(graph::barabasiAlbert(400, 4, 1.0, rng),
                    graph::PartitionKind::DegreeBalanced);
}

TEST(ShardDeterminism, Dima2EdErdosRenyiBitIdenticalAcrossShardMatrix) {
  support::Rng rng(24);
  sweepDima2EdSharded(graph::erdosRenyiAvgDegree(300, 6.0, rng),
                      graph::PartitionKind::Block);
}

TEST(ShardDeterminism, Dima2EdScaleFreeBitIdenticalAcrossShardMatrix) {
  support::Rng rng(25);
  sweepDima2EdSharded(graph::barabasiAlbert(300, 3, 1.0, rng),
                      graph::PartitionKind::DegreeBalanced);
}

// Matching discovery rides the same sharded runner as the colorers, and its
// DiscoveryStats fold (active/matched node-rounds, pairs per round) runs in
// the exclusive observer slot — the sweep pins the matching, the round
// count, and the full stats against the unsharded anchor, and doubles as
// the TSan exercise of the matching hooks across shard threads.
void sweepMatchingSharded(const graph::Graph& g,
                          graph::PartitionKind partition) {
  const automata::MaximalMatchingResult anchor =
      automata::maximalMatching(g, 0xabcde);
  ASSERT_TRUE(anchor.converged);
  for (const std::uint32_t shards : kShardCounts) {
    for (const std::size_t workers : kWorkerCounts) {
      net::EngineOptions options;
      options.shards.count = shards;
      options.shards.partition = partition;
      options.shards.workersPerShard = workers;
      support::ThreadPool pool(workers);
      if (shards == 1 && workers > 1) options.pool = &pool;
      const automata::MaximalMatchingResult run =
          automata::maximalMatching(g, 0xabcde, 0.5, options);
      EXPECT_EQ(anchor.matching.edges(), run.matching.edges())
          << shards << " shards x " << workers << " workers";
      EXPECT_EQ(anchor.rounds, run.rounds)
          << shards << " shards x " << workers << " workers";
      EXPECT_EQ(anchor.stats.activeNodeRounds, run.stats.activeNodeRounds)
          << shards << " shards x " << workers << " workers";
      EXPECT_EQ(anchor.stats.matchedNodeRounds, run.stats.matchedNodeRounds)
          << shards << " shards x " << workers << " workers";
      EXPECT_EQ(anchor.stats.pairsPerRound, run.stats.pairsPerRound)
          << shards << " shards x " << workers << " workers";
    }
  }
}

TEST(ShardDeterminism, MatchingErdosRenyiBitIdenticalAcrossShardMatrix) {
  support::Rng rng(28);
  sweepMatchingSharded(graph::erdosRenyiAvgDegree(400, 8.0, rng),
                       graph::PartitionKind::Block);
}

TEST(ShardDeterminism, MatchingScaleFreeDegreeBalancedIsAlsoInvisible) {
  support::Rng rng(29);
  sweepMatchingSharded(graph::barabasiAlbert(400, 4, 1.0, rng),
                       graph::PartitionKind::DegreeBalanced);
}

/// Order-sensitive FNV-1a over the event tuples (same hash as the
/// trace-parity pins).
std::uint64_t traceFingerprint(const net::TraceLog& log) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const net::TraceEvent& e : log.events()) {
    mix(e.cycle);
    mix(e.node);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(e.a));
    mix(static_cast<std::uint64_t>(e.b));
  }
  return h;
}

TEST(ShardDeterminism, TracedShardedRunsReproduceTheReferenceEventStream) {
  // Traced sharded runs execute serially over the sharded arenas (global
  // ascending hook order), so the full event stream — not just the final
  // colors — must fingerprint identically to the unsharded reference.
  support::Rng rng(26);
  const graph::Graph g = graph::erdosRenyiAvgDegree(64, 5.0, rng);
  net::TraceLog reference;
  reference.enable();
  coloring::MadecOptions base;
  base.seed = 0x7ace5;
  base.trace = &reference;
  const auto anchor = coloring::colorEdgesMadec(g, base);
  ASSERT_TRUE(anchor.metrics.converged);
  for (const std::uint32_t shards : kShardCounts) {
    net::TraceLog log;
    log.enable();
    coloring::MadecOptions options;
    options.seed = 0x7ace5;
    options.trace = &log;
    options.shards.count = shards;
    const auto run = coloring::colorEdgesMadec(g, options);
    EXPECT_EQ(anchor.colors, run.colors) << shards << " shards";
    ASSERT_EQ(reference.events().size(), log.events().size())
        << shards << " shards";
    EXPECT_EQ(traceFingerprint(reference), traceFingerprint(log))
        << shards << " shards";
  }
}

TEST(ShardDeterminism, TracedDima2EdShardedRunsFingerprintIdentically) {
  support::Rng rng(27);
  const graph::Digraph d(graph::erdosRenyiAvgDegree(48, 4.0, rng));
  net::TraceLog reference;
  reference.enable();
  coloring::Dima2EdOptions base;
  base.seed = 0x7ace6;
  base.trace = &reference;
  const auto anchor = coloring::colorArcsDima2Ed(d, base);
  ASSERT_TRUE(anchor.metrics.converged);
  for (const std::uint32_t shards : kShardCounts) {
    net::TraceLog log;
    log.enable();
    coloring::Dima2EdOptions options;
    options.seed = 0x7ace6;
    options.trace = &log;
    options.shards.count = shards;
    const auto run = coloring::colorArcsDima2Ed(d, options);
    EXPECT_EQ(anchor.colors, run.colors) << shards << " shards";
    EXPECT_EQ(traceFingerprint(reference), traceFingerprint(log))
        << shards << " shards";
  }
}

}  // namespace
}  // namespace dima
