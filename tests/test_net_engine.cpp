#include "src/net/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/graph/generators.hpp"

namespace dima::net {
namespace {

/// A toy protocol: every node must hear from each neighbor once; each cycle
/// every pending node broadcasts its id, collects neighbors' ids, and is
/// done when all neighbors were heard. Finishes in exactly one cycle on a
/// reliable network, which makes engine bookkeeping easy to assert.
struct GossipProtocol {
  struct Msg {
    NodeId id = graph::kNoVertex;
  };
  using Message = Msg;

  explicit GossipProtocol(const graph::Graph& g)
      : graph(&g), heard(g.numVertices(), 0), begun(g.numVertices(), 0),
        ended(g.numVertices(), 0) {}

  int subRounds() const { return 1; }
  void beginCycle(NodeId u) { ++begun[u]; }
  void send(NodeId u, int, SyncNetwork<Msg>& net) {
    if (!done(u) && graph->degree(u) > 0) net.broadcast(u, Msg{u});
  }
  void receive(NodeId u, int, Inbox<Msg> inbox) {
    heard[u] += inbox.size();
  }
  void endCycle(NodeId u) { ++ended[u]; }
  bool done(NodeId u) const { return heard[u] >= graph->degree(u); }

  const graph::Graph* graph;
  std::vector<std::size_t> heard;
  std::vector<int> begun;
  std::vector<int> ended;
};

TEST(RoundEngine, ConvergesAndCountsCycles) {
  const graph::Graph g = graph::complete(5);
  GossipProtocol proto(g);
  SyncNetwork<GossipProtocol::Msg> net(g);
  const EngineResult result = runSyncProtocol(proto, net);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.cycles, 1u);
  EXPECT_EQ(result.counters.commRounds, 1u);
  EXPECT_EQ(result.counters.broadcasts, 5u);
}

TEST(RoundEngine, AlreadyDoneRunsZeroCycles) {
  const graph::Graph g(4);  // no edges: degree 0 ⇒ done immediately
  GossipProtocol proto(g);
  SyncNetwork<GossipProtocol::Msg> net(g);
  const EngineResult result = runSyncProtocol(proto, net);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.cycles, 0u);
  EXPECT_EQ(proto.begun[0], 0);
}

TEST(RoundEngine, HooksRunForEveryNodeEveryCycle) {
  const graph::Graph g = graph::cycle(6);
  GossipProtocol proto(g);
  SyncNetwork<GossipProtocol::Msg> net(g);
  (void)runSyncProtocol(proto, net);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(proto.begun[u], 1);
    EXPECT_EQ(proto.ended[u], 1);
  }
}

/// A protocol that never finishes, to exercise the round cap.
struct StubbornProtocol {
  struct Msg {};
  using Message = Msg;
  int subRounds() const { return 2; }
  void beginCycle(NodeId) {}
  void send(NodeId, int, SyncNetwork<Msg>&) {}
  void receive(NodeId, int, Inbox<Msg>) {}
  void endCycle(NodeId) {}
  bool done(NodeId) const { return false; }
};

TEST(RoundEngine, MaxCyclesCapsRun) {
  const graph::Graph g = graph::cycle(3);
  StubbornProtocol proto;
  SyncNetwork<StubbornProtocol::Msg> net(g);
  EngineOptions options;
  options.maxCycles = 10;
  const EngineResult result = runSyncProtocol(proto, net, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.cycles, 10u);
  EXPECT_EQ(result.counters.commRounds, 20u);  // 2 sub-rounds per cycle
}

TEST(RoundEngine, ObserverSeesProgress) {
  const graph::Graph g = graph::complete(4);
  GossipProtocol proto(g);
  SyncNetwork<GossipProtocol::Msg> net(g);
  std::vector<CycleInfo> observed;
  EngineOptions options;
  options.observer = [&](const CycleInfo& info) { observed.push_back(info); };
  (void)runSyncProtocol(proto, net, options);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].cycle, 0u);
  EXPECT_EQ(observed[0].nodesDone, 4u);
  EXPECT_EQ(observed[0].nodesTotal, 4u);
}

TEST(RoundEngine, ThreadedExecutorMatchesSerial) {
  const graph::Graph g = graph::complete(8);
  GossipProtocol serialProto(g);
  SyncNetwork<GossipProtocol::Msg> serialNet(g);
  const EngineResult serial = runSyncProtocol(serialProto, serialNet);

  GossipProtocol pooledProto(g);
  SyncNetwork<GossipProtocol::Msg> pooledNet(g);
  support::ThreadPool pool(4);
  EngineOptions options;
  options.pool = &pool;
  const EngineResult pooled = runSyncProtocol(pooledProto, pooledNet, options);

  EXPECT_EQ(serial.cycles, pooled.cycles);
  EXPECT_EQ(serial.counters.messagesDelivered,
            pooled.counters.messagesDelivered);
  EXPECT_EQ(serialProto.heard, pooledProto.heard);
}

}  // namespace
}  // namespace dima::net
