#include "src/coloring/result.hpp"

#include <gtest/gtest.h>

#include "src/baselines/misra_gries.hpp"
#include "src/coloring/madec.hpp"
#include "src/coloring/validate.hpp"
#include "src/graph/generators.hpp"

namespace dima::coloring {
namespace {

TEST(PaletteSummary, CountsDistinctAndUncolored) {
  const PaletteSummary s = summarizePalette({0, 2, 2, kNoColor, 5});
  EXPECT_EQ(s.assigned, 4u);
  EXPECT_EQ(s.uncolored, 1u);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.maxColor, 5);
}

TEST(PaletteSummary, EmptyVector) {
  const PaletteSummary s = summarizePalette({});
  EXPECT_EQ(s.assigned, 0u);
  EXPECT_EQ(s.distinct, 0u);
  EXPECT_EQ(s.maxColor, kNoColor);
}

TEST(Results, CompletePredicates) {
  EdgeColoringResult edge;
  edge.colors = {0, 1};
  EXPECT_TRUE(edge.complete());
  edge.colors.push_back(kNoColor);
  EXPECT_FALSE(edge.complete());

  ArcColoringResult arc;
  arc.colors = {3};
  EXPECT_TRUE(arc.complete());
  EXPECT_EQ(arc.colorsUsed(), 1u);
}

/// Differential fuzz: on hundreds of small random graphs, MaDEC and
/// Misra–Gries must both validate, and MaDEC may use at most (2Δ−1)
/// against MG's Δ+1 — with the typical gap being ≤ 1 color.
TEST(Differential, MadecVsMisraGriesOnSmallGraphs) {
  std::size_t madecWithinOneOfMg = 0;
  std::size_t runs = 0;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    support::Rng rng(seed * 101 + 7);
    const std::size_t n = 6 + rng.index(20);
    const double degree = 2.0 + rng.uniform01() * 5.0;
    const graph::Graph g = graph::erdosRenyiAvgDegree(n, degree, rng);
    if (g.numEdges() == 0) continue;
    ++runs;

    MadecOptions options;
    options.seed = seed;
    const EdgeColoringResult distributed = colorEdgesMadec(g, options);
    const baselines::MisraGriesResult sequential =
        baselines::misraGriesEdgeColoring(g);

    ASSERT_TRUE(verifyEdgeColoring(g, distributed.colors)) << "seed " << seed;
    ASSERT_TRUE(verifyEdgeColoring(g, sequential.colors)) << "seed " << seed;
    ASSERT_LE(sequential.colorsUsed, g.maxDegree() + 1);
    ASSERT_LE(distributed.colorsUsed(), 2 * g.maxDegree() - 1);
    if (distributed.colorsUsed() <= sequential.colorsUsed + 1) {
      ++madecWithinOneOfMg;
    }
  }
  ASSERT_GT(runs, 100u);
  // Conjecture 2 in differential form: the distributed algorithm should
  // track the Δ+1 gold standard closely on the vast majority of runs.
  EXPECT_GE(madecWithinOneOfMg * 10, runs * 9);
}

}  // namespace
}  // namespace dima::coloring
