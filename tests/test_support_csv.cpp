#include "src/support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dima::support {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  CsvWriter csv;
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  csv.rowOf(3, 4.5);
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4.5\n");
  EXPECT_EQ(csv.rowCount(), 3u);
}

TEST(CsvWriter, EscapesSeparatorsQuotesAndNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, RoundTripsThroughParser) {
  CsvWriter csv;
  csv.row({"x,y", "he said \"no\"", "plain"});
  std::string line = csv.str();
  line.pop_back();  // trailing newline
  const auto cells = parseCsvLine(line);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "x,y");
  EXPECT_EQ(cells[1], "he said \"no\"");
  EXPECT_EQ(cells[2], "plain");
}

TEST(CsvWriter, SaveWritesFile) {
  CsvWriter csv;
  csv.header({"k", "v"});
  csv.rowOf("answer", 42);
  const std::string path = ::testing::TempDir() + "dima_csv_test.csv";
  ASSERT_TRUE(csv.save(path));
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "answer,42");
  std::remove(path.c_str());
}

TEST(CsvWriter, SaveToBadPathFails) {
  CsvWriter csv;
  csv.rowOf(1);
  EXPECT_FALSE(csv.save("/nonexistent-dir-xyz/file.csv"));
}

TEST(ParseCsvLine, EmptyAndEdgeCells) {
  const auto cells = parseCsvLine("a,,c,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[2], "c");
  EXPECT_EQ(cells[3], "");
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  const auto cells = parseCsvLine("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(ParseCsvLine, QuotedCommaStaysInCell) {
  const auto cells = parseCsvLine("\"1,5\",2");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "1,5");
}

}  // namespace
}  // namespace dima::support
