/// \file test_graph_csr.cpp
/// The mmap CSR layer (graph/csr.hpp): write→open round-trips must expose
/// the identical topology surface; every class of damaged image — short
/// header, truncated sections, bad magic, non-monotone offsets, corrupt
/// adjacency or edge entries, lying degree summary — must be rejected with
/// a clear error before any pointer is exposed (no UB on hostile input);
/// and the read() fallback must behave identically to the mapped path.

#include "src/graph/csr.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "src/graph/generators.hpp"

namespace dima::graph {
namespace {

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<std::uint8_t> readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void writeAll(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expectSameTopology(const Graph& g, const MappedGraph& m) {
  ASSERT_EQ(g.numVertices(), m.numVertices());
  ASSERT_EQ(g.numEdges(), m.numEdges());
  EXPECT_EQ(g.maxDegree(), m.maxDegree());
  EXPECT_DOUBLE_EQ(g.averageDegree(), m.averageDegree());
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const auto a = g.incidences(v);
    const auto b = m.incidences(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].neighbor, b[i].neighbor);
      EXPECT_EQ(a[i].edge, b[i].edge);
    }
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EXPECT_EQ(g.edge(e).u, m.edge(e).u);
    EXPECT_EQ(g.edge(e).v, m.edge(e).v);
  }
  // Spot-check the lookup surface.
  const Edge& probe = g.edge(0);
  EXPECT_TRUE(m.hasEdge(probe.u, probe.v));
  EXPECT_EQ(m.findEdge(probe.u, probe.v), 0u);
  EXPECT_EQ(m.findEdge(probe.v, probe.u), 0u);
}

TEST(CsrRoundTrip, WriteOpenExposesIdenticalTopology) {
  support::Rng rng(31);
  const Graph g = erdosRenyiAvgDegree(120, 7.0, rng);
  const std::string path = tempPath("roundtrip.csr");
  std::string error;
  ASSERT_TRUE(writeCsr(g, path, &error)) << error;
  const MappedGraph m = MappedGraph::open(path, &error);
  ASSERT_TRUE(m.ok()) << error;
  expectSameTopology(g, m);
  std::remove(path.c_str());
}

TEST(CsrRoundTrip, ReadFallbackMatchesMmap) {
  support::Rng rng(32);
  const Graph g = barabasiAlbert(80, 3, 1.0, rng);
  const std::string path = tempPath("fallback.csr");
  std::string error;
  ASSERT_TRUE(writeCsr(g, path, &error)) << error;
  const MappedGraph viaRead =
      MappedGraph::open(path, &error, CsrLoadMode::ForceRead);
  ASSERT_TRUE(viaRead.ok()) << error;
  EXPECT_FALSE(viaRead.isMapped());
  expectSameTopology(g, viaRead);
  const MappedGraph viaMmap = MappedGraph::open(path, &error);
  ASSERT_TRUE(viaMmap.ok()) << error;
  expectSameTopology(g, viaMmap);
  std::remove(path.c_str());
}

TEST(CsrRoundTrip, IsolatedVerticesAndEmptyGraphSurvive) {
  const std::string path = tempPath("sparse.csr");
  std::string error;
  Graph g(5, {Edge{1, 3}});
  ASSERT_TRUE(writeCsr(g, path, &error)) << error;
  MappedGraph m = MappedGraph::open(path, &error);
  ASSERT_TRUE(m.ok()) << error;
  expectSameTopology(g, m);
  EXPECT_EQ(m.degree(0), 0u);
  const Graph empty(0);
  ASSERT_TRUE(writeCsr(empty, path, &error)) << error;
  m = MappedGraph::open(path, &error);
  ASSERT_TRUE(m.ok()) << error;
  EXPECT_EQ(m.numVertices(), 0u);
  EXPECT_EQ(m.numEdges(), 0u);
  std::remove(path.c_str());
}

/// Writes a valid image, lets `damage` mutate the bytes, and expects both
/// load paths to reject the result with a non-empty diagnostic.
void expectRejected(const char* label,
                    void (*damage)(std::vector<std::uint8_t>*)) {
  support::Rng rng(33);
  const Graph g = erdosRenyiAvgDegree(40, 5.0, rng);
  const std::string path = tempPath(std::string("damaged_") + label + ".csr");
  std::string error;
  ASSERT_TRUE(writeCsr(g, path, &error)) << error;
  std::vector<std::uint8_t> bytes = readAll(path);
  damage(&bytes);
  writeAll(path, bytes);
  for (const CsrLoadMode mode :
       {CsrLoadMode::PreferMmap, CsrLoadMode::ForceRead}) {
    error.clear();
    const MappedGraph m = MappedGraph::open(path, &error, mode);
    EXPECT_FALSE(m.ok()) << label;
    EXPECT_FALSE(error.empty()) << label;
  }
  std::remove(path.c_str());
}

TEST(CsrRejection, TruncatedBelowHeader) {
  expectRejected("short", [](std::vector<std::uint8_t>* b) { b->resize(10); });
}

TEST(CsrRejection, TruncatedMidSections) {
  expectRejected("trunc",
                 [](std::vector<std::uint8_t>* b) { b->resize(b->size() - 7); });
}

TEST(CsrRejection, TrailingGarbage) {
  expectRejected("long",
                 [](std::vector<std::uint8_t>* b) { b->push_back(0); });
}

TEST(CsrRejection, BadMagic) {
  expectRejected("magic", [](std::vector<std::uint8_t>* b) { (*b)[0] = 'X'; });
}

TEST(CsrRejection, HeaderCountLies) {
  expectRejected("count", [](std::vector<std::uint8_t>* b) {
    std::uint64_t n = 0;
    std::memcpy(&n, b->data() + 8, sizeof(n));
    ++n;  // one more vertex than the sections carry
    std::memcpy(b->data() + 8, &n, sizeof(n));
  });
}

TEST(CsrRejection, NonMonotoneOffsets) {
  expectRejected("offsets", [](std::vector<std::uint8_t>* b) {
    // offsets[1] lives right after the 48-byte header + offsets[0].
    const std::uint64_t huge = ~0ULL;
    std::memcpy(b->data() + sizeof(CsrHeader) + 8, &huge, sizeof(huge));
  });
}

TEST(CsrRejection, CorruptAdjacencyEntry) {
  expectRejected("adjacency", [](std::vector<std::uint8_t>* b) {
    CsrHeader header;
    std::memcpy(&header, b->data(), sizeof(header));
    const std::size_t adj =
        sizeof(CsrHeader) + 8 * (header.numVertices + 1);
    const std::uint32_t bogus = 0xfffffffe;  // neighbor way out of range
    std::memcpy(b->data() + adj, &bogus, sizeof(bogus));
  });
}

TEST(CsrRejection, CorruptEdgeEndpoints) {
  expectRejected("edges", [](std::vector<std::uint8_t>*b) {
    CsrHeader header;
    std::memcpy(&header, b->data(), sizeof(header));
    const std::size_t edges = sizeof(CsrHeader) +
                              8 * (header.numVertices + 1) +
                              sizeof(Incidence) * 2 * header.numEdges;
    const std::uint32_t bogus[2] = {5, 5};  // u == v is never canonical
    std::memcpy(b->data() + edges, bogus, sizeof(bogus));
  });
}

TEST(CsrRejection, MissingFile) {
  std::string error;
  const MappedGraph m = MappedGraph::open("/nonexistent/nowhere.csr", &error);
  EXPECT_FALSE(m.ok());
  EXPECT_FALSE(error.empty());
}

TEST(CsrIngest, SnapAndDimacsConvertAndValidate) {
  const std::string snap = tempPath("ingest.snap.txt");
  {
    std::ofstream out(snap);
    out << "# snap fixture\n5 6\n6 7\n5 7\n7 8\n";
  }
  const std::string csr = tempPath("ingest.csr");
  std::string error;
  ASSERT_TRUE(ingestToCsr(snap, GraphFormat::Auto, csr, &error)) << error;
  const MappedGraph m = MappedGraph::open(csr, &error);
  ASSERT_TRUE(m.ok()) << error;
  EXPECT_EQ(m.numVertices(), 4u);
  EXPECT_EQ(m.numEdges(), 4u);

  const std::string dimacs = tempPath("ingest.col");
  {
    std::ofstream out(dimacs);
    out << "c fixture\np edge 3 2\ne 1 2\ne 2 3\n";
  }
  ASSERT_TRUE(ingestToCsr(dimacs, GraphFormat::Auto, csr, &error)) << error;
  const MappedGraph m2 = MappedGraph::open(csr, &error);
  ASSERT_TRUE(m2.ok()) << error;
  EXPECT_EQ(m2.numVertices(), 3u);
  EXPECT_EQ(m2.numEdges(), 2u);

  // Ingesting a CSR image again is an explicit error, and parse failures
  // propagate as errors instead of writing a bogus image.
  EXPECT_FALSE(ingestToCsr(csr, GraphFormat::Auto, csr + ".2", &error));
  const std::string bad = tempPath("ingest.bad.txt");
  {
    std::ofstream out(bad);
    out << "1 2\nnot numbers\n";
  }
  EXPECT_FALSE(ingestToCsr(bad, GraphFormat::Snap, csr + ".2", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::remove(snap.c_str());
  std::remove(dimacs.c_str());
  std::remove(csr.c_str());
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace dima::graph
